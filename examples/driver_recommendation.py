#!/usr/bin/env python
"""Driver recommendation: where should an empty taxi head right now?

The paper's future-work list (section 9) starts with "integrate the queue
analytic information into the existing MDT system to conduct
recommendations for taxi drivers, e.g. suggesting recent emerging
passenger queue spots".  This example builds that recommender on top of
the engine's output:

* spots currently labeled C2 (passenger queue, no taxi queue) are ideal —
  waiting passengers, no competition;
* C1 spots (both queues) are second best, scored down by the standing
  taxi queue length the driver would join;
* C3/C4 spots are excluded.

Each recommendation is ranked by expected pickups per minute of detour,
using the slot's departure cadence as the service-rate estimate and the
haversine distance from the driver's position.
"""

from dataclasses import dataclass
from typing import List

from repro import (
    EngineConfig,
    QueueAnalyticEngine,
    QueueType,
    SimulationConfig,
    simulate_day,
)
from repro.core.engine import SpotAnalysis
from repro.geo.point import equirectangular_m


@dataclass
class Recommendation:
    spot_id: str
    label: QueueType
    distance_km: float
    expected_wait_min: float
    score: float


def recommend(
    analyses: List[SpotAnalysis],
    slot: int,
    driver_lon: float,
    driver_lat: float,
    drive_speed_kmh: float = 38.0,
    top: int = 5,
) -> List[Recommendation]:
    """Rank passenger-queue spots for a FREE taxi at a given position."""
    recs: List[Recommendation] = []
    for analysis in analyses:
        label = analysis.labels[slot].label
        if label not in (QueueType.C1, QueueType.C2):
            continue
        features = analysis.features[slot]
        dist_km = (
            equirectangular_m(
                driver_lon, driver_lat, analysis.spot.lon, analysis.spot.lat
            )
            / 1000.0
        )
        drive_min = dist_km / drive_speed_kmh * 60.0
        # Expected wait on arrival: queue ahead of us times the departure
        # cadence (zero queue for C2 spots by definition).
        queue_ahead = features.queue_length if label is QueueType.C1 else 0.0
        wait_min = (
            queue_ahead * features.mean_departure_interval_s / 60.0
        )
        total_min = drive_min + wait_min + 0.5
        recs.append(
            Recommendation(
                spot_id=analysis.spot.spot_id,
                label=label,
                distance_km=dist_km,
                expected_wait_min=wait_min,
                score=1.0 / total_min,
            )
        )
    recs.sort(key=lambda r: -r.score)
    return recs[:top]


def main() -> None:
    config = SimulationConfig(
        seed=23, fleet_size=400, n_queue_spots=20, n_decoy_landmarks=10
    )
    print("simulating a weekday ...")
    output = simulate_day(config)
    city = output.city
    engine = QueueAnalyticEngine(
        zones=city.zones,
        projection=city.projection,
        config=EngineConfig(observed_fraction=config.observed_fraction),
        city_bbox=city.bbox,
        inaccessible=city.water,
    )
    detection = engine.detect_spots(output.store)
    analyses = engine.disambiguate(
        output.store, detection, output.ground_truth.grid
    )
    print(f"detected {len(detection.spots)} spots; building recommendations")

    # A driver idling near the city centre during the evening peak
    # (slot 36 = 18:00-18:30).
    driver_lon, driver_lat = city.bbox.center
    slot = 36
    recs = recommend(list(analyses.values()), slot, driver_lon, driver_lat)
    print(f"\nTop passenger-queue spots at slot {slot} (18:00-18:30):")
    if not recs:
        print("  no passenger-queue spot identified in this slot")
    for rec in recs:
        print(
            f"  {rec.spot_id}  {rec.label.value}  "
            f"{rec.distance_km:4.1f} km away, "
            f"~{rec.expected_wait_min:4.1f} min queue on arrival, "
            f"score {rec.score:.3f}"
        )


if __name__ == "__main__":
    main()
