#!/usr/bin/env python
"""Analysing externally supplied MDT logs from CSV.

The engine is substrate-agnostic: any CSV with the paper's six fields
(Table 2 format) can be analysed.  This example simulates a day, writes
the logs to CSV — the shape a taxi operator's export would have — then
re-loads and analyses the file exactly as a downstream user would,
without any access to the simulator objects.
"""

import tempfile
from pathlib import Path

from repro import EngineConfig, QueueAnalyticEngine, SimulationConfig, simulate_day
from repro.core.reports import citywide_proportions, format_proportions
from repro.geo.bbox import BBox
from repro.geo.point import LocalProjection
from repro.geo.zones import four_zone_partition
from repro.trace.log_store import MdtLogStore


def export_logs(path: Path) -> None:
    """Pretend to be the taxi operator: dump one day of MDT logs."""
    config = SimulationConfig(
        seed=29, fleet_size=300, n_queue_spots=15, n_decoy_landmarks=8
    )
    output = simulate_day(config)
    output.store.to_csv(path)
    print(f"operator exported {len(output.store)} records to {path}")


def analyse_logs(path: Path) -> None:
    """Pretend to be the analyst: everything from the CSV alone."""
    store = MdtLogStore.from_csv(path)
    print(f"loaded {len(store)} records from {store.taxi_count} taxis")

    # Build the geography from the data itself.
    bbox = BBox.from_points(
        (r.lon, r.lat) for r in store.iter_records()
    ).expanded(0.01)
    zones = four_zone_partition(bbox)
    lon, lat = bbox.center

    engine = QueueAnalyticEngine(
        zones=zones,
        projection=LocalProjection(lon, lat),
        config=EngineConfig(observed_fraction=0.6),
        city_bbox=bbox,
    )
    detection = engine.detect_spots(store)
    print(f"detected {len(detection.spots)} queue spots")
    analyses = engine.disambiguate(store, detection)
    print()
    print(format_proportions(citywide_proportions(analyses.values())))


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "mdt_logs.csv"
        export_logs(path)
        analyse_logs(path)


if __name__ == "__main__":
    main()
