#!/usr/bin/env python
"""Sporadic queue spots: the weekend-only leisure park (paper section 7.2).

The paper reports a queue spot in the West zone that "periodically appears
only on every Sunday (occasionally on Saturday) but never shows during
week days" — a leisure park popular with local families.  The synthetic
city plants exactly one such weekend-only landmark; this example runs the
detection tier on a weekday and on a Sunday and shows the spot appearing
and disappearing.
"""

from dataclasses import replace

from repro import (
    EngineConfig,
    QueueAnalyticEngine,
    SimulationConfig,
    simulate_day,
)
from repro.geo.point import equirectangular_m
from repro.sim.city import City
from repro.sim.landmarks import LandmarkCategory


def detect_day(config, city):
    output = simulate_day(config, city=city)
    engine = QueueAnalyticEngine(
        zones=city.zones,
        projection=city.projection,
        config=EngineConfig(observed_fraction=config.observed_fraction),
        city_bbox=city.bbox,
        inaccessible=city.water,
    )
    return engine.detect_spots(output.store)


def main() -> None:
    base = SimulationConfig(
        seed=17, fleet_size=400, n_queue_spots=20, n_decoy_landmarks=10
    )
    city = City.generate(
        seed=base.seed,
        n_queue_spots=base.n_queue_spots,
        n_decoys=base.n_decoy_landmarks,
    )
    park = next(
        lm
        for lm in city.queue_spot_landmarks
        if lm.category is LandmarkCategory.LEISURE_PARK
    )
    print(
        f"weekend-only landmark: {park.name} in the {park.zone} zone "
        f"at ({park.lon:.5f}, {park.lat:.5f})"
    )

    for day, name in ((2, "Wednesday"), (6, "Sunday")):
        config = replace(base, day_of_week=day, day_index=day)
        print(f"\nsimulating {name} ...")
        detection = detect_day(config, city)
        near = [
            spot
            for spot in detection.spots
            if equirectangular_m(spot.lon, spot.lat, park.lon, park.lat) < 60.0
        ]
        print(f"  {len(detection.spots)} spots detected city-wide")
        if near:
            spot = near[0]
            print(
                f"  -> leisure park DETECTED as {spot.spot_id} "
                f"({spot.pickup_count} pickup events)"
            )
        else:
            print("  -> leisure park not detected (as expected on a weekday)")


if __name__ == "__main__":
    main()
