#!/usr/bin/env python
"""Live queue monitoring: the paper's real-time vision, end to end.

Section 1 motivates "real time queuing events information ... in the
recommendation systems for taxi drivers and commuters".  This example
shows the deployment pattern for that:

1. *Overnight batch* — run tier 1 + tier 2 on yesterday's logs to get
   the spot set and per-spot QCD thresholds.
2. *Live day* — replay today's records in timestamp order through the
   :class:`~repro.stream.StreamingQueueMonitor`, printing a queue-context
   update for the busiest spots every time a 30-minute slot closes.

(The "live" stream here is a simulated day replayed in order; swap in a
message queue consumer for a real deployment.)
"""

from dataclasses import replace

from repro import (
    EngineConfig,
    QueueAnalyticEngine,
    SimulationConfig,
    simulate_day,
)
from repro.core.features import AmplificationPolicy
from repro.core.types import TimeSlotGrid
from repro.sim.city import City
from repro.stream import StreamingQueueMonitor


def main() -> None:
    base = SimulationConfig(
        seed=31, fleet_size=300, n_queue_spots=15, n_decoy_landmarks=8
    )
    city = City.generate(
        seed=base.seed,
        n_queue_spots=base.n_queue_spots,
        n_decoys=base.n_decoy_landmarks,
    )

    # --- overnight batch: yesterday (Monday) ------------------------------
    print("overnight batch on yesterday's logs ...")
    yesterday = simulate_day(base, city=city)
    engine = QueueAnalyticEngine(
        zones=city.zones,
        projection=city.projection,
        config=EngineConfig(observed_fraction=base.observed_fraction),
        city_bbox=city.bbox,
        inaccessible=city.water,
    )
    detection = engine.detect_spots(yesterday.store)
    analyses = engine.disambiguate(
        yesterday.store, detection, yesterday.ground_truth.grid
    )
    thresholds = {
        spot_id: a.thresholds
        for spot_id, a in analyses.items()
        if a.thresholds is not None
    }
    print(f"  {len(detection.spots)} spots, "
          f"{len(thresholds)} with derived thresholds")

    # --- live day: today (Tuesday) ----------------------------------------
    today_config = replace(base, day_of_week=1, day_index=1)
    today = simulate_day(today_config, city=city)
    grid = TimeSlotGrid.for_day(today_config.day_start_ts)

    monitor = StreamingQueueMonitor(
        spots=detection.spots,
        thresholds=thresholds,
        grid=grid,
        projection=city.projection,
        amplification=AmplificationPolicy.for_coverage(
            base.observed_fraction
        ),
    )

    watched = {spot.spot_id for spot in detection.spots[:3]}
    print(f"\nstreaming today's records; watching {sorted(watched)}:\n")
    records = sorted(today.store.iter_records(), key=lambda r: r.ts)
    shown = 0
    for record in records:
        for result in monitor.feed(record):
            if result.spot_id in watched and shown < 24:
                f = result.features
                print(
                    f"  [{grid.label_of(result.slot)}] {result.spot_id}: "
                    f"{result.label.label.value:<12} "
                    f"(arrivals={f.n_arrivals:4.1f}, L={f.queue_length:4.1f})"
                )
                shown += 1
    monitor.finish()
    print("\nstream complete.")


if __name__ == "__main__":
    main()
