#!/usr/bin/env python
"""Quickstart: simulate a day of taxi MDT logs and analyse its queues.

Walks the full pipeline of the paper in ~30 seconds:

1. simulate a small city day (the MDT-log substrate),
2. clean the logs (section 6.1.1),
3. detect queue spots (PEA + per-zone DBSCAN, section 4),
4. label each spot's 30-minute slots with a queue context (WTE +
   5-tuple features + QCD, section 5),
5. print the Table 7-style proportions and one spot's transition report.
"""

from repro import (
    EngineConfig,
    QueueAnalyticEngine,
    SimulationConfig,
    simulate_day,
)
from repro.core.reports import (
    citywide_proportions,
    format_proportions,
    format_transition_report,
)


def main() -> None:
    config = SimulationConfig(
        seed=11, fleet_size=300, n_queue_spots=15, n_decoy_landmarks=8
    )
    print("simulating one day of taxi activity ...")
    output = simulate_day(config)
    stats = output.store.stats()
    print(
        f"  {int(stats['records'])} MDT records, "
        f"{int(stats['taxis'])} observed taxis, "
        f"{stats['records_per_taxi']:.0f} records/taxi "
        f"(paper: ~848 records/taxi/day)"
    )

    city = output.city
    engine = QueueAnalyticEngine(
        zones=city.zones,
        projection=city.projection,
        config=EngineConfig(observed_fraction=config.observed_fraction),
        city_bbox=city.bbox,
        inaccessible=city.water,
    )

    detection = engine.detect_spots(output.store)
    report = engine.last_cleaning_report
    print(
        f"  cleaning removed {report.removed_fraction * 100:.1f}% of records "
        f"(paper: ~2.8%)"
    )
    print(f"  detected {len(detection.spots)} queue spots:")
    for spot in detection.spots[:5]:
        print(
            f"    {spot.spot_id} zone={spot.zone:<8} "
            f"pickups={spot.pickup_count:>4} spread={spot.radius_m:.1f} m"
        )

    analyses = engine.disambiguate(
        output.store, detection, output.ground_truth.grid
    )
    print()
    print(format_proportions(citywide_proportions(analyses.values())))
    print()
    busiest = detection.spots[0].spot_id
    print(format_transition_report(analyses[busiest], output.ground_truth.grid))


if __name__ == "__main__":
    main()
