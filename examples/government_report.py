#!/usr/bin/env python
"""The government-agency view: imbalance profiles and new-stand proposals.

The paper's introduction lists government agencies as a stakeholder: they
"need such information to understand the imbalance between taxi supply
and demand", and section 9 plans to "work with LTA to set up new taxi
stands at the busy queuing spots".  This example produces both artefacts
from one analysed day:

* per-zone hourly demand/supply imbalance profiles (+1 = passengers
  queueing, -1 = taxis queueing);
* a shortlist of busy queueing spots with no nearby facility — candidate
  locations for new official taxi stands;
* the full artefact bundle (GeoJSON + CSV + HTML) via the export layer.
"""

import tempfile
from pathlib import Path

from repro import (
    EngineConfig,
    QueueAnalyticEngine,
    SimulationConfig,
    simulate_day,
)
from repro.analysis.imbalance import (
    propose_new_stands,
    zone_imbalance_profiles,
)
from repro.export.geojson import dump_geojson, spots_to_geojson
from repro.export.html_report import write_html_report


def bar(value, width=20):
    """Render an imbalance value in [-1, 1] as a small ASCII bar."""
    if value is None:
        return " " * width + " (no data)"
    mid = width // 2
    cells = [" "] * width
    n = round(abs(value) * mid)
    if value >= 0:
        for i in range(mid, min(width, mid + n)):
            cells[i] = "+"
    else:
        for i in range(max(0, mid - n), mid):
            cells[i] = "-"
    cells[mid] = "|"
    return "".join(cells)


def main() -> None:
    config = SimulationConfig(
        seed=37, fleet_size=400, n_queue_spots=20, n_decoy_landmarks=10
    )
    print("simulating a weekday and analysing queues ...")
    output = simulate_day(config)
    city = output.city
    engine = QueueAnalyticEngine(
        zones=city.zones,
        projection=city.projection,
        config=EngineConfig(observed_fraction=config.observed_fraction),
        city_bbox=city.bbox,
        inaccessible=city.water,
    )
    detection = engine.detect_spots(output.store)
    analyses = engine.disambiguate(
        output.store, detection, output.ground_truth.grid
    )

    print("\nHourly demand(+)/supply(-) imbalance per zone:")
    profiles = zone_imbalance_profiles(analyses.values())
    for zone, profile in sorted(profiles.items()):
        print(f"\n  {zone}:")
        for hour in range(6, 24, 3):
            value = profile.hourly[hour]
            label = "n/a " if value is None else f"{value:+.2f}"
            print(f"    {hour:02d}:00  {label}  {bar(value)}")
        if profile.peak_demand_hour is not None:
            print(f"    peak passenger queueing at "
                  f"{profile.peak_demand_hour:02d}:00")

    proposals = propose_new_stands(
        analyses.values(), city.landmarks, min_queueing_slots=8
    )
    print(f"\nNew taxi stand proposals ({len(proposals)}):")
    for p in proposals[:5]:
        print(
            f"  {p.spot_id} ({p.zone}): {p.queueing_slots} queueing slots, "
            f"nearest facility {p.nearest_landmark_m:.0f} m away"
        )
    if not proposals:
        print("  (every busy queueing spot already sits at a facility)")

    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp)
        dump_geojson(spots_to_geojson(detection.spots), out / "spots.geojson")
        write_html_report(
            analyses.values(), output.ground_truth.grid, out / "report.html"
        )
        print(f"\nartefacts written: {sorted(f.name for f in out.iterdir())}")


if __name__ == "__main__":
    main()
