"""Serial vs parallel wall-clock of the two-tier pipeline (not in the
paper).

The paper's backend processes 12.4 M records/day; this bench records
what the zone-sharded :class:`~repro.parallel.ParallelEngineRunner`
buys over the serial engine at bench scale, per worker count and per
tier — and, on every run, re-asserts the headline guarantee that the
parallel output is identical to the serial output.

Speedups are machine-dependent: on a single-CPU container the pool adds
fork overhead and the speedup column sits near (or below) 1.0x; on the
multi-core hosts the layer targets, tier 1 approaches the worker count.
The numbers are recorded, not asserted.
"""

import time

import pytest
from conftest import emit

from repro.core.engine import EngineConfig, QueueAnalyticEngine
from repro.parallel import ParallelEngineRunner

WORKER_COUNTS = (2, 4)


def fresh_engine(bench_day) -> QueueAnalyticEngine:
    city = bench_day.city
    return QueueAnalyticEngine(
        zones=city.zones,
        projection=city.projection,
        config=EngineConfig(
            observed_fraction=bench_day.config.observed_fraction
        ),
        city_bbox=city.bbox,
        inaccessible=city.water,
    )


@pytest.fixture(scope="module")
def serial_timing(bench_day):
    """Serial tier-1/tier-2 wall clock plus the reference outputs."""
    engine = fresh_engine(bench_day)
    start = time.perf_counter()
    detection = engine.detect_spots(bench_day.store)
    tier1_s = time.perf_counter() - start
    start = time.perf_counter()
    analyses = engine.disambiguate(
        bench_day.store, detection, bench_day.ground_truth.grid
    )
    tier2_s = time.perf_counter() - start
    return {
        "tier1_s": tier1_s,
        "tier2_s": tier2_s,
        "detection": detection,
        "analyses": analyses,
    }


def test_parallel_speedup(bench_day, serial_timing):
    rows = [
        "serial vs zone-sharded parallel pipeline "
        f"({len(bench_day.store):,} records, "
        f"{len(serial_timing['detection'].spots)} spots)",
        "",
        f"{'config':>10}  {'tier1 s':>8}  {'tier2 s':>8}  "
        f"{'t1 speedup':>10}  {'t2 speedup':>10}  {'identical':>9}",
        f"{'serial':>10}  {serial_timing['tier1_s']:>8.2f}  "
        f"{serial_timing['tier2_s']:>8.2f}  {'1.00x':>10}  {'1.00x':>10}  "
        f"{'--':>9}",
    ]
    for workers in WORKER_COUNTS:
        runner = ParallelEngineRunner(fresh_engine(bench_day), workers=workers)
        start = time.perf_counter()
        detection = runner.detect_spots(bench_day.store)
        tier1_s = time.perf_counter() - start
        start = time.perf_counter()
        analyses = runner.disambiguate(
            bench_day.store, detection, bench_day.ground_truth.grid
        )
        tier2_s = time.perf_counter() - start

        identical = (
            detection.spots == serial_timing["detection"].spots
            and detection.noise_count
            == serial_timing["detection"].noise_count
            and analyses == serial_timing["analyses"]
        )
        assert identical, f"parallel(workers={workers}) diverged from serial"
        rows.append(
            f"{f'{workers} workers':>10}  {tier1_s:>8.2f}  {tier2_s:>8.2f}  "
            f"{serial_timing['tier1_s'] / tier1_s:>9.2f}x  "
            f"{serial_timing['tier2_s'] / tier2_s:>9.2f}x  "
            f"{'yes':>9}"
        )
    emit("parallel_speedup", rows)


def test_shard_serialization_bytes(bench_day, serial_timing):
    """Per-stage pickle payload of the worker handoff, row vs columnar.

    Tier 1 is where the refactor changed the wire format: a
    :class:`Tier1BatchShardTask` ships six raw column buffers where a
    :class:`Tier1ShardTask` pickled every record object.  The zone and
    spot stages are unchanged and reported for scale.
    """
    import pickle

    from repro.parallel.shards import (
        plan_tier1_batch_shards,
        plan_tier1_shards,
    )

    engine = fresh_engine(bench_day)
    store = bench_day.store
    plan_args = (
        engine.zones,
        4,
        True,
        engine.city_bbox,
        engine.inaccessible,
        engine.config.detection,
    )
    row_tasks = plan_tier1_shards(store, *plan_args)
    batch_tasks = plan_tier1_batch_shards(store, *plan_args)
    row_bytes = sum(len(pickle.dumps(t)) for t in row_tasks)
    batch_bytes = sum(len(pickle.dumps(t)) for t in batch_tasks)
    assert len(batch_tasks) == len(row_tasks)
    assert batch_bytes < row_bytes

    rows = [
        f"tier-1 shard handoff bytes ({len(store):,} records, "
        f"{len(row_tasks)} shards)",
        "",
        f"{'stage':>22}  {'bytes':>12}  {'bytes/record':>12}",
        f"{'tier1 rows (before)':>22}  {row_bytes:>12,}  "
        f"{row_bytes / len(store):>12.1f}",
        f"{'tier1 columns (after)':>22}  {batch_bytes:>12,}  "
        f"{batch_bytes / len(store):>12.1f}",
        f"{'reduction':>22}  {row_bytes / batch_bytes:>11.2f}x",
    ]
    emit("parallel_shard_bytes", rows)


def test_parallel_csv_ingest_throughput(bench_day, serial_timing, tmp_path):
    """Chunked CSV ingest: split + sharded load + tier 1, end to end."""
    csv_path = tmp_path / "bench_day.csv"
    bench_day.store.to_csv(csv_path)

    from repro.trace.log_store import MdtLogStore

    start = time.perf_counter()
    store = MdtLogStore.from_csv(csv_path)
    serial_engine = fresh_engine(bench_day)
    serial_detection = serial_engine.detect_spots(store)
    serial_s = time.perf_counter() - start

    rows = [
        f"CSV-to-spots ({len(store):,} records from disk)",
        "",
        f"{'config':>10}  {'seconds':>8}  {'speedup':>8}",
        f"{'serial':>10}  {serial_s:>8.2f}  {'1.00x':>8}",
    ]
    for workers in WORKER_COUNTS:
        runner = ParallelEngineRunner(fresh_engine(bench_day), workers=workers)
        start = time.perf_counter()
        detection = runner.detect_spots_csv(csv_path)
        elapsed = time.perf_counter() - start
        assert detection.spots == serial_detection.spots
        rows.append(
            f"{f'{workers} workers':>10}  {elapsed:>8.2f}  "
            f"{serial_s / elapsed:>7.2f}x"
        )
    emit("parallel_csv_ingest", rows)
