"""Ablation — the 60%-coverage amplification factor (section 6.2.1).

The paper's dataset covers ~60% of Singapore's taxis, so it multiplies
count features by 1.667 (and the departure interval by 0.6) before QCD.
This ablation labels the same day with and without the correction and
scores both against simulator ground truth: the correction should improve
agreement, because the thresholds' L >= 1 test is a full-fleet statement.
"""

from conftest import emit

from repro.analysis.accuracy import label_accuracy
from repro.core.engine import EngineConfig, QueueAnalyticEngine
from repro.core.types import QueueType


def _label(bench_day, observed_fraction):
    city = bench_day.city
    engine = QueueAnalyticEngine(
        zones=city.zones,
        projection=city.projection,
        config=EngineConfig(observed_fraction=observed_fraction),
        city_bbox=city.bbox,
        inaccessible=city.water,
    )
    detection = engine.detect_spots(bench_day.store)
    return engine.disambiguate(
        bench_day.store, detection, bench_day.ground_truth.grid
    )


def test_ablation_amplification(benchmark, bench_day):
    corrected = benchmark.pedantic(
        lambda: _label(bench_day, bench_day.config.observed_fraction),
        rounds=1,
        iterations=1,
    )
    uncorrected = _label(bench_day, 1.0)

    score_on = label_accuracy(corrected.values(), bench_day.ground_truth)
    score_off = label_accuracy(uncorrected.values(), bench_day.ground_truth)

    def c1_share(analyses):
        labels = [l for a in analyses.values() for l in a.labels]
        n = sum(1 for l in labels if l.label is QueueType.C1)
        return n / len(labels)

    lines = [
        "== Ablation: section-6.2.1 amplification factor ==",
        f"(observed fleet fraction: {bench_day.config.observed_fraction})",
        "",
        f"{'metric':<28}{'amplified':>12}{'raw counts':>12}",
        f"{'label accuracy':<28}{score_on.accuracy:>12.2f}"
        f"{score_off.accuracy:>12.2f}",
        f"{'taxi-queue agreement':<28}{score_on.taxi_queue_agreement:>12.2f}"
        f"{score_off.taxi_queue_agreement:>12.2f}",
        f"{'C1 share of slots':<28}{c1_share(corrected):>12.2%}"
        f"{c1_share(uncorrected):>12.2%}",
    ]
    emit("ablation_amplification", lines)

    # Without the correction, queue lengths are underestimated by ~40%,
    # so fewer slots cross the L >= 1 taxi-queue test.
    assert c1_share(uncorrected) <= c1_share(corrected)
    # The correction must not hurt overall agreement.
    assert score_on.accuracy >= score_off.accuracy - 0.02
