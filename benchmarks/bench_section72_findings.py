"""Section 7.2 — the two "Interesting Findings", quantified.

1. *Driver behaviour*: "during the time slots of C1 and C2, especially
   C2, a number of taxis enter the queue spots with a BUSY state and then
   quickly leave with a POB state" — cherry-picking.  The bench mines the
   BUSY -> POB pattern from the logs and cross-tabulates it against the
   QCD labels: the per-slot rate must peak in passenger-queue contexts.

2. *Sporadic queue spot*: a leisure-park spot exists on Sunday but never
   on week days.  The bench detects spots on both day kinds and checks
   the appearance/disappearance.
"""

from conftest import bench_config, emit

from repro.analysis.insights import cherry_pick_report, find_busy_cherry_picks
from repro.core.engine import EngineConfig, QueueAnalyticEngine
from repro.core.types import QueueType
from repro.geo.point import equirectangular_m
from repro.sim.fleet import simulate_day
from repro.sim.landmarks import LandmarkCategory


def test_finding_busy_cherry_picking(benchmark, bench_day, bench_analyses):
    events = benchmark.pedantic(
        lambda: find_busy_cherry_picks(bench_day.store),
        rounds=1,
        iterations=1,
    )
    report = cherry_pick_report(
        events, bench_analyses.values(), bench_day.ground_truth.grid
    )
    lines = [
        "== Section 7.2 finding 1: BUSY cherry-picking drivers ==",
        f"events mined: {report.events_total} "
        f"({report.events_at_spots} at detected queue spots)",
        f"repeat offenders: {len(report.repeat_offenders)} taxis",
        "",
        f"{'label':<14}{'events':>8}{'rate/slot':>12}",
    ]
    for qt in QueueType:
        lines.append(
            f"{qt.value:<14}{report.by_label[qt]:>8d}"
            f"{report.per_label_rate[qt]:>12.3f}"
        )
    emit("section72_cherry_picking", lines)

    assert report.events_at_spots > 0
    # The paper's claim: the behaviour concentrates in passenger-queue
    # slots (C1/C2), not in C4.
    pq_rate = max(
        report.per_label_rate[QueueType.C1],
        report.per_label_rate[QueueType.C2],
    )
    assert pq_rate > report.per_label_rate[QueueType.C4]


def test_finding_sporadic_weekend_spot(benchmark, bench_city):
    park = next(
        lm
        for lm in bench_city.queue_spot_landmarks
        if lm.category is LandmarkCategory.LEISURE_PARK
    )

    def detect(day_of_week):
        config = bench_config(day_of_week=day_of_week)
        output = simulate_day(config, city=bench_city)
        engine = QueueAnalyticEngine(
            zones=bench_city.zones,
            projection=bench_city.projection,
            config=EngineConfig(observed_fraction=config.observed_fraction),
            city_bbox=bench_city.bbox,
            inaccessible=bench_city.water,
        )
        return engine.detect_spots(output.store)

    sunday = benchmark.pedantic(lambda: detect(6), rounds=1, iterations=1)
    wednesday = detect(2)

    def near_park(detection):
        return [
            s
            for s in detection.spots
            if equirectangular_m(s.lon, s.lat, park.lon, park.lat) < 60.0
        ]

    sunday_hits = near_park(sunday)
    wednesday_hits = near_park(wednesday)
    lines = [
        "== Section 7.2 finding 2: sporadic weekend-only queue spot ==",
        f"leisure park: {park.name} ({park.zone} zone)",
        f"Wednesday: {'DETECTED' if wednesday_hits else 'not detected'} "
        f"(paper: never on week days)",
        f"Sunday:    {'DETECTED' if sunday_hits else 'not detected'} "
        f"(paper: appears every Sunday)",
    ]
    if sunday_hits:
        lines.append(
            f"Sunday pickup events at the park: {sunday_hits[0].pickup_count}"
        )
    emit("section72_sporadic_spot", lines)

    assert not wednesday_hits
    assert sunday_hits
