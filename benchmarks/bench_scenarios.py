"""Scenario comparison — the analytics under skewed supply regimes.

Not a paper table: a robustness study of the whole system.  The same city
is simulated at three fleet sizes; *ground-truth* queue contexts must
move the way queueing theory says (less supply -> more passenger queues,
more supply -> more taxi queues), and the booking failure *rate* must
fall as supply grows.

The measured labels expose a genuine property of the paper's method that
the paper never states: **passenger queues are only observable through
taxi throughput**.  With a starved fleet, few taxis reach the spots, so
there are few pickup events to extract features from — the slots where
passengers queue the hardest become *Unidentified*, not C2.  The bench
reports both views side by side.
"""

from dataclasses import replace

from conftest import BENCH_DECOYS, BENCH_SPOTS, emit

from repro.core.engine import EngineConfig, QueueAnalyticEngine
from repro.core.qcd import label_proportions
from repro.core.types import QueueType
from repro.sim.fleet import simulate_day
from repro.sim.scenarios import build_scenario

REGIMES = {
    "undersupplied": 250,
    "balanced": 500,
    "oversupplied": 1200,
}


def test_scenario_supply_regimes(benchmark, bench_city):
    def run():
        results = {}
        for name, fleet in REGIMES.items():
            config = replace(
                build_scenario("default", seed=11),
                fleet_size=fleet,
                n_queue_spots=BENCH_SPOTS,
                n_decoy_landmarks=BENCH_DECOYS,
            )
            output = simulate_day(config, city=bench_city)
            engine = QueueAnalyticEngine(
                zones=bench_city.zones,
                projection=bench_city.projection,
                config=EngineConfig(
                    observed_fraction=config.observed_fraction
                ),
                city_bbox=bench_city.bbox,
                inaccessible=bench_city.water,
            )
            detection = engine.detect_spots(output.store)
            analyses = engine.disambiguate(
                output.store, detection, output.ground_truth.grid
            )
            labels = [l for a in analyses.values() for l in a.labels]
            truth_counts = output.ground_truth.label_counts()
            truth_total = sum(truth_counts.values())
            attempted = (
                len(output.failed_bookings)
                + output.counters["booking_pickups"]
            )
            results[name] = {
                "measured": label_proportions(labels),
                "truth": {
                    qt: truth_counts[qt] / truth_total for qt in QueueType
                },
                "fail_rate": len(output.failed_bookings) / max(1, attempted),
            }
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "== Scenario study: supply regimes ==",
        "",
        "ground truth (what actually happened):",
        f"{'regime':<16}{'fleet':>7}{'C1 %':>7}{'C2 %':>7}{'C3 %':>7}"
        f"{'C4 %':>7}{'booking fail rate':>19}",
    ]
    for name, fleet in REGIMES.items():
        r = results[name]
        t = r["truth"]
        lines.append(
            f"{name:<16}{fleet:>7d}"
            f"{t[QueueType.C1] * 100:>7.1f}{t[QueueType.C2] * 100:>7.1f}"
            f"{t[QueueType.C3] * 100:>7.1f}{t[QueueType.C4] * 100:>7.1f}"
            f"{r['fail_rate'] * 100:>18.1f}%"
        )
    lines += [
        "",
        "measured labels (what the method sees — note the probe effect:",
        "a starved fleet yields few pickup events, so hard-C2 slots go",
        "Unidentified instead of C2):",
        f"{'regime':<16}{'C1 %':>7}{'C2 %':>7}{'C3 %':>7}{'C4 %':>7}"
        f"{'unid %':>8}",
    ]
    for name in REGIMES:
        m = results[name]["measured"]
        lines.append(
            f"{name:<16}"
            f"{m[QueueType.C1] * 100:>7.1f}{m[QueueType.C2] * 100:>7.1f}"
            f"{m[QueueType.C3] * 100:>7.1f}{m[QueueType.C4] * 100:>7.1f}"
            f"{m[QueueType.UNIDENTIFIED] * 100:>8.1f}"
        )
    emit("scenarios_supply", lines)

    under = results["undersupplied"]
    over = results["oversupplied"]
    # Ground truth follows queueing theory.
    assert under["truth"][QueueType.C2] > over["truth"][QueueType.C2]
    assert over["truth"][QueueType.C3] >= under["truth"][QueueType.C3]
    # Booking failures become rarer as supply grows.
    assert under["fail_rate"] > over["fail_rate"]
    # The probe effect: the starved regime labels fewer slots.
    assert (
        under["measured"][QueueType.UNIDENTIFIED]
        > over["measured"][QueueType.UNIDENTIFIED]
    )
