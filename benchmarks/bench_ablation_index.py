"""Ablation — DBSCAN neighbour backends (section 4.3).

The paper warns the naive O(n^2) DBSCAN is "significantly slow" on the
daily location set and recommends grid or R-tree spatial indexes.  This
bench times all three backends on the same pickup-centroid set and checks
they detect identical spot counts.
"""

import time

from conftest import emit

from repro.core.pea import extract_all_pickup_events
from repro.core.spots import detect_from_centroids, pickup_centroids
from repro.cluster.neighbors import (
    BruteForceNeighbors,
    GridNeighbors,
    RTreeNeighbors,
)

BACKENDS = [
    ("brute", BruteForceNeighbors),
    ("grid", GridNeighbors),
    ("rtree", RTreeNeighbors),
]


def test_ablation_neighbor_backends(benchmark, bench_day, bench_engine):
    city = bench_day.city
    cleaned = bench_engine.preprocess(bench_day.store)
    events = extract_all_pickup_events(cleaned)
    lonlat = pickup_centroids(events)

    timings = {}
    counts = {}

    def run_all():
        for name, backend in BACKENDS:
            start = time.perf_counter()
            result = detect_from_centroids(
                lonlat, city.zones, city.projection,
                neighbors_factory=backend,
            )
            timings[name] = time.perf_counter() - start
            counts[name] = len(result.spots)
        return counts

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        "== Ablation: DBSCAN neighbour backends (section 4.3) ==",
        f"({len(lonlat):,} pickup centroids, eps=15 m, minPts=50)",
        "",
        f"{'backend':<12}{'spots':>8}{'seconds':>10}{'speedup':>10}",
    ]
    base = timings["brute"]
    for name, _ in BACKENDS:
        lines.append(
            f"{name:<12}{counts[name]:>8d}{timings[name]:>10.3f}"
            f"{base / timings[name]:>10.1f}x"
        )
    emit("ablation_index", lines)

    # All backends agree on the outcome.
    assert counts["brute"] == counts["grid"] == counts["rtree"]
    # The indexes beat brute force (the paper's point).
    assert timings["grid"] < timings["brute"]
