"""Streaming bench — live-path throughput and batch agreement.

The paper's real-time vision (section 1) needs the streaming path to
(a) keep up with the city's record rate and (b) agree with the batch
engine.  This bench replays a full day through
:class:`~repro.stream.StreamingQueueMonitor` and measures both.
"""

from conftest import emit

from repro.core.types import QueueType
from repro.stream import StreamingQueueMonitor


def test_streaming_throughput_and_agreement(
    benchmark, bench_day, bench_engine, bench_detection, bench_analyses
):
    cleaned = bench_engine.preprocess(bench_day.store)
    grid = bench_day.ground_truth.grid
    thresholds = {
        spot_id: a.thresholds
        for spot_id, a in bench_analyses.items()
        if a.thresholds is not None
    }
    records = sorted(cleaned.iter_records(), key=lambda r: r.ts)

    def replay():
        monitor = StreamingQueueMonitor(
            spots=bench_detection.spots,
            thresholds=thresholds,
            grid=grid,
            projection=bench_day.city.projection,
            amplification=bench_engine.amplification,
        )
        results = []
        for record in records:
            results.extend(monitor.feed(record))
        results.extend(monitor.finish())
        return results

    results = benchmark.pedantic(replay, rounds=1, iterations=1)
    seconds = benchmark.stats.stats.mean
    throughput = len(records) / seconds

    # Agreement with the batch engine on per-slot labels.
    stream_labels = {
        (r.spot_id, r.slot): r.label.label for r in results
    }
    agree = total = 0
    for spot_id, analysis in bench_analyses.items():
        if analysis.thresholds is None:
            continue
        for slot_label in analysis.labels:
            total += 1
            if stream_labels.get((spot_id, slot_label.slot)) is (
                slot_label.label
            ):
                agree += 1

    lines = [
        "== Streaming path: throughput and batch agreement ==",
        f"records replayed: {len(records):,}",
        f"throughput: {throughput:,.0f} records/s "
        f"(city rate at paper scale: ~143 records/s)",
        f"label agreement with batch engine: {agree}/{total} "
        f"({agree / total:.1%})",
    ]
    emit("streaming", lines)

    # Must sustain the full-scale feed with two orders of headroom.
    assert throughput > 143 * 10
    # Labels agree with batch almost everywhere (grace-window edge
    # effects may flip a handful of slots).
    assert agree / total > 0.9
    # All four contexts appear in the live output.
    seen = {r.label.label for r in results}
    assert QueueType.C1 in seen or QueueType.C3 in seen
