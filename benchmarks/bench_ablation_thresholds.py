"""Ablation — threshold derivation policy (section 6.2.1 sensitivity).

The paper stresses that QCD's thresholds "need to be properly set" and
that different spots may need different values.  This bench quantifies
the two policy choices DESIGN.md documents:

* granularity — the paper's literal event-level shortest-20% statistic
  vs. our slot-level default (robust to departure clumping);
* the calibrated multipliers vs. multiplier 1.0.

Scored against simulator ground truth.
"""

from conftest import emit

from repro.analysis.accuracy import label_accuracy
from repro.core.engine import EngineConfig, QueueAnalyticEngine
from repro.core.thresholds import ThresholdPolicy
from repro.core.types import QueueType

POLICIES = [
    ("paper-literal (event, x1)", ThresholdPolicy(
        granularity="event", eta_wait_multiplier=1.0, eta_dep_multiplier=1.0)),
    ("slot-level, x1", ThresholdPolicy(
        granularity="slot", eta_wait_multiplier=1.0, eta_dep_multiplier=1.0)),
    ("slot-level, calibrated", ThresholdPolicy()),
]


def _run(bench_day, policy):
    city = bench_day.city
    engine = QueueAnalyticEngine(
        zones=city.zones,
        projection=city.projection,
        config=EngineConfig(
            observed_fraction=bench_day.config.observed_fraction,
            thresholds=policy,
        ),
        city_bbox=city.bbox,
        inaccessible=city.water,
    )
    detection = engine.detect_spots(bench_day.store)
    return engine.disambiguate(
        bench_day.store, detection, bench_day.ground_truth.grid
    )


def test_ablation_threshold_policy(benchmark, bench_day):
    results = {}

    def run_all():
        for name, policy in POLICIES:
            results[name] = _run(bench_day, policy)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        "== Ablation: threshold derivation policy (section 6.2.1) ==",
        f"{'policy':<28}{'accuracy':>10}{'C1 %':>8}{'C3 %':>8}{'unid %':>8}",
    ]
    scores = {}
    for name, _ in POLICIES:
        analyses = results[name]
        score = label_accuracy(analyses.values(), bench_day.ground_truth)
        scores[name] = score
        labels = [l for a in analyses.values() for l in a.labels]
        total = len(labels)
        c1 = sum(1 for l in labels if l.label is QueueType.C1) / total
        c3 = sum(1 for l in labels if l.label is QueueType.C3) / total
        unid = (
            sum(1 for l in labels if l.label is QueueType.UNIDENTIFIED) / total
        )
        lines.append(
            f"{name:<28}{score.accuracy:>10.2f}{c1 * 100:>8.1f}"
            f"{c3 * 100:>8.1f}{unid * 100:>8.1f}"
        )
    emit("ablation_thresholds", lines)

    calibrated = scores["slot-level, calibrated"].accuracy
    literal = scores["paper-literal (event, x1)"].accuracy
    # The calibrated slot-level policy beats the literal statistic on
    # simulated data (the motivation for DESIGN.md's deviation).
    assert calibrated > literal
