"""Cost profile of the conformance harness itself.

The harness runs every execution path on every case, so its own
throughput determines how many seeds CI can afford.  This bench times
one full seven-check case at bench scale and reports per-check cost
and record throughput — the number to watch when adding checks.
"""

from __future__ import annotations

import time

from conftest import emit

from repro.conformance import run_case
from repro.conformance.matrix import ConformanceCase


def test_conformance_case_cost(benchmark, bench_day):
    case = ConformanceCase(
        name="bench",
        seed=bench_day.config.seed,
        coverage=bench_day.config.observed_fraction,
    )
    start = time.perf_counter()
    report = benchmark.pedantic(
        lambda: run_case(case, store=bench_day.store, shrink=False),
        rounds=1,
        iterations=1,
    )
    elapsed = time.perf_counter() - start

    assert not report.divergent, [c.name for c in report.failed_checks]
    throughput = report.records / elapsed if elapsed > 0 else 0.0

    lines = [
        "== Conformance: one full case at bench scale ==",
        f"(fleet {bench_day.config.fleet_size}, "
        f"{report.spots} spots, {report.records} cleaned records)",
        "",
        f"{'checks run':<28}{len(report.checks):>12}",
        f"{'case wall time':<28}{elapsed:>11.1f}s",
        f"{'records/s through harness':<28}{throughput:>12.0f}",
        "",
        "verdict: " + ("conformant" if not report.divergent
                       else "DIVERGENT"),
    ]
    emit("conformance", lines)
