"""Table 7 — proportion of queue types over all labelled time slots.

Paper reference values (25 randomly selected spots, 48 slots each):

    C1 (taxi + passenger queue)   30.1%
    C2 (passenger queue only)     11.7%
    C3 (taxi queue only)           8.6%
    C4 (no queue)                 33.1%
    Unidentified                  16.5%

Shape: C1 and C4 dominate; C2 and C3 are minorities; a nontrivial share
stays unidentified.  Like the paper, the bench samples 25 spots among the
detected ones (ours has ~28 at bench scale, so nearly all).
"""

import random

from conftest import emit

from repro.core.qcd import label_proportions
from repro.core.types import QueueType

_PAPER = {
    QueueType.C1: 30.1,
    QueueType.C2: 11.7,
    QueueType.C3: 8.6,
    QueueType.C4: 33.1,
    QueueType.UNIDENTIFIED: 16.5,
}


def test_table7_queue_type_proportions(benchmark, bench_analyses):
    def run():
        rng = random.Random(1)
        spot_ids = sorted(bench_analyses)
        chosen = rng.sample(spot_ids, min(25, len(spot_ids)))
        labels = []
        for spot_id in chosen:
            labels.extend(bench_analyses[spot_id].labels)
        return label_proportions(labels)

    props = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "== Table 7: proportion of queue types over all time slots ==",
        f"{'queue type':<16}{'paper %':>10}{'measured %':>12}",
    ]
    for qt in QueueType:
        lines.append(
            f"{qt.value:<16}{_PAPER[qt]:>10.1f}{props[qt] * 100:>12.1f}"
        )
    emit("table7_queue_types", lines)

    # Shape: C1 is a major class, C2/C3 are minorities, C4 present,
    # some slots unidentified.
    assert props[QueueType.C1] > 0.10
    assert props[QueueType.C4] > 0.05
    assert props[QueueType.C2] < props[QueueType.C1]
    assert props[QueueType.C3] < props[QueueType.C1]
    assert 0.0 < props[QueueType.UNIDENTIFIED] < 0.65
    assert abs(sum(props.values()) - 1.0) < 1e-9
