"""Fig. 7 and section 6.1.3 headline — island-wide queue spot detection.

Paper reference values:
    * ~180 queue spots detected island-wide at eps=15 m, minPts=50;
    * 30 of the 31 CBD taxi stands correctly detected;
    * average location error 7.6 m (attributed to GPS noise).

Bench scale plants 30 ground-truth spots; the analogue of the LTA stand
comparison is recall against the simulator's true spot locations.
"""

from conftest import emit

from repro.analysis.accuracy import spot_detection_accuracy


def test_fig7_detection_accuracy(benchmark, bench_day, bench_engine):
    detection = benchmark.pedantic(
        lambda: bench_engine.detect_spots(bench_day.store),
        rounds=1,
        iterations=1,
    )
    score = spot_detection_accuracy(
        detection.spots, bench_day.ground_truth, min_pickups=80
    )
    truth_active = sum(
        1 for t in bench_day.ground_truth.spots.values() if t.pickups >= 80
    )
    lines = [
        "== Fig. 7 / section 6.1.3: queue spot detection ==",
        f"{'metric':<30}{'paper':>16}{'measured':>16}",
        f"{'spots detected':<30}{'~180 (15k fleet)':>16}"
        f"{len(detection.spots):>16d}",
        f"{'known spots detected':<30}{'30 / 31':>16}"
        f"{f'{score.matched} / {truth_active}':>16}",
        f"{'recall':<30}{'0.97':>16}{score.recall:>16.2f}",
        f"{'mean location error':<30}{'7.6 m':>16}"
        f"{f'{score.mean_error_m:.1f} m':>16}",
        f"{'false-positive spots':<30}{'n/a':>16}"
        f"{score.false_positives:>16d}",
        "",
        "per-zone detected counts: "
        + ", ".join(
            f"{zone}={n}" for zone, n in detection.per_zone_counts.items()
        ),
    ]
    emit("fig7_spot_detection", lines)

    assert score.recall >= 0.85
    assert score.mean_error_m < 20.0
    assert score.false_positives <= 3
