"""Throughput benchmarks of the analytic stages (not in the paper).

The paper processes 12.4 M records/day in a deployed backend; these
benches record what our implementation sustains per stage so regressions
are visible: PEA extraction, DBSCAN clustering (grid backend), WTE +
feature computation, and full-store cleaning.
"""

import pytest
from conftest import emit

from repro.core.features import compute_slot_features
from repro.core.pea import extract_all_pickup_events
from repro.core.spots import detect_from_centroids, pickup_centroids
from repro.core.wte import extract_wait_times
from repro.trace.cleaning import clean_store


@pytest.fixture(scope="module")
def cleaned(bench_engine, bench_day):
    return bench_engine.preprocess(bench_day.store)


@pytest.fixture(scope="module")
def events(cleaned):
    return extract_all_pickup_events(cleaned)


def test_scaling_cleaning(benchmark, bench_day):
    city = bench_day.city
    result = benchmark.pedantic(
        lambda: clean_store(
            bench_day.store, city_bbox=city.bbox, inaccessible=city.water
        ),
        rounds=3,
        iterations=1,
    )
    emit(
        "scaling_cleaning",
        [f"cleaning throughput over {len(bench_day.store):,} records"],
    )
    assert len(result[0]) > 0


def test_scaling_pea(benchmark, cleaned):
    events = benchmark.pedantic(
        lambda: extract_all_pickup_events(cleaned), rounds=3, iterations=1
    )
    emit(
        "scaling_pea",
        [
            f"PEA over {len(cleaned):,} records -> "
            f"{len(events):,} pickup events"
        ],
    )
    assert len(events) > 1000


def test_scaling_dbscan(benchmark, bench_day, events):
    city = bench_day.city
    lonlat = pickup_centroids(events)

    result = benchmark.pedantic(
        lambda: detect_from_centroids(lonlat, city.zones, city.projection),
        rounds=3,
        iterations=1,
    )
    emit(
        "scaling_dbscan",
        [
            f"per-zone DBSCAN over {len(lonlat):,} centroids -> "
            f"{len(result.spots)} spots"
        ],
    )
    assert result.spots


def test_scaling_wte_features(benchmark, bench_day, events):
    grid = bench_day.ground_truth.grid

    def run():
        wait_events = extract_wait_times(events)
        return compute_slot_features(wait_events, grid)

    features = benchmark.pedantic(run, rounds=3, iterations=1)
    emit(
        "scaling_wte",
        [f"WTE + features over {len(events):,} events"],
    )
    assert len(features) == grid.n_slots
