"""Shared fixtures for the benchmark harness.

Every bench regenerates one table or figure of the paper's section 6 (see
DESIGN.md's experiment index).  Simulation and pipeline outputs are built
once per session at bench scale (500 taxis, 30 spots — per-spot volumes
match the paper's Table 6, see the scale-down policy) and shared.

Each bench prints a paper-vs-measured table and writes it to
``benchmarks/results/<name>.txt`` so results survive pytest's capture.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.stability import run_week
from repro.core.engine import EngineConfig, QueueAnalyticEngine
from repro.sim.city import City
from repro.sim.config import SimulationConfig
from repro.sim.fleet import simulate_day

RESULTS_DIR = Path(__file__).parent / "results"

BENCH_SEED = 7
BENCH_FLEET = 500
BENCH_SPOTS = 30
BENCH_DECOYS = 15


def bench_config(day_of_week: int = 0, **overrides) -> SimulationConfig:
    """The canonical bench-scale simulation configuration."""
    params = dict(
        seed=BENCH_SEED,
        fleet_size=BENCH_FLEET,
        n_queue_spots=BENCH_SPOTS,
        n_decoy_landmarks=BENCH_DECOYS,
        day_of_week=day_of_week,
        day_index=day_of_week,
    )
    params.update(overrides)
    return SimulationConfig(**params)


@pytest.fixture(scope="session")
def bench_city():
    return City.generate(
        seed=BENCH_SEED, n_queue_spots=BENCH_SPOTS, n_decoys=BENCH_DECOYS
    )


@pytest.fixture(scope="session")
def bench_day(bench_city):
    """One simulated weekday at bench scale."""
    return simulate_day(bench_config(day_of_week=0), city=bench_city)


@pytest.fixture(scope="session")
def bench_engine(bench_day):
    city = bench_day.city
    return QueueAnalyticEngine(
        zones=city.zones,
        projection=city.projection,
        config=EngineConfig(
            observed_fraction=bench_day.config.observed_fraction
        ),
        city_bbox=city.bbox,
        inaccessible=city.water,
    )


@pytest.fixture(scope="session")
def bench_detection(bench_engine, bench_day):
    return bench_engine.detect_spots(bench_day.store)


@pytest.fixture(scope="session")
def bench_analyses(bench_engine, bench_day, bench_detection):
    return bench_engine.disambiguate(
        bench_day.store, bench_detection, bench_day.ground_truth.grid
    )


@pytest.fixture(scope="session")
def bench_week(bench_city):
    """A full simulated week with tier-2 analyses (Fig. 8/9, Tables 5/6)."""
    return run_week(
        bench_config(), city=bench_city, disambiguate=True
    )


def emit(name: str, lines) -> str:
    """Print a result table and persist it under benchmarks/results/."""
    text = "\n".join(lines)
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    return text
