"""Ablation — OPTICS as the alternative clustering (section 4.3).

Section 4.3: "many other advanced density-based clustering methods can
also be considered and introduced [13]".  This bench swaps DBSCAN for
OPTICS on the same per-zone pickup centroids: one reachability ordering
per zone, then DBSCAN-equivalent extraction at the paper's eps.  It
checks (a) the extraction reproduces DBSCAN's spot count at the operating
point, and (b) the single ordering replays the Fig. 6 eps sweep without
re-clustering.
"""

import numpy as np
from conftest import emit

from repro.cluster.dbscan import dbscan
from repro.cluster.optics import optics
from repro.core.pea import extract_all_pickup_events
from repro.core.spots import pickup_centroids

EPS_SWEEP = (5.0, 10.0, 15.0, 20.0)
MIN_PTS = 50


def test_ablation_optics_vs_dbscan(benchmark, bench_day, bench_engine):
    city = bench_day.city
    cleaned = bench_engine.preprocess(bench_day.store)
    events = extract_all_pickup_events(cleaned)
    lonlat = pickup_centroids(events)
    projection = city.projection

    zone_points = {}
    zone_names = [
        city.zones.classify_or_nearest(lon, lat) for lon, lat in lonlat
    ]
    for zone in city.zones:
        mask = np.asarray([z == zone.name for z in zone_names])
        pts = lonlat[mask]
        if len(pts):
            zone_points[zone.name] = projection.to_xy_array(
                pts[:, 0], pts[:, 1]
            )

    def run():
        orderings = {
            zone: optics(points, max_eps=25.0, min_pts=MIN_PTS)
            for zone, points in zone_points.items()
        }
        sweep = {
            eps: sum(o.n_clusters_at(eps) for o in orderings.values())
            for eps in EPS_SWEEP
        }
        return sweep

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)

    dbscan_counts = {
        eps: sum(
            dbscan(points, eps=eps, min_pts=MIN_PTS).n_clusters
            for points in zone_points.values()
        )
        for eps in EPS_SWEEP
    }

    lines = [
        "== Ablation: OPTICS vs DBSCAN (section 4.3 alternative) ==",
        f"(minPts={MIN_PTS}; OPTICS ordering computed once per zone,",
        " then extracted at each eps)",
        "",
        f"{'eps (m)':<10}{'DBSCAN spots':>14}{'OPTICS spots':>14}",
    ]
    for eps in EPS_SWEEP:
        lines.append(
            f"{eps:<10.0f}{dbscan_counts[eps]:>14d}{sweep[eps]:>14d}"
        )
    emit("ablation_optics", lines)

    # At the operating point the two methods agree (border-point
    # differences can shift a count by one).
    assert abs(sweep[15.0] - dbscan_counts[15.0]) <= 1
    # And across the sweep they track each other.
    for eps in EPS_SWEEP:
        assert abs(sweep[eps] - dbscan_counts[eps]) <= 3
