"""Table 9 — the Lucky Plaza sample case: one mall spot over a Sunday.

Paper timeline for the Lucky Plaza queue spot on a Sunday:

    C1  00:00-00:30               (night-club crowd meets taxi queue)
    C3  00:30-01:30               (leftover taxi queue drains)
    C4  01:30-08:30, 21:30-23:30  (quiet night / late evening)
    C1/C2 alternating ~11:00-20:00 (shopping peak)

Shape checks: early-midnight queueing, a quiet pre-dawn stretch, and a
shopping-peak afternoon dominated by passenger-queue contexts (C1/C2).
"""

from conftest import bench_config, emit

from repro.analysis.sample_case import pick_mall_spot, sample_case_timeline
from repro.core.engine import EngineConfig, QueueAnalyticEngine
from repro.core.types import QueueType
from repro.sim.fleet import simulate_day


def test_table9_mall_sunday(benchmark, bench_city):
    config = bench_config(day_of_week=6)
    output = simulate_day(config, city=bench_city)
    engine = QueueAnalyticEngine(
        zones=bench_city.zones,
        projection=bench_city.projection,
        config=EngineConfig(observed_fraction=config.observed_fraction),
        city_bbox=bench_city.bbox,
        inaccessible=bench_city.water,
    )
    detection = engine.detect_spots(output.store)

    def run():
        return engine.disambiguate(
            output.store, detection, output.ground_truth.grid
        )

    analyses = benchmark.pedantic(run, rounds=1, iterations=1)
    mall = pick_mall_spot(list(analyses.values()), bench_city)
    assert mall is not None, "no mall-anchored spot detected"

    grid = output.ground_truth.grid
    timeline = sample_case_timeline(mall, grid)
    lines = [
        "== Table 9: sample mall spot, Sunday label timeline ==",
        f"(spot {mall.spot.spot_id}, {mall.spot.pickup_count} pickups; "
        "paper: Lucky Plaza)",
        "",
    ]
    for qt in QueueType:
        ranges = ", ".join(timeline[qt.value]) or "-"
        lines.append(f"{qt.value:<14}{ranges}")
    emit("table9_sample_case", lines)

    labels = [slot_label.label for slot_label in mall.labels]
    # Early-midnight slots show queueing activity (C1 or C3), matching
    # the night-club pattern.
    assert any(
        labels[i] in (QueueType.C1, QueueType.C3, QueueType.C2)
        for i in range(0, 3)
    )
    # The pre-dawn stretch (03:00-06:00) holds no passenger queue.
    for i in range(6, 12):
        assert labels[i] not in (QueueType.C1, QueueType.C2)
    # The shopping peak (12:00-19:00) is dominated by passenger-queue
    # contexts.
    peak = labels[24:38]
    pq = sum(1 for l in peak if l in (QueueType.C1, QueueType.C2))
    assert pq >= len(peak) // 2
