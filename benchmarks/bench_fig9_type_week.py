"""Fig. 9 — queue-type proportions per day of the week.

Paper shape:
    * Mon-Fri proportions are stable (no large swings);
    * on the weekend — especially Sunday — C4 rises from ~30% towards
      ~40% while C2 and the unidentified share drop;
    * C1 roughly keeps its share; C3 dips slightly.
"""

from conftest import emit

from repro.analysis.stability import weekly_type_proportions
from repro.core.types import QueueType
from repro.sim.config import DAY_NAMES


def test_fig9_weekly_proportions(benchmark, bench_week):
    series = benchmark.pedantic(
        lambda: weekly_type_proportions(bench_week), rounds=1, iterations=1
    )
    lines = [
        "== Fig. 9: queue-type proportion per day of week ==",
        "(paper shape: stable Mon-Fri; C4 rises on Sunday, C2 drops)",
        "",
        f"{'day':<6}" + "".join(f"{qt.value:>14}" for qt in QueueType),
    ]
    for day in DAY_NAMES:
        row = "".join(
            f"{series[day][qt] * 100:>13.1f}%" for qt in QueueType
        )
        lines.append(f"{day:<6}{row}")
    emit("fig9_type_week", lines)

    # Deviation note: at bench scale Sunday's quieter slots often carry
    # too few wait events to label, so part of the paper's C4 rise lands
    # in Unidentified instead.  The robust signal is the combined
    # "no-queue-detected" share (C4 + Unidentified) rising while the
    # passenger-queue share (C1 + C2) falls.
    def share(day, *qts):
        return sum(series[day][qt] for qt in qts)

    no_queue = [
        share(d, QueueType.C4, QueueType.UNIDENTIFIED) for d in DAY_NAMES
    ]
    pax_queue = [share(d, QueueType.C1, QueueType.C2) for d in DAY_NAMES]
    assert no_queue[6] > sum(no_queue[:5]) / 5
    assert pax_queue[6] < sum(pax_queue[:5]) / 5 + 0.01
    # Weekday stability: C1 spread within 12 percentage points.
    c1 = [series[d][QueueType.C1] for d in DAY_NAMES]
    assert max(c1[:5]) - min(c1[:5]) < 0.12
