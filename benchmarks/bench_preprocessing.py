"""Section 6.1.1 — dataset statistics and preprocessing.

Paper reference values (15,000 taxis, full-size Singapore):
    * ~12.38 M records per day, ~848 records per taxi per day;
    * erroneous records removed: ~2.8% (improper states, duplicates,
      GPS errors).

The bench-scale fleet is 30x smaller, so the absolute record count scales
down while records-per-taxi and the error fraction must hold.
"""

from conftest import emit

from repro.trace.cleaning import clean_store


def test_preprocessing_stats(benchmark, bench_day):
    city = bench_day.city

    def run():
        return clean_store(
            bench_day.store, city_bbox=city.bbox, inaccessible=city.water
        )

    cleaned, report = benchmark.pedantic(run, rounds=1, iterations=1)

    stats = bench_day.store.stats()
    lines = [
        "== Section 6.1.1: dataset and preprocessing ==",
        f"{'metric':<28}{'paper':>14}{'measured':>14}",
        f"{'records/day':<28}{'12,380,000':>14}{int(stats['records']):>14,}",
        f"{'records/taxi/day':<28}{'848':>14}"
        f"{stats['records_per_taxi']:>14.0f}",
        f"{'taxis observed':<28}{'~15,000':>14}{int(stats['taxis']):>14,}",
        f"{'error fraction':<28}{'2.8%':>14}"
        f"{report.removed_fraction * 100:>13.2f}%",
        "",
        "error breakdown (measured):",
        f"  improper states: {report.improper_state:>7,}",
        f"  duplicates:      {report.duplicate:>7,}",
        f"  GPS errors:      {report.gps_error:>7,}",
        f"  survivors:       {len(cleaned):>7,}",
    ]
    emit("preprocessing", lines)

    assert 0.015 < report.removed_fraction < 0.05
    assert 300 < stats["records_per_taxi"] < 1500
