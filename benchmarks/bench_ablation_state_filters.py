"""Ablation — PEA's three state-transition constraints (section 4.2).

Section 4 argues naive clustering of stop events fails because alight
events, leave-for-booking events and traffic jams pollute the location
set.  This ablation runs spot detection with the constraints disabled and
measures the pollution: extra pickup events, extra detected spots, and
degraded precision against ground truth.
"""

from conftest import emit

from repro.analysis.accuracy import spot_detection_accuracy
from repro.core.pea import extract_pickup_events_with_stats
from repro.core.spots import SpotDetectionParams, detect_queue_spots


def test_ablation_pea_state_filters(benchmark, bench_day, bench_engine):
    city = bench_day.city
    cleaned = bench_engine.preprocess(bench_day.store)

    def run(apply_filters):
        return detect_queue_spots(
            cleaned,
            zones=city.zones,
            projection=city.projection,
            params=SpotDetectionParams(apply_state_filters=apply_filters),
        )

    with_filters = benchmark.pedantic(
        lambda: run(True), rounds=1, iterations=1
    )
    without_filters = run(False)

    stats_sum = {"alight": 0, "oncall": 0, "jam": 0}
    for trajectory in cleaned.iter_trajectories():
        _, stats = extract_pickup_events_with_stats(trajectory)
        stats_sum["alight"] += stats.rejected_alight
        stats_sum["oncall"] += stats.rejected_oncall_leave
        stats_sum["jam"] += stats.rejected_no_transition

    acc_with = spot_detection_accuracy(
        with_filters.spots, bench_day.ground_truth, min_pickups=80
    )
    acc_without = spot_detection_accuracy(
        without_filters.spots, bench_day.ground_truth, min_pickups=80
    )
    lines = [
        "== Ablation: PEA state-transition constraints ==",
        f"{'metric':<30}{'with filters':>14}{'without':>14}",
        f"{'pickup events':<30}{len(with_filters.pickup_events):>14,}"
        f"{len(without_filters.pickup_events):>14,}",
        f"{'detected spots':<30}{len(with_filters.spots):>14d}"
        f"{len(without_filters.spots):>14d}",
        f"{'precision':<30}{acc_with.precision:>14.2f}"
        f"{acc_without.precision:>14.2f}",
        f"{'recall':<30}{acc_with.recall:>14.2f}{acc_without.recall:>14.2f}",
        "",
        "events the constraints reject daily:",
        f"  alight (occupied -> unoccupied): {stats_sum['alight']:>7,}",
        f"  leave for booking (FREE -> ONCALL): {stats_sum['oncall']:>4,}",
        f"  jams / red lights (no transition): {stats_sum['jam']:>5,}",
    ]
    emit("ablation_state_filters", lines)

    # The constraints reject a lot of non-pickup stop events ...
    rejected = sum(stats_sum.values())
    assert rejected > 0.2 * len(with_filters.pickup_events)
    # ... and without them the location set is visibly polluted.
    assert len(without_filters.pickup_events) > 1.2 * len(
        with_filters.pickup_events
    )
    assert acc_with.precision >= acc_without.precision
