"""Table 4 — facilities and landmarks near the detected queue spots.

Paper reference shares among detected spots:

    MRT & bus station              48.3%
    Shopping mall & hotel          11.8%
    Office building                 9.6%
    Hospital & school               8.4%
    Tourist attraction              6.2%
    Airport & ferry terminal        5.6%
    Industrial & residential        4.5%
    Unidentified                    5.6%

The synthetic landmark inventory is planted with this mix, so the bench
checks the detection tier recovers it from the logs alone.
"""

from conftest import emit

from repro.analysis.landmark_match import (
    landmark_category_table,
    match_spots_to_landmarks,
)
from repro.sim.landmarks import TABLE4_SHARES, LandmarkCategory

_PAPER_ROWS = [
    (LandmarkCategory.MRT_BUS, 48.3),
    (LandmarkCategory.MALL_HOTEL, 11.8),
    (LandmarkCategory.OFFICE, 9.6),
    (LandmarkCategory.HOSPITAL_SCHOOL, 8.4),
    (LandmarkCategory.TOURIST, 6.2),
    (LandmarkCategory.AIRPORT_FERRY, 5.6),
    (LandmarkCategory.INDUSTRIAL_RESIDENTIAL, 4.5),
    (LandmarkCategory.NONE, 5.6),
]


def test_table4_landmark_mix(benchmark, bench_day, bench_detection):
    landmarks = bench_day.city.landmarks

    def run():
        matches = match_spots_to_landmarks(bench_detection.spots, landmarks)
        return landmark_category_table(matches)

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "== Table 4: landmarks near the detected queue spots ==",
        f"{'category':<32}{'paper %':>10}{'measured %':>12}",
    ]
    for category, paper_pct in _PAPER_ROWS:
        measured = table.get(category, 0.0) * 100.0
        lines.append(f"{category.value:<32}{paper_pct:>10.1f}{measured:>12.1f}")
    emit("table4_landmarks", lines)

    # Shape: MRT/bus dominates; unidentified stays a small minority.
    assert table.get(LandmarkCategory.MRT_BUS, 0.0) == max(table.values())
    assert table.get(LandmarkCategory.NONE, 0.0) < 0.25
    # Every detected spot got a row.
    assert abs(sum(table.values()) - 1.0) < 1e-9
    # Planted shares are recovered within a coarse tolerance (the bench
    # city has only ~30 spots, so each spot is worth ~3.3%).
    for category, share in TABLE4_SHARES.items():
        if category is LandmarkCategory.NONE:
            continue
        measured = table.get(category, 0.0)
        assert abs(measured - share) < 0.18
