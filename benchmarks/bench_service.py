"""Service bench — HTTP throughput against a warm snapshot.

The ROADMAP's north star is serving heavy traffic; this bench measures
what the stdlib threaded server sustains on one box: concurrent clients
with keep-alive connections hammering ``/v1/spots`` (cold + TTL-cached
serialization) and conditional ``If-None-Match`` revalidations (304s),
with tail latency from the server's own metrics registry.
"""

from __future__ import annotations

import http.client
import threading
import time

from conftest import emit

from repro.core.engine import EngineConfig, QueueAnalyticEngine
from repro.service import QueueService, ServiceConfig
from repro.sim.config import SimulationConfig
from repro.sim.fleet import simulate_day

CLIENTS = 8
DURATION_S = 3.0


def _warm_service():
    output = simulate_day(
        SimulationConfig(seed=11, fleet_size=150, n_queue_spots=10,
                         n_decoy_landmarks=5)
    )
    city = output.city
    engine = QueueAnalyticEngine(
        zones=city.zones,
        projection=city.projection,
        config=EngineConfig(observed_fraction=output.config.observed_fraction),
        city_bbox=city.bbox,
        inaccessible=city.water,
    )
    service = QueueService.from_day(
        output.store,
        engine,
        ServiceConfig(speedup=None, cache_ttl_s=1.0),
        output.ground_truth.grid,
    )
    service.warm()
    service.server.start()
    return service


def _hammer(host, port, path, stop, counts, index, etag=None):
    connection = http.client.HTTPConnection(host, port, timeout=10.0)
    done = 0
    while not stop.is_set():
        headers = {"If-None-Match": etag} if etag else {}
        connection.request("GET", path, headers=headers)
        response = connection.getresponse()
        response.read()
        assert response.status in (200, 304)
        done += 1
    connection.close()
    counts[index] = done


def _run_load(service, path, etag=None):
    stop = threading.Event()
    counts = [0] * CLIENTS
    threads = [
        threading.Thread(
            target=_hammer,
            args=(service.server.host, service.server.port, path, stop,
                  counts, i, etag),
        )
        for i in range(CLIENTS)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    time.sleep(DURATION_S)
    stop.set()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    return sum(counts) / elapsed


def test_service_throughput():
    service = _warm_service()
    try:
        full_rps = _run_load(service, "/v1/spots")
        etag = service.store.etag
        cond_rps = _run_load(service, "/v1/spots", etag=etag)
        latency = (
            service.metrics.snapshot()["histograms"]["http.request_seconds"]
        )
        counters = service.metrics.snapshot()["counters"]
    finally:
        service.server.stop()

    lines = [
        "Service bench — throughput against a warm snapshot",
        f"  clients                      {CLIENTS}",
        f"  full GET /v1/spots           {full_rps:10.0f} req/s",
        f"  conditional GET (304 path)   {cond_rps:10.0f} req/s",
        f"  request latency p50          {latency['p50'] * 1e6:10.0f} us",
        f"  request latency p99          {latency['p99'] * 1e6:10.0f} us",
        f"  cache hits / misses          "
        f"{counters.get('http.cache_hits', 0):.0f} / "
        f"{counters.get('http.cache_misses', 0):.0f}",
        f"  not-modified responses       "
        f"{counters.get('http.not_modified', 0):.0f}",
    ]
    emit("service", lines)

    # Conservative floors so the bench stays green on slow CI boxes; the
    # ISSUE target (>= 1k req/s on a dev box) is recorded above.
    assert full_rps > 300
    assert cond_rps >= full_rps * 0.8
    assert latency["count"] > 0
