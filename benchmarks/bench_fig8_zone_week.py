"""Fig. 8 — detected queue spot count per zone per day of week.

Paper shape:
    * the Central zone has by far the most spots (despite ~6% of the
      area) — most offices, malls and attractions sit there;
    * weekday counts are stable Mon-Fri;
    * the Central count dips slightly on Saturday/Sunday (fewer working
      commuters), without collapsing (shoppers and tourists remain).
"""

from conftest import emit

from repro.analysis.stability import zone_counts_by_day
from repro.sim.config import DAY_NAMES


def test_fig8_zone_counts_by_day(benchmark, bench_week):
    table = benchmark.pedantic(
        lambda: zone_counts_by_day(bench_week), rounds=1, iterations=1
    )
    lines = [
        "== Fig. 8: detected queue spots per zone per day ==",
        "(paper shape: Central largest; stable Mon-Fri; Central dips on"
        " the weekend)",
        "",
        f"{'zone':<10}" + "".join(f"{d:>6}" for d in DAY_NAMES),
    ]
    for zone, counts in table.items():
        lines.append(f"{zone:<10}" + "".join(f"{c:>6d}" for c in counts))
    emit("fig8_zone_week", lines)

    central = table["Central"]
    others_max = max(
        max(counts) for zone, counts in table.items() if zone != "Central"
    )
    # Central dominates every day.
    assert min(central) >= others_max - 2
    # Weekday stability: Mon-Fri spread is small.
    weekday = central[:5]
    assert max(weekday) - min(weekday) <= 3
    # Weekend Central count does not exceed the weekday average.
    weekday_avg = sum(weekday) / 5
    assert central[6] <= weekday_avg + 1
