"""Table 6 — average pickup-event (sub-trajectory) count per spot.

Paper reference values (daily sub-trajectories per detected spot):

                    Central   North   West   East
    Working day       217.5   165.5   223.3   267.2
    Weekend day       251.6   172.3   198.1   305.8

Shape: every zone averages in the 100-500 band and the East zone is the
busiest (the airport), on both day kinds.
"""

from conftest import emit

from repro.analysis.stability import pickup_counts_table

ZONES = ("Central", "North", "West", "East")
_PAPER = {
    "Working Day": {"Central": 217.5, "North": 165.5, "West": 223.3, "East": 267.2},
    "Weekend Day": {"Central": 251.6, "North": 172.3, "West": 198.1, "East": 305.8},
}


def test_table6_pickup_counts(benchmark, bench_week):
    table = benchmark.pedantic(
        lambda: pickup_counts_table(bench_week), rounds=1, iterations=1
    )
    lines = [
        "== Table 6: average pickup sub-trajectories per spot per day ==",
        f"{'':<14}" + "".join(f"{z:>16}" for z in ZONES),
    ]
    for kind in ("Working Day", "Weekend Day"):
        paper_row = "".join(f"{_PAPER[kind][z]:>16.1f}" for z in ZONES)
        measured_row = "".join(
            f"{table[kind].get(z, 0.0):>16.1f}" for z in ZONES
        )
        lines.append(f"{kind + ' (paper)':<14}")
        lines.append(f"{'':<14}{paper_row}")
        lines.append(f"{kind + ' (ours)':<14}")
        lines.append(f"{'':<14}{measured_row}")
    emit("table6_pickup_counts", lines)

    for kind in ("Working Day", "Weekend Day"):
        measured = table[kind]
        # Band check: per-spot volumes land in the paper's 100-500 range.
        for zone in ZONES:
            if zone in measured:
                assert 60 < measured[zone] < 700
        # East (airport) is the busiest zone.
        assert measured["East"] == max(measured.values())
