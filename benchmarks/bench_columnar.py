"""Row vs columnar ingest+clean: throughput and peak RSS (not in the
paper).

The columnar data plane's acceptance gate: parsing a day's CSV into a
:class:`~repro.columnar.RecordBatch` and cleaning it as column masks
must beat the historical row path (``MdtLogStore.from_csv`` +
``clean_store``) by at least :data:`MIN_SPEEDUP` while holding a lower
peak RSS — and produce byte-identical records and accounting while
doing so.

Throughput is measured in-process (best of :data:`TIMING_RUNS` runs per
path, interleaved).  Peak RSS is measured in fresh subprocesses via
``VmHWM`` from ``/proc/self/status`` — unlike ``ru_maxrss``, which
survives ``exec`` and would report the pytest parent's high-water mark,
``VmHWM`` resets with the new address space, so each path's peak covers
only its own allocations on top of the same interpreter baseline.
"""

import os
import subprocess
import sys
import time
from pathlib import Path

import pytest
from conftest import emit

from repro.columnar import RecordBatch
from repro.trace.cleaning import clean_batch, clean_store
from repro.trace.log_store import MdtLogStore

#: The tentpole acceptance floor for ingest+clean throughput.
MIN_SPEEDUP = 1.5

TIMING_RUNS = 3

_RSS_SCRIPT = """
import sys
path = sys.argv[2]
if sys.argv[1] == "row":
    from repro.trace.cleaning import clean_store
    from repro.trace.log_store import MdtLogStore
    store = MdtLogStore.from_csv(path, on_error="skip")
    cleaned, _ = clean_store(store)
else:
    from repro.columnar import RecordBatch
    from repro.trace.cleaning import clean_batch
    batch = RecordBatch.from_csv(path, on_error="skip")
    cleaned, _ = clean_batch(batch)
with open("/proc/self/status") as fh:
    hwm = next(line for line in fh if line.startswith("VmHWM:"))
print(len(cleaned), hwm.split()[1])
"""


def _peak_rss_kib(mode: str, csv_path: Path) -> tuple:
    """``(cleaned_records, ru_maxrss_kib)`` of one path, run standalone."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", _RSS_SCRIPT, mode, str(csv_path)],
        capture_output=True,
        text=True,
        check=True,
        env=env,
    )
    records, rss = out.stdout.split()
    return int(records), int(rss)


@pytest.fixture(scope="module")
def bench_csv(bench_day, tmp_path_factory) -> Path:
    path = tmp_path_factory.mktemp("columnar") / "bench_day.csv"
    bench_day.store.to_csv(path)
    return path


def test_ingest_clean_throughput_and_rss(bench_day, bench_csv):
    row_s = col_s = float("inf")
    for _ in range(TIMING_RUNS):
        start = time.perf_counter()
        store = MdtLogStore.from_csv(bench_csv, on_error="skip")
        row_cleaned, row_report = clean_store(store)
        row_s = min(row_s, time.perf_counter() - start)

        start = time.perf_counter()
        batch = RecordBatch.from_csv(bench_csv, on_error="skip")
        col_cleaned, col_report = clean_batch(batch)
        col_s = min(col_s, time.perf_counter() - start)

    # Identical outputs first — a fast wrong answer is no answer.
    assert col_cleaned.to_rows() == list(row_cleaned.iter_records())
    assert col_report == row_report

    n = len(store)
    speedup = row_s / col_s
    row_records, row_rss = _peak_rss_kib("row", bench_csv)
    col_records, col_rss = _peak_rss_kib("columnar", bench_csv)
    assert row_records == col_records == len(row_cleaned)

    rows = [
        f"CSV ingest + clean, row vs columnar ({n:,} records)",
        "",
        f"{'path':>10}  {'seconds':>8}  {'records/s':>10}  "
        f"{'peak RSS KiB':>12}",
        f"{'rows':>10}  {row_s:>8.2f}  {n / row_s:>10,.0f}  "
        f"{row_rss:>12,}",
        f"{'columns':>10}  {col_s:>8.2f}  {n / col_s:>10,.0f}  "
        f"{col_rss:>12,}",
        "",
        f"throughput speedup: {speedup:.2f}x (floor {MIN_SPEEDUP:.1f}x)",
        f"peak RSS ratio: {col_rss / row_rss:.2f}x",
    ]
    emit("columnar", rows)

    assert speedup >= MIN_SPEEDUP, (
        f"columnar ingest+clean speedup {speedup:.2f}x "
        f"below the {MIN_SPEEDUP:.1f}x floor"
    )
    assert col_rss < row_rss, (
        f"columnar peak RSS {col_rss} KiB not below row {row_rss} KiB"
    )
