"""Table 5 — modified Hausdorff distance between daily queue-spot sets.

Paper reference values (metres):
    * weekday vs weekday:   ~35-60 m;
    * weekend vs weekend:   ~67 m;
    * weekday vs Sunday:    up to ~143 m (weekend-only spots appear,
      office-driven spots fade);
and the headline: spot sets are stable — all values small relative to a
50 km x 26 km island.
"""

import numpy as np
from conftest import emit

from repro.analysis.stability import hausdorff_matrix
from repro.sim.config import DAY_NAMES


def test_table5_hausdorff_matrix(benchmark, bench_week):
    matrix = benchmark.pedantic(
        lambda: hausdorff_matrix(bench_week), rounds=1, iterations=1
    )
    lines = [
        "== Table 5: modified Hausdorff distance between daily spot sets"
        " (m) ==",
        "(paper shape: weekday-weekday ~35-60 m; weekday-Sunday grows to"
        " ~130-143 m)",
        "",
        f"{'':>6}" + "".join(f"{d:>8}" for d in DAY_NAMES),
    ]
    for i, day in enumerate(DAY_NAMES):
        row = "".join(f"{matrix[i, j]:>8.1f}" for j in range(7))
        lines.append(f"{day:>6}{row}")
    emit("table5_hausdorff", lines)

    weekday_pairs = [
        matrix[i, j] for i in range(5) for j in range(i + 1, 5)
    ]
    cross_pairs = [matrix[i, 6] for i in range(5)]  # weekday vs Sunday
    weekday_avg = float(np.mean(weekday_pairs))
    cross_avg = float(np.mean(cross_pairs))
    lines = [
        f"weekday-weekday mean: {weekday_avg:.1f} m (paper ~50 m)",
        f"weekday-Sunday mean:  {cross_avg:.1f} m (paper ~135 m)",
    ]
    emit("table5_hausdorff_summary", lines)

    # Shape: diagonal zero; weekday pairs tighter than weekday-vs-Sunday.
    assert all(matrix[i, i] == 0.0 for i in range(7))
    assert cross_avg > weekday_avg
    # Stability headline: all distances tiny vs the island extent.
    assert matrix.max() < 2000.0
