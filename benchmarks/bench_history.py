"""History bench — segment append throughput and query latency.

Measures what the durable history sustains on one box:

* ``HistoryWriter.absorb`` throughput (finalized slot records per
  second, including the atomic rewrite of the touched day segment);
* cold and warm (segment-cache hit) latency of the three query
  endpoints over a multi-week store, as p50/p95 over repeated calls.

Run as part of the ``history`` CI job; results land in
``benchmarks/results/history.txt`` and every reported number is
asserted non-empty/positive so a silent regression to zero work fails
the job.
"""

from __future__ import annotations

import random
import time

from conftest import emit

from repro.core.types import (
    QueueSpot,
    QueueType,
    SlotFeatures,
    SlotLabel,
    TimeSlotGrid,
)
from repro.history import (
    HistoryQueryEngine,
    HistoryWriter,
    SegmentStore,
    compact_store,
)
from repro.stream.monitor import SlotResult

N_SPOTS = 30
N_DAYS = 28
SLOTS_PER_DAY = 48
QUERY_ROUNDS = 50


def make_spots():
    return [
        QueueSpot(
            spot_id=f"QS{i:03d}",
            lon=103.8 + (i % 10) * 0.01,
            lat=1.28 + (i // 10) * 0.01,
            zone=("Central", "East", "West")[i % 3],
            pickup_count=100 + i,
            radius_m=45.0,
        )
        for i in range(N_SPOTS)
    ]


def make_batches(spots, rng):
    """One finalized batch per (day, slot): N_SPOTS results each."""
    labels = sorted(QueueType, key=lambda q: q.value)
    batches = []
    for day in range(N_DAYS):
        for slot in range(SLOTS_PER_DAY):
            global_slot = day * SLOTS_PER_DAY + slot
            batches.append(
                [
                    SlotResult(
                        spot_id=spot.spot_id,
                        slot=global_slot,
                        features=SlotFeatures(
                            slot=global_slot,
                            mean_wait_s=rng.uniform(10.0, 300.0),
                            n_arrivals=rng.uniform(0.0, 40.0),
                            queue_length=rng.uniform(0.0, 8.0),
                            mean_departure_interval_s=rng.uniform(
                                20.0, 120.0
                            ),
                            n_departures=rng.uniform(0.0, 30.0),
                        ),
                        label=SlotLabel(
                            slot=global_slot,
                            label=rng.choice(labels),
                            routine=1,
                        ),
                    )
                    for spot in spots
                ]
            )
    return batches


def quantile(samples, q):
    """Nearest-rank quantile of a non-empty sample list."""
    ordered = sorted(samples)
    rank = max(1, int(round(q * len(ordered))))
    return ordered[rank - 1]


def test_history_append_and_query_latency(tmp_path):
    rng = random.Random(1215)
    spots = make_spots()
    grid = TimeSlotGrid(0.0, N_DAYS * 86400.0, 86400.0 / SLOTS_PER_DAY)
    store = SegmentStore(tmp_path / "history")
    writer = HistoryWriter(store, spots, grid, day_of_week=0)
    batches = make_batches(spots, rng)
    n_records = sum(len(batch) for batch in batches)

    start = time.perf_counter()
    for batch in batches:
        writer.absorb(batch)
    append_s = time.perf_counter() - start
    assert store.days() == list(range(N_DAYS))
    appends_per_s = n_records / append_s

    compact_start = time.perf_counter()
    compact_store(store)
    compact_s = time.perf_counter() - compact_start

    engine = HistoryQueryEngine(store)
    spot_ids = [spot.spot_id for spot in spots]

    def timed(fn):
        samples = []
        for _ in range(QUERY_ROUNDS):
            t0 = time.perf_counter()
            payload = fn()
            samples.append(time.perf_counter() - t0)
            assert payload, "query returned an empty payload"
        return samples

    patterns_s = timed(engine.patterns)
    citywide_s = timed(engine.citywide)
    spot_s = timed(
        lambda: engine.spot_history(
            rng.choice(spot_ids), per_page=200, downsample=4
        )
    )

    def row(name, samples):
        return (
            f"{name:<22} {quantile(samples, 0.5) * 1e3:>9.2f} "
            f"{quantile(samples, 0.95) * 1e3:>9.2f} "
            f"{max(samples) * 1e3:>9.2f}"
        )

    lines = [
        "== History: append throughput and query latency ==",
        f"({N_DAYS} days x {N_SPOTS} spots x {SLOTS_PER_DAY} slots = "
        f"{n_records} records, {store.total_bytes() / 1e6:.1f} MB on disk)",
        "",
        f"append throughput      {appends_per_s:>12,.0f} records/s "
        f"({append_s:.2f} s total)",
        f"compaction pass        {compact_s * 1e3:>12.1f} ms",
        "",
        f"{'query':<22} {'p50 ms':>9} {'p95 ms':>9} {'max ms':>9}",
        row("patterns", patterns_s),
        row("citywide", citywide_s),
        row("spot_history", spot_s),
    ]
    emit("history", lines)

    # Non-empty assertions: the bench must have really done the work.
    assert n_records == N_DAYS * SLOTS_PER_DAY * N_SPOTS
    assert appends_per_s > 0
    assert store.total_bytes() > 0
    for samples in (patterns_s, citywide_s, spot_s):
        assert len(samples) == QUERY_ROUNDS
        assert all(s > 0 for s in samples)
    payload = engine.patterns()
    assert payload["day_count"] == N_DAYS
    assert payload["spot_count"] == N_SPOTS
