"""Fig. 6 — detected queue-spot count vs DBSCAN parameters.

The paper sweeps eps in {5, 10, 15, 20} m and minPts in {25, 50, 100, 150}
over one day of pickup centroids.  Expected shape: spot count *increases*
with eps and *decreases* with minPts; small eps / large minPts miss real
spots; large eps / small minPts admit insignificant ones.  Bench-scale
spot volumes match the paper's per-spot numbers, so the paper's parameter
values are used unchanged.
"""

from conftest import emit

from repro.core.pea import extract_all_pickup_events
from repro.core.spots import SpotDetectionParams, detect_from_centroids, pickup_centroids

EPS_VALUES = (5.0, 10.0, 15.0, 20.0)
MINPTS_VALUES = (25, 50, 100, 150)


def test_fig6_parameter_sweep(benchmark, bench_day, bench_engine):
    city = bench_day.city
    cleaned = bench_engine.preprocess(bench_day.store)
    events = extract_all_pickup_events(cleaned)
    lonlat = pickup_centroids(events)

    def sweep():
        table = {}
        for min_pts in MINPTS_VALUES:
            for eps in EPS_VALUES:
                params = SpotDetectionParams(eps_m=eps, min_pts=min_pts)
                result = detect_from_centroids(
                    lonlat, city.zones, city.projection, params
                )
                table[(min_pts, eps)] = len(result.spots)
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "== Fig. 6: detected spot count vs DBSCAN parameters ==",
        "(paper shape: count grows with eps, shrinks with minPts;",
        " the paper picks eps=15 m, minPts=50)",
        "",
        "minPts \\ eps " + "".join(f"{eps:>8.0f}" for eps in EPS_VALUES),
    ]
    for min_pts in MINPTS_VALUES:
        row = "".join(f"{table[(min_pts, eps)]:>8d}" for eps in EPS_VALUES)
        lines.append(f"{min_pts:>11d}  {row}")
    emit("fig6_dbscan_sweep", lines)

    # Shape assertions (paper Fig. 6): permissive settings admit many
    # insignificant spots; strict settings miss real ones.
    for min_pts in MINPTS_VALUES:
        counts = [table[(min_pts, eps)] for eps in EPS_VALUES]
        # Grows with eps, modulo small-eps fragmentation (+-2).
        assert counts[0] <= counts[-1] + 2
    for eps in EPS_VALUES:
        counts = [table[(min_pts, eps)] for min_pts in MINPTS_VALUES]
        assert counts[0] >= counts[-1]
    # Small minPts admits clearly more spots than large minPts.
    assert table[(25, 20.0)] >= table[(150, 20.0)] + 5
    # The paper's operating point detects a sane number of spots.
    assert table[(50, 15.0)] >= 10
