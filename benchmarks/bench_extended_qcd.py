"""Extension bench — Routine 3's coverage/accuracy trade-off.

The extended QCD (``repro.core.qcd_extended``, not in the paper) labels
slots the paper leaves unidentified.  The trade to measure: coverage
(labelled fraction) must rise substantially, while accuracy on the newly
labelled slots must stay well above the 4-way chance floor and overall
accuracy must not collapse.
"""

from conftest import emit

from repro.core.qcd import disambiguate
from repro.core.qcd_extended import ROUTINE_EXTENDED, disambiguate_extended
from repro.core.types import QueueType
from repro.geo.point import equirectangular_m


def test_extended_qcd_tradeoff(benchmark, bench_day, bench_analyses):
    truths = list(bench_day.ground_truth.spots.values())

    def evaluate():
        stats = {
            "paper_labeled": 0, "paper_correct": 0,
            "ext_labeled": 0, "ext_correct": 0,
            "r3_labeled": 0, "r3_correct": 0,
            "total": 0,
        }
        for analysis in bench_analyses.values():
            if analysis.thresholds is None:
                continue
            truth = min(
                truths,
                key=lambda t: equirectangular_m(
                    t.lon, t.lat, analysis.spot.lon, analysis.spot.lat
                ),
            )
            if (
                equirectangular_m(
                    truth.lon, truth.lat, analysis.spot.lon, analysis.spot.lat
                )
                > 50.0
            ):
                continue
            paper = disambiguate(analysis.features, analysis.thresholds)
            extended = disambiguate_extended(
                analysis.features, analysis.thresholds
            )
            for p, e, true_slot in zip(paper, extended, truth.slots):
                stats["total"] += 1
                if p.label is not QueueType.UNIDENTIFIED:
                    stats["paper_labeled"] += 1
                    stats["paper_correct"] += p.label is true_slot.label
                if e.label is not QueueType.UNIDENTIFIED:
                    stats["ext_labeled"] += 1
                    stats["ext_correct"] += e.label is true_slot.label
                if e.routine == ROUTINE_EXTENDED:
                    stats["r3_labeled"] += 1
                    stats["r3_correct"] += e.label is true_slot.label
        return stats

    stats = benchmark.pedantic(evaluate, rounds=1, iterations=1)

    paper_cov = stats["paper_labeled"] / stats["total"]
    ext_cov = stats["ext_labeled"] / stats["total"]
    paper_acc = stats["paper_correct"] / max(1, stats["paper_labeled"])
    ext_acc = stats["ext_correct"] / max(1, stats["ext_labeled"])
    r3_acc = stats["r3_correct"] / max(1, stats["r3_labeled"])

    lines = [
        "== Extension: Routine 3 coverage/accuracy trade-off ==",
        f"{'variant':<22}{'coverage':>10}{'accuracy':>10}",
        f"{'paper QCD':<22}{paper_cov:>10.2f}{paper_acc:>10.2f}",
        f"{'extended QCD':<22}{ext_cov:>10.2f}{ext_acc:>10.2f}",
        "",
        f"Routine 3 alone labelled {stats['r3_labeled']} slots at "
        f"accuracy {r3_acc:.2f} (4-way chance: 0.25)",
    ]
    emit("extended_qcd", lines)

    assert ext_cov > paper_cov + 0.05          # meaningful coverage gain
    assert r3_acc > 0.35                       # clearly above chance
    assert ext_acc > paper_acc - 0.10          # no accuracy collapse
