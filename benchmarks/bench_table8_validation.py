"""Table 8 — validation with the vehicle monitor and failed bookings.

Paper reference values (averages per labelled slot):

    label    monitored taxis    failed bookings
    C1             6.13              0.35
    C2             1.35              4.29
    C3             3.26              0.13
    C4             0.32              0.73
    Unid.          1.56              0.24

Shape: monitored taxi counts for C1 and C3 are notably higher than C2 and
C4 (real taxi queues); failed bookings for C2 are significantly higher
than every other label (passengers who cannot get a taxi).
"""

from conftest import emit

from repro.analysis.validation import validate_against_monitor_and_bookings
from repro.core.types import QueueType

_PAPER = {
    QueueType.C1: (6.13, 0.35),
    QueueType.C2: (1.35, 4.29),
    QueueType.C3: (3.26, 0.13),
    QueueType.C4: (0.32, 0.73),
    QueueType.UNIDENTIFIED: (1.56, 0.24),
}


def test_table8_external_validation(benchmark, bench_day, bench_analyses):
    locations = {
        spot_id: (truth.lon, truth.lat)
        for spot_id, truth in bench_day.ground_truth.spots.items()
    }

    def run():
        return validate_against_monitor_and_bookings(
            bench_analyses.values(),
            bench_day.monitor_readings,
            bench_day.failed_bookings,
            bench_day.ground_truth.grid,
            locations,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "== Table 8: avg monitored taxis / failed bookings per label ==",
        f"{'label':<14}{'taxis paper':>12}{'taxis ours':>12}"
        f"{'fails paper':>12}{'fails ours':>12}{'slots':>8}",
    ]
    for qt in QueueType:
        taxis_p, fails_p = _PAPER[qt]
        lines.append(
            f"{qt.value:<14}{taxis_p:>12.2f}"
            f"{result.avg_taxi_count[qt]:>12.2f}"
            f"{fails_p:>12.2f}"
            f"{result.avg_failed_bookings[qt]:>12.2f}"
            f"{result.slots_per_label[qt]:>8d}"
        )
    emit("table8_validation", lines)

    taxis = result.avg_taxi_count
    fails = result.avg_failed_bookings
    # Taxi-queue labels hold clearly more monitored taxis than C4.
    assert taxis[QueueType.C1] > taxis[QueueType.C4]
    assert taxis[QueueType.C3] > taxis[QueueType.C4]
    assert taxis[QueueType.C3] > taxis[QueueType.C2]
    # Failed bookings peak at C2 (when enough C2 slots exist to measure).
    if result.slots_per_label[QueueType.C2] >= 10:
        others = max(
            fails[QueueType.C1], fails[QueueType.C3], fails[QueueType.C4]
        )
        assert fails[QueueType.C2] > others
