"""Load-harness bench — baseline and overload profiles of the server.

Two measurements against a warm simulated day, both driven by the
deterministic closed-loop harness (``repro.load``):

* **baseline** — no admission control: what the box sustains, with
  the client-side nearest-rank latency tail;
* **overload** — a tightly admission-bounded server offered far more
  than its rate limit: admitted throughput, shed volume, and the
  latency of the surviving (admitted) requests.

Recorded into ``benchmarks/results/load.txt`` so regressions in either
the serving path or the shed path show up as a diff.
"""

from __future__ import annotations

from conftest import emit

from repro.core.engine import EngineConfig, QueueAnalyticEngine
from repro.load import LoadTestConfig, run_loadtest
from repro.service import QueueService, ServiceConfig
from repro.sim.config import SimulationConfig
from repro.sim.fleet import simulate_day


def _warm_service(**knobs):
    output = simulate_day(
        SimulationConfig(seed=11, fleet_size=150, n_queue_spots=10,
                         n_decoy_landmarks=5)
    )
    city = output.city
    engine = QueueAnalyticEngine(
        zones=city.zones,
        projection=city.projection,
        config=EngineConfig(observed_fraction=output.config.observed_fraction),
        city_bbox=city.bbox,
        inaccessible=city.water,
    )
    service = QueueService.from_day(
        output.store,
        engine,
        ServiceConfig(speedup=None, cache_ttl_s=1.0, **knobs),
        output.ground_truth.grid,
    )
    service.warm()
    service.server.start()
    return service


def _drive(service, concurrency):
    config = LoadTestConfig(
        url=service.server.url,
        profile="read-heavy",
        mode="closed",
        concurrency=concurrency,
        duration_s=2.0,
        warmup_s=0.5,
        seed=11,
    )
    report, result, _ = run_loadtest(config)
    return report


def _ms(value):
    return "-" if value is None else f"{value * 1e3:8.2f} ms"


def test_load_baseline_and_overload():
    baseline_service = _warm_service()
    try:
        baseline = _drive(baseline_service, concurrency=8)
    finally:
        baseline_service.server.stop()

    limited_service = _warm_service(
        rate_limit_rps=200.0, rate_burst=50, max_inflight=4
    )
    try:
        overload = _drive(limited_service, concurrency=12)
        peak = limited_service.server.admission.peak_inflight
    finally:
        limited_service.server.stop()

    admitted_rps = (
        baseline.ok_responses / baseline.duration_s,
        overload.ok_responses / overload.duration_s,
    )
    lines = [
        "Load bench — closed-loop harness against a warm snapshot",
        "  baseline (no admission control, 8 workers)",
        f"    throughput               {baseline.throughput_rps:10.0f} req/s",
        f"    latency p50              {_ms(baseline.latency_p50_s)}",
        f"    latency p99              {_ms(baseline.latency_p99_s)}",
        f"    errors                   {baseline.errors}",
        "  overload (rate 200/s, burst 50, max-inflight 4, 12 workers)",
        f"    offered                  {overload.offered_rps:10.0f} req/s",
        f"    admitted                 {admitted_rps[1]:10.0f} req/s",
        f"    shed (429)               {overload.shed}",
        f"    shed fraction            "
        f"{overload.shed / max(1, overload.requests):10.3f}",
        f"    admitted latency p99     {_ms(overload.latency_p99_s)}",
        f"    peak inflight            {peak}",
        f"    errors                   {overload.errors}",
    ]
    emit("load", lines)

    # Conservative floors for slow CI boxes.
    assert baseline.errors == 0
    assert baseline.throughput_rps > 200
    assert overload.errors == 0
    assert set(overload.statuses) <= {200, 304, 429}
    assert overload.shed > 0
    assert peak <= 4
    assert admitted_rps[1] > 0
