"""Columnar record batches — the packed data plane (see docs/columnar.md).

The hot ingest -> clean -> PEA path and the ``--workers N`` shard
handoff move records as :class:`RecordBatch` columns; rows materialize
only at true object boundaries (pickup events, snapshots, history).
"""

from repro.columnar.batch import RecordBatch

__all__ = ["RecordBatch"]
