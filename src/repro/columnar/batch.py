"""Columnar MDT record batches — the packed data plane.

A :class:`RecordBatch` holds the paper's six Table-2 fields as parallel
columns instead of per-record objects:

* ``ts`` / ``lon`` / ``lat`` / ``speed`` — ``array('d')`` (8 bytes/field),
* ``state`` — ``array('b')`` integer codes (see
  :data:`repro.states.states.STATES_BY_CODE`),
* ``taxi`` — ``array('i')`` indices into an interned id table, so a
  million records of one taxi store its id string once.

That is ~33 bytes per record plus the id table, against a few hundred
bytes for a frozen ``MdtRecord`` dataclass, and — because the columns
are contiguous buffers — a batch pickles as six raw buffers rather than
O(records) Python objects, which is what makes the ``--workers N``
shard handoff cheap (see :meth:`RecordBatch.__reduce__`).

Rows are materialized back into :class:`~repro.trace.record.MdtRecord`
objects only at true object boundaries (pickup-event sub-trajectories,
snapshot publication, history segments); everything upstream of those
boundaries — CSV ingest, cleaning, per-taxi partitioning, the PEA scan
— walks the columns with a cursor.  ``array('d')`` stores exact IEEE
doubles, so a round-trip through a batch is bit-for-bit lossless and
the columnar pipeline's outputs are byte-identical to the row path's.
"""

from __future__ import annotations

from array import array
from math import isfinite
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.states.states import STATES_BY_CODE, STATE_CODES, parse_state
from repro.trace.record import (
    MdtRecord,
    format_timestamp,
    parse_timestamp,
)

#: Column typecodes, in field order (ts, lon, lat, speed, state, taxi).
_FLOAT_TYPECODE = "d"
_STATE_TYPECODE = "b"
_TAXI_TYPECODE = "i"


def _rebuild_batch(
    taxi_table: Tuple[str, ...],
    ts: bytes,
    lon: bytes,
    lat: bytes,
    speed: bytes,
    state: bytes,
    taxi: bytes,
) -> "RecordBatch":
    """Reconstruct a pickled batch from its raw column buffers."""
    batch = RecordBatch()
    batch.taxi_table = list(taxi_table)
    batch.ts.frombytes(ts)
    batch.lon.frombytes(lon)
    batch.lat.frombytes(lat)
    batch.speed.frombytes(speed)
    batch.state.frombytes(state)
    batch.taxi.frombytes(taxi)
    return batch


class RecordBatch:
    """Parallel columns of MDT records with interned taxi ids."""

    __slots__ = (
        "ts",
        "lon",
        "lat",
        "speed",
        "state",
        "taxi",
        "taxi_table",
        "_taxi_index",
        "skipped_lines",
    )

    def __init__(self) -> None:
        self.ts = array(_FLOAT_TYPECODE)
        self.lon = array(_FLOAT_TYPECODE)
        self.lat = array(_FLOAT_TYPECODE)
        self.speed = array(_FLOAT_TYPECODE)
        self.state = array(_STATE_TYPECODE)
        self.taxi = array(_TAXI_TYPECODE)
        #: Interned taxi ids in first-appearance order; ``taxi[i]``
        #: indexes into this table.
        self.taxi_table: List[str] = []
        self._taxi_index: Optional[Dict[str, int]] = None
        self.skipped_lines = 0
        """Malformed lines dropped by lenient CSV ingestion."""

    # -- building -----------------------------------------------------------

    def _intern(self, taxi_id: str) -> int:
        index = self._taxi_index
        if index is None or len(index) != len(self.taxi_table):
            index = {tid: i for i, tid in enumerate(self.taxi_table)}
            self._taxi_index = index
        code = index.get(taxi_id)
        if code is None:
            code = len(self.taxi_table)
            self.taxi_table.append(taxi_id)
            index[taxi_id] = code
        return code

    def append_fields(
        self,
        ts: float,
        taxi_id: str,
        lon: float,
        lat: float,
        speed: float,
        state_code: int,
    ) -> None:
        """Append one row from already-validated scalar fields."""
        self.ts.append(ts)
        self.lon.append(lon)
        self.lat.append(lat)
        self.speed.append(speed)
        self.state.append(state_code)
        self.taxi.append(self._intern(taxi_id))

    def append_row(self, record: MdtRecord) -> None:
        """Append one :class:`MdtRecord` (the row -> column adapter)."""
        self.append_fields(
            record.ts,
            record.taxi_id,
            record.lon,
            record.lat,
            record.speed,
            STATE_CODES[record.state],
        )

    @classmethod
    def from_rows(cls, records: Iterable[MdtRecord]) -> "RecordBatch":
        """Pack an iterable of records into columns."""
        batch = cls()
        for record in records:
            batch.append_row(record)
        return batch

    @classmethod
    def from_store(cls, store) -> "RecordBatch":
        """Pack an :class:`~repro.trace.log_store.MdtLogStore`.

        Rows land grouped by taxi (sorted ids) and time-ordered within
        each taxi — the store's canonical scan order — so per-taxi
        partitioning of the result is a linear pass, not a sort.
        """
        batch = cls()
        for record in store.iter_records():
            batch.append_row(record)
        return batch

    @classmethod
    def concat(cls, batches: Sequence["RecordBatch"]) -> "RecordBatch":
        """Concatenate batches row-wise into a new batch."""
        out = cls()
        for batch in batches:
            out.extend_batch(batch)
        return out

    def extend_batch(self, other: "RecordBatch") -> None:
        """Append every row of ``other`` (re-interning its taxi ids)."""
        if not other.taxi_table:
            return
        remap = array(
            _TAXI_TYPECODE,
            (self._intern(tid) for tid in other.taxi_table),
        )
        self.ts.extend(other.ts)
        self.lon.extend(other.lon)
        self.lat.extend(other.lat)
        self.speed.extend(other.speed)
        self.state.extend(other.state)
        self.taxi.extend(remap[code] for code in other.taxi)

    # -- reads --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.ts)

    @property
    def taxi_count(self) -> int:
        """Number of distinct taxis in the batch."""
        return len(self.taxi_table)

    @property
    def nbytes(self) -> int:
        """Raw column payload in bytes (excluding the id table)."""
        return (
            self.ts.itemsize * len(self.ts)
            + self.lon.itemsize * len(self.lon)
            + self.lat.itemsize * len(self.lat)
            + self.speed.itemsize * len(self.speed)
            + self.state.itemsize * len(self.state)
            + self.taxi.itemsize * len(self.taxi)
        )

    def taxi_id_at(self, i: int) -> str:
        """The taxi id of row ``i``."""
        return self.taxi_table[self.taxi[i]]

    def row(self, i: int) -> MdtRecord:
        """Materialize row ``i`` as an :class:`MdtRecord`."""
        return MdtRecord(
            ts=self.ts[i],
            taxi_id=self.taxi_table[self.taxi[i]],
            lon=self.lon[i],
            lat=self.lat[i],
            speed=self.speed[i],
            state=STATES_BY_CODE[self.state[i]],
        )

    def iter_rows(self) -> Iterator[MdtRecord]:
        """Yield rows one at a time (the streaming object boundary)."""
        table = self.taxi_table
        states = STATES_BY_CODE
        for i in range(len(self.ts)):
            yield MdtRecord(
                ts=self.ts[i],
                taxi_id=table[self.taxi[i]],
                lon=self.lon[i],
                lat=self.lat[i],
                speed=self.speed[i],
                state=states[self.state[i]],
            )

    def to_rows(self) -> List[MdtRecord]:
        """Materialize every row (the column -> row adapter)."""
        return list(self.iter_rows())

    def __eq__(self, other) -> bool:
        if not isinstance(other, RecordBatch):
            return NotImplemented
        if len(self) != len(other):
            return False
        if not (
            self.ts == other.ts
            and self.lon == other.lon
            and self.lat == other.lat
            and self.speed == other.speed
            and self.state == other.state
        ):
            return False
        if self.taxi_table == other.taxi_table and self.taxi == other.taxi:
            return True
        return all(
            self.taxi_id_at(i) == other.taxi_id_at(i)
            for i in range(len(self))
        )

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (
            f"RecordBatch({len(self)} records, {self.taxi_count} taxis, "
            f"{self.nbytes} column bytes)"
        )

    # -- primitives ---------------------------------------------------------

    def take(self, indices: Sequence[int]) -> "RecordBatch":
        """A new batch holding ``rows[i] for i in indices`` in order."""
        out = RecordBatch()
        ts, lon, lat = self.ts, self.lon, self.lat
        speed, state, taxi = self.speed, self.state, self.taxi
        table = self.taxi_table
        for i in indices:
            out.ts.append(ts[i])
            out.lon.append(lon[i])
            out.lat.append(lat[i])
            out.speed.append(speed[i])
            out.state.append(state[i])
            out.taxi.append(out._intern(table[taxi[i]]))
        return out

    def slice(self, start: int, stop: int) -> "RecordBatch":
        """Rows ``[start, stop)`` as a new batch (buffer-level copy)."""
        out = RecordBatch()
        out.ts = self.ts[start:stop]
        out.lon = self.lon[start:stop]
        out.lat = self.lat[start:stop]
        out.speed = self.speed[start:stop]
        out.state = self.state[start:stop]
        taxi = self.taxi[start:stop]
        # Re-intern so the slice's table holds only its own taxis.
        remap: Dict[int, int] = {}
        for old in taxi:
            if old not in remap:
                remap[old] = len(remap)
                out.taxi_table.append(self.taxi_table[old])
        out.taxi = array(_TAXI_TYPECODE, (remap[code] for code in taxi))
        return out

    def filter_mask(self, mask: Sequence[bool]) -> "RecordBatch":
        """Rows where ``mask`` is true, in order."""
        if len(mask) != len(self):
            raise ValueError("mask length must match batch length")
        return self.take([i for i, keep in enumerate(mask) if keep])

    def argsort_ts(self) -> List[int]:
        """Stable row order by timestamp (ties keep input order)."""
        ts = self.ts
        return sorted(range(len(ts)), key=ts.__getitem__)

    def sorted_by_ts(self) -> "RecordBatch":
        """A new batch in stable timestamp order."""
        return self.take(self.argsort_ts())

    # -- zero-copy pickling -------------------------------------------------

    def __reduce__(self):
        """Pickle as six raw column buffers plus the interned id table.

        This is the zero-copy shard handoff: a worker-bound task ships
        ``O(columns)`` contiguous ``bytes`` objects instead of
        ``O(records)`` pickled dataclasses.
        """
        return (
            _rebuild_batch,
            (
                tuple(self.taxi_table),
                self.ts.tobytes(),
                self.lon.tobytes(),
                self.lat.tobytes(),
                self.speed.tobytes(),
                self.state.tobytes(),
                self.taxi.tobytes(),
            ),
        )

    # -- CSV ingest ---------------------------------------------------------

    @classmethod
    def from_csv(cls, path, on_error: str = "raise") -> "RecordBatch":
        """Parse a log CSV straight into columns (no record objects).

        Field validation matches :meth:`MdtRecord.from_csv_row` exactly
        — arity, empty taxi id, non-numeric or non-finite values, bad
        timestamps (including finite-parse/non-finite-POSIX ones) and
        unknown states are all malformed — so the malformed-line
        accounting is identical to the row path's.  Repeated timestamp
        and state texts hit small memo caches, which is most of the
        ingest speedup: ``strptime`` runs once per distinct text.

        Args:
            path: the CSV file.
            on_error: ``"raise"`` (default) fails on the first malformed
                line; ``"skip"`` drops malformed lines and records the
                count in :attr:`skipped_lines`.

        Raises:
            ValueError: on a bad header, on a malformed line in raise
                mode, or for an unknown ``on_error`` value.
        """
        if on_error not in ("raise", "skip"):
            raise ValueError("on_error must be 'raise' or 'skip'")
        batch = cls()
        path = Path(path)
        with path.open("r", encoding="utf-8") as fh:
            header = fh.readline()
            if header.strip() != MdtRecord.CSV_HEADER:
                raise ValueError(f"unexpected CSV header: {header!r}")
            for fields in _parse_csv_lines(fh, on_error):
                if fields is None:
                    batch.skipped_lines += 1
                else:
                    batch.append_fields(*fields)
        return batch

    @classmethod
    def iter_csv(
        cls, path, batch_rows: int = 65536, on_error: str = "skip"
    ) -> Iterator["RecordBatch"]:
        """Stream a log CSV as bounded batches of ``batch_rows`` rows.

        Memory stays O(batch_rows); each yielded batch carries its own
        :attr:`skipped_lines` count.  Used by the chunked ingest layer
        (:func:`repro.parallel.ingest.iter_csv_batches`).
        """
        if batch_rows < 1:
            raise ValueError("batch_rows must be >= 1")
        if on_error not in ("raise", "skip"):
            raise ValueError("on_error must be 'raise' or 'skip'")
        path = Path(path)
        with path.open("r", encoding="utf-8") as fh:
            header = fh.readline()
            if header.strip() != MdtRecord.CSV_HEADER:
                raise ValueError(f"unexpected CSV header: {header!r}")
            batch = cls()
            ts_cache: Dict[str, float] = {}
            state_cache: Dict[str, int] = {}
            for fields in _parse_csv_lines(
                fh, on_error, ts_cache, state_cache
            ):
                if fields is None:
                    batch.skipped_lines += 1
                else:
                    batch.append_fields(*fields)
                if len(batch) >= batch_rows:
                    yield batch
                    batch = cls()
            if len(batch) > 0 or batch.skipped_lines > 0:
                yield batch

    def to_csv(self, path) -> None:
        """Write the batch as a log CSV in the paper's field order."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as fh:
            fh.write(MdtRecord.CSV_HEADER + "\n")
            fh.write(self.to_csv_body())

    def to_csv_body(self) -> str:
        """The CSV rows (no header), formatted like ``to_csv_row``."""
        table = self.taxi_table
        lines = []
        for i in range(len(self)):
            lines.append(
                f"{format_timestamp(self.ts[i])},{table[self.taxi[i]]},"
                f"{self.lon[i]:.6f},{self.lat[i]:.6f},{self.speed[i]:.1f},"
                f"{STATES_BY_CODE[self.state[i]].value}\n"
            )
        return "".join(lines)


def _parse_csv_lines(
    lines: Iterable[str],
    on_error: str,
    ts_cache: Optional[Dict[str, float]] = None,
    state_cache: Optional[Dict[str, int]] = None,
) -> Iterator[Optional[Tuple[float, str, float, float, float, int]]]:
    """Parse CSV lines into ``append_fields`` tuples, None per skip.

    The generator shape lets :meth:`RecordBatch.iter_csv` cut batches at
    row boundaries while sharing one parser (and its memo caches) with
    :meth:`RecordBatch.from_csv`.
    """
    if ts_cache is None:
        ts_cache = {}
    if state_cache is None:
        state_cache = {}
    for line in lines:
        if not line.strip():
            continue
        try:
            parts = line.rstrip("\n").split(",")
            if len(parts) != 6:
                raise ValueError(
                    f"expected 6 fields, got {len(parts)}: {line!r}"
                )
            ts_text, taxi_id, lon_text, lat_text, speed_text, state = parts
            lon = float(lon_text)
            lat = float(lat_text)
            speed = float(speed_text)
            if not (isfinite(lon) and isfinite(lat) and isfinite(speed)):
                raise ValueError(f"non-finite coordinate or speed: {line!r}")
            if not taxi_id:
                raise ValueError(f"empty taxi id: {line!r}")
            ts = ts_cache.get(ts_text)
            if ts is None:
                ts = parse_timestamp(ts_text)
                ts_cache[ts_text] = ts
            code = state_cache.get(state)
            if code is None:
                code = STATE_CODES[parse_state(state)]
                state_cache[state] = code
        except ValueError:
            if on_error == "raise":
                raise
            yield None
            continue
        yield (ts, taxi_id, lon, lat, speed, code)
