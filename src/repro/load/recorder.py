"""Latency recording and SLO evaluation for load runs.

The :class:`LatencyRecorder` is the measuring half of the harness:
drivers feed it one ``(status, latency)`` observation per completed
request (plus transport errors), and :meth:`LatencyRecorder.report`
reduces everything to a :class:`LoadReport` — nearest-rank
p50/p95/p99/max latency (same quantile semantics as the server's own
histograms, via :func:`repro.service.metrics.nearest_rank`),
throughput, per-status counts, shed (429) and error counts.

**What counts as an error.**  Transport failures and any 5xx do; a
429 does *not* — shedding is the server honouring its admission
contract, and the SLO gate judges the service at its admitted rate.
Shed volume is reported separately so a breach of the shed *budget*
can be asserted on its own.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.service.metrics import nearest_rank


@dataclass
class LoadReport:
    """The reduced outcome of one load run."""

    requests: int
    duration_s: float
    throughput_rps: float
    statuses: Dict[int, int]
    errors: int
    shed: int
    latency_p50_s: Optional[float]
    latency_p95_s: Optional[float]
    latency_p99_s: Optional[float]
    latency_max_s: Optional[float]
    warmup_discarded: int = 0
    mode: str = ""
    profile: str = ""
    seed: int = 0
    offered_rps: Optional[float] = None

    @property
    def ok_responses(self) -> int:
        """Responses that served content: 2xx plus 304."""
        return sum(
            count
            for status, count in self.statuses.items()
            if 200 <= status < 300 or status == 304
        )

    @property
    def error_rate(self) -> float:
        """Errors (transport + 5xx) over everything attempted.

        5xx responses are already in ``requests``; only transport
        failures add extra attempts on top of the completed count.
        """
        server_errors = sum(
            count for status, count in self.statuses.items() if status >= 500
        )
        total = self.requests + (self.errors - server_errors)
        return self.errors / total if total else 0.0

    def slo_breaches(
        self,
        slo_p99_s: Optional[float] = None,
        slo_error_rate: Optional[float] = None,
    ) -> List[str]:
        """Human-readable SLO violations (empty = the gate passes)."""
        breaches: List[str] = []
        if slo_p99_s is not None:
            if self.latency_p99_s is None:
                breaches.append(
                    "p99 SLO set but no successful request was recorded"
                )
            elif self.latency_p99_s > slo_p99_s:
                breaches.append(
                    f"p99 latency {self.latency_p99_s * 1e3:.1f} ms exceeds "
                    f"SLO {slo_p99_s * 1e3:.1f} ms"
                )
        if slo_error_rate is not None and self.error_rate > slo_error_rate:
            breaches.append(
                f"error rate {self.error_rate:.4f} exceeds "
                f"SLO {slo_error_rate:.4f}"
            )
        return breaches

    def to_dict(self) -> dict:
        """JSON-able form (benchmarks persist these)."""
        return {
            "requests": self.requests,
            "duration_s": round(self.duration_s, 6),
            "throughput_rps": round(self.throughput_rps, 3),
            "statuses": {str(k): v for k, v in sorted(self.statuses.items())},
            "errors": self.errors,
            "shed": self.shed,
            "latency_p50_s": self.latency_p50_s,
            "latency_p95_s": self.latency_p95_s,
            "latency_p99_s": self.latency_p99_s,
            "latency_max_s": self.latency_max_s,
            "warmup_discarded": self.warmup_discarded,
            "mode": self.mode,
            "profile": self.profile,
            "seed": self.seed,
            "offered_rps": self.offered_rps,
        }


@dataclass
class _Shard:
    """Per-thread accumulation (merged at report time, so recording
    never contends on a shared lock in the latency path)."""

    latencies: List[float] = field(default_factory=list)
    statuses: Dict[int, int] = field(default_factory=dict)
    errors: int = 0
    discarded: int = 0


class LatencyRecorder:
    """Thread-safe collector of per-request observations.

    Each recording thread writes into its own shard
    (``threading.local``); :meth:`report` merges shards under a lock.
    Latencies of shed (429) responses are *not* folded into the
    latency percentiles — a shed answer is fast by construction and
    would flatter the tail — but their count is.
    """

    def __init__(self):
        self._local = threading.local()
        self._shards: List[_Shard] = []
        self._lock = threading.Lock()

    def _shard(self) -> _Shard:
        shard = getattr(self._local, "shard", None)
        if shard is None:
            shard = self._local.shard = _Shard()
            with self._lock:
                self._shards.append(shard)
        return shard

    def record(
        self, status: int, latency_s: float, warmup: bool = False
    ) -> None:
        """One completed request."""
        shard = self._shard()
        if warmup:
            shard.discarded += 1
            return
        shard.statuses[status] = shard.statuses.get(status, 0) + 1
        if status != 429:
            shard.latencies.append(latency_s)

    def record_error(self, warmup: bool = False) -> None:
        """One transport failure (connect/read error, timeout)."""
        shard = self._shard()
        if warmup:
            shard.discarded += 1
        else:
            shard.errors += 1

    def report(self, duration_s: float, **meta) -> LoadReport:
        """Reduce every shard into one :class:`LoadReport`."""
        with self._lock:
            shards = list(self._shards)
        latencies: List[float] = []
        statuses: Dict[int, int] = {}
        errors = discarded = 0
        for shard in shards:
            latencies.extend(shard.latencies)
            errors += shard.errors
            discarded += shard.discarded
            for status, count in shard.statuses.items():
                statuses[status] = statuses.get(status, 0) + count
        # 5xx are errors too (the server contract says they never
        # happen; if one does, the SLO gate must see it).
        errors += sum(
            count for status, count in statuses.items() if status >= 500
        )
        requests = sum(statuses.values())
        latencies.sort()
        quantile = (
            (lambda q: nearest_rank(latencies, q)) if latencies else None
        )
        return LoadReport(
            requests=requests,
            duration_s=duration_s,
            throughput_rps=requests / duration_s if duration_s > 0 else 0.0,
            statuses=statuses,
            errors=errors,
            shed=statuses.get(429, 0),
            latency_p50_s=quantile(0.50) if quantile else None,
            latency_p95_s=quantile(0.95) if quantile else None,
            latency_p99_s=quantile(0.99) if quantile else None,
            latency_max_s=latencies[-1] if latencies else None,
            warmup_discarded=discarded,
            **meta,
        )
