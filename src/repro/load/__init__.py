"""Deterministic load harness for the serving layer.

The counterpart of :mod:`repro.service.admission`: where the server
decides what to shed, this package measures how the whole serving
stack behaves while being offered load — with a *seeded,
deterministic* request stream so two runs compare like with like.

* :mod:`repro.load.profile` — named request mixes over the API's
  endpoint set, expanded into byte-identical request plans per seed;
* :mod:`repro.load.generator` — open-loop (fixed arrival schedule)
  and closed-loop (back-to-back workers) drivers over keep-alive
  stdlib HTTP;
* :mod:`repro.load.recorder` — nearest-rank p50/p95/p99/max latency,
  throughput, per-status/shed/error accounting and SLO gating;
* :mod:`repro.load.runner` — ``taxiqueue loadtest``: discovery, plan,
  drive, report, non-zero exit on SLO breach.

See ``docs/load.md`` for the knobs and the 429/Retry-After contract.
"""

from repro.load.generator import (
    DriverResult,
    run_closed_loop,
    run_open_loop,
)
from repro.load.profile import (
    PROFILES,
    ROUTE_FAMILIES,
    WorkloadProfile,
    get_profile,
    plan_bytes,
    plan_requests,
)
from repro.load.recorder import LatencyRecorder, LoadReport
from repro.load.runner import (
    LoadTestConfig,
    TargetError,
    build_plan,
    discover_spots,
    format_report,
    run_loadtest,
)

__all__ = [
    "DriverResult",
    "LatencyRecorder",
    "LoadReport",
    "LoadTestConfig",
    "PROFILES",
    "ROUTE_FAMILIES",
    "TargetError",
    "WorkloadProfile",
    "build_plan",
    "discover_spots",
    "format_report",
    "get_profile",
    "plan_bytes",
    "plan_requests",
    "run_closed_loop",
    "run_loadtest",
    "run_open_loop",
]
