"""The load-test runner behind ``taxiqueue loadtest``.

Ties the pieces together: discover the target's spot ids (so the plan
can address real ``/v1/spots/{id}/...`` routes), expand the seeded
workload profile into a deterministic request plan, drive it open- or
closed-loop, and reduce the result to a :class:`LoadReport` plus SLO
verdict.  :func:`format_report` renders the operator-facing summary.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import List, Optional, Tuple
from urllib.parse import urlsplit

from repro.load.generator import DriverResult, run_closed_loop, run_open_loop
from repro.load.profile import WorkloadProfile, get_profile, plan_requests
from repro.load.recorder import LatencyRecorder, LoadReport

#: Plan length headroom over the expected request count, so cycling a
#: too-short plan (which would skew the mix) stays rare.
PLAN_SLACK = 2.0
MIN_PLAN = 1024


@dataclass
class LoadTestConfig:
    """Everything one load run needs (CLI flags map 1:1 onto this)."""

    url: str
    profile: str = "read-heavy"
    mode: str = "closed"  # "open" | "closed"
    rate: float = 50.0  # open loop: arrivals/second
    concurrency: int = 8  # closed loop: workers
    duration_s: float = 10.0
    warmup_s: float = 1.0
    seed: int = 7
    timeout_s: float = 10.0
    slo_p99_s: Optional[float] = None
    slo_error_rate: Optional[float] = None
    spot_ids: Tuple[str, ...] = ()  # skip discovery when non-empty
    epoch_days: Tuple[int, ...] = field(default_factory=tuple)

    def __post_init__(self):
        if self.mode not in ("open", "closed"):
            raise ValueError(
                f"mode must be 'open' or 'closed', got {self.mode!r}"
            )
        if self.duration_s <= 0:
            raise ValueError("duration must be positive seconds")
        if self.warmup_s < 0:
            raise ValueError("warmup must be >= 0 seconds")
        if self.mode == "open" and self.rate <= 0:
            raise ValueError("open-loop rate must be positive")
        if self.mode == "closed" and self.concurrency < 1:
            raise ValueError("closed-loop concurrency must be >= 1")


class TargetError(RuntimeError):
    """The target service could not be reached or understood."""


def _split_host_port(url: str) -> Tuple[str, int]:
    parts = urlsplit(url if "//" in url else f"http://{url}")
    if parts.scheme not in ("", "http"):
        raise TargetError(f"only http targets are supported, got {url!r}")
    if not parts.hostname:
        raise TargetError(f"cannot parse target url {url!r}")
    return parts.hostname, parts.port or 80


def discover_spots(url: str, timeout_s: float = 10.0) -> List[str]:
    """The target's spot ids, from one ``GET /v1/spots``.

    Raises:
        TargetError: when the service is unreachable or the payload
            is not the expected FeatureCollection shape.
    """
    endpoint = url.rstrip("/") + "/v1/spots"
    try:
        with urllib.request.urlopen(endpoint, timeout=timeout_s) as response:
            payload = json.loads(response.read())
    except (urllib.error.URLError, OSError, ValueError) as exc:
        raise TargetError(
            f"cannot fetch {endpoint}: {exc} "
            "(is 'taxiqueue serve' running at that address?)"
        ) from exc
    try:
        return sorted(
            feature["properties"]["spot_id"]
            for feature in payload["collection"]["features"]
        )
    except (KeyError, TypeError) as exc:
        raise TargetError(
            f"{endpoint} did not answer a spots FeatureCollection"
        ) from exc


def build_plan(config: LoadTestConfig, spot_ids: List[str]) -> List[str]:
    """The deterministic request plan for one run."""
    profile = get_profile(config.profile)
    expected = (
        config.rate * (config.duration_s + config.warmup_s)
        if config.mode == "open"
        # Closed loop: size for a fast local server; the driver cycles
        # the plan if the run outpaces it.
        else 2000.0 * config.concurrency * config.duration_s
    )
    n = max(MIN_PLAN, int(expected * PLAN_SLACK))
    return plan_requests(
        profile, config.seed, n, spot_ids, config.epoch_days
    )


def run_loadtest(
    config: LoadTestConfig,
) -> Tuple[LoadReport, DriverResult, List[str]]:
    """One full load run: ``(report, driver_result, slo_breaches)``."""
    host, port = _split_host_port(config.url)
    spot_ids = (
        list(config.spot_ids)
        if config.spot_ids
        else discover_spots(config.url, config.timeout_s)
    )
    plan = build_plan(config, spot_ids)
    recorder = LatencyRecorder()
    if config.mode == "open":
        result = run_open_loop(
            host, port, plan, config.rate, config.duration_s, recorder,
            warmup_s=config.warmup_s, timeout_s=config.timeout_s,
        )
        offered = config.rate
    else:
        result = run_closed_loop(
            host, port, plan, config.concurrency, config.duration_s,
            recorder, warmup_s=config.warmup_s, timeout_s=config.timeout_s,
        )
        offered = (
            result.issued / result.duration_s
            if result.duration_s > 0
            else None
        )
    report = recorder.report(
        result.duration_s,
        mode=config.mode,
        profile=config.profile,
        seed=config.seed,
        offered_rps=offered,
    )
    breaches = report.slo_breaches(config.slo_p99_s, config.slo_error_rate)
    return report, result, breaches


def _fmt_latency(value: Optional[float]) -> str:
    return "-" if value is None else f"{value * 1e3:9.2f} ms"


def format_report(
    report: LoadReport,
    result: DriverResult,
    breaches: List[str],
    config: LoadTestConfig,
) -> str:
    """The operator-facing run summary."""
    load_line = (
        f"  open-loop rate        {config.rate:g} req/s "
        f"({result.workers} senders, {result.behind_schedule} behind "
        "schedule)"
        if config.mode == "open"
        else f"  closed-loop workers   {result.workers}"
    )
    statuses = " ".join(
        f"{status}:{count}" for status, count in sorted(report.statuses.items())
    )
    lines = [
        f"loadtest — profile={report.profile} mode={report.mode} "
        f"seed={report.seed}",
        load_line,
        f"  measured              {report.duration_s:.2f} s "
        f"(+{config.warmup_s:g} s warmup, "
        f"{report.warmup_discarded} requests discarded)",
        f"  completed             {report.requests} requests "
        f"({report.throughput_rps:.1f} req/s)",
        f"  statuses              {statuses or '-'}",
        f"  shed (429)            {report.shed}",
        f"  errors                {report.errors} "
        f"(rate {report.error_rate:.4f})",
        f"  latency p50           {_fmt_latency(report.latency_p50_s)}",
        f"  latency p95           {_fmt_latency(report.latency_p95_s)}",
        f"  latency p99           {_fmt_latency(report.latency_p99_s)}",
        f"  latency max           {_fmt_latency(report.latency_max_s)}",
    ]
    if config.slo_p99_s is not None or config.slo_error_rate is not None:
        if breaches:
            lines.append("  SLO                   BREACHED")
            lines.extend(f"    - {breach}" for breach in breaches)
        else:
            lines.append("  SLO                   ok")
    return "\n".join(lines)
