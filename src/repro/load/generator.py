"""Open- and closed-loop load drivers over a live queue-state service.

Two classic driver shapes (see e.g. the coordinated-omission
literature):

* **closed loop** — ``concurrency`` workers, each issuing its next
  request the moment the previous one completes.  Offered load tracks
  the server's speed; this is the shape that drives a server to
  saturation and is what the overload tests use.
* **open loop** — requests are launched on a fixed arrival schedule
  (``rate`` per second, evenly spaced) regardless of completions, the
  shape real commuter traffic has.  Senders that fall behind schedule
  fire immediately and the lag is visible in the recorded latency.

Both drivers consume a *pre-planned* request sequence (see
:mod:`repro.load.profile`): worker ``j`` of ``N`` walks
``plan[j::N]`` cyclically, so the set of issued requests is a
deterministic function of the plan and the worker count — timing is
the only nondeterminism, and it is exactly the thing being measured.

Transport is stdlib ``http.client`` with keep-alive; a worker that
loses its connection records a transport error and reconnects.  Shed
responses (429) are recorded but their ``Retry-After`` is deliberately
ignored — a load generator's job is to keep offering load.
"""

from __future__ import annotations

import http.client
import threading
import time
from dataclasses import dataclass
from typing import List, Sequence

from repro.load.recorder import LatencyRecorder


@dataclass
class DriverResult:
    """What a driver did (the recorder holds the measurements)."""

    issued: int
    duration_s: float
    workers: int
    behind_schedule: int = 0  # open loop: sends that missed their slot


def _issue(
    connection: http.client.HTTPConnection, path: str
) -> "tuple[int, float]":
    """One request over a kept-alive connection; returns (status,
    latency).  Raises on transport failure (caller reconnects)."""
    start = time.perf_counter()
    connection.request("GET", path)
    response = connection.getresponse()
    response.read()
    latency = time.perf_counter() - start
    if response.will_close:
        connection.close()
    return response.status, latency


def _worker_paths(plan: Sequence[str], index: int, workers: int) -> List[str]:
    paths = list(plan[index::workers])
    return paths if paths else list(plan) or ["/v1/healthz"]


def run_closed_loop(
    host: str,
    port: int,
    plan: Sequence[str],
    concurrency: int,
    duration_s: float,
    recorder: LatencyRecorder,
    warmup_s: float = 0.0,
    timeout_s: float = 10.0,
) -> DriverResult:
    """Drive ``concurrency`` back-to-back workers for ``duration_s``."""
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    if duration_s <= 0:
        raise ValueError("duration must be positive seconds")
    start = time.monotonic()
    warm_until = start + warmup_s
    deadline = start + warmup_s + duration_s
    issued = [0] * concurrency

    def work(index: int) -> None:
        paths = _worker_paths(plan, index, concurrency)
        connection = http.client.HTTPConnection(
            host, port, timeout=timeout_s
        )
        position = 0
        try:
            while True:
                now = time.monotonic()
                if now >= deadline:
                    break
                path = paths[position % len(paths)]
                position += 1
                warmup = now < warm_until
                try:
                    status, latency = _issue(connection, path)
                except (OSError, http.client.HTTPException):
                    recorder.record_error(warmup=warmup)
                    connection.close()
                    connection = http.client.HTTPConnection(
                        host, port, timeout=timeout_s
                    )
                    continue
                finally:
                    issued[index] += 1
                recorder.record(status, latency, warmup=warmup)
        finally:
            connection.close()

    threads = [
        threading.Thread(target=work, args=(i,), name=f"load-closed-{i}")
        for i in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return DriverResult(
        issued=sum(issued),
        duration_s=time.monotonic() - start - warmup_s,
        workers=concurrency,
    )


def run_open_loop(
    host: str,
    port: int,
    plan: Sequence[str],
    rate: float,
    duration_s: float,
    recorder: LatencyRecorder,
    warmup_s: float = 0.0,
    timeout_s: float = 10.0,
    senders: int = 0,
) -> DriverResult:
    """Launch requests on a fixed ``rate``/s schedule for ``duration_s``.

    The global schedule places request ``k`` at ``start + k/rate``;
    sender ``j`` of ``N`` owns requests ``j, j+N, j+2N, ...``.  A
    sender behind schedule fires immediately (counted in
    ``behind_schedule``) — the schedule itself never slips, which is
    what distinguishes an open-loop driver from a closed loop with
    pacing.
    """
    if rate <= 0:
        raise ValueError("open-loop rate must be positive requests/second")
    if duration_s <= 0:
        raise ValueError("duration must be positive seconds")
    if senders < 1:
        # Enough senders that one slow response cannot stall the
        # schedule at moderate rates; bounded so the client stays cheap.
        senders = max(2, min(16, int(rate / 25) + 1))
    total = int(rate * (warmup_s + duration_s))
    start = time.monotonic()
    warm_until = start + warmup_s
    issued = [0] * senders
    behind = [0] * senders

    def work(index: int) -> None:
        paths = _worker_paths(plan, index, senders)
        connection = http.client.HTTPConnection(
            host, port, timeout=timeout_s
        )
        position = 0
        try:
            for k in range(index, total, senders):
                due = start + k / rate
                now = time.monotonic()
                if now < due:
                    time.sleep(due - now)
                elif now - due > 1.0 / rate:
                    behind[index] += 1
                path = paths[position % len(paths)]
                position += 1
                warmup = time.monotonic() < warm_until
                try:
                    status, latency = _issue(connection, path)
                except (OSError, http.client.HTTPException):
                    recorder.record_error(warmup=warmup)
                    connection.close()
                    connection = http.client.HTTPConnection(
                        host, port, timeout=timeout_s
                    )
                    continue
                finally:
                    issued[index] += 1
                recorder.record(status, latency, warmup=warmup)
        finally:
            connection.close()

    threads = [
        threading.Thread(target=work, args=(i,), name=f"load-open-{i}")
        for i in range(senders)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return DriverResult(
        issued=sum(issued),
        duration_s=time.monotonic() - start - warmup_s,
        workers=senders,
        behind_schedule=sum(behind),
    )
