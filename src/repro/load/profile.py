"""Seeded, deterministic workload profiles over the serving API.

A :class:`WorkloadProfile` is a named request mix — weights over the
serving layer's route families (``/v1/spots``, ``/v1/spots/{id}/slots``,
``/v1/citywide``, ``/v1/history/*``, ``/v1/metrics``) — and
:func:`plan_requests` expands a profile into a concrete request
sequence: a list of path-plus-query strings.

Determinism is the load harness's core contract: the sequence is a
pure function of ``(profile, seed, n, spot_ids, epoch_days)``.  Two
runs with the same seed issue the byte-identical request stream (the
Hypothesis suite pins this), which is what makes latency comparisons
across server configurations meaningful — the *offered work* is held
constant while the serving knobs vary.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

#: Route families a mix may weight.  Each name maps to a path builder
#: in :func:`_build_path`.
ROUTE_FAMILIES = (
    "spots",
    "slots",
    "citywide",
    "metrics",
    "healthz",
    "spot_history",
    "history_citywide",
    "history_patterns",
)


@dataclass(frozen=True)
class WorkloadProfile:
    """A named request mix: weights over :data:`ROUTE_FAMILIES`.

    Weights need not sum to one; they are relative.  Every weighted
    family must be a known route family and weights must be positive.
    """

    name: str
    mix: Tuple[Tuple[str, float], ...]

    def __post_init__(self):
        if not self.mix:
            raise ValueError("a workload profile needs at least one route")
        for family, weight in self.mix:
            if family not in ROUTE_FAMILIES:
                raise ValueError(f"unknown route family: {family!r}")
            if weight <= 0:
                raise ValueError(
                    f"weight for {family!r} must be positive, got {weight}"
                )

    @property
    def families(self) -> List[str]:
        return [family for family, _ in self.mix]

    @property
    def weights(self) -> List[float]:
        return [weight for _, weight in self.mix]


def _profile(name: str, **mix: float) -> WorkloadProfile:
    return WorkloadProfile(name, tuple(sorted(mix.items())))


#: Built-in profiles (``taxiqueue loadtest --profile <name>``).
PROFILES: Dict[str, WorkloadProfile] = {
    profile.name: profile
    for profile in (
        # What a commuter-facing frontend mostly does: poll the live
        # snapshot endpoints, occasionally drill into one spot.
        _profile(
            "read-heavy",
            spots=0.45, citywide=0.25, slots=0.20,
            metrics=0.05, healthz=0.05,
        ),
        # Everything the API serves, history included.
        _profile(
            "mixed",
            spots=0.30, citywide=0.15, slots=0.15, metrics=0.05,
            healthz=0.05, spot_history=0.15, history_citywide=0.10,
            history_patterns=0.05,
        ),
        # Hammer the history routes: distinct query strings, the
        # response-cache worst case.
        _profile(
            "history",
            spot_history=0.45, history_citywide=0.30,
            history_patterns=0.15, spots=0.10,
        ),
        # Pure hot-path cache behaviour.
        _profile("snapshot-hot", spots=0.60, citywide=0.40),
    )
}


def get_profile(name: str) -> WorkloadProfile:
    """A built-in profile by name.

    Raises:
        KeyError: for an unknown profile name (message lists the
            known ones).
    """
    try:
        return PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise KeyError(
            f"unknown workload profile {name!r} (known: {known})"
        ) from None


def _build_path(
    family: str,
    rng: random.Random,
    spot_ids: Sequence[str],
    epoch_days: Sequence[int],
) -> str:
    """One concrete request path for a route family.

    Families that need a spot id fall back to ``/v1/spots`` when the
    target service exposes none (an empty snapshot is still a valid
    load target).
    """
    if family == "spots":
        return "/v1/spots"
    if family == "citywide":
        return "/v1/citywide"
    if family == "metrics":
        return "/v1/metrics"
    if family == "healthz":
        return "/v1/healthz"
    if family == "history_patterns":
        return "/v1/history/patterns"
    if family == "history_citywide":
        if epoch_days:
            day = rng.choice(epoch_days)
            return f"/v1/history/citywide?start_day={day}&end_day={day}"
        return "/v1/history/citywide"
    if not spot_ids:
        return "/v1/spots"
    spot_id = rng.choice(spot_ids)
    if family == "slots":
        return f"/v1/spots/{spot_id}/slots"
    # spot_history: vary pagination so distinct query strings exercise
    # the keyed response cache.
    page = rng.randint(1, 5)
    return f"/v1/spots/{spot_id}/history?page={page}&per_page=100"


def plan_requests(
    profile: WorkloadProfile,
    seed: int,
    n: int,
    spot_ids: Sequence[str] = (),
    epoch_days: Sequence[int] = (),
) -> List[str]:
    """Expand a profile into ``n`` concrete request paths.

    Deterministic: same arguments, same list — always.  ``spot_ids``
    and ``epoch_days`` are sorted before sampling so the caller's
    ordering (e.g. a JSON payload's) cannot leak into the plan.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    rng = random.Random(seed)
    spot_ids = sorted(spot_ids)
    epoch_days = sorted(epoch_days)
    families = profile.families
    weights = profile.weights
    return [
        _build_path(
            rng.choices(families, weights=weights, k=1)[0],
            rng,
            spot_ids,
            epoch_days,
        )
        for _ in range(n)
    ]


def plan_bytes(
    profile: WorkloadProfile,
    seed: int,
    n: int,
    spot_ids: Sequence[str] = (),
    epoch_days: Sequence[int] = (),
) -> bytes:
    """The plan as one newline-joined byte string (the determinism
    property compares these for byte identity)."""
    return "\n".join(
        plan_requests(profile, seed, n, spot_ids, epoch_days)
    ).encode("ascii")
