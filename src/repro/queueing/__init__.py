"""Queueing-theory substrate.

The engine's queue-length feature rests on Little's law
(:mod:`repro.queueing.littles_law`, paper section 5.2); the simulator's
spot dynamics are a FIFO queue (:mod:`repro.queueing.fifo`, matching the
paper's single queueing assumption of FIFO discipline); and the workload
designer uses M/M/c analytics (:mod:`repro.queueing.mmc`) to pick arrival
and service rates that produce the desired queue regimes.
"""

from repro.queueing.littles_law import (
    little_queue_length,
    little_wait_time,
    little_arrival_rate,
)
from repro.queueing.fifo import FifoQueueSim, QueueSimResult
from repro.queueing.mmc import (
    erlang_c,
    mmc_mean_wait,
    mmc_mean_queue_length,
    mm1_mean_wait,
    utilisation,
)

__all__ = [
    "little_queue_length",
    "little_wait_time",
    "little_arrival_rate",
    "FifoQueueSim",
    "QueueSimResult",
    "erlang_c",
    "mmc_mean_wait",
    "mmc_mean_queue_length",
    "mm1_mean_wait",
    "utilisation",
]
