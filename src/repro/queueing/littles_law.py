"""Little's law: L = lambda * W (Little, Operations Research 1961).

Paper section 5.2 derives the average FREE-taxi queue length over a time
slot as ``L = t_wait_mean * lambda_mean`` where ``lambda_mean`` is the
average arrival rate of FREE taxis.  These helpers keep the three-way
relation in one place so features and tests share a single definition.
"""

from __future__ import annotations


def little_queue_length(arrival_rate: float, mean_wait: float) -> float:
    """Average queue length ``L = lambda * W``.

    Args:
        arrival_rate: average arrivals per second (lambda).
        mean_wait: average wait per entity in seconds (W).

    Raises:
        ValueError: for negative inputs.
    """
    if arrival_rate < 0 or mean_wait < 0:
        raise ValueError("arrival rate and mean wait must be non-negative")
    return arrival_rate * mean_wait


def little_wait_time(queue_length: float, arrival_rate: float) -> float:
    """Average wait ``W = L / lambda``.

    Raises:
        ValueError: for non-positive arrival rate or negative queue length.
    """
    if arrival_rate <= 0:
        raise ValueError("arrival rate must be positive")
    if queue_length < 0:
        raise ValueError("queue length must be non-negative")
    return queue_length / arrival_rate


def little_arrival_rate(queue_length: float, mean_wait: float) -> float:
    """Average arrival rate ``lambda = L / W``.

    Raises:
        ValueError: for non-positive mean wait or negative queue length.
    """
    if mean_wait <= 0:
        raise ValueError("mean wait must be positive")
    if queue_length < 0:
        raise ValueError("queue length must be non-negative")
    return queue_length / mean_wait
