"""A discrete-event FIFO queue simulator.

The paper assumes only the FIFO discipline for both taxi and passenger
queues (section 3).  This standalone single-queue simulator serves two
purposes:

* a test oracle — simulated waits must satisfy Little's law, which the
  property tests check against :mod:`repro.queueing.littles_law`;
* a design tool — the workload designer uses it to sanity-check the
  arrival/service rates chosen for the city simulator's queue spots.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass
class QueueSimResult:
    """Aggregate outcome of a FIFO queue simulation.

    Attributes:
        waits: per-customer wait (service start minus arrival), seconds.
        departures: service-start timestamps, in order.
        time_avg_queue_length: time-average number waiting (excludes the
            customer in service), computed from the queue-length step
            function over the simulated horizon.
    """

    waits: List[float] = field(default_factory=list)
    departures: List[float] = field(default_factory=list)
    time_avg_queue_length: float = 0.0

    @property
    def mean_wait(self) -> float:
        """Average wait in seconds (0 when no customer completed)."""
        if not self.waits:
            return 0.0
        return sum(self.waits) / len(self.waits)


class FifoQueueSim:
    """Single-server FIFO queue fed by a Poisson arrival process.

    Args:
        arrival_rate: customers per second (lambda).
        service_rate: services per second (mu); exponential service times.
        seed: RNG seed for reproducibility.
    """

    def __init__(self, arrival_rate: float, service_rate: float, seed: int = 0):
        if arrival_rate <= 0 or service_rate <= 0:
            raise ValueError("rates must be positive")
        self.arrival_rate = arrival_rate
        self.service_rate = service_rate
        self._rng = random.Random(seed)

    def run(self, horizon_s: float) -> QueueSimResult:
        """Simulate arrivals over ``[0, horizon_s)`` and drain the queue.

        Customers arriving before the horizon are all served (the server
        keeps working past the horizon), so Little's law holds exactly over
        the measured population.
        """
        if horizon_s <= 0:
            raise ValueError("horizon must be positive")
        rng = self._rng
        arrivals: List[float] = []
        t = rng.expovariate(self.arrival_rate)
        while t < horizon_s:
            arrivals.append(t)
            t += rng.expovariate(self.arrival_rate)

        result = QueueSimResult()
        # Step-function integration of queue length over time.
        events: List[Tuple[float, int]] = []  # (time, +1 join / -1 leave)
        server_free_at = 0.0
        for arr in arrivals:
            start = max(arr, server_free_at)
            result.waits.append(start - arr)
            result.departures.append(start)
            events.append((arr, +1))
            events.append((start, -1))
            server_free_at = start + rng.expovariate(self.service_rate)

        if events:
            heapq.heapify(events)
            area = 0.0
            queue_len = 0
            prev_t = 0.0
            end_t = max(t for t, _ in events)
            while events:
                et, delta = heapq.heappop(events)
                area += queue_len * (et - prev_t)
                queue_len += delta
                prev_t = et
            span = max(end_t, horizon_s)
            result.time_avg_queue_length = area / span if span > 0 else 0.0
        return result
