"""M/M/c analytics (Erlang C) used to design simulator workloads.

The city simulator needs arrival/service rates per queue spot that yield
the four queue regimes of paper Table 3 (taxi queue and/or passenger queue).
Closed-form M/M/c results let the workload designer choose rates with known
expected queue lengths instead of trial and error.
"""

from __future__ import annotations

import math


def utilisation(arrival_rate: float, service_rate: float, servers: int = 1) -> float:
    """Offered load per server: ``rho = lambda / (c * mu)``.

    Raises:
        ValueError: for non-positive rates or server count.
    """
    if arrival_rate <= 0 or service_rate <= 0 or servers <= 0:
        raise ValueError("rates and server count must be positive")
    return arrival_rate / (servers * service_rate)


def erlang_c(arrival_rate: float, service_rate: float, servers: int) -> float:
    """Probability an arriving customer must wait (Erlang C formula).

    Raises:
        ValueError: when the system is unstable (rho >= 1).
    """
    rho = utilisation(arrival_rate, service_rate, servers)
    if rho >= 1.0:
        raise ValueError("unstable system: utilisation must be below 1")
    a = arrival_rate / service_rate  # offered load in Erlangs
    summation = sum(a**k / math.factorial(k) for k in range(servers))
    top = a**servers / (math.factorial(servers) * (1.0 - rho))
    return top / (summation + top)


def mmc_mean_wait(arrival_rate: float, service_rate: float, servers: int) -> float:
    """Mean time in queue (excluding service) for M/M/c, in seconds."""
    c_prob = erlang_c(arrival_rate, service_rate, servers)
    rho = utilisation(arrival_rate, service_rate, servers)
    return c_prob / (servers * service_rate * (1.0 - rho))


def mmc_mean_queue_length(
    arrival_rate: float, service_rate: float, servers: int
) -> float:
    """Mean number waiting in queue for M/M/c (by Little's law)."""
    return arrival_rate * mmc_mean_wait(arrival_rate, service_rate, servers)


def mm1_mean_wait(arrival_rate: float, service_rate: float) -> float:
    """Mean queueing delay of M/M/1: ``rho / (mu - lambda)``."""
    return mmc_mean_wait(arrival_rate, service_rate, servers=1)
