"""repro — reproduction of "Taxi Queue, Passenger Queue or No Queue?"
(Lu, Xiang, Wu — EDBT 2015).

A queue detection and analysis system over event-driven taxi MDT logs,
plus the full substrate needed to evaluate it offline: a city/fleet
simulator, geospatial and clustering primitives, log storage and cleaning,
and the evaluation harness reproducing every table and figure of the
paper's section 6.

Quickstart::

    from repro import (
        SimulationConfig, simulate_day,
        QueueAnalyticEngine, EngineConfig,
    )

    out = simulate_day(SimulationConfig(fleet_size=400, n_queue_spots=25))
    engine = QueueAnalyticEngine(
        zones=out.city.zones,
        projection=out.city.projection,
        config=EngineConfig(observed_fraction=out.config.observed_fraction),
        city_bbox=out.city.bbox,
        inaccessible=out.city.water,
    )
    detection = engine.detect_spots(out.store)
    analyses = engine.disambiguate(out.store, detection)
"""

from repro.core import (
    EngineConfig,
    QueueAnalyticEngine,
    QueueSpot,
    QueueType,
    SlotFeatures,
    SlotLabel,
    SpotAnalysis,
    SpotDetectionParams,
    SpotDetectionResult,
    TimeSlotGrid,
)
from repro.sim import City, SimulationConfig, SimulationOutput, simulate_day
from repro.trace import MdtLogStore, MdtRecord

__version__ = "1.0.0"

__all__ = [
    "EngineConfig",
    "QueueAnalyticEngine",
    "QueueSpot",
    "QueueType",
    "SlotFeatures",
    "SlotLabel",
    "SpotAnalysis",
    "SpotDetectionParams",
    "SpotDetectionResult",
    "TimeSlotGrid",
    "City",
    "SimulationConfig",
    "SimulationOutput",
    "simulate_day",
    "MdtLogStore",
    "MdtRecord",
    "__version__",
]
