"""Server-side admission control for the serving layer.

The ROADMAP's north star is "heavy traffic from millions of users"; a
serving layer that accepts every request it is offered does not get
there — it falls over.  This module is the gatekeeper in front of the
HTTP request handlers (:mod:`repro.service.http`):

* a :class:`TokenBucket` bounds the *sustained* request rate (with a
  configurable burst allowance) so an overload is shed early and
  cheaply, before any serialization work;
* a global **in-flight budget** bounds how many requests are inside
  the handlers at once — the threaded server may hold many open
  connections, but only ``max_inflight`` of them do work
  simultaneously;
* optional **per-route concurrency caps** keep one expensive route
  (say an uncached history scan) from starving the cheap hot paths.

A request that fails any check is *shed*: the server answers ``429 Too
Many Requests`` with a ``Retry-After`` hint instead of queueing it —
the existing never-5xx invariant is preserved, clients get an honest
backpressure signal, and the shed path costs microseconds.  Decisions
are fully accounted in the metrics registry:

* ``http.shed`` (plus ``http.shed.rate`` / ``http.shed.inflight`` /
  ``http.shed.route``) — shed totals by reason;
* ``http.inflight`` / ``http.inflight_peak`` — live and high-water
  queue depth inside the handlers;
* ``admission.admitted`` — requests that passed every check.

Every clock read goes through an injectable ``clock`` callable so the
token-bucket arithmetic is exactly testable (and Hypothesis can drive
it with synthetic timelines).
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.service.metrics import MetricsRegistry

#: Shed reasons (also the metric suffixes of ``http.shed.<reason>``).
SHED_RATE = "rate"
SHED_INFLIGHT = "inflight"
SHED_ROUTE = "route"


@dataclass(frozen=True)
class AdmissionDecision:
    """The outcome of one admission check.

    ``retry_after_s`` is the server's backoff hint: for a rate-limit
    shed it is the exact time until the bucket refills one token; for
    a concurrency shed it is a fixed small hint (the slot frees when
    some in-flight request finishes, which the bucket cannot predict).
    """

    admitted: bool
    reason: Optional[str] = None
    retry_after_s: float = 0.0

    @property
    def retry_after_header(self) -> str:
        """``Retry-After`` is delta-seconds, integral, at least 1."""
        return str(max(1, math.ceil(self.retry_after_s)))


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/s, capacity ``burst``.

    The bucket starts full.  :meth:`try_acquire` consumes one token
    when available; otherwise it reports the exact seconds until the
    next token accrues.  The arithmetic invariant tests rely on: over
    any span ``T`` between the first and last acquire attempt, at most
    ``burst + rate * T`` acquisitions can succeed.

    Args:
        rate: sustained tokens per second (must be positive).
        burst: bucket capacity; defaults to ``max(1, ceil(rate))``
            (one second's worth of burst).
        clock: monotonic-seconds source, injectable for tests.
    """

    def __init__(
        self,
        rate: float,
        burst: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate <= 0:
            raise ValueError("rate must be positive tokens/second")
        if burst is None:
            burst = max(1, math.ceil(rate))
        if burst < 1:
            raise ValueError("burst must hold at least one token")
        self.rate = float(rate)
        self.burst = int(burst)
        self._clock = clock
        self._tokens = float(self.burst)
        self._last = clock()
        self._lock = threading.Lock()
        self.admitted = 0
        self.denied = 0

    def _refill(self, now: float) -> None:
        elapsed = now - self._last
        if elapsed > 0:
            self._tokens = min(
                float(self.burst), self._tokens + elapsed * self.rate
            )
        self._last = now

    def try_acquire(self) -> AdmissionDecision:
        """Consume one token, or report how long until one exists."""
        with self._lock:
            self._refill(self._clock())
            # Tolerance for float refill dust: a request paced exactly
            # at 1/rate must never be shed because 1/3 + 1/3 + 1/3 < 1.
            if self._tokens >= 1.0 - 1e-9:
                self._tokens = max(0.0, self._tokens - 1.0)
                self.admitted += 1
                return AdmissionDecision(True)
            self.denied += 1
            wait = (1.0 - self._tokens) / self.rate
            return AdmissionDecision(False, SHED_RATE, wait)

    @property
    def tokens(self) -> float:
        """The current token count (refilled to now)."""
        with self._lock:
            self._refill(self._clock())
            return self._tokens


class AdmissionController:
    """Combined rate / in-flight / per-route admission for the server.

    Checks run cheapest-first: the token bucket (pure arithmetic), the
    global in-flight budget, then the route cap.  A request admitted
    by :meth:`admit` *must* be balanced by :meth:`release` — the HTTP
    layer does so in a ``finally``.

    Args:
        max_inflight: global bound on concurrently handled requests
            (None = unbounded).
        rate_limit: sustained requests/second fed to the token bucket
            (None = no rate limiting).
        burst: token-bucket capacity override.
        route_caps: per-route concurrency bounds, keyed on the
            server's route names (``spots``, ``citywide``,
            ``spot_slots``, ``history_patterns``, ...).
        metrics: registry for the shed/in-flight accounting.
        clock: monotonic-seconds source, injectable for tests.
    """

    def __init__(
        self,
        max_inflight: Optional[int] = None,
        rate_limit: Optional[float] = None,
        burst: Optional[int] = None,
        route_caps: Optional[Dict[str, int]] = None,
        metrics: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must admit at least one request")
        self.max_inflight = max_inflight
        self.bucket = (
            TokenBucket(rate_limit, burst, clock)
            if rate_limit is not None
            else None
        )
        self.route_caps = dict(route_caps or {})
        for route, cap in self.route_caps.items():
            if cap < 1:
                raise ValueError(
                    f"route cap for {route!r} must be >= 1, got {cap}"
                )
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._inflight = 0
        self._peak = 0
        self._route_inflight: Dict[str, int] = {}
        self.metrics.gauge("http.inflight").set(0)
        self.metrics.gauge("http.inflight_peak").set(0)

    # -- admission ---------------------------------------------------------------

    def admit(self, route: str) -> AdmissionDecision:
        """Try to admit one request for ``route``."""
        if self.bucket is not None:
            decision = self.bucket.try_acquire()
            if not decision.admitted:
                self._count_shed(SHED_RATE)
                return decision
        with self._lock:
            if (
                self.max_inflight is not None
                and self._inflight >= self.max_inflight
            ):
                shed = AdmissionDecision(False, SHED_INFLIGHT, 1.0)
            else:
                cap = self.route_caps.get(route)
                held = self._route_inflight.get(route, 0)
                if cap is not None and held >= cap:
                    shed = AdmissionDecision(False, SHED_ROUTE, 1.0)
                else:
                    self._inflight += 1
                    self._route_inflight[route] = held + 1
                    if self._inflight > self._peak:
                        self._peak = self._inflight
                    inflight, peak = self._inflight, self._peak
                    shed = None
        if shed is not None:
            self._count_shed(shed.reason)
            return shed
        self.metrics.counter("admission.admitted").inc()
        self.metrics.gauge("http.inflight").set(inflight)
        self.metrics.gauge("http.inflight_peak").set(peak)
        return AdmissionDecision(True)

    def release(self, route: str) -> None:
        """Return the slots taken by an admitted request."""
        with self._lock:
            self._inflight -= 1
            held = self._route_inflight.get(route, 0) - 1
            if held > 0:
                self._route_inflight[route] = held
            else:
                self._route_inflight.pop(route, None)
            inflight = self._inflight
        self.metrics.gauge("http.inflight").set(inflight)

    def _count_shed(self, reason: str) -> None:
        self.metrics.counter("http.shed").inc()
        self.metrics.counter(f"http.shed.{reason}").inc()

    # -- introspection -----------------------------------------------------------

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    @property
    def peak_inflight(self) -> int:
        """High-water mark of concurrently handled requests."""
        with self._lock:
            return self._peak
