"""A lightweight in-process metrics registry for the serving layer.

The deployed system (paper section 7.1) runs as a live backend; operating
such a service needs visibility into request rates, snapshot churn and
tail latency.  This module provides the three classic instrument kinds —
:class:`Counter`, :class:`Gauge` and :class:`Histogram` — behind a
:class:`MetricsRegistry` that hands out get-or-create instruments by
name and renders one JSON-able snapshot of everything.

Design constraints:

* stdlib only (the HTTP layer exposes the snapshot at ``/v1/metrics``);
* thread-safe: the HTTP server is threaded and the replay path runs in
  its own thread, so every instrument guards its state with a lock;
* bounded memory: histograms keep a fixed-size window of recent
  observations for quantiles plus exact lifetime count/sum.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: Default latency bucket upper bounds in seconds.  Chosen for the
#: service's two observed regimes — sub-millisecond cache hits and
#: multi-second batch stages — with Prometheus-conventional spacing so
#: the exposition's ``le`` label set is stable across runs.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


def nearest_rank(ordered: Sequence[float], q: float) -> float:
    """The ``q``-quantile of an ascending-sorted non-empty sequence by
    the nearest-rank method (no interpolation).

    Shared by :class:`Histogram` and the load harness's latency
    recorder (:mod:`repro.load.recorder`) so both report identical
    percentile semantics.

    Raises:
        ValueError: for an empty sequence or a quantile outside [0, 1].
    """
    if not ordered:
        raise ValueError("nearest_rank needs at least one observation")
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


class Counter:
    """A monotonically increasing counter."""

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter.

        Raises:
            ValueError: for a negative amount.
        """
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (e.g. the snapshot version)."""

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Observation distribution with windowed quantiles.

    Keeps the exact lifetime ``count`` and ``sum`` plus a ring buffer of
    the most recent ``window`` observations; quantiles are computed over
    the window (recent behaviour is what an operator watches).

    Cumulative bucket counts (Prometheus ``le`` semantics: observations
    ``<= bound``) are maintained exactly over the lifetime, under the
    same lock as ``count``/``sum`` so a concurrent scrape can never see
    a bucket ahead of the count it belongs to.
    """

    def __init__(
        self,
        name: str,
        window: int = 4096,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        if window < 1:
            raise ValueError("window must hold at least one observation")
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        bounds = tuple(sorted(float(b) for b in buckets))
        if len(set(bounds)) != len(bounds):
            raise ValueError("bucket bounds must be distinct")
        self.name = name
        self.window = window
        self.bucket_bounds = bounds
        self._bucket_counts = [0] * len(bounds)
        self._ring: List[float] = []
        self._next = 0
        self._count = 0
        self._sum = 0.0
        self._max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._sum += value
            if value > self._max:
                self._max = value
            index = bisect_left(self.bucket_bounds, value)
            if index < len(self._bucket_counts):
                self._bucket_counts[index] += 1
            if len(self._ring) < self.window:
                self._ring.append(value)
            else:
                self._ring[self._next] = value
            self._next = (self._next + 1) % self.window

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, ending with the
        implicit ``(inf, lifetime count)`` bucket."""
        with self._lock:
            raw = list(self._bucket_counts)
            total = self._count
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bucket_bounds, raw):
            running += count
            out.append((bound, running))
        out.append((float("inf"), total))
        return out

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> Optional[float]:
        """The ``q``-quantile (0..1) over the recent window, or None when
        nothing was observed.

        Raises:
            ValueError: for a quantile outside [0, 1].
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            if not self._ring:
                return None
            ordered = sorted(self._ring)
        return nearest_rank(ordered, q)

    def summary(self) -> dict:
        """Count, sum, mean, max and the p50/p90/p99 quantiles."""
        with self._lock:
            if not self._ring:
                return {"count": self._count, "sum": self._sum}
            count, total, peak = self._count, self._sum, self._max
            ordered = sorted(self._ring)

        def pick(q: float) -> float:
            return nearest_rank(ordered, q)

        return {
            "count": count,
            "sum": total,
            "mean": total / count,
            "max": peak,
            "p50": pick(0.50),
            "p90": pick(0.90),
            "p99": pick(0.99),
        }


class MetricsRegistry:
    """Named instruments with get-or-create semantics.

    Instrument names are dotted paths (``http.requests.spots``); a name
    is bound to one kind for the registry's lifetime.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _get(self, table: dict, other_tables: tuple, name: str, factory):
        with self._lock:
            instrument = table.get(name)
            if instrument is None:
                for other in other_tables:
                    if name in other:
                        raise ValueError(
                            f"metric {name!r} already registered with a "
                            "different kind"
                        )
                instrument = table[name] = factory(name)
            return instrument

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        return self._get(
            self._counters, (self._gauges, self._histograms), name, Counter
        )

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get(
            self._gauges, (self._counters, self._histograms), name, Gauge
        )

    def histogram(
        self,
        name: str,
        window: int = 4096,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get or create the histogram ``name``."""
        return self._get(
            self._histograms,
            (self._counters, self._gauges),
            name,
            lambda n: Histogram(n, window=window, buckets=buckets),
        )

    def instruments(
        self,
    ) -> Tuple[Dict[str, Counter], Dict[str, Gauge], Dict[str, Histogram]]:
        """Consistent copies of the three instrument tables (for
        exposition renderers that need more than :meth:`snapshot`'s
        JSON reduction, e.g. histogram buckets)."""
        with self._lock:
            return (
                dict(self._counters),
                dict(self._gauges),
                dict(self._histograms),
            )

    @contextmanager
    def time(self, name: str) -> Iterator[None]:
        """Context manager recording elapsed seconds into histogram
        ``name``."""
        histogram = self.histogram(name)
        start = time.perf_counter()
        try:
            yield
        finally:
            histogram.observe(time.perf_counter() - start)

    def snapshot(self) -> dict:
        """All instruments as one JSON-able mapping."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {n: c.value for n, c in sorted(counters.items())},
            "gauges": {n: g.value for n, g in sorted(gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(histograms.items())
            },
        }
