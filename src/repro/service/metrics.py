"""A lightweight in-process metrics registry for the serving layer.

The deployed system (paper section 7.1) runs as a live backend; operating
such a service needs visibility into request rates, snapshot churn and
tail latency.  This module provides the three classic instrument kinds —
:class:`Counter`, :class:`Gauge` and :class:`Histogram` — behind a
:class:`MetricsRegistry` that hands out get-or-create instruments by
name and renders one JSON-able snapshot of everything.

Design constraints:

* stdlib only (the HTTP layer exposes the snapshot at ``/v1/metrics``);
* thread-safe: the HTTP server is threaded and the replay path runs in
  its own thread, so every instrument guards its state with a lock;
* bounded memory: histograms keep a fixed-size window of recent
  observations for quantiles plus exact lifetime count/sum.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional


class Counter:
    """A monotonically increasing counter."""

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter.

        Raises:
            ValueError: for a negative amount.
        """
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (e.g. the snapshot version)."""

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Observation distribution with windowed quantiles.

    Keeps the exact lifetime ``count`` and ``sum`` plus a ring buffer of
    the most recent ``window`` observations; quantiles are computed over
    the window (recent behaviour is what an operator watches).
    """

    def __init__(self, name: str, window: int = 4096):
        if window < 1:
            raise ValueError("window must hold at least one observation")
        self.name = name
        self.window = window
        self._ring: List[float] = []
        self._next = 0
        self._count = 0
        self._sum = 0.0
        self._max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._sum += value
            if value > self._max:
                self._max = value
            if len(self._ring) < self.window:
                self._ring.append(value)
            else:
                self._ring[self._next] = value
            self._next = (self._next + 1) % self.window

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> Optional[float]:
        """The ``q``-quantile (0..1) over the recent window, or None when
        nothing was observed.

        Raises:
            ValueError: for a quantile outside [0, 1].
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            if not self._ring:
                return None
            ordered = sorted(self._ring)
        rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[rank]

    def summary(self) -> dict:
        """Count, sum, mean, max and the p50/p90/p99 quantiles."""
        with self._lock:
            if not self._ring:
                return {"count": self._count, "sum": self._sum}
            count, total, peak = self._count, self._sum, self._max
            ordered = sorted(self._ring)

        def pick(q: float) -> float:
            rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
            return ordered[rank]

        return {
            "count": count,
            "sum": total,
            "mean": total / count,
            "max": peak,
            "p50": pick(0.50),
            "p90": pick(0.90),
            "p99": pick(0.99),
        }


class MetricsRegistry:
    """Named instruments with get-or-create semantics.

    Instrument names are dotted paths (``http.requests.spots``); a name
    is bound to one kind for the registry's lifetime.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _get(self, table: dict, other_tables: tuple, name: str, factory):
        with self._lock:
            instrument = table.get(name)
            if instrument is None:
                for other in other_tables:
                    if name in other:
                        raise ValueError(
                            f"metric {name!r} already registered with a "
                            "different kind"
                        )
                instrument = table[name] = factory(name)
            return instrument

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        return self._get(
            self._counters, (self._gauges, self._histograms), name, Counter
        )

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get(
            self._gauges, (self._counters, self._histograms), name, Gauge
        )

    def histogram(self, name: str, window: int = 4096) -> Histogram:
        """Get or create the histogram ``name``."""
        return self._get(
            self._histograms,
            (self._counters, self._gauges),
            name,
            lambda n: Histogram(n, window=window),
        )

    @contextmanager
    def time(self, name: str) -> Iterator[None]:
        """Context manager recording elapsed seconds into histogram
        ``name``."""
        histogram = self.histogram(name)
        start = time.perf_counter()
        try:
            yield
        finally:
            histogram.observe(time.perf_counter() - start)

    def snapshot(self) -> dict:
        """All instruments as one JSON-able mapping."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {n: c.value for n, c in sorted(counters.items())},
            "gauges": {n: g.value for n, g in sorted(gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(histograms.items())
            },
        }
