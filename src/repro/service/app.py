"""Assembly of the live queue-state service.

One call — :meth:`QueueService.from_day` — turns a day of MDT logs plus
a configured batch engine into the full serving stack the deployed
system runs (paper section 7.1):

1. **batch bootstrap**: tier 1 detects the spot set, tier 2 derives the
   per-spot QCD thresholds (the monitor needs both up front, exactly as
   the production deployment bootstraps from historical days);
2. **live path**: a :class:`StreamingQueueMonitor` re-labels the day
   record by record, publishing finalized slots into a
   :class:`SnapshotStore` through a subscription callback;
3. **serving path**: a :class:`QueueStateServer` exposes the snapshot
   over HTTP with ETag revalidation and TTL response caching, while a
   :class:`StreamReplayer` paces ingestion at a configurable speedup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.engine import QueueAnalyticEngine
from repro.core.thresholds import QcdThresholds
from repro.core.types import TimeSlotGrid
from repro.service.http import QueueStateServer
from repro.service.metrics import MetricsRegistry
from repro.service.replay import StreamReplayer
from repro.service.snapshot import SnapshotStore
from repro.stream.monitor import StreamingQueueMonitor
from repro.trace.log_store import MdtLogStore


@dataclass
class ServiceConfig:
    """Knobs of the serving stack (not of the analytics).

    The resilience knobs (see ``docs/resilience.md``):

    * ``disorder_window_s`` — when positive, a
      :class:`~repro.resilience.ReorderBuffer` with this lateness bound
      fronts the monitor, absorbing out-of-order, duplicated and late
      records;
    * ``checkpoint_dir`` — when set, monitor + snapshot (+ buffer)
      state is checkpointed atomically every
      ``checkpoint_every_records`` consumed records, and an existing
      checkpoint in the directory is restored on startup so the replay
      resumes bit-identically after a kill;
    * ``stale_after_s`` — staleness threshold of the service watchdog
      (surfaced at ``/v1/healthz`` and ``/v1/metrics``).

    The history knobs (see ``docs/history.md``):

    * ``history_dir`` — when set, finalized slot results are persisted
      as durable day segments (:mod:`repro.history`) and the
      ``/v1/history/*`` endpoints come up; the history writer rides in
      the service checkpoint so a kill/restart never loses or
      double-writes a record;
    * ``history_day_of_week`` — 0=Mon..6=Sun of the stream's first
      day; None derives the calendar weekday from the epoch day;
    * ``history_compact_interval_s`` — cadence of the background
      week-level compactor.

    The admission knobs (see ``docs/load.md``):

    * ``max_inflight`` — bound on concurrently handled requests;
      excess requests are shed with ``429 + Retry-After``;
    * ``rate_limit_rps`` / ``rate_burst`` — token-bucket sustained
      rate and burst capacity (None = no rate limiting);
    * ``route_caps`` — per-route concurrency bounds;
    * ``max_connections`` — bound on concurrent connection threads;
    * ``cache_max_entries`` — LRU bound on cached response bodies.
    """

    host: str = "127.0.0.1"
    port: int = 0
    speedup: Optional[float] = 600.0
    cache_ttl_s: float = 1.0
    cache_max_entries: int = 1024
    max_inflight: Optional[int] = None
    rate_limit_rps: Optional[float] = None
    rate_burst: Optional[int] = None
    route_caps: Optional[Dict[str, int]] = None
    max_connections: Optional[int] = None
    grace_s: float = 900.0
    disorder_window_s: float = 0.0
    checkpoint_dir: Optional[str] = None
    checkpoint_every_records: int = 5000
    stale_after_s: float = 30.0
    watchdog_interval_s: float = 1.0
    history_dir: Optional[str] = None
    history_day_of_week: Optional[int] = None
    history_compact_interval_s: float = 300.0


class QueueService:
    """The assembled live service: snapshot store + replay + HTTP."""

    def __init__(
        self,
        store: SnapshotStore,
        monitor: StreamingQueueMonitor,
        replayer: StreamReplayer,
        server: QueueStateServer,
        metrics: MetricsRegistry,
        watchdog=None,
        checkpointer=None,
        history_writer=None,
        history_compactor=None,
        history_engine=None,
    ):
        self.store = store
        self.monitor = monitor
        self.replayer = replayer
        self.server = server
        self.metrics = metrics
        self.watchdog = watchdog
        self.checkpointer = checkpointer
        self.history_writer = history_writer
        self.history_compactor = history_compactor
        self.history_engine = history_engine
        self.resumed_from: Optional[int] = None
        """Stream position restored from a checkpoint, None on cold
        start (set by :meth:`from_day` when a checkpoint was loaded)."""

    @classmethod
    def from_day(
        cls,
        store: MdtLogStore,
        engine: QueueAnalyticEngine,
        config: Optional[ServiceConfig] = None,
        grid: Optional[TimeSlotGrid] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
    ) -> "QueueService":
        """Bootstrap the full stack from one day of logs.

        Args:
            store: the day's MDT logs (simulated or loaded from CSV).
            engine: a configured batch engine — or any engine-shaped
                runner such as
                :class:`~repro.parallel.runner.ParallelEngineRunner`;
                runs tiers 1 and 2 once to obtain the spot set and
                per-spot thresholds.
            config: serving knobs.
            grid: slot grid; defaults to the engine's daily default.
            metrics: registry to record into; pass a runner's registry
                so bootstrap parallelism stats surface at
                ``/v1/metrics`` (one is created when omitted).
            tracer: optional :class:`repro.obs.Tracer`; the bootstrap
                runs under one ``pipeline.bootstrap`` trace and the
                replayer emits per-window ``stream.window`` traces.
                Defaults to the engine's tracer.
        """
        config = config or ServiceConfig()
        metrics = metrics if metrics is not None else MetricsRegistry()
        if tracer is None:
            from repro.obs.tracer import NULL_TRACER

            tracer = getattr(engine, "tracer", None) or NULL_TRACER
        else:
            # Share one tracer so the engine's stage spans nest under
            # the bootstrap root opened here.
            engine.tracer = tracer

        with metrics.time("bootstrap.seconds"), tracer.trace(
            "pipeline.bootstrap"
        ) as root:
            with tracer.span("stage.ingest", mode="store") as span:
                span.set(records=len(store))
            cleaned = engine.preprocess(store)
            detection = engine.detect_spots(cleaned)
            analyses = engine.disambiguate(cleaned, detection, grid)
            thresholds: Dict[str, QcdThresholds] = {
                spot_id: analysis.thresholds
                for spot_id, analysis in analyses.items()
                if analysis.thresholds is not None
            }
            if grid is None:
                lo, hi = cleaned.time_span
                day_start = lo - (lo % 86400.0)
                grid = TimeSlotGrid(
                    day_start,
                    max(hi, day_start + 86400.0),
                    engine.config.slot_seconds,
                )
            records = sorted(cleaned.iter_records(), key=lambda r: r.ts)
            root.set(spots=len(detection.spots), records=len(records))

        metrics.gauge("bootstrap.spots").set(len(detection.spots))
        metrics.gauge("bootstrap.records").set(len(records))

        snapshot = SnapshotStore(detection.spots, grid, metrics=metrics)
        monitor = StreamingQueueMonitor(
            spots=detection.spots,
            thresholds=thresholds,
            grid=grid,
            projection=engine.projection,
            amplification=engine.amplification,
            assign_radius_m=engine.config.assign_radius_m,
            grace_s=config.grace_s,
        )
        monitor.subscribe(lambda results: snapshot.apply(results))

        history_writer = None
        history_compactor = None
        history_engine = None
        if config.history_dir is not None:
            from repro.history import (
                HistoryCompactor,
                HistoryQueryEngine,
                HistoryWriter,
                SegmentStore,
            )

            segment_store = SegmentStore(config.history_dir, metrics=metrics)
            history_writer = HistoryWriter(
                segment_store,
                detection.spots,
                grid,
                day_of_week=config.history_day_of_week,
                metrics=metrics,
                tracer=tracer,
            )
            monitor.subscribe(history_writer.absorb)
            history_compactor = HistoryCompactor(
                segment_store,
                interval_s=config.history_compact_interval_s,
                metrics=metrics,
                tracer=tracer,
            )
            history_engine = HistoryQueryEngine(
                segment_store, metrics=metrics, tracer=tracer
            )

        reorder = None
        if config.disorder_window_s > 0:
            from repro.resilience import ReorderBuffer

            reorder = ReorderBuffer(
                config.disorder_window_s, metrics=metrics
            )
        checkpointer = None
        resumed_from = None
        if config.checkpoint_dir is not None:
            from repro.resilience import CheckpointManager, ServiceCheckpointer

            checkpointer = ServiceCheckpointer(
                CheckpointManager(config.checkpoint_dir, metrics=metrics),
                monitor,
                snapshot,
                reorder=reorder,
                history=history_writer,
                every_records=config.checkpoint_every_records,
            )
            resumed_from = checkpointer.restore_latest()

        replayer = StreamReplayer(
            monitor,
            records,
            speedup=config.speedup,
            metrics=metrics,
            reorder=reorder,
            checkpointer=checkpointer,
            skip_records=resumed_from or 0,
            tracer=tracer,
        )
        from repro.resilience import ServiceWatchdog

        watchdog = ServiceWatchdog(
            snapshot,
            metrics=metrics,
            stale_after_s=config.stale_after_s,
            interval_s=config.watchdog_interval_s,
        )
        server = QueueStateServer(
            snapshot,
            metrics=metrics,
            host=config.host,
            port=config.port,
            cache_ttl_s=config.cache_ttl_s,
            cache_max_entries=config.cache_max_entries,
            max_inflight=config.max_inflight,
            rate_limit=config.rate_limit_rps,
            rate_burst=config.rate_burst,
            route_caps=config.route_caps,
            max_connections=config.max_connections,
            watchdog=watchdog,
            history=history_engine,
            tracer=tracer,
        )
        service = cls(
            snapshot,
            monitor,
            replayer,
            server,
            metrics,
            watchdog=watchdog,
            checkpointer=checkpointer,
            history_writer=history_writer,
            history_compactor=history_compactor,
            history_engine=history_engine,
        )
        service.resumed_from = resumed_from
        return service

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Start serving and begin the paced replay in the background."""
        self.server.start()
        if self.watchdog is not None:
            self.watchdog.start()
        if self.history_compactor is not None:
            self.history_compactor.start()
        self.replayer.start()

    def stop(self) -> None:
        self.replayer.stop()
        if self.history_writer is not None:
            # One last flush so segments cover everything finalized
            # before shutdown, then fold them into the aggregate.
            self.history_writer.flush_all()
        if self.history_compactor is not None:
            self.history_compactor.stop(final_pass=True)
        if self.watchdog is not None:
            self.watchdog.stop()
        self.server.stop()

    def warm(self) -> int:
        """Replay the whole day synchronously (no pacing, no server).

        Used by benchmarks and tests that need a converged snapshot;
        returns the number of finalized spot-slots.
        """
        pacing, self.replayer.speedup = self.replayer.speedup, None
        try:
            return self.replayer.run()
        finally:
            self.replayer.speedup = pacing
