"""Threaded HTTP/JSON API over a :class:`SnapshotStore`.

Stdlib only (``http.server.ThreadingHTTPServer``); the endpoint set
mirrors what the paper's frontend queries (section 7.1):

* ``GET /v1/spots`` — every spot with its current queue context;
* ``GET /v1/spots/{id}/slots`` — one spot's finalized slot history;
* ``GET /v1/citywide`` — live queue-type proportions (Table 7);
* ``GET /v1/healthz`` — liveness plus snapshot version and uptime;
* ``GET /v1/metrics`` — the metrics registry snapshot.

When the service runs with a durable history
(:mod:`repro.history`), three more endpoints come up:

* ``GET /v1/spots/{id}/history`` — one spot's multi-day slot records,
  paginated (``page``/``per_page``), optionally downsampled
  (``downsample=k`` folds k consecutive slots) or summarized as a
  day-of-week × slot profile (``view=profile``);
* ``GET /v1/history/citywide`` — per-day citywide summaries over a
  ``start_day``/``end_day`` epoch-day range;
* ``GET /v1/history/patterns`` — the week-level section-6 numbers
  (per-zone spot counts and C1–C4 mixes per day of week).

History endpoints carry their own strong ETag (``"h<version>"``, the
segment store's write version) and share the TTL body cache, keyed on
path *plus query string*.

Snapshot-derived endpoints carry a strong ``ETag`` equal to the snapshot
version; a conditional ``If-None-Match`` request is answered ``304 Not
Modified`` until new slot results advance the version.  Serialized bodies
are cached per endpoint with a TTL, keyed on the version, so a hot
endpoint serves bytes without re-serializing under load.

**Degraded serving.**  Read endpoints never answer 5xx: the server
remembers the last successfully serialized body per path and, when a
payload build raises (a fault mid-ingest, a poisoned snapshot), serves
that last-good body with an ``X-Degraded: stale`` header instead of an
error — the behaviour a city-facing frontend wants from a telemetry
backend.  Degradations are counted in ``http.degraded``; pair the
server with a :class:`~repro.resilience.ServiceWatchdog` so staleness
is visible at ``/v1/metrics`` and ``/v1/healthz`` while the ingest
path recovers.

**Admission control.**  With ``max_inflight`` / ``rate_limit`` /
``route_caps`` set, every route except ``/v1/healthz`` passes through
an :class:`~repro.service.admission.AdmissionController` before any
payload work; a request over budget is shed with ``429 Too Many
Requests`` plus a ``Retry-After`` hint (never a 5xx, never an
unbounded queue).  ``max_connections`` additionally bounds how many
connection-handling threads the listener will run at once — an excess
connection is answered with a raw 429 and closed before a handler
thread parses anything.  See ``docs/load.md`` for the full contract.
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional, Tuple
from urllib.parse import parse_qs

from repro.service.admission import AdmissionController
from repro.service.metrics import MetricsRegistry
from repro.service.snapshot import SnapshotStore

#: Routes never subjected to admission control: liveness probes must
#: keep answering while the service sheds load (that is their job).
ADMISSION_EXEMPT_ROUTES = frozenset({"healthz"})

#: Default bound on distinct cached bodies (see :class:`ResponseCache`).
DEFAULT_CACHE_ENTRIES = 1024


class _BadQuery(ValueError):
    """A request carried an invalid query parameter (HTTP 400)."""


def _query_int(params: Dict[str, list], name: str, default=None):
    """The last occurrence of an integer query parameter."""
    values = params.get(name)
    if not values:
        return default
    try:
        return int(values[-1])
    except ValueError:
        raise _BadQuery(f"{name} must be an integer") from None


@dataclass
class Response:
    """One materialized HTTP response."""

    status: int
    body: bytes = b""
    etag: Optional[str] = None
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)


def _json_body(payload: dict) -> bytes:
    return json.dumps(payload, sort_keys=True).encode("utf-8")


class ResponseCache:
    """Bounded per-path TTL cache of serialized response bodies.

    An entry is served only while (a) the snapshot version it was built
    from is still current and (b) its TTL has not expired; either
    condition failing falls through to re-serialization.

    Keys include the query string for history routes, so hostile or
    merely diverse query mixes would grow the table without bound; the
    cache therefore holds at most ``max_entries`` bodies and evicts
    least-recently-used ones, reporting each eviction through
    ``on_evict`` (the server counts them in ``http.cache_evictions``).
    """

    def __init__(
        self,
        ttl_s: float,
        max_entries: int = DEFAULT_CACHE_ENTRIES,
        on_evict: Optional[Callable[[int], None]] = None,
    ):
        if ttl_s < 0:
            raise ValueError("ttl must be non-negative")
        if max_entries < 1:
            raise ValueError("max_entries must hold at least one body")
        self.ttl_s = float(ttl_s)
        self.max_entries = int(max_entries)
        self._on_evict = on_evict
        self._entries: "OrderedDict[str, Tuple[int, float, bytes]]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self.evictions = 0

    def get(self, path: str, version: int) -> Optional[bytes]:
        if self.ttl_s == 0:
            return None
        with self._lock:
            entry = self._entries.get(path)
            if entry is None:
                return None
            cached_version, expires, body = entry
            if cached_version != version or time.monotonic() >= expires:
                del self._entries[path]
                return None
            self._entries.move_to_end(path)
            return body

    def put(self, path: str, version: int, body: bytes) -> None:
        if self.ttl_s == 0:
            return
        evicted = 0
        with self._lock:
            self._entries[path] = (
                version,
                time.monotonic() + self.ttl_s,
                body,
            )
            self._entries.move_to_end(path)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                evicted += 1
            self.evictions += evicted
        if evicted and self._on_evict is not None:
            self._on_evict(evicted)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class _Handler(BaseHTTPRequestHandler):
    """Thin shim: delegates to :meth:`QueueStateServer.respond`."""

    protocol_version = "HTTP/1.1"
    server_version = "taxiqueue"
    # Headers and body go out as separate writes; without TCP_NODELAY the
    # Nagle/delayed-ACK interaction stalls keep-alive throughput at
    # ~25 req/s per connection.
    disable_nagle_algorithm = True

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        app: "QueueStateServer" = self.server.app  # type: ignore[attr-defined]
        response = app.respond(
            self.path, if_none_match=self.headers.get("If-None-Match")
        )
        self.send_response(response.status)
        if response.etag is not None:
            self.send_header("ETag", response.etag)
        for name, value in response.headers.items():
            self.send_header(name, value)
        if response.status == 304:
            self.send_header("Content-Length", "0")
            self.end_headers()
            return
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.body)))
        self.end_headers()
        self.wfile.write(response.body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Silence per-request stderr logging; metrics cover it."""


#: Raw shed answer for connections over the connection budget; sent
#: before any request parsing, so it costs one syscall.
_CONNECTION_SHED = (
    b"HTTP/1.1 429 Too Many Requests\r\n"
    b"Retry-After: 1\r\n"
    b"Content-Length: 0\r\n"
    b"Connection: close\r\n\r\n"
)


class _BoundedThreadingHTTPServer(ThreadingHTTPServer):
    """A listener with a hard cap on concurrent connection threads.

    ``ThreadingHTTPServer`` spawns one thread per accepted connection
    and never says no; with keep-alive clients that is an unbounded
    thread budget.  When the owning server sets ``connection_slots``,
    a connection that finds no free slot is answered with a canned 429
    and closed *before* a handler is constructed — the accept loop
    never blocks and thread count stays bounded.
    """

    daemon_threads = True
    request_queue_size = 128  # listen(2) backlog
    connection_slots: Optional[threading.BoundedSemaphore] = None

    def process_request_thread(self, request, client_address):
        slots = self.connection_slots
        if slots is None:
            super().process_request_thread(request, client_address)
            return
        if not slots.acquire(blocking=False):
            app = getattr(self, "app", None)
            if app is not None:
                app.metrics.counter("http.shed").inc()
                app.metrics.counter("http.shed.connection").inc()
            try:
                request.sendall(_CONNECTION_SHED)
            except OSError:
                pass
            self.shutdown_request(request)
            return
        try:
            super().process_request_thread(request, client_address)
        finally:
            slots.release()


class QueueStateServer:
    """The serving front of the live queue-state subsystem.

    Args:
        store: the snapshot store to serve.
        metrics: registry instrumented with request counts, cache
            hits/misses and request latency; also exposed at
            ``/v1/metrics``.
        host, port: bind address (port 0 picks a free port).
        cache_ttl_s: per-endpoint TTL of serialized bodies (0 disables).
        watchdog: optional freshness watchdog; when set, its staleness
            reading is included in the ``/v1/healthz`` payload.
        history: optional
            :class:`~repro.history.HistoryQueryEngine`; enables the
            ``/v1/history/*`` and ``/v1/spots/{id}/history`` routes
            (404 without it).
        cache_max_entries: LRU bound on distinct cached bodies.
        max_inflight: global bound on concurrently handled requests;
            excess requests are shed with 429 (None = unbounded).
        rate_limit: sustained admitted requests/second through a token
            bucket (None = no rate limiting).
        rate_burst: token-bucket capacity override (defaults to one
            second's worth of tokens).
        route_caps: per-route concurrency bounds, keyed on route names
            (``spots``, ``citywide``, ``spot_slots``, ...).
        max_connections: bound on concurrent connection-handling
            threads; excess connections get a canned 429 and are
            closed unparsed (None = unbounded, stdlib behaviour).
        tracer: optional :class:`repro.obs.Tracer`; when set, each
            request runs under an ``http.request`` trace carrying the
            route, status and shed reason.
    """

    def __init__(
        self,
        store: SnapshotStore,
        metrics: Optional[MetricsRegistry] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_ttl_s: float = 1.0,
        watchdog=None,
        history=None,
        cache_max_entries: int = DEFAULT_CACHE_ENTRIES,
        max_inflight: Optional[int] = None,
        rate_limit: Optional[float] = None,
        rate_burst: Optional[int] = None,
        route_caps: Optional[Dict[str, int]] = None,
        max_connections: Optional[int] = None,
        tracer=None,
    ):
        self.store = store
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # The eviction counter is created lazily (first eviction) so a
        # server that never overflows its cache leaves the instrument
        # set — and the golden Prometheus exposition — untouched.
        self.cache = ResponseCache(
            cache_ttl_s,
            max_entries=cache_max_entries,
            on_evict=lambda n: self.metrics.counter(
                "http.cache_evictions"
            ).inc(n),
        )
        self.watchdog = watchdog
        self.history = history
        if tracer is None:
            from repro.obs.tracer import NULL_TRACER

            tracer = NULL_TRACER
        self.tracer = tracer
        self.admission: Optional[AdmissionController] = None
        if (
            max_inflight is not None
            or rate_limit is not None
            or route_caps
        ):
            self.admission = AdmissionController(
                max_inflight=max_inflight,
                rate_limit=rate_limit,
                burst=rate_burst,
                route_caps=route_caps,
                metrics=self.metrics,
            )
        self._last_good: Dict[str, bytes] = {}
        self._last_good_lock = threading.Lock()
        self._httpd = _BoundedThreadingHTTPServer((host, port), _Handler)
        if max_connections is not None:
            if max_connections < 1:
                raise ValueError("max_connections must be >= 1")
            self._httpd.connection_slots = threading.BoundedSemaphore(
                max_connections
            )
        self._httpd.app = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._started_at = time.monotonic()

    # -- lifecycle ---------------------------------------------------------------

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        """Serve in a daemon thread (idempotent)."""
        if self._thread is not None:
            return
        self._started_at = time.monotonic()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="queue-state-http",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        """Shut the listener down and join the serving thread."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    # -- routing -----------------------------------------------------------------

    def respond(
        self, path: str, if_none_match: Optional[str] = None
    ) -> Response:
        """Materialize the response for one GET (socket-free, testable)."""
        path, _, query = path.partition("?")
        path = path.rstrip("/") or "/"
        route = self._route_name(path)
        with self.metrics.time("http.request_seconds"), self.tracer.trace(
            "http.request", route=route
        ) as span:
            response = self._admitted_route(path, route, if_none_match, query)
            span.set(status=response.status)
            if response.status == 429:
                span.set(shed=response.headers.get("X-Shed-Reason"))
        self.metrics.counter(f"http.requests.{route}").inc()
        self.metrics.counter(f"http.responses.{response.status}").inc()
        return response

    def _admitted_route(
        self, path: str, route: str, if_none_match: Optional[str], query: str
    ) -> Response:
        """Admission gate in front of the route handlers (429 on shed)."""
        admission = self.admission
        if admission is None or route in ADMISSION_EXEMPT_ROUTES:
            return self._guarded_route(path, if_none_match, query)
        decision = admission.admit(route)
        if not decision.admitted:
            return self._shed_response(decision)
        try:
            return self._guarded_route(path, if_none_match, query)
        finally:
            admission.release(route)

    def _guarded_route(
        self, path: str, if_none_match: Optional[str], query: str
    ) -> Response:
        try:
            return self._route(path, if_none_match, query)
        except Exception:
            # Reads must never 5xx; fall back to the freshest body
            # this path ever served (see "Degraded serving" above).
            return self._degraded_response(path)

    def _shed_response(self, decision) -> Response:
        """429 + Retry-After: the explicit backpressure answer."""
        body = _json_body(
            {
                "error": "server overloaded, retry later",
                "reason": decision.reason,
                "retry_after_s": round(decision.retry_after_s, 3),
            }
        )
        return Response(
            429,
            body,
            headers={
                "Retry-After": decision.retry_after_header,
                "X-Shed-Reason": decision.reason or "overload",
            },
        )

    def _route_name(self, path: str) -> str:
        parts = path.strip("/").split("/")
        if len(parts) == 4 and parts[:2] == ["v1", "spots"]:
            return "spot_history" if parts[3] == "history" else "spot_slots"
        if len(parts) == 3 and parts[:2] == ["v1", "history"]:
            return f"history_{parts[2]}"
        if len(parts) == 2 and parts[0] == "v1":
            return parts[1]
        return "unknown"

    def _route(
        self, path: str, if_none_match: Optional[str], query: str = ""
    ) -> Response:
        if path == "/v1/healthz":
            return Response(200, _json_body(self._health_payload()))
        if path == "/v1/metrics":
            return self._metrics_response(query)
        if path == "/v1/spots":
            return self._snapshot_response(
                path, if_none_match, self.store.spots_payload
            )
        if path == "/v1/citywide":
            return self._snapshot_response(
                path, if_none_match, self.store.citywide_payload
            )
        parts = path.strip("/").split("/")
        if (
            len(parts) == 4
            and parts[:2] == ["v1", "spots"]
            and parts[3] == "slots"
        ):
            spot_id = parts[2]
            return self._snapshot_response(
                path,
                if_none_match,
                lambda: self.store.spot_slots_payload(spot_id),
            )
        if (
            len(parts) == 4
            and parts[:2] == ["v1", "spots"]
            and parts[3] == "history"
        ):
            return self._spot_history_response(
                parts[2], path, query, if_none_match
            )
        if len(parts) == 3 and parts[:2] == ["v1", "history"]:
            if parts[2] == "citywide":
                return self._history_citywide_response(
                    path, query, if_none_match
                )
            if parts[2] == "patterns":
                return self._history_response(
                    path, query, if_none_match, lambda: self.history.patterns()
                )
        return Response(
            404, _json_body({"error": f"no such endpoint: {path}"})
        )

    # -- history routing ---------------------------------------------------------

    def _spot_history_response(
        self, spot_id: str, path: str, query: str, if_none_match: Optional[str]
    ) -> Response:
        params = parse_qs(query)
        view = params.get("view", ["records"])[-1]
        if view == "profile":
            return self._history_response(
                path,
                query,
                if_none_match,
                lambda: self.history.spot_profile(spot_id),
            )
        if view != "records":
            return Response(
                400, _json_body({"error": f"unknown view: {view!r}"})
            )

        def payload():
            from repro.history.query import DEFAULT_PER_PAGE

            return self.history.spot_history(
                spot_id,
                start_day=_query_int(params, "start_day"),
                end_day=_query_int(params, "end_day"),
                page=_query_int(params, "page", 1),
                per_page=_query_int(params, "per_page", DEFAULT_PER_PAGE),
                downsample=_query_int(params, "downsample", 1),
            )

        return self._history_response(path, query, if_none_match, payload)

    def _history_citywide_response(
        self, path: str, query: str, if_none_match: Optional[str]
    ) -> Response:
        params = parse_qs(query)
        return self._history_response(
            path,
            query,
            if_none_match,
            lambda: self.history.citywide(
                start_day=_query_int(params, "start_day"),
                end_day=_query_int(params, "end_day"),
            ),
        )

    def _history_response(
        self, path: str, query: str, if_none_match: Optional[str], payload_fn
    ) -> Response:
        """ETag + TTL-cache wrapper of the history routes.

        The ETag is the segment store's write version (prefixed ``h`` so
        it can never collide with a snapshot ETag) and the cache key
        includes the query string — same version, different pagination
        must not share a body.
        """
        if self.history is None:
            return Response(
                404,
                _json_body(
                    {"error": "history not enabled (serve --history-dir)"}
                ),
            )
        version = self.history.version
        etag = f'"h{version}"'
        if if_none_match is not None and etag in (
            tag.strip() for tag in if_none_match.split(",")
        ):
            self.metrics.counter("http.not_modified").inc()
            return Response(304, etag=etag)
        cache_key = f"{path}?{query}" if query else path
        body = self.cache.get(cache_key, version)
        if body is not None:
            self.metrics.counter("http.cache_hits").inc()
            return Response(200, body, etag=etag)
        self.metrics.counter("http.cache_misses").inc()
        try:
            payload = payload_fn()
        except _BadQuery as exc:
            return Response(400, _json_body({"error": str(exc)}))
        except ValueError as exc:
            # QueryError from the engine: invalid pagination/downsample.
            return Response(400, _json_body({"error": str(exc)}))
        if payload is None:
            return Response(
                404, _json_body({"error": "spot unknown to the history"})
            )
        body = _json_body(payload)
        self.cache.put(cache_key, version, body)
        with self._last_good_lock:
            self._last_good[path] = body
        return Response(200, body, etag=etag)

    def _metrics_response(self, query: str) -> Response:
        """``/v1/metrics``: JSON by default, ``?format=prometheus`` for
        text exposition format 0.0.4 (see :mod:`repro.obs.prometheus`)."""
        fmt = parse_qs(query).get("format", ["json"])[-1]
        if fmt == "prometheus":
            from repro.obs.prometheus import render_prometheus

            return Response(
                200,
                render_prometheus(self.metrics).encode("utf-8"),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )
        if fmt != "json":
            return Response(
                400,
                _json_body(
                    {"error": f"unknown metrics format: {fmt!r}"}
                ),
            )
        return Response(200, _json_body(self.metrics.snapshot()))

    def _snapshot_response(
        self, path: str, if_none_match: Optional[str], payload_fn
    ) -> Response:
        """ETag + TTL-cache wrapper shared by snapshot-derived routes.

        The ETag of a 200 always equals the body's own ``snapshot``
        field: the version is re-read *from the built payload* (which
        the store assembles under its lock), so a publish racing the
        build can never pair a newer body with an older tag — the
        stress suite pins this.  A 304's tag was the store version at
        the moment it was read.
        """
        version = self.store.version
        etag = f'"{version}"'
        if if_none_match is not None and etag in (
            tag.strip() for tag in if_none_match.split(",")
        ):
            self.metrics.counter("http.not_modified").inc()
            return Response(304, etag=etag)
        body = self.cache.get(path, version)
        if body is not None:
            self.metrics.counter("http.cache_hits").inc()
            return Response(200, body, etag=etag)
        self.metrics.counter("http.cache_misses").inc()
        try:
            payload = payload_fn()
            if payload is None:
                return Response(404, _json_body({"error": "unknown spot id"}))
            body = _json_body(payload)
        except Exception:
            return self._degraded_response(path)
        built_version = payload.get("snapshot", version)
        self.cache.put(path, built_version, body)
        with self._last_good_lock:
            self._last_good[path] = body
        return Response(200, body, etag=f'"{built_version}"')

    def _degraded_response(self, path: str) -> Response:
        """Serve the last-good body for ``path`` (or an explicit empty
        degraded payload) instead of a 5xx."""
        self.metrics.counter("http.degraded").inc()
        with self._last_good_lock:
            body = self._last_good.get(path)
        if body is None:
            body = _json_body({"snapshot": 0, "degraded": True})
        return Response(200, body, headers={"X-Degraded": "stale"})

    def _health_payload(self) -> dict:
        payload = {
            "status": "ok",
            "snapshot": self.store.version,
            "spots": len(self.store.spot_ids),
            "uptime_s": round(time.monotonic() - self._started_at, 3),
        }
        if self.watchdog is not None:
            staleness = self.watchdog.check()
            payload["staleness_s"] = round(staleness, 3)
            payload["stale"] = staleness > self.watchdog.stale_after_s
        return payload
