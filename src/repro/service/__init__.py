"""Live queue-state serving layer.

The paper's deployed system (section 7.1) exposes tier-1/tier-2 results
to a frontend over a live backend; this package is that serving side for
the reproduction:

* :mod:`repro.service.snapshot` — a versioned :class:`SnapshotStore` of
  the current spot set and per-spot slot labels, updated incrementally
  from :class:`~repro.stream.StreamingQueueMonitor` callbacks;
* :mod:`repro.service.http` — a stdlib threaded HTTP/JSON API
  (``/v1/spots``, ``/v1/spots/{id}/slots``, ``/v1/citywide``,
  ``/v1/healthz``, ``/v1/metrics``) with ETag revalidation and TTL
  response caching;
* :mod:`repro.service.admission` — token-bucket rate limiting,
  in-flight budgets and per-route caps; over-budget requests are shed
  with ``429 + Retry-After`` (see ``docs/load.md``);
* :mod:`repro.service.metrics` — counters, gauges and latency
  histograms instrumented across server, store and ingest;
* :mod:`repro.service.replay` — paced replay of a recorded day into the
  monitor at a configurable speedup;
* :mod:`repro.service.app` — :class:`QueueService`, the one-call
  assembly used by ``taxiqueue serve``.

See ``docs/service.md`` for endpoint and snapshot semantics.
"""

from repro.service.admission import (
    AdmissionController,
    AdmissionDecision,
    TokenBucket,
)
from repro.service.app import QueueService, ServiceConfig
from repro.service.http import QueueStateServer, Response, ResponseCache
from repro.service.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.service.replay import StreamReplayer
from repro.service.snapshot import SnapshotStore

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "TokenBucket",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QueueService",
    "QueueStateServer",
    "Response",
    "ResponseCache",
    "ServiceConfig",
    "SnapshotStore",
    "StreamReplayer",
]
