"""Accelerated replay of a day's records into the streaming monitor.

The live system consumes an operator feed in real time; offline we have
a recorded (or simulated) day.  :class:`StreamReplayer` bridges the two:
it feeds time-ordered records into a
:class:`~repro.stream.StreamingQueueMonitor`, pacing wall-clock sleeps
so one stream-second takes ``1/speedup`` real seconds.  With
``speedup=None`` the replay runs flat out (warm-up, benchmarks, tests).

The monitor's subscribers (the snapshot store) receive finalized slots
as a side effect of ``feed``; the replayer itself only paces, counts and
exposes progress through the metrics registry.
"""

from __future__ import annotations

import threading
import time
from typing import Optional, Sequence

from repro.service.metrics import MetricsRegistry
from repro.stream.monitor import StreamingQueueMonitor
from repro.trace.record import MdtRecord

#: Never sleep longer than this per gap, whatever the speedup — a dead
#: stretch in the feed should not freeze the serving layer's progress
#: reporting for minutes.
MAX_SLEEP_S = 5.0


class StreamReplayer:
    """Drive a monitor from recorded history at a configurable speedup.

    Args:
        monitor: the streaming monitor to feed (subscribers attached).
        records: the day's records; sorted by timestamp internally.
        speedup: stream-seconds per wall-second (e.g. 600 replays a day
            in ~2.4 minutes); None disables pacing entirely.
        metrics: optional registry; maintains ``replay.records`` /
            ``replay.slots_finalized`` counters and the
            ``replay.stream_clock`` gauge.
    """

    def __init__(
        self,
        monitor: StreamingQueueMonitor,
        records: Sequence[MdtRecord],
        speedup: Optional[float] = 600.0,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if speedup is not None and speedup <= 0:
            raise ValueError("speedup must be positive (or None)")
        self.monitor = monitor
        self.records = sorted(records, key=lambda r: r.ts)
        self.speedup = speedup
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.finished = threading.Event()
        """Set once the full stream was replayed and finalized; stays
        unset when the replay is stopped early."""

    # -- synchronous core --------------------------------------------------------

    def run(self) -> int:
        """Replay every record (blocking); returns finalized-slot count.

        The monitor's :meth:`finish` is called at end of stream, so the
        tail slots (still inside the grace period) are flushed and the
        snapshot converges to the batch result.
        """
        finalized = 0
        records_counter = self.metrics.counter("replay.records")
        slots_counter = self.metrics.counter("replay.slots_finalized")
        clock_gauge = self.metrics.gauge("replay.stream_clock")
        previous_ts: Optional[float] = None
        for record in self.records:
            if self._stop.is_set():
                break
            if self.speedup is not None and previous_ts is not None:
                gap = (record.ts - previous_ts) / self.speedup
                if gap > 1e-3:
                    self._stop.wait(min(gap, MAX_SLEEP_S))
            previous_ts = record.ts
            closed = len(self.monitor.feed(record))
            if closed:
                slots_counter.inc(closed)
            finalized += closed
            records_counter.inc()
            clock_gauge.set(record.ts)
        if not self._stop.is_set():
            closed = len(self.monitor.finish())
            if closed:
                slots_counter.inc(closed)
            finalized += closed
            self.finished.set()
        return finalized

    # -- background operation ----------------------------------------------------

    def start(self) -> threading.Thread:
        """Run the replay in a daemon thread (idempotent)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.run, name="queue-state-replay", daemon=True
            )
            self._thread.start()
        return self._thread

    def stop(self) -> None:
        """Ask a background replay to stop and wait for it."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
