"""Accelerated replay of a day's records into the streaming monitor.

The live system consumes an operator feed in real time; offline we have
a recorded (or simulated) day.  :class:`StreamReplayer` bridges the two:
it feeds records into a :class:`~repro.stream.StreamingQueueMonitor`,
pacing wall-clock sleeps so one stream-second takes ``1/speedup`` real
seconds.  With ``speedup=None`` the replay runs flat out (warm-up,
benchmarks, tests).

**Ordering contract.**  Pacing and the monitor's slot clock assume a
monotonically non-decreasing timestamp sequence.  A list input is
sorted up front (as before); a *live* iterator cannot be sorted, so a
disordered feed must be fronted by a
:class:`~repro.resilience.ReorderBuffer` (the ``reorder`` argument):
raw records then pass through the buffer and the monitor — and the
pacer — only ever see the buffer's ordered releases.  Without a buffer,
an out-of-order record is fed as-is but the pacing clock refuses to
move backwards (otherwise one stale timestamp would first burst, then
over-sleep the gap back to the present — the silent mis-pacing this
contract exists to prevent) and the ``replay.nonmonotonic_records``
counter records the violation.

**Durability.**  A :class:`~repro.resilience.ServiceCheckpointer` can
be attached; the replayer calls it at record boundaries and, after a
restore, fast-forwards ``skip_records`` source records so the resumed
run continues bit-identically.  An exception escaping the feed loop
(e.g. an injected crash from :class:`~repro.resilience.ChaosStream`)
is captured in :attr:`error` and counted in ``replay.crashes`` instead
of killing the thread silently; the serving layer keeps answering from
the last-good snapshot.

The monitor's subscribers (the snapshot store) receive finalized slots
as a side effect of ``feed``; the replayer itself only paces, counts and
exposes progress through the metrics registry.
"""

from __future__ import annotations

import threading
import time
from typing import Iterable, Optional, Sequence, TYPE_CHECKING

from repro.service.metrics import MetricsRegistry
from repro.stream.monitor import StreamingQueueMonitor
from repro.trace.record import MdtRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.resilience.checkpoint import ServiceCheckpointer
    from repro.resilience.reorder import ReorderBuffer

#: Never sleep longer than this per gap, whatever the speedup — a dead
#: stretch in the feed should not freeze the serving layer's progress
#: reporting for minutes.
MAX_SLEEP_S = 5.0


class _WindowAccounting:
    """Per-window stage-second accumulator for the replay trace.

    A streaming "window" runs from one slot-finalization event to the
    next; there is no open-span interval to bracket with ``with``
    blocks, so the replayer accumulates stage seconds here and emits
    the finished window as one pre-measured trace
    (:meth:`~repro.obs.Tracer.emit_window`).  Sleep time spent pacing
    is deliberately *not* accounted — the trace shows work, not waits.
    """

    __slots__ = (
        "tracer",
        "has_reorder",
        "has_checkpointer",
        "index",
        "start_wall",
        "records",
        "slots",
        "ingest_s",
        "reorder_s",
        "publish_s",
        "checkpoint_s",
    )

    def __init__(self, tracer, has_reorder: bool, has_checkpointer: bool):
        self.tracer = tracer
        self.has_reorder = has_reorder
        self.has_checkpointer = has_checkpointer
        self.index = 0
        self._reset()

    def _reset(self) -> None:
        self.start_wall = time.time()
        self.records = 0
        self.slots = 0
        self.ingest_s = 0.0
        self.reorder_s = 0.0
        self.publish_s = 0.0
        self.checkpoint_s = 0.0

    def emit(self) -> None:
        """Flush the window as one ``stream.window`` trace."""
        from repro.obs.tracer import worker_span

        at = self.start_wall
        children = []
        if self.has_reorder:
            children.append(
                worker_span("stage.reorder", at, self.reorder_s, {})
            )
        children.append(
            worker_span(
                "stage.ingest", at, self.ingest_s, {"records": self.records}
            )
        )
        children.append(
            worker_span(
                "stage.publish", at, self.publish_s, {"slots": self.slots}
            )
        )
        if self.has_checkpointer:
            children.append(
                worker_span("stage.checkpoint", at, self.checkpoint_s, {})
            )
        total = (
            self.ingest_s + self.reorder_s + self.publish_s
            + self.checkpoint_s
        )
        self.tracer.emit_window(
            "stream.window",
            at,
            total,
            {
                "window": self.index,
                "records": self.records,
                "slots": self.slots,
            },
            children,
        )
        self.index += 1
        self._reset()


class StreamReplayer:
    """Drive a monitor from recorded history at a configurable speedup.

    Args:
        monitor: the streaming monitor to feed (subscribers attached).
        records: the day's records.  A sequence is sorted by timestamp
            internally; any other iterable is consumed lazily and must
            either be time-ordered or fronted by ``reorder``.
        speedup: stream-seconds per wall-second (e.g. 600 replays a day
            in ~2.4 minutes); None disables pacing entirely.
        metrics: optional registry; maintains ``replay.records`` /
            ``replay.slots_finalized`` / ``replay.nonmonotonic_records``
            / ``replay.crashes`` counters and the
            ``replay.stream_clock`` gauge.
        reorder: optional disorder-tolerant ingest buffer; raw records
            pass through it and only its ordered releases reach the
            monitor and the pacer.
        checkpointer: optional service checkpointer, invoked at record
            boundaries (see its ``every_records`` cadence).
        skip_records: source records to fast-forward without feeding,
            used to resume from a restored checkpoint.
        tracer: optional :class:`repro.obs.Tracer`; one
            ``stream.window`` trace (reorder/ingest/publish/checkpoint
            stage children) is emitted per slot-finalization window.
            No-op by default.
    """

    def __init__(
        self,
        monitor: StreamingQueueMonitor,
        records: Iterable[MdtRecord],
        speedup: Optional[float] = 600.0,
        metrics: Optional[MetricsRegistry] = None,
        reorder: Optional["ReorderBuffer"] = None,
        checkpointer: Optional["ServiceCheckpointer"] = None,
        skip_records: int = 0,
        tracer=None,
    ):
        if speedup is not None and speedup <= 0:
            raise ValueError("speedup must be positive (or None)")
        if skip_records < 0:
            raise ValueError("skip_records must be non-negative")
        if tracer is None:
            from repro.obs.tracer import NULL_TRACER as tracer
        self.tracer = tracer
        self.monitor = monitor
        if isinstance(records, Sequence):
            self.records: Iterable[MdtRecord] = sorted(
                records, key=lambda r: r.ts
            )
        else:
            self.records = records
        self.speedup = speedup
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.reorder = reorder
        self.checkpointer = checkpointer
        self.skip_records = int(skip_records)
        self.error: Optional[BaseException] = None
        """The exception that aborted the last :meth:`run`, if any."""
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.finished = threading.Event()
        """Set once the full stream was replayed and finalized; stays
        unset when the replay is stopped early or crashed."""

    # -- synchronous core --------------------------------------------------------

    def run(self) -> int:
        """Replay every record (blocking); returns finalized-slot count.

        The monitor's :meth:`finish` is called at end of stream, so the
        tail slots (still inside the grace period) are flushed and the
        snapshot converges to the batch result.
        """
        finalized = 0
        records_counter = self.metrics.counter("replay.records")
        slots_counter = self.metrics.counter("replay.slots_finalized")
        nonmono_counter = self.metrics.counter("replay.nonmonotonic_records")
        clock_gauge = self.metrics.gauge("replay.stream_clock")
        pacing_clock: Optional[float] = None
        position = 0
        # Window accounting only exists when tracing is on, so the
        # untraced hot path pays no clock reads at all.
        acct = (
            _WindowAccounting(
                self.tracer,
                has_reorder=self.reorder is not None,
                has_checkpointer=self.checkpointer is not None,
            )
            if self.tracer.enabled
            else None
        )
        try:
            for record in self.records:
                if self._stop.is_set():
                    break
                position += 1
                if position <= self.skip_records:
                    continue
                if self.reorder is not None:
                    t0 = time.perf_counter() if acct else 0.0
                    batch = self.reorder.feed(record)
                    if acct:
                        acct.reorder_s += time.perf_counter() - t0
                else:
                    batch = [record]
                for release in batch:
                    if self.speedup is not None and pacing_clock is not None:
                        gap = (release.ts - pacing_clock) / self.speedup
                        if gap > 1e-3:
                            self._stop.wait(min(gap, MAX_SLEEP_S))
                    if pacing_clock is None or release.ts > pacing_clock:
                        pacing_clock = release.ts
                    elif release.ts < pacing_clock and self.reorder is None:
                        nonmono_counter.inc()
                    t0 = time.perf_counter() if acct else 0.0
                    closed = len(self.monitor.feed(release))
                    if acct:
                        # A closing feed call runs finalization and the
                        # snapshot publish subscribers; attribute it to
                        # the publish stage, plain feeds to ingest.
                        dt = time.perf_counter() - t0
                        if closed:
                            acct.publish_s += dt
                            acct.slots += closed
                        else:
                            acct.ingest_s += dt
                    if closed:
                        slots_counter.inc(closed)
                    finalized += closed
                records_counter.inc()
                if acct:
                    acct.records += 1
                if pacing_clock is not None:
                    clock_gauge.set(pacing_clock)
                if self.checkpointer is not None:
                    t0 = time.perf_counter() if acct else 0.0
                    self.checkpointer.maybe_checkpoint(position)
                    if acct:
                        acct.checkpoint_s += time.perf_counter() - t0
                if acct and acct.slots:
                    acct.emit()
            if not self._stop.is_set():
                if self.reorder is not None:
                    for release in self.reorder.flush():
                        t0 = time.perf_counter() if acct else 0.0
                        closed = len(self.monitor.feed(release))
                        if acct:
                            dt = time.perf_counter() - t0
                            if closed:
                                acct.publish_s += dt
                                acct.slots += closed
                            else:
                                acct.ingest_s += dt
                        if closed:
                            slots_counter.inc(closed)
                        finalized += closed
                t0 = time.perf_counter() if acct else 0.0
                closed = len(self.monitor.finish())
                if acct:
                    acct.publish_s += time.perf_counter() - t0
                    acct.slots += closed
                if closed:
                    slots_counter.inc(closed)
                finalized += closed
                if acct and (acct.records or acct.slots):
                    acct.emit()
                self.finished.set()
        except Exception as exc:
            # A dead feed (or an injected crash) must not take the
            # serving layer down with it: record the failure and leave
            # the snapshot store answering with its last-good state.
            self.error = exc
            self.metrics.counter("replay.crashes").inc()
        return finalized

    # -- background operation ----------------------------------------------------

    def start(self) -> threading.Thread:
        """Run the replay in a daemon thread (idempotent)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.run, name="queue-state-replay", daemon=True
            )
            self._thread.start()
        return self._thread

    def stop(self) -> None:
        """Ask a background replay to stop and wait for it."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
