"""Versioned live queue-state snapshots.

:class:`SnapshotStore` is the bridge between the streaming ingest path
and the HTTP serving path: a :class:`~repro.stream.StreamingQueueMonitor`
publishes finalized :class:`~repro.stream.SlotResult` batches into the
store (via :meth:`SnapshotStore.apply`, typically wired through
``monitor.subscribe``), and HTTP handlers read consistent JSON payloads
out of it.

Every applied batch advances a monotonically increasing **snapshot id**;
the id doubles as the HTTP ETag, so clients (and the server's own
response cache) can tell "nothing changed" apart from "new labels
landed" without comparing payloads.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence

from repro.core.qcd import label_proportions
from repro.core.types import QueueSpot, TimeSlotGrid
from repro.export.geojson import TYPE_COLORS, spot_feature
from repro.service.metrics import MetricsRegistry
from repro.stream.monitor import SlotResult


def _label_props(result: SlotResult, grid: TimeSlotGrid) -> dict:
    """The view-facing properties of one finalized spot-slot."""
    features = result.features
    return {
        "slot": result.slot,
        "time": grid.label_of(result.slot),
        "queue_type": result.label.label.value,
        "color": TYPE_COLORS[result.label.label],
        "routine": result.label.routine,
        "mean_wait_s": features.mean_wait_s,
        "n_arrivals": features.n_arrivals,
        "queue_length": features.queue_length,
        "mean_departure_interval_s": features.mean_departure_interval_s,
        "n_departures": features.n_departures,
    }


class SnapshotStore:
    """Current queue state for a fixed spot set, under one lock.

    Args:
        spots: the served spot set (batch tier-1 output).
        grid: the slot grid labels refer to.
        metrics: optional registry; the store maintains the
            ``snapshot.version`` / ``snapshot.slots_held`` gauges and the
            ``snapshot.updates`` / ``snapshot.slot_results`` counters.
    """

    def __init__(
        self,
        spots: Sequence[QueueSpot],
        grid: TimeSlotGrid,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self._spots: Dict[str, QueueSpot] = {s.spot_id: s for s in spots}
        self._grid = grid
        self._results: Dict[str, Dict[int, SlotResult]] = {
            spot_id: {} for spot_id in self._spots
        }
        self._version = 0
        self._lock = threading.RLock()
        self._metrics = metrics
        if metrics is not None:
            metrics.gauge("snapshot.version").set(0)
            metrics.gauge("snapshot.slots_held").set(0)

    # -- writes ------------------------------------------------------------------

    def apply(self, results: Sequence[SlotResult]) -> int:
        """Absorb one batch of finalized slot results.

        Results for unknown spot ids are ignored (the monitor and the
        store are built from the same spot set, but a stale publisher
        must not corrupt the snapshot).  A non-empty absorbed batch
        advances the snapshot version by one.

        Returns:
            The snapshot version after the batch.
        """
        with self._lock:
            absorbed = 0
            for result in results:
                bucket = self._results.get(result.spot_id)
                if bucket is None:
                    continue
                bucket[result.slot] = result
                absorbed += 1
            if absorbed:
                self._version += 1
            version = self._version
            if self._metrics is not None and absorbed:
                self._metrics.gauge("snapshot.version").set(version)
                self._metrics.counter("snapshot.updates").inc()
                self._metrics.counter("snapshot.slot_results").inc(absorbed)
                self._metrics.gauge("snapshot.slots_held").set(
                    sum(len(b) for b in self._results.values())
                )
            return version

    # -- checkpointing -----------------------------------------------------------

    def export_state(self) -> dict:
        """Picklable store state (version + finalized results) for
        checkpoint/restore; spots and grid are configuration."""
        with self._lock:
            return {
                "version": self._version,
                "results": {
                    spot_id: dict(bucket)
                    for spot_id, bucket in self._results.items()
                },
            }

    def restore_state(self, state: dict) -> None:
        """Restore a state exported by :meth:`export_state`.

        Results of spot ids unknown to this store are dropped, matching
        the :meth:`apply` contract.
        """
        with self._lock:
            self._results = {spot_id: {} for spot_id in self._spots}
            for spot_id, bucket in state["results"].items():
                if spot_id in self._results:
                    self._results[spot_id] = dict(bucket)
            self._version = state["version"]
            if self._metrics is not None:
                self._metrics.gauge("snapshot.version").set(self._version)
                self._metrics.gauge("snapshot.slots_held").set(
                    sum(len(b) for b in self._results.values())
                )

    # -- identity ----------------------------------------------------------------

    @property
    def version(self) -> int:
        """The monotonically increasing snapshot id (0 = empty)."""
        with self._lock:
            return self._version

    @property
    def etag(self) -> str:
        """The version as a strong HTTP entity tag."""
        return f'"{self.version}"'

    @property
    def grid(self) -> TimeSlotGrid:
        return self._grid

    @property
    def spot_ids(self) -> List[str]:
        return list(self._spots)

    # -- reads -------------------------------------------------------------------

    def latest(self, spot_id: str) -> Optional[SlotResult]:
        """The most recent finalized slot result of one spot."""
        with self._lock:
            bucket = self._results.get(spot_id)
            if not bucket:
                return None
            return bucket[max(bucket)]

    def spots_payload(self) -> dict:
        """``/v1/spots``: every spot with its current (latest) label,
        as a GeoJSON FeatureCollection plus snapshot metadata."""
        with self._lock:
            version = self._version
            features = []
            for spot_id, spot in self._spots.items():
                bucket = self._results[spot_id]
                current = (
                    _label_props(bucket[max(bucket)], self._grid)
                    if bucket
                    else None
                )
                features.append(spot_feature(spot, {"current": current}))
        return {
            "snapshot": version,
            "count": len(features),
            "collection": {
                "type": "FeatureCollection",
                "features": features,
            },
        }

    def spot_slots_payload(self, spot_id: str) -> Optional[dict]:
        """``/v1/spots/{id}/slots``: one spot's finalized slot history,
        or None for an unknown spot id."""
        with self._lock:
            spot = self._spots.get(spot_id)
            if spot is None:
                return None
            bucket = self._results[spot_id]
            slots = [
                _label_props(bucket[slot], self._grid)
                for slot in sorted(bucket)
            ]
            version = self._version
        return {
            "snapshot": version,
            "spot_id": spot_id,
            "zone": spot.zone,
            "lon": spot.lon,
            "lat": spot.lat,
            "slots": slots,
        }

    def citywide_payload(self) -> dict:
        """``/v1/citywide``: queue-type proportions over every finalized
        spot-slot (the live Table 7)."""
        with self._lock:
            labels = [
                result.label
                for bucket in self._results.values()
                for result in bucket.values()
            ]
            version = self._version
        proportions = label_proportions(labels)
        return {
            "snapshot": version,
            "finalized_slot_results": len(labels),
            "proportions": {
                qt.value: round(share, 6)
                for qt, share in proportions.items()
            },
        }
