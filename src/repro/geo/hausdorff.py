"""Hausdorff distances between point sets (paper Table 5).

Section 6.1.3 uses "the modified Hausdorff distance [Dubuisson & Jain 1994]"
to measure how stable the detected queue-spot sets are across days of the
week.  Both the classic Hausdorff distance and the Dubuisson-Jain modified
variant are implemented; the modified variant replaces the inner maximum by
a mean, making it robust to a single outlying spot:

    d(A, B)   = mean_{a in A} min_{b in B} |a - b|      (directed, modified)
    MHD(A, B) = max(d(A, B), d(B, A))

Distances are computed in the metre plane; callers project lon/lat point
sets with :class:`repro.geo.point.LocalProjection` first.
"""

from __future__ import annotations

import numpy as np


def _check(points: np.ndarray, name: str) -> np.ndarray:
    arr = np.asarray(points, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[1] != 2 or len(arr) == 0:
        raise ValueError(f"{name} must be a non-empty (n, 2) array")
    return arr


def _min_dists(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """For each point of ``a``, the distance to its nearest point of ``b``.

    Computed blockwise to bound memory at a few MB even for large sets.
    """
    out = np.empty(len(a), dtype=np.float64)
    block = max(1, int(2_000_000 // max(1, len(b))))
    for start in range(0, len(a), block):
        chunk = a[start : start + block]
        # (m, n) squared distances via broadcasting.
        d2 = (
            np.sum(chunk * chunk, axis=1)[:, None]
            - 2.0 * chunk @ b.T
            + np.sum(b * b, axis=1)[None, :]
        )
        np.maximum(d2, 0.0, out=d2)
        out[start : start + block] = np.sqrt(d2.min(axis=1))
    return out


def directed_hausdorff(a: np.ndarray, b: np.ndarray) -> float:
    """Classic directed Hausdorff: max over A of nearest-in-B distance."""
    a = _check(a, "a")
    b = _check(b, "b")
    return float(_min_dists(a, b).max())


def hausdorff_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Classic symmetric Hausdorff distance between two point sets."""
    return max(directed_hausdorff(a, b), directed_hausdorff(b, a))


def directed_modified_hausdorff(a: np.ndarray, b: np.ndarray) -> float:
    """Dubuisson-Jain directed distance: mean of nearest-in-B distances."""
    a = _check(a, "a")
    b = _check(b, "b")
    return float(_min_dists(a, b).mean())


def modified_hausdorff(a: np.ndarray, b: np.ndarray) -> float:
    """Dubuisson-Jain modified Hausdorff distance (the paper's metric)."""
    return max(
        directed_modified_hausdorff(a, b), directed_modified_hausdorff(b, a)
    )
