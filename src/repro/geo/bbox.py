"""Axis-aligned bounding boxes in lon/lat space."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

from repro.geo.point import equirectangular_m


@dataclass(frozen=True)
class BBox:
    """A lon/lat axis-aligned rectangle: ``west <= lon <= east`` etc."""

    west: float
    south: float
    east: float
    north: float

    def __post_init__(self) -> None:
        if self.west > self.east or self.south > self.north:
            raise ValueError(
                f"degenerate bbox: west={self.west} east={self.east} "
                f"south={self.south} north={self.north}"
            )

    @classmethod
    def from_points(cls, points: Iterable[Tuple[float, float]]) -> "BBox":
        """Smallest bbox containing all ``(lon, lat)`` points.

        Raises:
            ValueError: if ``points`` is empty.
        """
        lons = []
        lats = []
        for lon, lat in points:
            lons.append(lon)
            lats.append(lat)
        if not lons:
            raise ValueError("cannot build a bbox from zero points")
        return cls(min(lons), min(lats), max(lons), max(lats))

    @property
    def center(self) -> Tuple[float, float]:
        """The ``(lon, lat)`` midpoint of the box."""
        return (self.west + self.east) / 2.0, (self.south + self.north) / 2.0

    @property
    def width_m(self) -> float:
        """East-west extent in metres, measured along the mid latitude."""
        mid_lat = (self.south + self.north) / 2.0
        return equirectangular_m(self.west, mid_lat, self.east, mid_lat)

    @property
    def height_m(self) -> float:
        """North-south extent in metres."""
        return equirectangular_m(self.west, self.south, self.west, self.north)

    def contains(self, lon: float, lat: float) -> bool:
        """True if the point lies inside or on the boundary."""
        return (
            self.west <= lon <= self.east and self.south <= lat <= self.north
        )

    def intersects(self, other: "BBox") -> bool:
        """True if the two boxes share at least one point."""
        return not (
            other.west > self.east
            or other.east < self.west
            or other.south > self.north
            or other.north < self.south
        )

    def expanded(self, margin_deg: float) -> "BBox":
        """Return a copy grown by ``margin_deg`` on every side."""
        return BBox(
            self.west - margin_deg,
            self.south - margin_deg,
            self.east + margin_deg,
            self.north + margin_deg,
        )

    def clamp(self, lon: float, lat: float) -> Tuple[float, float]:
        """Project a point onto the box (nearest interior point)."""
        return (
            min(max(lon, self.west), self.east),
            min(max(lat, self.south), self.north),
        )
