"""Geospatial substrate: distances, projections, zones and spatial indexes.

Everything the analytics engine needs to reason about GPS coordinates:

* :mod:`repro.geo.point` — haversine distance and a local equirectangular
  projection that maps lon/lat to metres around a reference latitude.
* :mod:`repro.geo.bbox` — axis-aligned bounding boxes in lon/lat space.
* :mod:`repro.geo.zones` — the four rectangular zones of paper Fig. 5.
* :mod:`repro.geo.grid_index` / :mod:`repro.geo.rtree` — spatial indexes
  for radius queries (section 4.3 recommends "the R-Tree based or grid
  based spatial index" to tame DBSCAN's cost).
* :mod:`repro.geo.hausdorff` — the modified Hausdorff distance [Dubuisson &
  Jain 1994] used for the stability study of paper Table 5.
"""

from repro.geo.point import (
    EARTH_RADIUS_M,
    haversine_m,
    equirectangular_m,
    LocalProjection,
    destination_point,
)
from repro.geo.bbox import BBox
from repro.geo.zones import Zone, ZonePartition, four_zone_partition
from repro.geo.grid_index import GridIndex
from repro.geo.rtree import StrRTree
from repro.geo.hausdorff import (
    directed_hausdorff,
    hausdorff_distance,
    directed_modified_hausdorff,
    modified_hausdorff,
)

__all__ = [
    "EARTH_RADIUS_M",
    "haversine_m",
    "equirectangular_m",
    "LocalProjection",
    "destination_point",
    "BBox",
    "Zone",
    "ZonePartition",
    "four_zone_partition",
    "GridIndex",
    "StrRTree",
    "directed_hausdorff",
    "hausdorff_distance",
    "directed_modified_hausdorff",
    "modified_hausdorff",
]
