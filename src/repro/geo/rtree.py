"""A static, bulk-loaded R-tree over points (Sort-Tile-Recursive packing).

The alternative neighbour backend the paper mentions for DBSCAN
(section 4.3).  The tree is built once over the full point set with the
STR packing algorithm [Leutenegger et al. 1997]: sort by x, cut into
vertical slabs, sort each slab by y, pack leaves of fixed fan-out, then
build the upper levels the same way over the leaf rectangles.

STR packing yields near-100% node utilisation and well-shaped rectangles,
which is exactly what a read-only analytics workload wants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np


@dataclass
class _Node:
    """An R-tree node: a rectangle plus children or point indices."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float
    children: List["_Node"] = field(default_factory=list)
    point_ids: Optional[np.ndarray] = None  # set on leaves only

    @property
    def is_leaf(self) -> bool:
        return self.point_ids is not None

    def min_dist2(self, x: float, y: float) -> float:
        """Squared distance from a point to this rectangle (0 if inside)."""
        dx = max(self.min_x - x, 0.0, x - self.max_x)
        dy = max(self.min_y - y, 0.0, y - self.max_y)
        return dx * dx + dy * dy


class StrRTree:
    """Bulk-loaded point R-tree supporting radius queries.

    Args:
        points: ``(n, 2)`` array of x/y coordinates in metres.
        leaf_capacity: maximum points per leaf (fan-out for inner nodes too).
    """

    def __init__(self, points: np.ndarray, leaf_capacity: int = 32):
        if leaf_capacity < 2:
            raise ValueError("leaf_capacity must be at least 2")
        self.points = np.asarray(points, dtype=np.float64)
        if self.points.ndim != 2 or self.points.shape[1] != 2:
            raise ValueError("points must be an (n, 2) array")
        self.leaf_capacity = int(leaf_capacity)
        self.root = self._build()

    def __len__(self) -> int:
        return len(self.points)

    # -- construction ------------------------------------------------------

    def _build(self) -> Optional[_Node]:
        n = len(self.points)
        if n == 0:
            return None
        leaves = self._pack_leaves()
        level = leaves
        while len(level) > 1:
            level = self._pack_level(level)
        return level[0]

    def _pack_leaves(self) -> List[_Node]:
        n = len(self.points)
        cap = self.leaf_capacity
        order = np.argsort(self.points[:, 0], kind="stable")
        n_leaves = math.ceil(n / cap)
        n_slabs = max(1, math.ceil(math.sqrt(n_leaves)))
        slab_size = math.ceil(n / n_slabs)
        leaves: List[_Node] = []
        for s in range(0, n, slab_size):
            slab = order[s : s + slab_size]
            slab = slab[np.argsort(self.points[slab, 1], kind="stable")]
            for k in range(0, len(slab), cap):
                ids = slab[k : k + cap]
                pts = self.points[ids]
                leaves.append(
                    _Node(
                        float(pts[:, 0].min()),
                        float(pts[:, 1].min()),
                        float(pts[:, 0].max()),
                        float(pts[:, 1].max()),
                        point_ids=ids.astype(np.int64),
                    )
                )
        return leaves

    def _pack_level(self, nodes: List[_Node]) -> List[_Node]:
        cap = self.leaf_capacity
        centers = np.array(
            [((nd.min_x + nd.max_x) / 2, (nd.min_y + nd.max_y) / 2) for nd in nodes]
        )
        order = np.argsort(centers[:, 0], kind="stable")
        n_parents = math.ceil(len(nodes) / cap)
        n_slabs = max(1, math.ceil(math.sqrt(n_parents)))
        slab_size = math.ceil(len(nodes) / n_slabs)
        parents: List[_Node] = []
        for s in range(0, len(nodes), slab_size):
            slab = order[s : s + slab_size]
            slab = slab[np.argsort(centers[slab, 1], kind="stable")]
            for k in range(0, len(slab), cap):
                group = [nodes[int(i)] for i in slab[k : k + cap]]
                parents.append(
                    _Node(
                        min(g.min_x for g in group),
                        min(g.min_y for g in group),
                        max(g.max_x for g in group),
                        max(g.max_y for g in group),
                        children=group,
                    )
                )
        return parents

    # -- queries -----------------------------------------------------------

    def query_radius(self, x: float, y: float, radius: float) -> np.ndarray:
        """Indices of points within ``radius`` metres of ``(x, y)``."""
        if radius <= 0:
            raise ValueError("radius must be positive")
        if self.root is None:
            return np.empty(0, dtype=np.int64)
        r2 = radius * radius
        # Prune with a float-rounding slack so bbox rejection can never
        # drop a point the exact `d2 <= r2` test below would accept.
        prune2 = r2 * (1.0 + 1e-9) + 1e-30
        out: List[np.ndarray] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.min_dist2(x, y) > prune2:
                continue
            if node.is_leaf:
                ids = node.point_ids
                diff = self.points[ids] - np.array([x, y])
                within = np.einsum("ij,ij->i", diff, diff) <= r2
                if within.any():
                    out.append(ids[within])
            else:
                stack.extend(node.children)
        if not out:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(out)

    def query_radius_index(self, i: int, radius: float) -> np.ndarray:
        """Radius query centred on the ``i``-th indexed point."""
        x, y = self.points[i]
        return self.query_radius(float(x), float(y), radius)

    @property
    def height(self) -> int:
        """Number of levels in the tree (0 for an empty tree)."""
        h = 0
        node = self.root
        while node is not None:
            h += 1
            node = node.children[0] if node.children else None
        return h
