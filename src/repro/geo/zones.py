"""The four rectangular zones of paper Fig. 5.

Section 6.1.2 divides Singapore into 4 rectangular zones — Central, North,
West and East — "based on their different characteristics" and runs DBSCAN
per zone to tame the O(n^2) cost.  The Central zone covers the CBD and most
tourist attractions and occupies only ~6% of the total area (section 6.1.3).

:func:`four_zone_partition` reproduces that layout for any city bounding
box: a small central rectangle sized to ~6% of the area, a West strip to its
west, an East strip to its east, and the North band covering everything
above; the sliver directly below the central box is assigned to Central
(in Singapore that area is mostly sea).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.geo.bbox import BBox

#: Canonical zone names in the paper's reporting order.
ZONE_NAMES: Tuple[str, str, str, str] = ("Central", "North", "West", "East")


@dataclass(frozen=True)
class Zone:
    """A named rectangular zone."""

    name: str
    bbox: BBox

    def contains(self, lon: float, lat: float) -> bool:
        """True if the point lies inside the zone rectangle."""
        return self.bbox.contains(lon, lat)


class ZonePartition:
    """An ordered list of zones with first-match point classification.

    Zones are checked in order, so an earlier zone wins where rectangles
    overlap (the Central box is listed first and carved out of the others
    logically rather than geometrically).
    """

    def __init__(self, zones: List[Zone]):
        if not zones:
            raise ValueError("a partition needs at least one zone")
        self.zones = list(zones)
        self._by_name = {zone.name: zone for zone in self.zones}
        if len(self._by_name) != len(self.zones):
            raise ValueError("zone names must be unique")

    def __iter__(self):
        return iter(self.zones)

    def __len__(self) -> int:
        return len(self.zones)

    def zone_named(self, name: str) -> Zone:
        """Look a zone up by name.

        Raises:
            KeyError: if no zone has that name.
        """
        return self._by_name[name]

    def classify(self, lon: float, lat: float) -> Optional[str]:
        """Name of the first zone containing the point, or None."""
        for zone in self.zones:
            if zone.contains(lon, lat):
                return zone.name
        return None

    def classify_or_nearest(self, lon: float, lat: float) -> str:
        """Like :meth:`classify` but falls back to the nearest zone centre.

        Useful for GPS points that jitter just outside the city rectangle
        after noise injection.
        """
        name = self.classify(lon, lat)
        if name is not None:
            return name

        def _dist2(zone: Zone) -> float:
            clon, clat = zone.bbox.center
            return (clon - lon) ** 2 + (clat - lat) ** 2

        return min(self.zones, key=_dist2).name


def four_zone_partition(
    city: BBox, central_area_fraction: float = 0.06
) -> ZonePartition:
    """Build the Central/North/West/East partition of Fig. 5 for a city box.

    Args:
        city: the overall city bounding box.
        central_area_fraction: fraction of the total area covered by the
            Central zone (the paper reports ~6% for Singapore's CBD box).

    Returns:
        A :class:`ZonePartition` whose four rectangles jointly cover the
        whole city box (Central is checked first where boxes overlap).
    """
    if not 0.0 < central_area_fraction < 1.0:
        raise ValueError("central_area_fraction must be in (0, 1)")

    lon_span = city.east - city.west
    lat_span = city.north - city.south
    # The central box keeps the city's aspect ratio, scaled to the target
    # area, and sits slightly south of the geometric centre (as the CBD
    # does in Singapore).
    scale = central_area_fraction ** 0.5
    c_lon_span = lon_span * scale
    c_lat_span = lat_span * scale
    c_lon_mid = city.west + lon_span * 0.55
    c_lat_mid = city.south + lat_span * 0.35

    central = BBox(
        c_lon_mid - c_lon_span / 2.0,
        c_lat_mid - c_lat_span / 2.0,
        c_lon_mid + c_lon_span / 2.0,
        c_lat_mid + c_lat_span / 2.0,
    )
    # West and East strips span the full latitude range beside the central
    # column; North covers the band above the central box within the column;
    # the column below the central box belongs to Central (mostly sea in
    # the Singapore layout, so assignment there is inconsequential).
    west = BBox(city.west, city.south, central.west, city.north)
    east = BBox(central.east, city.south, city.east, city.north)
    north = BBox(central.west, central.north, central.east, city.north)
    central_column = BBox(central.west, city.south, central.east, central.north)

    return ZonePartition(
        [
            Zone("Central", central_column),
            Zone("North", north),
            Zone("West", west),
            Zone("East", east),
        ]
    )
