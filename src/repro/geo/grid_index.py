"""A uniform-grid spatial index for fixed-radius neighbour queries.

Section 4.3 of the paper notes that running DBSCAN on the full pickup
location set is slow and recommends "the R-Tree based or grid based spatial
index".  This grid index is the default neighbour backend for our DBSCAN:
with cell size equal to the query radius, a radius query inspects at most
the 3x3 block of cells around the probe point, giving expected O(1) work
per query on city-scale point densities.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

import numpy as np


class GridIndex:
    """Bucket points of an ``(n, 2)`` metre-plane array into square cells.

    Args:
        points: ``(n, 2)`` array of x/y coordinates in metres.
        cell_size: edge length of a grid cell in metres.  For fixed-radius
            queries, pass the query radius (the classic choice).
    """

    def __init__(self, points: np.ndarray, cell_size: float):
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.points = np.asarray(points, dtype=np.float64)
        if self.points.ndim != 2 or self.points.shape[1] != 2:
            raise ValueError("points must be an (n, 2) array")
        self.cell_size = float(cell_size)
        self._cells: Dict[Tuple[int, int], List[int]] = defaultdict(list)
        keys_x = np.floor(self.points[:, 0] / self.cell_size).astype(np.int64)
        keys_y = np.floor(self.points[:, 1] / self.cell_size).astype(np.int64)
        for i in range(len(self.points)):
            self._cells[(int(keys_x[i]), int(keys_y[i]))].append(i)

    def __len__(self) -> int:
        return len(self.points)

    def _cell_of(self, x: float, y: float) -> Tuple[int, int]:
        return (
            int(np.floor(x / self.cell_size)),
            int(np.floor(y / self.cell_size)),
        )

    def query_radius(self, x: float, y: float, radius: float) -> np.ndarray:
        """Indices of points within ``radius`` metres of ``(x, y)``.

        The result includes the probe point itself when it is part of the
        indexed set (DBSCAN's neighbourhood definition includes the point).
        """
        if radius <= 0:
            raise ValueError("radius must be positive")
        # Candidate cells are every cell overlapping the query square,
        # widened by a float-rounding slack: a point just outside the
        # square can still satisfy the rounded `d2 <= radius**2` test
        # below, and cell membership must not prune what the distance
        # test would accept (the DBSCAN backends must agree exactly).
        slack = 1e-9 * (abs(x) + abs(y) + radius) + 1e-30
        gx_lo = int(np.floor((x - radius - slack) / self.cell_size))
        gx_hi = int(np.floor((x + radius + slack) / self.cell_size))
        gy_lo = int(np.floor((y - radius - slack) / self.cell_size))
        gy_hi = int(np.floor((y + radius + slack) / self.cell_size))
        candidates: List[int] = []
        for gx in range(gx_lo, gx_hi + 1):
            for gy in range(gy_lo, gy_hi + 1):
                bucket = self._cells.get((gx, gy))
                if bucket:
                    candidates.extend(bucket)
        if not candidates:
            return np.empty(0, dtype=np.int64)
        idx = np.asarray(candidates, dtype=np.int64)
        diff = self.points[idx] - np.array([x, y])
        within = np.einsum("ij,ij->i", diff, diff) <= radius * radius
        return idx[within]

    def query_radius_index(self, i: int, radius: float) -> np.ndarray:
        """Radius query centred on the ``i``-th indexed point."""
        x, y = self.points[i]
        return self.query_radius(float(x), float(y), radius)

    @property
    def occupied_cells(self) -> int:
        """Number of non-empty grid cells (useful for diagnostics)."""
        return len(self._cells)
