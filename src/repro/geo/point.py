"""Great-circle distances and a local metric projection.

The analytics operate at the individual-coordinate level (15 m DBSCAN radii,
7.6 m location errors), so centimetre-exact geodesy is unnecessary; what
matters is a projection that is metrically faithful over a city-sized extent.
At Singapore's latitude (~1.35 deg N) the equirectangular approximation is
accurate to well under 0.1% across 50 km, which is far below the GPS noise
floor the paper reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

#: Mean Earth radius in metres (IUGG).
EARTH_RADIUS_M = 6_371_008.8


def haversine_m(lon1: float, lat1: float, lon2: float, lat2: float) -> float:
    """Great-circle distance in metres between two lon/lat points."""
    phi1 = math.radians(lat1)
    phi2 = math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlam = math.radians(lon2 - lon1)
    a = (
        math.sin(dphi / 2.0) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_M * math.asin(min(1.0, math.sqrt(a)))


def equirectangular_m(
    lon1: float, lat1: float, lon2: float, lat2: float
) -> float:
    """Fast flat-earth distance in metres; accurate for city-scale spans."""
    mean_phi = math.radians((lat1 + lat2) / 2.0)
    dx = math.radians(lon2 - lon1) * math.cos(mean_phi)
    dy = math.radians(lat2 - lat1)
    return EARTH_RADIUS_M * math.hypot(dx, dy)


def destination_point(
    lon: float, lat: float, bearing_deg: float, distance_m: float
) -> Tuple[float, float]:
    """Return the lon/lat reached by moving ``distance_m`` along a bearing.

    Uses the local flat-earth approximation, which is exact enough for the
    sub-kilometre moves the simulator makes between log records.
    """
    theta = math.radians(bearing_deg)
    dy = distance_m * math.cos(theta)
    dx = distance_m * math.sin(theta)
    dlat = math.degrees(dy / EARTH_RADIUS_M)
    dlon = math.degrees(dx / (EARTH_RADIUS_M * math.cos(math.radians(lat))))
    return lon + dlon, lat + dlat


@dataclass(frozen=True)
class LocalProjection:
    """Equirectangular lon/lat <-> metre projection around a reference point.

    The projection maps ``(ref_lon, ref_lat)`` to ``(0, 0)`` with x pointing
    east and y pointing north, both in metres.  All clustering and index
    structures operate in this metric plane so that DBSCAN's eps is a true
    radius in metres (paper section 4.3 / 6.1.2).
    """

    ref_lon: float
    ref_lat: float

    @property
    def _cos_ref(self) -> float:
        return math.cos(math.radians(self.ref_lat))

    def to_xy(self, lon: float, lat: float) -> Tuple[float, float]:
        """Project one lon/lat point to metres east/north of the reference."""
        x = math.radians(lon - self.ref_lon) * self._cos_ref * EARTH_RADIUS_M
        y = math.radians(lat - self.ref_lat) * EARTH_RADIUS_M
        return x, y

    def to_lonlat(self, x: float, y: float) -> Tuple[float, float]:
        """Inverse of :meth:`to_xy`."""
        lon = self.ref_lon + math.degrees(x / (self._cos_ref * EARTH_RADIUS_M))
        lat = self.ref_lat + math.degrees(y / EARTH_RADIUS_M)
        return lon, lat

    def to_xy_array(self, lons: np.ndarray, lats: np.ndarray) -> np.ndarray:
        """Vectorized projection: returns an ``(n, 2)`` float64 array."""
        lons = np.asarray(lons, dtype=np.float64)
        lats = np.asarray(lats, dtype=np.float64)
        x = np.radians(lons - self.ref_lon) * self._cos_ref * EARTH_RADIUS_M
        y = np.radians(lats - self.ref_lat) * EARTH_RADIUS_M
        return np.column_stack([x, y])

    def to_lonlat_array(self, xy: np.ndarray) -> np.ndarray:
        """Vectorized inverse projection of an ``(n, 2)`` metre array."""
        xy = np.asarray(xy, dtype=np.float64)
        lon = self.ref_lon + np.degrees(
            xy[:, 0] / (self._cos_ref * EARTH_RADIUS_M)
        )
        lat = self.ref_lat + np.degrees(xy[:, 1] / EARTH_RADIUS_M)
        return np.column_stack([lon, lat])
