"""Orchestration: one conformance case end to end.

For each case day, :func:`run_case`

1. runs the batch class (serial and sharded) and compares canonical
   snapshots, plus the brute-force DBSCAN and direct WTE/QCD oracles;
2. freezes the serial run's tier-1 context into a
   :class:`~repro.conformance.canonical.DayBootstrap` and runs the
   streaming class: plain replay, kill/restart replay (state *and*
   history segments must match), and buffered ordered-vs-disordered
   replay;
3. checks the single-run invariants (WTE ordering, Little's law,
   version monotonicity);
4. on the first divergence, ddmin-shrinks the day down to a minimal
   reproducing record set and writes artifacts: ``minimal_day.csv``
   (committed-fixture CSV shape), ``bootstrap.json`` (the frozen
   context) and ``repro.sh`` (one command that exits 1 on the same
   divergence).

Shrinking verifies the divergence survives a CSV round-trip first —
simulated days carry sub-second timestamps the fixture format
truncates, and a minimal day that only diverges in memory would be a
useless artifact.
"""

from __future__ import annotations

import contextlib
import json
import os
import shlex
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.conformance import faults as faults_mod
from repro.conformance import invariants, oracles
from repro.conformance.canonical import (
    DayBootstrap,
    canonical_json,
    day_grid,
    make_bootstrap,
)
from repro.conformance.diff import diff_values
from repro.conformance.matrix import ConformanceCase
from repro.conformance.paths import (
    canonical_records,
    run_kill_restart,
    run_parallel,
    run_serial,
    run_streaming,
)
from repro.conformance.shrink import ShrinkResult, shrink_records
from repro.core.engine import EngineConfig, QueueAnalyticEngine
from repro.core.spots import SpotDetectionParams
from repro.geo.bbox import BBox
from repro.geo.point import LocalProjection
from repro.geo.zones import four_zone_partition
from repro.trace.log_store import MdtLogStore
from repro.trace.record import MdtRecord

#: Every check the harness knows, in execution order.
ALL_CHECKS = (
    "batch-parallel",
    "oracle-spots",
    "oracle-batch",
    "stream-restart",
    "stream-disorder",
    "oracle-stream",
    "invariants",
)

#: Checks whose predicate is a pure function of the record set, so a
#: diverging day can be ddmin-shrunk against them.
SHRINKABLE_CHECKS = frozenset(ALL_CHECKS) - {"invariants"}


@dataclass
class CheckOutcome:
    """One check's verdict on one case."""

    name: str
    ok: bool
    details: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict:
        return {"name": self.name, "ok": self.ok, "details": self.details}


@dataclass
class CaseReport:
    """Everything one case run produced."""

    name: str
    records: int = 0
    spots: int = 0
    seconds: float = 0.0
    checks: List[CheckOutcome] = field(default_factory=list)
    shrink: Optional[Dict] = None
    artifact_dir: Optional[str] = None

    @property
    def divergent(self) -> bool:
        return any(not check.ok for check in self.checks)

    @property
    def failed_checks(self) -> List[CheckOutcome]:
        return [check for check in self.checks if not check.ok]

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "records": self.records,
            "spots": self.spots,
            "seconds": round(self.seconds, 3),
            "divergent": self.divergent,
            "checks": [check.to_dict() for check in self.checks],
            "shrink": self.shrink,
            "artifact_dir": self.artifact_dir,
        }


def build_engine(
    store: MdtLogStore, case: ConformanceCase
) -> QueueAnalyticEngine:
    """A deterministic engine from the day's own records (bbox +
    four-zone partition), the same way the golden fixture builds one —
    independent of whether the day came from the simulator or a CSV."""
    bbox = BBox.from_points(
        (r.lon, r.lat) for r in store.iter_records()
    ).expanded(0.01)
    lon, lat = bbox.center
    return QueueAnalyticEngine(
        zones=four_zone_partition(bbox),
        projection=LocalProjection(lon, lat),
        config=EngineConfig(
            detection=SpotDetectionParams(min_pts=case.min_pts),
            observed_fraction=case.coverage,
        ),
        city_bbox=bbox,
    )


def _span(tracer, name: str, **attrs):
    if tracer is None:
        return contextlib.nullcontext()
    return tracer.span(name, **attrs)


def run_case(
    case: ConformanceCase,
    *,
    store: Optional[MdtLogStore] = None,
    bootstrap: Optional[DayBootstrap] = None,
    checks: Optional[Sequence[str]] = None,
    shrink: bool = True,
    shrink_max_runs: int = 400,
    out_dir=None,
    workdir=None,
    fault: Optional[str] = None,
    metrics=None,
    tracer=None,
) -> CaseReport:
    """Run one case through every enabled check.

    Args:
        case: the scenario/path configuration.
        store: a pre-loaded day (``--input``); simulated when None.
        bootstrap: a frozen context (repro mode) — the engine and the
            streaming stack come from it instead of being re-derived,
            so a minimal shrunk day reproduces against the original
            day's spots and thresholds.
        checks: subset of :data:`ALL_CHECKS` to run (None = all).
        shrink: reduce the first divergence to a minimal day.
        shrink_max_runs: predicate budget for the reduction.
        out_dir: where per-case artifacts (report + divergence repro)
            are written; nothing is written when None.
        workdir: scratch directory for checkpoints/history (a temp dir
            when None).
        fault: name of a test-only fault from
            :mod:`repro.conformance.faults` to inject.
        metrics: optional :class:`~repro.service.metrics.MetricsRegistry`
            maintaining the ``conformance.*`` instruments.
        tracer: optional tracer; emits one ``conformance.case`` span
            with per-path children.

    Raises:
        ValueError: for an unknown check or fault name.
    """
    enabled = list(checks) if checks is not None else list(ALL_CHECKS)
    unknown = [c for c in enabled if c not in ALL_CHECKS]
    if unknown:
        raise ValueError(f"unknown checks: {', '.join(unknown)}")
    if fault is not None and fault not in faults_mod.FAULTS:
        raise ValueError(
            f"unknown fault {fault!r} "
            f"(have: {', '.join(sorted(faults_mod.FAULTS))})"
        )

    report = CaseReport(name=case.name)
    started = time.perf_counter()
    fault_ctx = (
        faults_mod.fault_context(fault)
        if fault is not None
        else contextlib.nullcontext()
    )
    with contextlib.ExitStack() as stack:
        stack.enter_context(
            _span(tracer, "conformance.case", case=case.name, fault=fault or "")
        )
        stack.enter_context(fault_ctx)
        if workdir is None:
            workdir = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="conformance-")
            )
        workdir = Path(workdir)

        if store is None:
            with _span(tracer, "conformance.simulate", seed=case.seed):
                store = case.simulate()
        _execute_checks(
            case, store, bootstrap, enabled, report, workdir, tracer
        )
        # Shrink while the fault (if any) is still patched in — the
        # predicate must see the same world the divergence arose in.
        if report.divergent and shrink:
            _shrink_first_divergence(
                case, store, bootstrap, report, shrink_max_runs,
                metrics, tracer,
            )

    report.seconds = time.perf_counter() - started
    if metrics is not None:
        metrics.counter("conformance.cases").inc()
        metrics.histogram("conformance.case_seconds").observe(report.seconds)
        for check in report.checks:
            metrics.counter("conformance.checks_run").inc()
            if not check.ok:
                metrics.counter("conformance.divergences").inc()
                if check.name == "invariants":
                    metrics.counter(
                        "conformance.invariant_violations"
                    ).inc(len(check.details))
    if out_dir is not None:
        report.artifact_dir = str(
            _write_artifacts(case, report, bootstrap, Path(out_dir), fault)
        )
    return report


def run_matrix(
    cases: Sequence[ConformanceCase],
    *,
    progress: Optional[Callable[[CaseReport], None]] = None,
    **kwargs,
) -> List[CaseReport]:
    """Run every case; ``progress`` is called after each one."""
    reports = []
    for case in cases:
        report = run_case(case, **kwargs)
        reports.append(report)
        if progress is not None:
            progress(report)
    return reports


# -- check execution --------------------------------------------------------


def _execute_checks(
    case: ConformanceCase,
    store: MdtLogStore,
    bootstrap: Optional[DayBootstrap],
    enabled: List[str],
    report: CaseReport,
    workdir: Path,
    tracer,
) -> None:
    engine = (
        bootstrap.build_engine()
        if bootstrap is not None
        else build_engine(store, case)
    )
    if bootstrap is None:
        with _span(tracer, "conformance.preprocess"):
            cleaned = engine.preprocess(store)
    else:
        # Repro mode: a minimal day is made of already-cleaned records;
        # re-cleaning a *subset* can drop records (the state-transition
        # chain is trajectory-dependent), so feed it exactly the way the
        # shrink predicate did — raw, with the engine cleaning
        # internally for the batch tiers.
        cleaned = store
    records = canonical_records(cleaned)
    report.records = len(records)
    if not records:
        report.checks.append(
            CheckOutcome("batch-parallel", False, ["day is empty after cleaning"])
        )
        return
    if bootstrap is not None:
        grid = bootstrap.grid
    else:
        lo, hi = cleaned.time_span
        grid = day_grid(lo, hi, engine.config.slot_seconds)

    with _span(tracer, "conformance.serial"):
        serial = run_serial(engine, cleaned, grid)
    report.spots = len(serial.detection.spots)

    if "batch-parallel" in enabled:
        with _span(tracer, "conformance.parallel", workers=case.workers):
            parallel = run_parallel(
                engine, cleaned, grid, case.workers, tracer=tracer
            )
        report.checks.append(
            CheckOutcome(
                "batch-parallel",
                parallel.snapshot == serial.snapshot,
                diff_values(serial.snapshot, parallel.snapshot),
            )
        )

    if "oracle-spots" in enabled:
        oracle_input = (
            cleaned if bootstrap is None else engine.preprocess(store)
        )
        with _span(tracer, "conformance.oracle_spots"):
            problems = oracles.check_bruteforce_spots(
                engine, oracle_input, serial.detection
            )
        report.checks.append(
            CheckOutcome("oracle-spots", not problems, problems)
        )

    if "oracle-batch" in enabled:
        problems = oracles.check_batch_recompute(
            serial.analyses, grid, engine.amplification
        )
        report.checks.append(
            CheckOutcome("oracle-batch", not problems, problems)
        )

    if bootstrap is not None:
        boot = bootstrap
    else:
        boot = _with_grace(
            make_bootstrap(engine, serial.detection, serial.analyses, grid),
            case.grace_s,
        )
    history_a = workdir / "history-straight" if case.history else None
    with _span(tracer, "conformance.stream"):
        plain = run_streaming(boot, records, history_dir=history_a)

    if "stream-restart" in enabled:
        crash_after = max(1, min(len(records) - 1, int(len(records) * case.kill_frac)))
        history_b = workdir / "history-restart" if case.history else None
        with _span(tracer, "conformance.kill_restart", crash_after=crash_after):
            restarted = run_kill_restart(
                boot,
                records,
                crash_after=crash_after,
                checkpoint_every=case.checkpoint_every,
                checkpoint_dir=workdir / "checkpoints",
                history_dir=history_b,
            )
        problems = diff_values(plain.state, restarted.state)
        problems += invariants.check_history_identity(
            plain.history_digests, restarted.history_digests
        )
        report.checks.append(
            CheckOutcome("stream-restart", not problems, problems)
        )

    if "stream-disorder" in enabled and case.disorder_window_s > 0:
        with _span(tracer, "conformance.disorder", window=case.disorder_window_s):
            ordered = run_streaming(
                boot, records, buffer_window_s=case.disorder_window_s
            )
            disordered = run_streaming(
                boot,
                records,
                disorder_seed=case.seed,
                disorder_window_s=case.disorder_window_s,
                duplicate_rate=case.duplicate_rate,
                buffer_window_s=case.disorder_window_s,
            )
        problems = diff_values(ordered.state, disordered.state)
        report.checks.append(
            CheckOutcome("stream-disorder", not problems, problems)
        )

    if "oracle-stream" in enabled:
        problems = oracles.check_streaming_labels(plain.results, boot)
        report.checks.append(
            CheckOutcome("oracle-stream", not problems, problems)
        )

    if "invariants" in enabled:
        problems = (
            invariants.check_wait_events(serial.analyses)
            + invariants.check_littles_law_batch(serial.analyses, grid)
            + invariants.check_littles_law_streaming(plain.results, boot.grid)
            + invariants.check_version_monotonic(plain.versions)
        )
        report.checks.append(
            CheckOutcome("invariants", not problems, problems)
        )


def _with_grace(boot: DayBootstrap, grace_s: float) -> DayBootstrap:
    if boot.grace_s == grace_s:
        return boot
    import dataclasses

    return dataclasses.replace(boot, grace_s=grace_s)


# -- shrinking and artifacts ------------------------------------------------


def divergence_predicate(
    case: ConformanceCase,
    boot: DayBootstrap,
    check: str,
) -> Callable[[List[MdtRecord]], bool]:
    """"Does this record subset still fail ``check``?" — the fixed-
    context predicate the shrinker probes with.

    The bootstrap (spot set, thresholds, grid, engine geometry) is held
    frozen: re-deriving spots from a 30-record subset would detect
    nothing and the divergence would vanish for the wrong reason.
    """
    if check not in SHRINKABLE_CHECKS:
        raise ValueError(f"check {check!r} is not shrinkable")

    def diverges(subset: List[MdtRecord]) -> bool:
        if not subset:
            return False
        sub = MdtLogStore(subset)
        records = canonical_records(subset)
        try:
            if check in ("batch-parallel", "oracle-spots", "oracle-batch"):
                engine = boot.build_engine()
                serial = run_serial(engine, sub, boot.grid)
                if check == "batch-parallel":
                    parallel = run_parallel(
                        engine, sub, boot.grid, case.workers
                    )
                    return parallel.snapshot != serial.snapshot
                if check == "oracle-spots":
                    return bool(
                        oracles.check_bruteforce_spots(
                            engine, engine.preprocess(sub), serial.detection
                        )
                    )
                return bool(
                    oracles.check_batch_recompute(
                        serial.analyses, boot.grid, engine.amplification
                    )
                )
            plain = run_streaming(boot, records)
            if check == "oracle-stream":
                return bool(
                    oracles.check_streaming_labels(plain.results, boot)
                )
            if check == "stream-disorder":
                ordered = run_streaming(
                    boot, records, buffer_window_s=case.disorder_window_s
                )
                disordered = run_streaming(
                    boot,
                    records,
                    disorder_seed=case.seed,
                    disorder_window_s=case.disorder_window_s,
                    duplicate_rate=case.duplicate_rate,
                    buffer_window_s=case.disorder_window_s,
                )
                return ordered.state != disordered.state
            # stream-restart
            with tempfile.TemporaryDirectory(
                prefix="conformance-shrink-"
            ) as tmp:
                tmp = Path(tmp)
                crash_after = max(
                    1,
                    min(len(records) - 1, int(len(records) * case.kill_frac)),
                )
                if crash_after >= len(records):
                    return False
                restarted = run_kill_restart(
                    boot,
                    records,
                    crash_after=crash_after,
                    checkpoint_every=case.checkpoint_every,
                    checkpoint_dir=tmp / "checkpoints",
                )
            return plain.state != restarted.state
        except Exception:
            # A subset that crashes a path is itself a reproduction.
            return True

    return diverges


def csv_roundtrip(records: Sequence[MdtRecord]) -> List[MdtRecord]:
    """Records as they come back out of the fixture CSV format
    (second-precision timestamps, 6-decimal coordinates)."""
    return [MdtRecord.from_csv_row(r.to_csv_row()) for r in records]


def _shrink_first_divergence(
    case: ConformanceCase,
    store: MdtLogStore,
    bootstrap: Optional[DayBootstrap],
    report: CaseReport,
    max_runs: int,
    metrics,
    tracer,
) -> None:
    target = next(
        (c for c in report.failed_checks if c.name in SHRINKABLE_CHECKS),
        None,
    )
    if target is None:
        return
    engine = (
        bootstrap.build_engine()
        if bootstrap is not None
        else build_engine(store, case)
    )
    cleaned = engine.preprocess(store) if bootstrap is None else store
    records = canonical_records(cleaned)
    if bootstrap is not None:
        boot = bootstrap
    else:
        lo, hi = cleaned.time_span
        grid = day_grid(lo, hi, engine.config.slot_seconds)
        serial = run_serial(engine, cleaned, grid)
        boot = _with_grace(
            make_bootstrap(engine, serial.detection, serial.analyses, grid),
            case.grace_s,
        )
    predicate = divergence_predicate(case, boot, target.name)

    roundtripped = csv_roundtrip(records)
    csv_stable = predicate(roundtripped)
    to_shrink = roundtripped if csv_stable else records
    with _span(tracer, "conformance.shrink", check=target.name):
        try:
            result = shrink_records(
                to_shrink, predicate, max_runs=max_runs
            )
        except ValueError:
            report.shrink = {
                "check": target.name,
                "error": "divergence did not reproduce under the fixed "
                "bootstrap; not shrinkable",
            }
            return
    if metrics is not None:
        metrics.counter("conformance.shrink.predicate_runs").inc(
            result.predicate_runs
        )
    report.shrink = {
        "check": target.name,
        "initial_records": result.initial_records,
        "minimal_records": len(result.records),
        "taxis_kept": result.taxis_kept,
        "predicate_runs": result.predicate_runs,
        "budget_exhausted": result.exhausted,
        "csv_roundtrip_stable": csv_stable,
    }
    report._minimal_records = result.records  # type: ignore[attr-defined]
    report._bootstrap = boot  # type: ignore[attr-defined]


def _write_artifacts(
    case: ConformanceCase,
    report: CaseReport,
    bootstrap: Optional[DayBootstrap],
    out_dir: Path,
    fault: Optional[str] = None,
) -> Path:
    case_dir = out_dir / case.name
    case_dir.mkdir(parents=True, exist_ok=True)
    with open(case_dir / "report.json", "w", encoding="utf-8") as fh:
        json.dump(report.to_dict(), fh, indent=1, sort_keys=True)
        fh.write("\n")
    minimal: Optional[List[MdtRecord]] = getattr(
        report, "_minimal_records", None
    )
    boot: Optional[DayBootstrap] = getattr(report, "_bootstrap", bootstrap)
    if not report.divergent or minimal is None or boot is None:
        return case_dir
    MdtLogStore(minimal).to_csv(case_dir / "minimal_day.csv")
    boot.save(case_dir / "bootstrap.json")
    check = report.shrink["check"] if report.shrink else "batch-parallel"
    # Self-locating: the script keeps working when the artifact
    # directory is downloaded from CI and unpacked anywhere.
    command = (
        "taxiqueue conformance run"
        ' --input "$DIR"/minimal_day.csv'
        ' --bootstrap "$DIR"/bootstrap.json'
        f" --checks {check}"
        f" --workers {case.workers}"
        f" --disorder-window {case.disorder_window_s}"
        f" --kill-frac {case.kill_frac}"
        f" --checkpoint-every {case.checkpoint_every}"
        " --no-shrink"
    )
    if fault is not None:
        command += f" --inject-fault {shlex.quote(fault)}"
    script = case_dir / "repro.sh"
    script.write_text(
        "#!/bin/sh\n"
        "# One-command reproduction of the shrunk divergence\n"
        f"# (case {case.name}, check {check}).\n"
        "# Exits 1 while the divergence reproduces, 0 once it is fixed.\n"
        'DIR=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)\n'
        f"{command}\n",
        encoding="utf-8",
    )
    os.chmod(script, 0o755)
    return case_dir
