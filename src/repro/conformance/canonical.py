"""Canonical, comparable forms of every execution path's output.

Two exact-equality classes exist (see ``docs/conformance.md``):

* the **batch class** — serial and ``--workers N`` sharded runs are
  bit-for-bit identical, reduced by :func:`batch_snapshot`;
* the **streaming class** — ordered replay, kill/restart replay and
  buffered disordered replay converge to the same serving state,
  reduced by :func:`streaming_state`.

Batch and streaming outputs are *not* cross-compared: the streaming
monitor finalizes each slot with a one-slot grid and a grace period, so
its features agree with batch only approximately (``test_stream.py``
pins ``rel=0.05``), never exactly.

:class:`DayBootstrap` is the frozen tier-1 context a streaming run is
configured from (spot set, thresholds, grid, projection).  It
serializes to JSON so a shrunk minimal day can be re-run against the
*original* day's spots — re-deriving them from a 30-record CSV would
find nothing and the repro would be vacuous.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.engine import EngineConfig, QueueAnalyticEngine, SpotAnalysis
from repro.core.features import AmplificationPolicy
from repro.core.spots import SpotDetectionParams, SpotDetectionResult
from repro.core.thresholds import QcdThresholds
from repro.core.types import QueueSpot, TimeSlotGrid
from repro.geo.bbox import BBox
from repro.geo.point import LocalProjection
from repro.geo.zones import four_zone_partition
from repro.service.snapshot import SnapshotStore
from repro.stream.monitor import StreamingQueueMonitor

#: Format version stamped into every bootstrap JSON.
BOOTSTRAP_VERSION = 1


def canonical_json(obj) -> str:
    """Deterministic JSON text: sorted keys, no whitespace.

    Floats are emitted with Python's shortest-roundtrip repr, so equal
    text means bit-for-bit equal values.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def batch_snapshot(
    detection: SpotDetectionResult, analyses: Dict[str, SpotAnalysis]
) -> Dict:
    """Reduce one batch (tier 1 + tier 2) run to a JSON-able snapshot.

    Same shape as the golden-regression fixture, so equality here means
    exactly what ``tests/test_golden_regression.py`` pins.
    """
    return {
        "noise_count": detection.noise_count,
        "per_zone_counts": dict(detection.per_zone_counts),
        "spots": [asdict(spot) for spot in detection.spots],
        "thresholds": {
            spot_id: (
                None
                if analysis.thresholds is None
                else asdict(analysis.thresholds)
            )
            for spot_id, analysis in analyses.items()
        },
        "labels": {
            spot_id: [
                {
                    "slot": label.slot,
                    "label": label.label.value,
                    "routine": label.routine,
                }
                for label in analysis.labels
            ]
            for spot_id, analysis in analyses.items()
        },
    }


def streaming_state(snapshot: SnapshotStore) -> Dict:
    """Reduce a snapshot store to its full serving state.

    Covers the version (resumed runs must converge to the same snapshot
    id, not just the same labels) and every payload the HTTP layer
    serves from the finalized slot results.
    """
    return {
        "version": snapshot.version,
        "citywide": snapshot.citywide_payload(),
        "spots": {
            spot_id: snapshot.spot_slots_payload(spot_id)
            for spot_id in sorted(snapshot.spot_ids)
        },
    }


@dataclass(frozen=True)
class DayBootstrap:
    """The frozen context a conformance day runs under.

    Everything needed to rebuild the engine and the streaming stack
    *without* the original full day: held fixed while shrinking, and
    serialized next to the minimal CSV so the repro script reconstructs
    the exact same run.
    """

    bbox: BBox
    min_pts: int
    coverage: float
    slot_seconds: float
    assign_radius_m: float
    grace_s: float
    grid: TimeSlotGrid
    spots: Tuple[QueueSpot, ...]
    thresholds: Dict[str, Optional[QcdThresholds]]

    # -- construction ------------------------------------------------------

    def build_engine(self) -> QueueAnalyticEngine:
        """The batch engine this bootstrap's day was analyzed with."""
        lon, lat = self.bbox.center
        return QueueAnalyticEngine(
            zones=four_zone_partition(self.bbox),
            projection=LocalProjection(lon, lat),
            config=EngineConfig(
                detection=SpotDetectionParams(min_pts=self.min_pts),
                slot_seconds=self.slot_seconds,
                assign_radius_m=self.assign_radius_m,
                observed_fraction=self.coverage,
            ),
            city_bbox=self.bbox,
        )

    def stream_thresholds(self) -> Dict[str, QcdThresholds]:
        """Per-spot thresholds with undecidable (None) spots dropped —
        the monitor labels those UNIDENTIFIED."""
        return {
            spot_id: th
            for spot_id, th in self.thresholds.items()
            if th is not None
        }

    def build_stack(self) -> Tuple[StreamingQueueMonitor, SnapshotStore]:
        """A fresh monitor + subscribed snapshot store."""
        lon, lat = self.bbox.center
        monitor = StreamingQueueMonitor(
            spots=list(self.spots),
            thresholds=self.stream_thresholds(),
            grid=self.grid,
            projection=LocalProjection(lon, lat),
            amplification=AmplificationPolicy.for_coverage(self.coverage),
            assign_radius_m=self.assign_radius_m,
            grace_s=self.grace_s,
        )
        snapshot = SnapshotStore(list(self.spots), self.grid)
        monitor.subscribe(lambda results: snapshot.apply(results))
        return monitor, snapshot

    # -- serialization -----------------------------------------------------

    def to_json_dict(self) -> Dict:
        return {
            "version": BOOTSTRAP_VERSION,
            "bbox": asdict(self.bbox),
            "min_pts": self.min_pts,
            "coverage": self.coverage,
            "slot_seconds": self.slot_seconds,
            "assign_radius_m": self.assign_radius_m,
            "grace_s": self.grace_s,
            "grid": {
                "start_ts": self.grid.start_ts,
                "end_ts": self.grid.end_ts,
                "slot_seconds": self.grid.slot_seconds,
            },
            "spots": [asdict(spot) for spot in self.spots],
            "thresholds": {
                spot_id: None if th is None else asdict(th)
                for spot_id, th in self.thresholds.items()
            },
        }

    @classmethod
    def from_json_dict(cls, data: Dict) -> "DayBootstrap":
        """Inverse of :meth:`to_json_dict`.

        Raises:
            ValueError: on an unknown format version or missing keys.
        """
        try:
            version = data["version"]
            if version != BOOTSTRAP_VERSION:
                raise ValueError(
                    f"unsupported bootstrap version {version!r}"
                )
            return cls(
                bbox=BBox(**data["bbox"]),
                min_pts=int(data["min_pts"]),
                coverage=float(data["coverage"]),
                slot_seconds=float(data["slot_seconds"]),
                assign_radius_m=float(data["assign_radius_m"]),
                grace_s=float(data["grace_s"]),
                grid=TimeSlotGrid(**data["grid"]),
                spots=tuple(
                    QueueSpot(**spot) for spot in data["spots"]
                ),
                thresholds={
                    spot_id: None if th is None else QcdThresholds(**th)
                    for spot_id, th in data["thresholds"].items()
                },
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed bootstrap JSON: {exc}")

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_json_dict(), fh, sort_keys=True, indent=1)
            fh.write("\n")

    @classmethod
    def load(cls, path) -> "DayBootstrap":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json_dict(json.load(fh))


def make_bootstrap(
    engine: QueueAnalyticEngine,
    detection: SpotDetectionResult,
    analyses: Dict[str, SpotAnalysis],
    grid: TimeSlotGrid,
) -> DayBootstrap:
    """Freeze one batch run's tier-1/tier-2 context into a bootstrap."""
    if engine.city_bbox is None:
        raise ValueError("conformance engines must carry a city bbox")
    return DayBootstrap(
        bbox=engine.city_bbox,
        min_pts=engine.config.detection.min_pts,
        coverage=engine.config.observed_fraction,
        slot_seconds=engine.config.slot_seconds,
        assign_radius_m=engine.config.assign_radius_m,
        grace_s=900.0,
        grid=grid,
        spots=tuple(detection.spots),
        thresholds={
            spot_id: analysis.thresholds
            for spot_id, analysis in analyses.items()
        },
    )


def day_grid(lo: float, hi: float, slot_seconds: float) -> TimeSlotGrid:
    """The day-spanning slot grid used by every path of a case.

    Same construction as ``QueueService.from_day``: anchored to the
    records' calendar day and covering at least 24 hours.
    """
    day_start = lo - (lo % 86400.0)
    return TimeSlotGrid(
        day_start, max(hi, day_start + 86400.0), slot_seconds
    )
