"""Named *test-only* fault patches that prove the harness has teeth.

A conformance harness that always reports green is indistinguishable
from one that checks nothing.  Each fault here monkey-patches one
execution path's copy of a shared algorithm — the seam is the module
attribute the path imported at load time, so the *other* paths keep the
genuine code — and the harness must catch, shrink and emit a repro for
the resulting divergence.

These are not chaos faults (crashes, disorder — see
:mod:`repro.resilience.chaos`); they simulate the bug class the
harness exists for: a refactor that silently changes one path's
results.  Never active unless explicitly requested via
``taxiqueue conformance run --inject-fault NAME`` or a test.
"""

from __future__ import annotations

import contextlib
import dataclasses
from typing import Callable, ContextManager, Dict, Iterator


@contextlib.contextmanager
def _label_flip() -> Iterator[None]:
    """Corrupt the *streaming* QCD stage: any decided non-C1 label on a
    slot with arrivals is flipped to C1 (taxi queue).

    Patches ``repro.stream.monitor.label_slot`` — the batch tiers call
    ``repro.core.qcd`` directly and stay correct, so only the streaming
    QCD oracle can see this.
    """
    import repro.stream.monitor as monitor_mod
    from repro.core.qcd import label_slot as real_label_slot
    from repro.core.types import QueueType, SlotLabel

    def flipped(features, thresholds):
        label = real_label_slot(features, thresholds)
        if features.n_arrivals > 0 and label.routine != 0 and (
            label.label is not QueueType.C1
        ):
            return SlotLabel(
                slot=label.slot, label=QueueType.C1, routine=label.routine
            )
        return label

    original = monitor_mod.label_slot
    monitor_mod.label_slot = flipped
    try:
        yield
    finally:
        monitor_mod.label_slot = original


@contextlib.contextmanager
def _littles_drift() -> Iterator[None]:
    """Corrupt the *streaming* feature stage: every positive queue
    length is inflated by 50%, breaking L = lambda * W.

    Patches ``repro.stream.monitor.compute_slot_features``; caught by
    the Little's-law invariant on streaming output (the labels stay
    self-consistent with the drifted features, so the QCD oracle alone
    would miss it).
    """
    import repro.stream.monitor as monitor_mod
    from repro.core.features import (
        compute_slot_features as real_compute,
    )

    def drifted(events, grid, amplification):
        features = real_compute(events, grid, amplification)
        return [
            dataclasses.replace(f, queue_length=f.queue_length * 1.5)
            if f.queue_length > 0
            else f
            for f in features
        ]

    original = monitor_mod.compute_slot_features
    monitor_mod.compute_slot_features = drifted
    try:
        yield
    finally:
        monitor_mod.compute_slot_features = original


#: Registry of injectable faults, keyed by CLI name.
FAULTS: Dict[str, Callable[[], ContextManager[None]]] = {
    "label-flip": _label_flip,
    "littles-drift": _littles_drift,
}


def fault_context(name: str) -> ContextManager[None]:
    """The context manager for one named fault.

    Raises:
        KeyError: for an unknown fault name.
    """
    return FAULTS[name]()
