"""Structural diff of canonical JSON values.

A conformance comparison that fails as ``'97kB of JSON' != '97kB of
JSON'`` is useless; :func:`diff_values` walks two JSON-able values in
lockstep and reports the *paths* where they differ, bounded so a
totally-divergent pair cannot flood a report.
"""

from __future__ import annotations

from typing import List

#: Stop collecting differences after this many per comparison.
DEFAULT_LIMIT = 25


def diff_values(left, right, path: str = "$", limit: int = DEFAULT_LIMIT) -> List[str]:
    """Paths at which two JSON-able values differ (empty = equal).

    Values must be plain JSON types (dict/list/str/num/bool/None);
    floats compare exactly — the harness's equality classes are
    bit-for-bit by design.
    """
    out: List[str] = []
    _walk(left, right, path, out, limit)
    return out


def _walk(left, right, path: str, out: List[str], limit: int) -> None:
    if len(out) >= limit:
        return
    if type(left) is not type(right) and not (
        isinstance(left, (int, float))
        and isinstance(right, (int, float))
        and not isinstance(left, bool)
        and not isinstance(right, bool)
    ):
        out.append(f"{path}: type {_name(left)} != {_name(right)}")
        return
    if isinstance(left, dict):
        for key in sorted(set(left) | set(right)):
            if len(out) >= limit:
                return
            if key not in left:
                out.append(f"{path}.{key}: only in right")
            elif key not in right:
                out.append(f"{path}.{key}: only in left")
            else:
                _walk(left[key], right[key], f"{path}.{key}", out, limit)
        return
    if isinstance(left, list):
        if len(left) != len(right):
            out.append(
                f"{path}: length {len(left)} != {len(right)}"
            )
        for i, (a, b) in enumerate(zip(left, right)):
            if len(out) >= limit:
                return
            _walk(a, b, f"{path}[{i}]", out, limit)
        return
    if left != right:
        out.append(f"{path}: {left!r} != {right!r}")


def _name(value) -> str:
    return "null" if value is None else type(value).__name__
