"""Cross-engine differential conformance harness.

The pipeline (PEA -> per-zone DBSCAN -> WTE -> QCD) has four execution
paths — serial, ``--workers N`` sharded, streaming replay and
checkpoint-restored streaming — whose equivalence was previously pinned
only by scattered per-feature tests.  This package checks it
systematically:

* :mod:`repro.conformance.matrix` — a seeded case matrix over the city
  simulator (fleet sizes, zones, disorder windows, worker counts, kill
  points);
* :mod:`repro.conformance.paths` — drives each day through every
  execution path and reduces the outputs to canonical JSON;
* :mod:`repro.conformance.oracles` — brute-force reference
  recomputations (naive radius DBSCAN, direct WTE/QCD);
* :mod:`repro.conformance.invariants` — paper-derived invariants (WTE
  interval ordering, Little's-law consistency of the 5-tuple, snapshot
  version monotonicity, history byte-identity across kill/restart);
* :mod:`repro.conformance.shrink` — ddmin bisection of a diverging day
  down to a minimal reproducing record set;
* :mod:`repro.conformance.runner` — orchestrates a case end to end and
  emits divergence artifacts (minimal CSV + bootstrap JSON + one-command
  repro script);
* :mod:`repro.conformance.faults` — named *test-only* fault patches used
  to prove the harness catches real divergence.

Wired into ``taxiqueue conformance run|shrink|report``.
"""

from repro.conformance.canonical import DayBootstrap, canonical_json
from repro.conformance.matrix import ConformanceCase, default_matrix
from repro.conformance.runner import CaseReport, run_case, run_matrix

__all__ = [
    "CaseReport",
    "ConformanceCase",
    "DayBootstrap",
    "canonical_json",
    "default_matrix",
    "run_case",
    "run_matrix",
]
