"""The seeded case matrix conformance runs sweep.

One :class:`ConformanceCase` fully determines a scenario day (simulator
seed and city shape) *and* the execution-path parameters it is driven
through (worker count, disorder window, kill point, checkpoint
cadence).  :func:`default_matrix` varies all of them deterministically
with the seed index so ``--seeds 5`` exercises five genuinely different
configurations, reproducible record for record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.sim import SimulationConfig, simulate_day
from repro.trace.log_store import MdtLogStore

#: Seed of the first default-matrix case (arbitrary, fixed forever).
DEFAULT_SEED_BASE = 9301


@dataclass(frozen=True)
class ConformanceCase:
    """One scenario day x execution-path configuration."""

    name: str
    seed: int = DEFAULT_SEED_BASE
    fleet: int = 60
    n_spots: int = 6
    n_decoys: int = 4
    day_of_week: int = 0
    coverage: float = 0.6
    min_pts: int = 20
    workers: int = 2
    disorder_window_s: float = 120.0
    """0 disables the disorder comparison for this case."""

    duplicate_rate: float = 0.05
    kill_frac: float = 0.5
    """Where the injected crash lands, as a fraction of the stream."""

    checkpoint_every: int = 500
    grace_s: float = 900.0
    history: bool = True
    """Write (and byte-compare) history segments on the streaming runs."""

    def simulate(self) -> MdtLogStore:
        """The case's scenario day from the city simulator."""
        output = simulate_day(
            SimulationConfig(
                seed=self.seed,
                fleet_size=self.fleet,
                day_of_week=self.day_of_week,
                observed_fraction=self.coverage,
                n_queue_spots=self.n_spots,
                n_decoy_landmarks=self.n_decoys,
            )
        )
        return output.store


def default_matrix(
    seeds: int = 5,
    seed_base: int = DEFAULT_SEED_BASE,
    workers: Optional[int] = None,
) -> List[ConformanceCase]:
    """``seeds`` cases with deterministically varied shape.

    Fleet size, spot count, weekday, disorder window, kill point and
    checkpoint cadence all cycle with the index; every third case turns
    the disorder comparison off (covering the no-buffer configuration).

    Raises:
        ValueError: for a non-positive seed count.
    """
    if seeds < 1:
        raise ValueError("need at least one seed")
    fleets = (60, 80, 60, 100, 80)
    spot_counts = (6, 6, 8, 8, 10)
    windows = (120.0, 60.0, 0.0, 180.0, 90.0)
    kill_fracs = (0.5, 0.3, 0.7, 0.45, 0.6)
    cadences = (500, 400, 700, 300, 600)
    cases = []
    for i in range(seeds):
        case = ConformanceCase(
            name=f"seed-{seed_base + i}",
            seed=seed_base + i,
            fleet=fleets[i % len(fleets)],
            n_spots=spot_counts[i % len(spot_counts)],
            n_decoys=4 + i % 3,
            day_of_week=i % 7,
            workers=workers if workers is not None else 2 + i % 2,
            disorder_window_s=windows[i % len(windows)],
            kill_frac=kill_fracs[i % len(kill_fracs)],
            checkpoint_every=cadences[i % len(cadences)],
        )
        cases.append(case)
    return cases


def csv_case(
    name: str,
    *,
    min_pts: int = 20,
    coverage: float = 1.0,
    workers: int = 2,
    disorder_window_s: float = 120.0,
    kill_frac: float = 0.5,
    checkpoint_every: int = 500,
) -> ConformanceCase:
    """A case shell for a day loaded from CSV (``--input``): the store
    comes from the file, so the sim fields are irrelevant; coverage
    defaults to 1.0 because committed fixtures are full-fleet days."""
    return ConformanceCase(
        name=name,
        min_pts=min_pts,
        coverage=coverage,
        workers=workers,
        disorder_window_s=disorder_window_s,
        kill_frac=kill_frac,
        checkpoint_every=checkpoint_every,
    )


__all__ = [
    "ConformanceCase",
    "DEFAULT_SEED_BASE",
    "csv_case",
    "default_matrix",
]
