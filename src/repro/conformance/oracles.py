"""Brute-force reference oracles.

Each oracle recomputes part of a run's output with the slowest, most
obviously correct method available and returns a list of human-readable
divergence strings (empty = conformant):

* :func:`check_bruteforce_spots` — tier-1 spots against DBSCAN over the
  O(n^2) :class:`~repro.cluster.neighbors.BruteForceNeighbors` backend
  (no grid index, no R-tree — a plain radius scan);
* :func:`check_batch_recompute` — every spot's 5-tuple features
  recomputed directly from its wait events, and every slot label
  recomputed by applying QCD to those features;
* :func:`check_streaming_labels` — every finalized
  :class:`~repro.stream.monitor.SlotResult` relabelled from its own
  features and the bootstrap thresholds.  This is the oracle that
  catches a corrupted streaming QCD stage (see
  :mod:`repro.conformance.faults`): the batch paths never see it
  because streaming output is not exactly comparable to batch output.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.cluster.neighbors import BruteForceNeighbors
from repro.conformance.canonical import DayBootstrap
from repro.conformance.diff import diff_values
from repro.core.engine import QueueAnalyticEngine, SpotAnalysis
from repro.core.features import compute_slot_features
from repro.core.qcd import disambiguate as qcd_disambiguate
from repro.core.qcd import label_slot
from repro.core.spots import SpotDetectionResult, detect_queue_spots
from repro.core.types import QueueType, TimeSlotGrid
from repro.stream.monitor import SlotResult
from repro.trace.log_store import MdtLogStore


def check_bruteforce_spots(
    engine: QueueAnalyticEngine,
    cleaned: MdtLogStore,
    detection: SpotDetectionResult,
) -> List[str]:
    """Compare tier-1 output against the naive-radius DBSCAN oracle."""
    reference = detect_queue_spots(
        cleaned,
        engine.zones,
        engine.projection,
        engine.config.detection,
        neighbors_factory=BruteForceNeighbors,
    )
    problems: List[str] = []
    if detection.noise_count != reference.noise_count:
        problems.append(
            f"noise_count {detection.noise_count} != brute-force "
            f"{reference.noise_count}"
        )
    from dataclasses import asdict

    problems.extend(
        diff_values(
            [asdict(s) for s in detection.spots],
            [asdict(s) for s in reference.spots],
            path="spots",
        )
    )
    return problems


def check_batch_recompute(
    analyses: Dict[str, SpotAnalysis], grid: TimeSlotGrid, amplification
) -> List[str]:
    """Recompute WTE-derived features and QCD labels from first
    principles for every spot and compare exactly."""
    problems: List[str] = []
    for spot_id in sorted(analyses):
        analysis = analyses[spot_id]
        expected = compute_slot_features(
            analysis.wait_events, grid, amplification
        )
        if expected != analysis.features:
            problems.append(
                f"{spot_id}: stored 5-tuple features differ from direct "
                f"recomputation over the spot's wait events"
            )
            continue
        if analysis.thresholds is None:
            bad = [
                label
                for label in analysis.labels
                if label.label is not QueueType.UNIDENTIFIED
                or label.routine != 0
            ]
            if bad:
                problems.append(
                    f"{spot_id}: no thresholds derivable but "
                    f"{len(bad)} slots carry a decided label"
                )
            continue
        expected_labels = qcd_disambiguate(expected, analysis.thresholds)
        if expected_labels != analysis.labels:
            problems.append(
                f"{spot_id}: stored labels differ from QCD applied "
                f"directly to the recomputed features"
            )
    return problems


def check_streaming_labels(
    results: Sequence[SlotResult], boot: DayBootstrap
) -> List[str]:
    """Relabel every finalized slot from its own features."""
    thresholds = boot.stream_thresholds()
    problems: List[str] = []
    for result in results:
        th = thresholds.get(result.spot_id)
        if th is None:
            if (
                result.label.label is not QueueType.UNIDENTIFIED
                or result.label.routine != 0
            ):
                problems.append(
                    f"{result.spot_id} slot {result.slot}: labelled "
                    f"{result.label.label.value} with no thresholds"
                )
            continue
        expected = label_slot(result.features, th)
        if expected != result.label:
            problems.append(
                f"{result.spot_id} slot {result.slot}: streaming label "
                f"{result.label.label.value}/r{result.label.routine} != "
                f"QCD oracle {expected.label.value}/r{expected.routine}"
            )
    return problems
