"""Human-readable and persisted forms of conformance results.

``taxiqueue conformance run`` prints :func:`format_report` per case and
:func:`format_summary` at the end; ``taxiqueue conformance report DIR``
reloads the per-case ``report.json`` files a previous run left in its
``--out`` directory and re-summarizes them (CI uploads that directory
as the divergence artifact).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence

from repro.conformance.runner import CaseReport


def format_report(report: CaseReport) -> str:
    """One case as a short multi-line block."""
    lines = [
        f"case {report.name}: "
        f"{'DIVERGENT' if report.divergent else 'conformant'} "
        f"({report.records} records, {report.spots} spots, "
        f"{report.seconds:.1f}s)"
    ]
    for check in report.checks:
        mark = "ok" if check.ok else "FAIL"
        lines.append(f"  {check.name:<16} {mark}")
        for detail in check.details[:5]:
            lines.append(f"    {detail}")
        if len(check.details) > 5:
            lines.append(f"    ... {len(check.details) - 5} more")
    if report.shrink:
        if "error" in report.shrink:
            lines.append(f"  shrink: {report.shrink['error']}")
        else:
            lines.append(
                f"  shrink[{report.shrink['check']}]: "
                f"{report.shrink['initial_records']} -> "
                f"{report.shrink['minimal_records']} records "
                f"({report.shrink['taxis_kept']} taxis, "
                f"{report.shrink['predicate_runs']} probes)"
            )
    if report.artifact_dir and report.divergent:
        lines.append(f"  artifacts: {report.artifact_dir}")
    return "\n".join(lines)


def format_summary(reports: Sequence[CaseReport]) -> str:
    """The bottom line over a whole matrix."""
    divergent = [r for r in reports if r.divergent]
    checks = sum(len(r.checks) for r in reports)
    failed = sum(len(r.failed_checks) for r in reports)
    seconds = sum(r.seconds for r in reports)
    verdict = (
        "all conformant"
        if not divergent
        else f"{len(divergent)} divergent: "
        + ", ".join(r.name for r in divergent)
    )
    return (
        f"{len(reports)} cases, {checks} checks ({failed} failed), "
        f"{seconds:.1f}s total — {verdict}"
    )


def load_reports(directory) -> List[Dict]:
    """Every ``report.json`` under a run's ``--out`` directory.

    Raises:
        FileNotFoundError: when the directory does not exist.
        ValueError: when no report files are found in it.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise FileNotFoundError(f"no such directory: {directory}")
    reports = []
    for path in sorted(directory.glob("*/report.json")):
        with open(path, "r", encoding="utf-8") as fh:
            reports.append(json.load(fh))
    if not reports:
        raise ValueError(f"no case reports under {directory}")
    return reports


def format_loaded_summary(reports: List[Dict]) -> str:
    """:func:`format_summary` over reloaded report dicts."""
    divergent = [r for r in reports if r.get("divergent")]
    checks = sum(len(r.get("checks", [])) for r in reports)
    failed = sum(
        1
        for r in reports
        for check in r.get("checks", [])
        if not check.get("ok")
    )
    seconds = sum(r.get("seconds", 0.0) for r in reports)
    verdict = (
        "all conformant"
        if not divergent
        else f"{len(divergent)} divergent: "
        + ", ".join(r["name"] for r in divergent)
    )
    return (
        f"{len(reports)} cases, {checks} checks ({failed} failed), "
        f"{seconds:.1f}s total — {verdict}"
    )
