"""Drive one day through every execution path.

Each function here runs one path end to end and reduces the output to
the canonical forms of :mod:`repro.conformance.canonical`:

* :func:`run_serial` / :func:`run_parallel` — the batch class;
* :func:`run_streaming` — ordered replay, optionally through a
  :class:`~repro.resilience.reorder.ReorderBuffer` and/or against a
  disordered copy of the stream;
* :func:`run_kill_restart` — streaming with a mid-stream
  :class:`~repro.resilience.chaos.InjectedCrash`, then a fresh stack
  restored from the latest checkpoint and resumed.

Streaming paths always consume records in the canonical
:func:`~repro.resilience.reorder.record_key` order, the same total
order the reorder buffer releases in — a ts-only sort would leave
equal-timestamp ties ambiguous between paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.conformance.canonical import (
    DayBootstrap,
    batch_snapshot,
    streaming_state,
)
from repro.core.engine import QueueAnalyticEngine, SpotAnalysis
from repro.core.spots import SpotDetectionResult
from repro.core.types import TimeSlotGrid
from repro.history.segments import SegmentStore
from repro.history.writer import HistoryWriter
from repro.resilience.chaos import ChaosStream, FaultPlan, InjectedCrash
from repro.resilience.checkpoint import CheckpointManager, ServiceCheckpointer
from repro.resilience.reorder import ReorderBuffer, record_key
from repro.service.replay import StreamReplayer
from repro.stream.monitor import SlotResult
from repro.trace.log_store import MdtLogStore
from repro.trace.record import MdtRecord


def canonical_records(store_or_records) -> List[MdtRecord]:
    """All records in the canonical total order every stream path uses."""
    if isinstance(store_or_records, MdtLogStore):
        records = store_or_records.iter_records()
    else:
        records = store_or_records
    return sorted(records, key=record_key)


# -- batch class ------------------------------------------------------------


@dataclass
class BatchRun:
    """One batch-class run, raw outputs plus the canonical snapshot."""

    detection: SpotDetectionResult
    analyses: Dict[str, SpotAnalysis]
    snapshot: Dict


def run_serial(
    engine: QueueAnalyticEngine,
    store: MdtLogStore,
    grid: TimeSlotGrid,
) -> BatchRun:
    """Both tiers on the in-process serial engine."""
    detection = engine.detect_spots(store)
    analyses = engine.disambiguate(store, detection, grid)
    return BatchRun(detection, analyses, batch_snapshot(detection, analyses))


def run_parallel(
    engine: QueueAnalyticEngine,
    store: MdtLogStore,
    grid: TimeSlotGrid,
    workers: int,
    tracer=None,
) -> BatchRun:
    """Both tiers through the zone-sharded multiprocessing runner."""
    from repro.parallel.runner import ParallelEngineRunner

    runner = ParallelEngineRunner(engine, workers=workers, tracer=tracer)
    detection = runner.detect_spots(store)
    analyses = runner.disambiguate(store, detection, grid)
    return BatchRun(detection, analyses, batch_snapshot(detection, analyses))


# -- streaming class --------------------------------------------------------


@dataclass
class StreamingRun:
    """One streaming-class run reduced to comparable state."""

    state: Dict
    results: List[SlotResult] = field(default_factory=list)
    versions: List[int] = field(default_factory=list)
    history_digests: Optional[Dict[str, str]] = None
    resumed_from: Optional[int] = None


def _collecting_stack(boot: DayBootstrap, history_dir=None):
    """Monitor + snapshot + collectors (+ optional history writer)."""
    monitor, snapshot = boot.build_stack()
    results: List[SlotResult] = []
    versions: List[int] = []

    def _collect(batch):
        if batch:
            results.extend(batch)
            versions.append(snapshot.version)

    # build_stack already subscribed snapshot.apply; this callback runs
    # after it, so snapshot.version is the post-publish version.
    monitor.subscribe(_collect)
    writer = None
    if history_dir is not None:
        writer = HistoryWriter(
            SegmentStore(history_dir), list(boot.spots), boot.grid
        )
        monitor.subscribe(writer.absorb)
    return monitor, snapshot, writer, results, versions


def run_streaming(
    boot: DayBootstrap,
    records: Sequence[MdtRecord],
    *,
    disorder_seed: Optional[int] = None,
    disorder_window_s: float = 0.0,
    duplicate_rate: float = 0.0,
    buffer_window_s: float = 0.0,
    history_dir=None,
) -> StreamingRun:
    """One full streaming replay.

    With ``disorder_seed`` set, the stream is first run through
    :func:`~repro.resilience.chaos.disordered_copy` (bounded-lateness
    permutation plus duplicates); ``buffer_window_s`` > 0 inserts a
    :class:`ReorderBuffer` in front of the monitor, the way
    ``taxiqueue serve --disorder-window`` does.  Disordered runs are
    only comparable against an *equally buffered* ordered run — the
    buffer deduplicates, an unbuffered monitor does not.
    """
    feed = list(records)
    if disorder_seed is not None:
        from repro.resilience.chaos import disordered_copy

        feed = disordered_copy(
            feed,
            seed=disorder_seed,
            window_s=disorder_window_s,
            duplicate_rate=duplicate_rate,
        )
    monitor, snapshot, writer, results, versions = _collecting_stack(
        boot, history_dir
    )
    buffer = (
        ReorderBuffer(window_s=buffer_window_s)
        if buffer_window_s > 0
        else None
    )
    for record in feed:
        if buffer is None:
            monitor.feed(record)
        else:
            for released in buffer.feed(record):
                monitor.feed(released)
    if buffer is not None:
        for released in buffer.flush():
            monitor.feed(released)
    monitor.finish()
    if writer is not None:
        writer.flush_all()
    return StreamingRun(
        state=streaming_state(snapshot),
        results=results,
        versions=versions,
        history_digests=(
            None if history_dir is None else history_digests(history_dir)
        ),
    )


def run_kill_restart(
    boot: DayBootstrap,
    records: Sequence[MdtRecord],
    *,
    crash_after: int,
    checkpoint_every: int,
    checkpoint_dir,
    history_dir=None,
) -> StreamingRun:
    """Streaming killed mid-day, then restored and resumed.

    Phase 1 replays through a :class:`ChaosStream` that raises
    :class:`InjectedCrash` after ``crash_after`` records, checkpointing
    every ``checkpoint_every`` records.  Phase 2 builds a *fresh* stack,
    restores the latest checkpoint and replays from the recorded stream
    position.  The history writer's cursor rides inside the checkpoint,
    so segment files must come out byte-identical to a straight run.

    Raises:
        RuntimeError: when the crash did not fire (``crash_after`` past
            the end of the stream would silently degrade to a plain run).
    """
    feed = list(records)
    monitor, snapshot, writer, _, _ = _collecting_stack(boot, history_dir)
    checkpointer = ServiceCheckpointer(
        CheckpointManager(checkpoint_dir),
        monitor,
        snapshot,
        history=writer,
        every_records=checkpoint_every,
    )
    crashing = StreamReplayer(
        monitor,
        ChaosStream(iter(feed), FaultPlan(crash_after=crash_after)),
        speedup=None,
        checkpointer=checkpointer,
    )
    crashing.run()
    if not isinstance(crashing.error, InjectedCrash):
        raise RuntimeError(
            f"injected crash after {crash_after} records did not fire "
            f"(stream has {len(feed)})"
        )

    monitor2, snapshot2, writer2, results, versions = _collecting_stack(
        boot, history_dir
    )
    checkpointer2 = ServiceCheckpointer(
        CheckpointManager(checkpoint_dir),
        monitor2,
        snapshot2,
        history=writer2,
        every_records=checkpoint_every,
    )
    resumed_from = checkpointer2.restore_latest()
    StreamReplayer(
        monitor2,
        feed,
        speedup=None,
        checkpointer=checkpointer2,
        skip_records=resumed_from or 0,
    ).run()
    monitor2.finish()
    if writer2 is not None:
        writer2.flush_all()
    return StreamingRun(
        state=streaming_state(snapshot2),
        results=results,
        versions=versions,
        history_digests=(
            None if history_dir is None else history_digests(history_dir)
        ),
        resumed_from=resumed_from,
    )


def history_digests(history_dir) -> Dict[str, str]:
    """SHA-256 per history segment file in a directory (byte identity)."""
    return SegmentStore(history_dir).digests()
