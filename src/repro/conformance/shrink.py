"""Delta-debugging reduction of a diverging day.

Given a record list and a predicate "does this subset still diverge?",
:func:`shrink_records` produces a (1-minimal up to budget) subset using
Zeller's ddmin, in two granularities: whole taxis first — a day has far
fewer taxis than records, and a divergence almost always lives in a
handful of trajectories — then individual records of the survivors.

The predicate runs the full comparison pipeline per probe, so the run
budget (``max_runs``) is the real cost knob; when it is exhausted the
current (still-diverging, just not minimal) subset is returned.
Subsets always preserve the canonical record order of the input, so
every probe is a well-formed day.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, TypeVar

from repro.trace.record import MdtRecord

T = TypeVar("T")

Predicate = Callable[[List[MdtRecord]], bool]


@dataclass
class ShrinkResult:
    """Outcome of one two-level shrink."""

    records: List[MdtRecord]
    predicate_runs: int = 0
    initial_records: int = 0
    taxis_kept: int = 0
    exhausted: bool = False
    """True when the run budget stopped the reduction early."""


class _Budget:
    def __init__(self, max_runs: int):
        self.max_runs = max_runs
        self.runs = 0

    @property
    def exhausted(self) -> bool:
        return self.runs >= self.max_runs


def ddmin(
    items: List[T],
    test: Callable[[List[T]], bool],
    budget: _Budget,
) -> List[T]:
    """Zeller's ddmin: a minimal sublist still satisfying ``test``.

    ``items`` must already satisfy the predicate (the caller verifies);
    order is preserved in every candidate.  Stops early on budget
    exhaustion, returning the best (smallest known failing) sublist.
    """
    n = 2
    while len(items) >= 2 and not budget.exhausted:
        size = len(items)
        chunk_starts = [size * i // n for i in range(n + 1)]
        chunks = [
            items[chunk_starts[i]:chunk_starts[i + 1]] for i in range(n)
        ]
        reduced = False
        for chunk in chunks:
            if budget.exhausted or not chunk or len(chunk) == size:
                continue
            budget.runs += 1
            if test(chunk):
                items = chunk
                n = 2
                reduced = True
                break
        if reduced:
            continue
        if n > 2:
            for i in range(n):
                complement = [
                    item
                    for j, chunk in enumerate(chunks)
                    if j != i
                    for item in chunk
                ]
                if budget.exhausted or len(complement) == size:
                    continue
                budget.runs += 1
                if test(complement):
                    items = complement
                    n = max(n - 1, 2)
                    reduced = True
                    break
        if reduced:
            continue
        if n >= len(items):
            break
        n = min(len(items), 2 * n)
    return items


def shrink_records(
    records: Sequence[MdtRecord],
    diverges: Predicate,
    max_runs: int = 400,
) -> ShrinkResult:
    """Two-level ddmin over a diverging day.

    Args:
        records: the full day, canonical order, already known to diverge.
        diverges: True when the given subset still reproduces.
        max_runs: total predicate-evaluation budget across both levels.

    Raises:
        ValueError: when the full input does not satisfy the predicate —
            shrinking a non-diverging day would "minimize" to garbage.
    """
    records = list(records)
    initial = len(records)
    if not diverges(records):
        raise ValueError("full record set does not diverge; nothing to shrink")
    budget = _Budget(max_runs)

    cache: dict = {}

    def cached(subset: List[MdtRecord]) -> bool:
        key = tuple(id(r) for r in subset)
        if key not in cache:
            cache[key] = diverges(subset)
        return cache[key]

    taxis = sorted({r.taxi_id for r in records})
    if len(taxis) > 1:

        def taxi_test(subset_taxis: List[str]) -> bool:
            keep = set(subset_taxis)
            return cached([r for r in records if r.taxi_id in keep])

        taxis = ddmin(taxis, taxi_test, budget)
        keep = set(taxis)
        records = [r for r in records if r.taxi_id in keep]

    minimal = ddmin(records, cached, budget)
    return ShrinkResult(
        records=minimal,
        predicate_runs=budget.runs,
        initial_records=initial,
        taxis_kept=len({r.taxi_id for r in minimal}),
        exhausted=budget.exhausted,
    )
