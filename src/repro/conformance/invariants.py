"""Paper-derived invariants checked on every conformance run.

Unlike the differential comparisons (which need two runs), these hold
on a *single* run's output, straight from the paper's definitions:

* **WTE interval ordering and PAYMENT-reset** (section 5.1) — every
  wait interval is non-negative and starts from a queueing-compatible
  state (FREE, ONCALL or ARRIVED; a PAYMENT record resets the wait
  start, so no event may begin there), and each spot's events are
  sorted by start time;
* **Little's-law consistency** (section 5.2) — the 5-tuple's queue
  length L equals lambda * W recomputed from the stored arrival count
  and mean wait over the slot length, exactly (same arithmetic as
  ``repro.core.features``, so ``==`` is the right comparison);
* **snapshot version monotonicity** — each non-empty publish bumps the
  serving version by exactly one, never backwards;
* **history byte-identity** — segment files written by a kill-restarted
  run digest identically to a straight run's (checked via
  :meth:`repro.history.segments.SegmentStore.digests`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.engine import SpotAnalysis
from repro.core.types import SlotFeatures, TimeSlotGrid
from repro.core.wte import WaitEvent
from repro.queueing.littles_law import little_queue_length
from repro.states.states import TaxiState
from repro.stream.monitor import SlotResult

#: States a wait interval may start from (Definition 4; PAYMENT resets).
WAIT_START_STATES = frozenset(
    {TaxiState.FREE, TaxiState.ONCALL, TaxiState.ARRIVED}
)


def check_wait_events(analyses: Dict[str, SpotAnalysis]) -> List[str]:
    """WTE interval ordering + PAYMENT-reset over every spot."""
    problems: List[str] = []
    for spot_id in sorted(analyses):
        events = analyses[spot_id].wait_events
        prev_start: Optional[float] = None
        for event in events:
            if event.wait_s < 0:
                problems.append(
                    f"{spot_id}: negative wait {event.wait_s:.1f}s "
                    f"(taxi {event.taxi_id})"
                )
            if event.start_state not in WAIT_START_STATES:
                problems.append(
                    f"{spot_id}: wait event starts from "
                    f"{event.start_state.value} (taxi {event.taxi_id}) — "
                    f"PAYMENT-reset violated"
                )
            if prev_start is not None and event.start_ts < prev_start:
                problems.append(
                    f"{spot_id}: wait events not ordered by start_ts"
                )
            prev_start = event.start_ts
    return problems


def _check_littles_law(
    features: SlotFeatures, grid: TimeSlotGrid, where: str
) -> Optional[str]:
    lo, hi = grid.bounds(features.slot)
    slot_len = hi - lo
    if features.mean_wait_s is None or slot_len <= 0:
        expected = 0.0
    else:
        expected = little_queue_length(
            features.n_arrivals / slot_len, features.mean_wait_s
        )
    if expected != features.queue_length:
        return (
            f"{where}: queue_length {features.queue_length!r} != "
            f"lambda*W = {expected!r} (Little's law)"
        )
    return None


def check_littles_law_batch(
    analyses: Dict[str, SpotAnalysis], grid: TimeSlotGrid
) -> List[str]:
    """L == lambda * W for every batch slot's 5-tuple."""
    problems: List[str] = []
    for spot_id in sorted(analyses):
        for features in analyses[spot_id].features:
            problem = _check_littles_law(
                features, grid, f"{spot_id} slot {features.slot}"
            )
            if problem:
                problems.append(problem)
    return problems


def check_littles_law_streaming(
    results: Sequence[SlotResult], grid: TimeSlotGrid
) -> List[str]:
    """L == lambda * W for every finalized streaming slot."""
    problems: List[str] = []
    for result in results:
        problem = _check_littles_law(
            result.features,
            grid,
            f"stream {result.spot_id} slot {result.slot}",
        )
        if problem:
            problems.append(problem)
    return problems


def check_version_monotonic(versions: Sequence[int]) -> List[str]:
    """Every non-empty publish advances the version by exactly one."""
    problems: List[str] = []
    for i in range(1, len(versions)):
        if versions[i] != versions[i - 1] + 1:
            problems.append(
                f"publish {i}: version went {versions[i - 1]} -> "
                f"{versions[i]} (must increase by 1)"
            )
    return problems


def check_history_identity(
    straight: Optional[Dict[str, str]],
    restarted: Optional[Dict[str, str]],
) -> List[str]:
    """Segment files of straight vs kill-restarted runs, byte for byte."""
    if straight is None or restarted is None:
        return []
    problems: List[str] = []
    for name in sorted(set(straight) | set(restarted)):
        a, b = straight.get(name), restarted.get(name)
        if a != b:
            problems.append(
                f"history segment {name}: straight run digest "
                f"{a or 'missing'} != kill-restart digest {b or 'missing'}"
            )
    return problems
