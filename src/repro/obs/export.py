"""JSONL trace export, the span schema and its validator.

One trace file is a sequence of JSON objects, one span per line, in
trace-completion order.  The schema (:data:`SPAN_SCHEMA`) is the
contract the CI observability job and ``taxiqueue trace summarize``
validate against; it is expressed as standard JSON Schema but checked
with the small stdlib-only validator below (no ``jsonschema``
dependency in the container).

A ``.gz`` path is handled transparently everywhere (:func:`open_text`):
``--trace-out traces.jsonl.gz`` writes gzip, and the summarizer, the
validator and ``taxiqueue history query`` read either encoding.
"""

from __future__ import annotations

import gzip
import json
import threading
from pathlib import Path
from typing import IO, List, Optional, Union


def open_text(path: Union[str, Path], mode: str = "rt") -> IO[str]:
    """Open a text file, gzip-compressed when the name ends ``.gz``.

    ``mode`` is a text mode (``"rt"``/``"wt"``/``"at"``); the gzip
    branch passes it through so callers never see a bytes handle.
    """
    path = Path(path)
    if path.name.endswith(".gz"):
        return gzip.open(path, mode, encoding="utf-8")
    return open(path, mode.replace("t", "") or "r", encoding="utf-8")

#: JSON Schema of one exported span (one JSONL line).
SPAN_SCHEMA = {
    "$schema": "https://json-schema.org/draft/2020-12/schema",
    "title": "taxiqueue trace span",
    "type": "object",
    "required": [
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start_ts",
        "duration_s",
        "attrs",
    ],
    "properties": {
        "trace_id": {"type": "string", "minLength": 1},
        "span_id": {"type": "string", "minLength": 1},
        "parent_id": {"type": ["string", "null"]},
        "name": {"type": "string", "minLength": 1},
        "start_ts": {"type": "number", "minimum": 0},
        "duration_s": {"type": "number", "minimum": 0},
        "attrs": {"type": "object"},
    },
    "additionalProperties": False,
}


def validate_span(obj: object) -> List[str]:
    """Check one decoded JSONL line against :data:`SPAN_SCHEMA`.

    Returns:
        A list of human-readable violations; empty means valid.
    """
    errors: List[str] = []
    if not isinstance(obj, dict):
        return [f"span must be an object, got {type(obj).__name__}"]
    required = SPAN_SCHEMA["required"]
    for key in required:
        if key not in obj:
            errors.append(f"missing required field {key!r}")
    for key in obj:
        if key not in SPAN_SCHEMA["properties"]:
            errors.append(f"unknown field {key!r}")
    for key, expect in (
        ("trace_id", str),
        ("span_id", str),
        ("name", str),
    ):
        value = obj.get(key)
        if key in obj and (not isinstance(value, expect) or not value):
            errors.append(f"{key} must be a non-empty string")
    if "parent_id" in obj and obj["parent_id"] is not None:
        if not isinstance(obj["parent_id"], str) or not obj["parent_id"]:
            errors.append("parent_id must be null or a non-empty string")
    for key in ("start_ts", "duration_s"):
        value = obj.get(key)
        if key in obj:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                errors.append(f"{key} must be a number")
            elif value < 0:
                errors.append(f"{key} must be non-negative")
    if "attrs" in obj and not isinstance(obj["attrs"], dict):
        errors.append("attrs must be an object")
    return errors


def validate_trace_file(path: Union[str, Path]) -> List[str]:
    """Validate a whole JSONL trace file.

    Checks every line against the span schema plus two file-level
    invariants: span ids are unique and every non-null ``parent_id``
    refers to a span in the same trace.

    Returns:
        A list of ``line N: message`` violations; empty means valid.
    """
    errors: List[str] = []
    seen_ids = set()
    by_trace: dict = {}
    spans: List[dict] = []
    with open_text(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append(f"line {lineno}: invalid JSON ({exc.msg})")
                continue
            for message in validate_span(obj):
                errors.append(f"line {lineno}: {message}")
            if not isinstance(obj, dict):
                continue
            span_id = obj.get("span_id")
            if isinstance(span_id, str):
                if span_id in seen_ids:
                    errors.append(f"line {lineno}: duplicate span_id {span_id!r}")
                seen_ids.add(span_id)
            trace_id = obj.get("trace_id")
            if isinstance(trace_id, str):
                by_trace.setdefault(trace_id, set()).add(span_id)
            spans.append((lineno, obj))
    for lineno, obj in spans:
        parent = obj.get("parent_id")
        trace_id = obj.get("trace_id")
        if parent is not None and parent not in by_trace.get(trace_id, ()):
            errors.append(
                f"line {lineno}: parent_id {parent!r} not in trace {trace_id!r}"
            )
    return errors


def load_spans(path: Union[str, Path]) -> List[dict]:
    """All spans of a JSONL trace file, in file order.

    Raises:
        ValueError: when any line fails schema validation.
    """
    errors = validate_trace_file(path)
    if errors:
        head = "; ".join(errors[:5])
        raise ValueError(f"invalid trace file {path}: {head}")
    spans: List[dict] = []
    with open_text(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans


class TraceWriter:
    """Thread-safe JSONL trace sink backed by one file.

    Whole traces are written atomically under a lock, so spans of a
    trace are contiguous in the file even when multiple threads finish
    traces concurrently.  A ``.gz`` path writes gzip-compressed JSONL.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        # Opened eagerly: an unwritable path must fail *here*, before
        # any pipeline work runs (see the CLI's fail-fast contract).
        self._fh: Optional[IO[str]] = open_text(self.path, "wt")
        self._lock = threading.Lock()
        self.traces_written = 0
        self.spans_written = 0

    def write_trace(self, spans: List[dict]) -> None:
        lines = "".join(
            json.dumps(span, sort_keys=True) + "\n" for span in spans
        )
        with self._lock:
            if self._fh is None:
                return
            self._fh.write(lines)
            self._fh.flush()
            self.traces_written += 1
            self.spans_written += len(spans)

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


class InMemorySink:
    """Trace sink collecting into memory (tests, summaries)."""

    def __init__(self):
        self.traces: List[List[dict]] = []
        self._lock = threading.Lock()

    def write_trace(self, spans: List[dict]) -> None:
        with self._lock:
            self.traces.append(list(spans))

    @property
    def spans(self) -> List[dict]:
        """Every span across every collected trace, in arrival order."""
        with self._lock:
            return [span for trace in self.traces for span in trace]
