"""End-to-end observability for the queue pipeline (``repro.obs``).

Three zero-dependency pieces:

* :mod:`repro.obs.tracer` — span-context tracing for the hot paths
  (ingest, cleaning, PEA, per-zone DBSCAN, tier-2, snapshot publish)
  with trace-level sampling; **off by default** and provably
  output-neutral (see ``tests/test_obs_pipeline.py``);
* :mod:`repro.obs.export` — JSONL trace export plus the span schema
  and its validator;
* :mod:`repro.obs.prometheus` — Prometheus text-format exposition of
  the :class:`~repro.service.metrics.MetricsRegistry`
  (``GET /v1/metrics?format=prometheus``, ``taxiqueue metrics-dump``);
* :mod:`repro.obs.summary` — per-stage latency/throughput digests for
  ``taxiqueue trace summarize``.

See ``docs/observability.md`` for the span model and metric catalogue.
"""

from repro.obs.export import (
    SPAN_SCHEMA,
    InMemorySink,
    TraceWriter,
    load_spans,
    open_text,
    validate_span,
    validate_trace_file,
)
from repro.obs.prometheus import render_prometheus
from repro.obs.summary import format_summary, summarize_spans
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "SPAN_SCHEMA",
    "InMemorySink",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TraceWriter",
    "Tracer",
    "format_summary",
    "load_spans",
    "open_text",
    "render_prometheus",
    "summarize_spans",
    "validate_span",
    "validate_trace_file",
]
