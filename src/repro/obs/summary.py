"""Per-stage digests of a trace file (``taxiqueue trace summarize``).

Groups spans by name and reports count, p50/p95/max latency and — for
spans carrying a ``records`` attribute — record throughput, answering
the question the tracing layer exists for: *where does a record batch
spend its time between ingest and snapshot publish?*
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence


def _percentile(ordered: List[float], q: float) -> float:
    """Nearest-rank percentile over an ascending list (non-empty).

    Classic definition: the value at rank ``ceil(q * N)`` (1-based).
    The epsilon guards float noise like ``0.95 * 20 == 19.0000...04``
    from bumping the rank up a slot.
    """
    rank = math.ceil(q * len(ordered) - 1e-9)
    return ordered[min(len(ordered) - 1, max(0, rank - 1))]


def summarize_spans(spans: Sequence[dict]) -> Dict[str, dict]:
    """Aggregate spans into per-stage statistics.

    Returns:
        ``name -> {count, total_s, p50_s, p95_s, max_s, records,
        records_per_s}`` ordered by descending total time.  ``records``
        and ``records_per_s`` are None for stages whose spans carry no
        ``records`` attribute.
    """
    by_name: Dict[str, List[dict]] = {}
    for span in spans:
        by_name.setdefault(span["name"], []).append(span)
    stages: Dict[str, dict] = {}
    for name, group in by_name.items():
        durations = sorted(float(span["duration_s"]) for span in group)
        total = sum(durations)
        records = 0
        counted = False
        for span in group:
            value = span.get("attrs", {}).get("records")
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                records += int(value)
                counted = True
        stages[name] = {
            "count": len(group),
            "total_s": total,
            "p50_s": _percentile(durations, 0.50),
            "p95_s": _percentile(durations, 0.95),
            "max_s": durations[-1],
            "records": records if counted else None,
            "records_per_s": (
                records / total if counted and total > 0 else None
            ),
        }
    return dict(
        sorted(stages.items(), key=lambda item: -item[1]["total_s"])
    )


def _cell(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s"
    return f"{seconds * 1e3:7.2f}ms"


def format_summary(stages: Dict[str, dict]) -> str:
    """Render :func:`summarize_spans` output as an aligned text table."""
    if not stages:
        return "no spans in trace"
    width = max(len(name) for name in stages)
    width = max(width, len("stage"))
    header = (
        f"{'stage':<{width}}  {'count':>6}  {'total':>9}  {'p50':>9}  "
        f"{'p95':>9}  {'max':>9}  {'throughput':>14}"
    )
    lines = [header, "-" * len(header)]
    for name, stats in stages.items():
        if stats["records_per_s"] is not None:
            throughput = f"{stats['records_per_s']:10.0f} r/s"
        else:
            throughput = f"{'-':>14}"
        lines.append(
            f"{name:<{width}}  {stats['count']:>6}  "
            f"{_cell(stats['total_s'])}  {_cell(stats['p50_s'])}  "
            f"{_cell(stats['p95_s'])}  {_cell(stats['max_s'])}  "
            f"{throughput}"
        )
    return "\n".join(lines)
