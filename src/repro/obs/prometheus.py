"""Prometheus text-format exposition of the metrics registry.

Renders a :class:`~repro.service.metrics.MetricsRegistry` as the
Prometheus text format (version 0.0.4): counters get a ``_total``
suffix, gauges render verbatim, histograms emit cumulative
``_bucket{le=...}`` series plus ``_sum``/``_count`` — all under the
``taxiqueue_`` namespace with dotted registry names flattened to
underscores.

The output is *structurally* deterministic: metric order, names,
label sets and HELP/TYPE lines depend only on which instruments exist,
never on their values — which is what lets the golden-exposition test
pin the format while tolerating value drift.
"""

from __future__ import annotations

import math
import re
from typing import Dict

from repro.service.metrics import MetricsRegistry

#: Namespace prefix of every exposed metric.
PREFIX = "taxiqueue_"

_INVALID = re.compile(r"[^a-zA-Z0-9_:]")

#: HELP text for well-known registry names; anything else gets a
#: generic line so the exposition is always self-describing.
HELP_TEXTS: Dict[str, str] = {
    "bootstrap.seconds": "Wall time of the batch tier-1/tier-2 bootstrap.",
    "bootstrap.spots": "Queue spots detected during bootstrap.",
    "bootstrap.records": "Records replayed by the streaming path.",
    "http.request_seconds": "HTTP request handling latency.",
    "http.cache_hits": "Response-cache hits.",
    "http.cache_misses": "Response-cache misses.",
    "http.not_modified": "Conditional requests answered 304.",
    "http.degraded": "Reads served from the last-good body.",
    "http.cache_evictions": "Response-cache bodies evicted (LRU bound).",
    "http.shed": "Requests shed with 429 by admission control.",
    "http.shed.rate": "Requests shed by the token-bucket rate limit.",
    "http.shed.inflight": "Requests shed by the in-flight budget.",
    "http.shed.route": "Requests shed by a per-route concurrency cap.",
    "http.shed.connection": "Connections refused by the connection budget.",
    "http.inflight": "Requests currently inside the handlers.",
    "http.inflight_peak": "High-water mark of concurrent requests.",
    "admission.admitted": "Requests that passed every admission check.",
    "replay.records": "Records fed into the streaming monitor.",
    "replay.slots_finalized": "Spot-slots finalized by the monitor.",
    "replay.nonmonotonic_records": "Out-of-order records seen unbuffered.",
    "replay.crashes": "Replay loops aborted by an exception.",
    "replay.stream_clock": "Stream timestamp of the replay head.",
    "snapshot.version": "Current snapshot version (HTTP ETag).",
    "snapshot.slots_held": "Finalized spot-slots held in the snapshot.",
    "snapshot.updates": "Snapshot batches absorbed.",
    "snapshot.slot_results": "Individual slot results absorbed.",
    "watchdog.staleness_seconds": "Seconds since the snapshot advanced.",
    "watchdog.stale": "1 while staleness exceeds the threshold.",
    "parallel.workers": "Configured worker process count.",
}


def metric_name(name: str) -> str:
    """Flatten a dotted registry name into a Prometheus metric name."""
    flat = _INVALID.sub("_", name)
    if flat and flat[0].isdigit():
        flat = "_" + flat
    return PREFIX + flat


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _help_line(name: str, kind: str) -> str:
    text = HELP_TEXTS.get(name, f"Registry {kind} {name}.")
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def render_prometheus(registry: MetricsRegistry) -> str:
    """The whole registry as Prometheus exposition text."""
    counters, gauges, histograms = registry.instruments()
    lines = []
    for name, counter in sorted(counters.items()):
        flat = metric_name(name) + "_total"
        lines.append(f"# HELP {flat} {_help_line(name, 'counter')}")
        lines.append(f"# TYPE {flat} counter")
        lines.append(f"{flat} {_format_value(counter.value)}")
    for name, gauge in sorted(gauges.items()):
        flat = metric_name(name)
        lines.append(f"# HELP {flat} {_help_line(name, 'gauge')}")
        lines.append(f"# TYPE {flat} gauge")
        lines.append(f"{flat} {_format_value(gauge.value)}")
    for name, histogram in sorted(histograms.items()):
        flat = metric_name(name)
        lines.append(f"# HELP {flat} {_help_line(name, 'histogram')}")
        lines.append(f"# TYPE {flat} histogram")
        for bound, count in histogram.bucket_counts():
            le = "+Inf" if math.isinf(bound) else _format_value(bound)
            lines.append(f'{flat}_bucket{{le="{le}"}} {count}')
        lines.append(f"{flat}_sum {_format_value(histogram.sum)}")
        lines.append(f"{flat}_count {histogram.count}")
    return "\n".join(lines) + "\n"
