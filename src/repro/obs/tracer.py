"""Span-context tracing for the pipeline hot paths.

A **span** is one timed stage execution (cleaning, PEA, one zone's
DBSCAN, one spot's tier-2 analysis, a snapshot publish ...) with a
name, wall-clock start, duration, free-form attributes and a parent; a
**trace** is the tree of spans sharing one correlation id — one batch
pipeline run, or one streaming replay window.

Design constraints, in order:

1. **Off by default, output-neutral.**  Code under instrumentation
   always runs through :data:`NULL_TRACER` unless a real
   :class:`Tracer` was wired in; the null path allocates nothing and
   the real path only ever *observes* (clocks, counters), never feeds
   anything back into detection.
2. **Cheap when on.**  Spans bracket stages, not records; the only
   per-record work tracing ever adds is two ``perf_counter`` calls in
   the streaming window accounting (see
   :class:`~repro.service.replay.StreamReplayer`).
3. **Deterministic ids.**  Trace and span ids are counters, not
   random, so tests can compare whole trace trees.

Thread model: each thread owns a span stack (``threading.local``), so
the replay thread and HTTP threads nest independently.  Finished spans
buffer per trace and are handed to the sink only when the root span
closes — trace-level sampling therefore keeps *complete* trees, never
orphaned fragments.

Worker processes do not share the tracer: they measure their own spans
into plain dicts that travel back over the existing result-merge
channel (see :mod:`repro.parallel.worker`) and are re-parented into
the live trace with :meth:`Tracer.attach`.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Sequence


def worker_span(
    name: str,
    start_ts: float,
    duration_s: float,
    attrs: Optional[Dict[str, Any]] = None,
    children: Optional[List[dict]] = None,
) -> dict:
    """A process-local span measured outside the tracer.

    Workers build these (plain picklable dicts) and ship them back in
    their result dataclasses; the parent re-parents them into the
    active trace with :meth:`Tracer.attach`.
    """
    span = {
        "name": name,
        "start_ts": start_ts,
        "duration_s": duration_s,
        "attrs": dict(attrs or {}),
    }
    if children:
        span["children"] = children
    return span


class Span:
    """One in-flight span; a context manager that times its block."""

    __slots__ = (
        "_tracer",
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "attrs",
        "start_ts",
        "duration_s",
        "_start_perf",
    )

    def __init__(
        self,
        tracer: "Tracer",
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        attrs: Dict[str, Any],
    ):
        self._tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.start_ts = 0.0
        self.duration_s = 0.0
        self._start_perf = 0.0

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to the span (chainable)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self.start_ts = time.time()
        self._start_perf = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.duration_s = time.perf_counter() - self._start_perf
        self._tracer._finish(self)
        return False

    def to_dict(self) -> dict:
        """The span as one JSONL-ready record (see ``SPAN_SCHEMA``)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ts": self.start_ts,
            "duration_s": self.duration_s,
            "attrs": self.attrs,
        }


class _NullSpan:
    """The shared do-nothing span the null tracer hands out."""

    __slots__ = ()

    trace_id = ""
    span_id = ""
    parent_id = None
    name = ""
    start_ts = 0.0
    duration_s = 0.0

    @property
    def attrs(self) -> dict:
        return {}

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    Instrumented code holds a reference to *some* tracer and calls it
    unconditionally; with this one the cost is one attribute check or
    an empty method call, so tracing-off stays effectively free.
    """

    enabled = False

    def trace(self, name: str, **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    def attach(
        self, spans: Sequence[dict], parent: Optional[object] = None
    ) -> None:
        pass

    def emit_window(
        self, name: str, start_ts: float, duration_s: float,
        attrs: Optional[dict] = None, children: Sequence[dict] = (),
    ) -> None:
        pass


NULL_TRACER = NullTracer()


class Tracer:
    """The enabled tracer: buffers span trees and samples whole traces.

    Args:
        sink: receiver of finished traces; anything with a
            ``write_trace(spans: List[dict])`` method (a
            :class:`~repro.obs.export.TraceWriter`, an
            :class:`~repro.obs.export.InMemorySink`, ...).
        sample: keep every ``sample``-th trace (1 = keep all).  The
            decision is made when the root span opens, so a kept trace
            is always complete.
    """

    enabled = True

    def __init__(self, sink, sample: int = 1):
        if sample < 1:
            raise ValueError("sample must be >= 1")
        self.sink = sink
        self.sample = int(sample)
        self._lock = threading.Lock()
        self._trace_count = 0
        self._span_count = 0
        self._local = threading.local()

    # -- id allocation -----------------------------------------------------------

    def _next_trace_id(self) -> tuple:
        with self._lock:
            index = self._trace_count
            self._trace_count += 1
        return f"t{index:06d}", index

    def _next_span_id(self) -> str:
        with self._lock:
            self._span_count += 1
            return f"s{self._span_count:08d}"

    # -- thread-local trace state ------------------------------------------------

    def _state(self):
        state = getattr(self._local, "state", None)
        if state is None:
            state = self._local.state = {
                "stack": [],      # open Span objects, root first
                "buffer": [],     # finished span dicts of the live trace
                "trace_id": None,
                "sampled": True,
            }
        return state

    # -- span API ----------------------------------------------------------------

    def trace(self, name: str, **attrs: Any):
        """Open a root span (= start a new trace) on this thread.

        Nested calls degrade gracefully: a ``trace`` inside an open
        trace behaves like :meth:`span`.
        """
        state = self._state()
        if state["trace_id"] is not None:
            return self.span(name, **attrs)
        trace_id, index = self._next_trace_id()
        state["trace_id"] = trace_id
        state["sampled"] = index % self.sample == 0
        if not state["sampled"]:
            # The trace is dropped wholesale; keep only enough state to
            # know when the (null) root closes.
            return _DroppedRoot(self, state)
        span = Span(self, trace_id, self._next_span_id(), None, name, dict(attrs))
        state["stack"].append(span)
        return span

    def span(self, name: str, **attrs: Any):
        """Open a child span of the innermost open span on this thread.

        Without an open trace, the span becomes its own single-span
        trace (so library code can be instrumented independently of
        whether a caller opened a pipeline-level root).
        """
        state = self._state()
        if state["trace_id"] is None:
            return self.trace(name, **attrs)
        if not state["sampled"]:
            return NULL_SPAN
        stack = state["stack"]
        parent_id = stack[-1].span_id if stack else None
        span = Span(
            self,
            state["trace_id"],
            self._next_span_id(),
            parent_id,
            name,
            dict(attrs),
        )
        stack.append(span)
        return span

    def _finish(self, span: Span) -> None:
        state = self._state()
        stack = state["stack"]
        # Exits run strictly LIFO under ``with``; tolerate a foreign
        # span object gracefully rather than corrupting the stack.
        if stack and stack[-1] is span:
            stack.pop()
        state["buffer"].append(span.to_dict())
        if not stack:
            self._flush(state)

    def _flush(self, state: dict) -> None:
        buffer, state["buffer"] = state["buffer"], []
        state["trace_id"] = None
        state["sampled"] = True
        if buffer:
            self.sink.write_trace(buffer)

    # -- externally measured spans -----------------------------------------------

    def attach(self, spans: Sequence[dict], parent=None) -> None:
        """Re-parent worker-measured span dicts into the live trace.

        Args:
            spans: :func:`worker_span` dicts (possibly with nested
                ``children``) measured in another process.
            parent: the open :class:`Span` to hang them under; defaults
                to the innermost open span of this thread.
        """
        state = self._state()
        if state["trace_id"] is None or not state["sampled"]:
            return
        if parent is None:
            if not state["stack"]:
                return
            parent = state["stack"][-1]
        self._attach_under(
            spans, state, state["trace_id"], parent.span_id
        )

    def _attach_under(
        self, spans: Sequence[dict], state: dict, trace_id: str, parent_id: str
    ) -> None:
        for raw in spans:
            span_id = self._next_span_id()
            state["buffer"].append(
                {
                    "trace_id": trace_id,
                    "span_id": span_id,
                    "parent_id": parent_id,
                    "name": raw["name"],
                    "start_ts": raw["start_ts"],
                    "duration_s": raw["duration_s"],
                    "attrs": dict(raw.get("attrs", {})),
                }
            )
            children = raw.get("children")
            if children:
                self._attach_under(children, state, trace_id, span_id)

    def emit_window(
        self,
        name: str,
        start_ts: float,
        duration_s: float,
        attrs: Optional[dict] = None,
        children: Sequence[dict] = (),
    ) -> None:
        """Emit one pre-measured trace (root + children) in one call.

        The streaming replayer aggregates stage timings per replay
        window and emits the finished window as a whole — there is no
        open-span window to bracket with ``with`` blocks.  Sampling
        applies exactly as for :meth:`trace`.
        """
        trace_id, index = self._next_trace_id()
        if index % self.sample != 0:
            return
        root_id = self._next_span_id()
        buffer = [
            {
                "trace_id": trace_id,
                "span_id": root_id,
                "parent_id": None,
                "name": name,
                "start_ts": start_ts,
                "duration_s": duration_s,
                "attrs": dict(attrs or {}),
            }
        ]
        state = {"buffer": buffer}
        self._attach_under(children, state, trace_id, root_id)
        self.sink.write_trace(buffer)


class _DroppedRoot:
    """Root-span stand-in for a trace the sampler dropped.

    Behaves like a span but records nothing; closing it resets the
    thread's trace state so the next root starts a fresh trace.
    """

    __slots__ = ("_tracer", "_state")

    trace_id = ""
    span_id = ""
    parent_id = None
    name = ""
    start_ts = 0.0
    duration_s = 0.0

    def __init__(self, tracer: Tracer, state: dict):
        self._tracer = tracer
        self._state = state

    @property
    def attrs(self) -> dict:
        return {}

    def set(self, **attrs: Any):
        return self

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> bool:
        self._state["trace_id"] = None
        self._state["sampled"] = True
        self._state["buffer"] = []
        return False
