"""Parallel zone-sharded execution of the two-tier engine.

See :mod:`repro.parallel.runner` for the architecture and the
determinism guarantee (parallel output is bit-for-bit the serial
engine's output), and ``docs/parallel.md`` for the operator view.
"""

from repro.parallel.ingest import (
    CsvScan,
    CsvShard,
    CsvSplit,
    scan_csv,
    split_csv_by_zone,
)
from repro.parallel.runner import ParallelEngineRunner
from repro.parallel.shards import (
    SpotTask,
    Tier1FileShardTask,
    Tier1ShardResult,
    Tier1ShardTask,
    ZoneClusterResult,
    ZoneClusterTask,
    detach_event,
    plan_tier1_shards,
    stable_shard,
)

__all__ = [
    "CsvScan",
    "CsvShard",
    "CsvSplit",
    "ParallelEngineRunner",
    "SpotTask",
    "Tier1FileShardTask",
    "Tier1ShardResult",
    "Tier1ShardTask",
    "ZoneClusterResult",
    "ZoneClusterTask",
    "detach_event",
    "plan_tier1_shards",
    "scan_csv",
    "split_csv_by_zone",
    "stable_shard",
]
