"""Chunked CSV ingest for the parallel pipeline.

``taxiqueue detect --workers N`` must handle a deployed-scale day
(the paper ingests ~12.4 M MDT records/day) without any single process
materialising all of it.  Two streaming passes achieve that:

1. :func:`scan_csv` — one pass to learn the data's bounding box (needed
   to build the zone partition before any sharding decision) plus row
   and malformed-line counts;
2. :func:`split_csv_by_zone` — one pass writing each line into a
   per-shard CSV file keyed by the owning taxi's home zone (the zone of
   its first line), sub-split by a stable taxi hash for balance.

Workers then load only their own shard file.  A taxi never splits
across shards, so per-taxi cleaning and PEA see whole trajectories.

Full-fidelity ingest is columnar: :func:`load_csv_batch` parses a CSV
straight into a :class:`~repro.columnar.RecordBatch` (no intermediate
record objects) and :func:`iter_csv_batches` streams fixed-size batches
for bounded-memory consumers.

Both passes tolerate garbage the way a real operator feed demands:
truncated lines, non-numeric or non-finite coordinates and empty taxi
ids are counted (and excluded from shards), never raised.  Lines that
look structurally sound here but fail full parsing (bad timestamps,
unknown state codes) are caught by the worker's lenient load and
surface in the same malformed-line count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, TextIO

from repro.geo.bbox import BBox
from repro.geo.zones import ZonePartition
from repro.trace.record import MdtRecord


@dataclass
class CsvScan:
    """What one streaming pass learns about a log CSV."""

    rows: int
    malformed_lines: int
    bbox: Optional[BBox]
    """Bounding box of all well-formed coordinates; None when no line
    parsed."""

    taxis: int


@dataclass
class CsvShard:
    """One shard file written by :func:`split_csv_by_zone`."""

    path: Path
    zone: str
    rows: int


@dataclass
class CsvSplit:
    """The result of splitting a log CSV into per-zone shard files."""

    shards: List[CsvShard]
    rows: int
    malformed_lines: int


def _parse_line(line: str) -> Optional[tuple]:
    """``(taxi_id, lon, lat)`` of a structurally sound line, else None."""
    parts = line.rstrip("\n").split(",")
    if len(parts) != 6 or not parts[1]:
        return None
    try:
        lon = float(parts[2])
        lat = float(parts[3])
    except ValueError:
        return None
    if not (math.isfinite(lon) and math.isfinite(lat)):
        return None
    return parts[1], lon, lat


def _check_header(fh: TextIO, path: Path) -> None:
    header = fh.readline()
    if header.strip() != MdtRecord.CSV_HEADER:
        raise ValueError(f"unexpected CSV header in {path}: {header!r}")


def load_csv_batch(path, on_error: str = "skip"):
    """Parse a log CSV straight into a columnar batch.

    Thin alias of :meth:`RecordBatch.from_csv` kept here so ingest
    callers have one import site; malformed lines land in the batch's
    ``skipped_lines`` counter (``on_error="skip"``) or raise.
    """
    from repro.columnar import RecordBatch

    return RecordBatch.from_csv(path, on_error=on_error)


def iter_csv_batches(path, batch_rows: int = 65536, on_error: str = "skip"):
    """Stream a log CSV as fixed-size columnar batches.

    Yields :class:`~repro.columnar.RecordBatch` chunks of at most
    ``batch_rows`` rows, so no caller ever holds the whole day; see
    :meth:`RecordBatch.iter_csv`.
    """
    from repro.columnar import RecordBatch

    yield from RecordBatch.iter_csv(
        path, batch_rows=batch_rows, on_error=on_error
    )


def scan_csv(path) -> CsvScan:
    """Stream a log CSV once: bbox, row count, malformed-line count.

    Raises:
        ValueError: on a bad header.
        OSError: when the file cannot be read.
    """
    path = Path(path)
    rows = 0
    malformed = 0
    taxis = set()
    west = south = math.inf
    east = north = -math.inf
    with path.open("r", encoding="utf-8") as fh:
        _check_header(fh, path)
        for line in fh:
            if not line.strip():
                continue
            parsed = _parse_line(line)
            if parsed is None:
                malformed += 1
                continue
            taxi_id, lon, lat = parsed
            rows += 1
            taxis.add(taxi_id)
            west = min(west, lon)
            east = max(east, lon)
            south = min(south, lat)
            north = max(north, lat)
    bbox = None if rows == 0 else BBox(west, south, east, north)
    return CsvScan(rows=rows, malformed_lines=malformed, bbox=bbox, taxis=len(taxis))


def split_csv_by_zone(
    path,
    zones: ZonePartition,
    target_shards: int,
    out_dir,
) -> CsvSplit:
    """Stream a log CSV into per-zone shard CSV files.

    A taxi's shard is fixed by its first line: home zone (via the zone
    partition) plus a stable hash sub-split when ``target_shards``
    exceeds the zone count.  Memory stays O(taxis), not O(records).

    Args:
        path: the input log CSV.
        zones: the city's zone partition.
        target_shards: desired shard count (rounded up to a multiple of
            the per-zone sub-split).
        out_dir: directory for the shard files (created if missing).

    Returns:
        A :class:`CsvSplit`; shards with zero rows are omitted.

    Raises:
        ValueError: on a bad header or ``target_shards < 1``.
    """
    if target_shards < 1:
        raise ValueError("target_shards must be >= 1")
    from repro.parallel.shards import stable_shard

    path = Path(path)
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    zone_names = [zone.name for zone in zones]
    sub = max(1, math.ceil(target_shards / len(zone_names)))
    taxi_shard: Dict[str, int] = {}
    handles: Dict[int, TextIO] = {}
    counts: Dict[int, int] = {}
    rows = 0
    malformed = 0

    def shard_key(zone_idx: int, taxi_id: str) -> int:
        return zone_idx * sub + stable_shard(taxi_id, sub)

    try:
        with path.open("r", encoding="utf-8") as fh:
            _check_header(fh, path)
            for line in fh:
                if not line.strip():
                    continue
                parsed = _parse_line(line)
                if parsed is None:
                    malformed += 1
                    continue
                taxi_id, lon, lat = parsed
                key = taxi_shard.get(taxi_id)
                if key is None:
                    zone_name = zones.classify_or_nearest(lon, lat)
                    key = shard_key(zone_names.index(zone_name), taxi_id)
                    taxi_shard[taxi_id] = key
                handle = handles.get(key)
                if handle is None:
                    shard_path = out_dir / f"shard_{key:04d}.csv"
                    handle = shard_path.open("w", encoding="utf-8")
                    handle.write(MdtRecord.CSV_HEADER + "\n")
                    handles[key] = handle
                    counts[key] = 0
                if not line.endswith("\n"):
                    line += "\n"
                handle.write(line)
                counts[key] += 1
                rows += 1
    finally:
        for handle in handles.values():
            handle.close()

    shards = [
        CsvShard(
            path=out_dir / f"shard_{key:04d}.csv",
            zone=zone_names[key // sub],
            rows=counts[key],
        )
        for key in sorted(handles)
    ]
    return CsvSplit(shards=shards, rows=rows, malformed_lines=malformed)
