"""A multiprocessing execution layer for the two-tier engine.

:class:`ParallelEngineRunner` wraps a configured
:class:`~repro.core.engine.QueueAnalyticEngine` behind the same API and
fans its work out to worker processes:

* **tier 1** (:meth:`detect_spots` / :meth:`detect_spots_csv`) shards by
  zone — cleaning + PEA per zone-chunk of taxis, then per-zone DBSCAN —
  and merges deterministically (events re-sorted into the serial taxi
  scan order, zone clusters re-assembled in partition order);
* **tier 2** (:meth:`disambiguate`) fans out per spot — WTE, features,
  threshold derivation and QCD for each spot run independently.

Guarantees and behaviour:

* **bit-for-bit serial equivalence**: workers call the very functions
  the serial engine calls (:func:`repro.core.spots.cluster_zone`,
  :func:`repro.core.engine.analyze_spot`, per-taxi cleaning/PEA) and the
  merge reproduces the serial iteration order exactly, so spots and
  labels are identical to ``QueueAnalyticEngine``'s, not just close;
* **serial fallback**: ``workers <= 1``, a single-shard plan, or a
  single occupied zone run inline — no pool is spawned when spawn
  overhead would exceed the work;
* **degradation**: a shard whose worker crashes (or exceeds
  ``shard_timeout_s``) is recomputed serially in the parent, so one bad
  worker degrades throughput, never correctness;
* **observability**: per-stage wall time, per-shard worker time and
  throughput counters are recorded in a
  :class:`~repro.service.metrics.MetricsRegistry` (pass the service's
  registry to surface them at ``/v1/metrics``);
* **durability**: with a :class:`~repro.resilience.CheckpointManager`
  attached, the merged output of each stage is checkpointed at the
  shard-merge boundary (tier-1 spot assembly, tier-2 fan-in), keyed by
  a fingerprint of the input and the engine configuration; a rerun
  over the same input resumes from the newest matching checkpoint
  instead of recomputing the stage.
"""

from __future__ import annotations

import multiprocessing
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.engine import (
    DEFAULT_STREET_JOB_RATIO,
    QueueAnalyticEngine,
    SpotAnalysis,
)
from repro.core.spots import (
    SpotDetectionResult,
    assemble_spots,
    assign_events_to_spots,
    pickup_centroids,
)
from repro.core.types import TimeSlotGrid
from repro.parallel import worker as worker_mod
from repro.parallel.ingest import split_csv_by_zone
from repro.columnar import RecordBatch
from repro.parallel.shards import (
    SpotTask,
    Tier1FileShardTask,
    Tier1ShardResult,
    ZoneClusterResult,
    ZoneClusterTask,
    detach_event,
    plan_tier1_batch_shards,
)
from repro.service.metrics import MetricsRegistry
from repro.trace.cleaning import CleaningReport
from repro.trace.log_store import MdtLogStore
from repro.trace.trajectory import SubTrajectory


class ParallelEngineRunner:
    """Run a :class:`QueueAnalyticEngine` across worker processes.

    Drop-in engine replacement: exposes ``detect_spots`` /
    ``disambiguate`` / ``preprocess`` plus the attributes the service
    bootstrap reads (``config``, ``zones``, ``projection``,
    ``amplification``), so anything accepting an engine accepts a
    runner.

    Args:
        engine: the configured serial engine to parallelise.
        workers: worker process count; ``<= 1`` means pure serial.
        shard_timeout_s: per-shard timeout; an overdue shard is
            recomputed serially in the parent (None disables).
        metrics: registry for stage/shard stats (one is created when
            omitted — pass the service registry to share).
        mp_context: a ``multiprocessing`` context or start-method name
            (defaults to the platform default, ``fork`` on Linux).
        checkpointer: optional
            :class:`~repro.resilience.CheckpointManager`; merged stage
            outputs are checkpointed at shard-merge boundaries and
            reused on fingerprint-matching reruns.
        tracer: optional :class:`repro.obs.Tracer`.  Workers measure
            their own stage spans (plain dicts riding back on the
            result dataclasses) and the runner re-parents them into the
            live trace at each merge boundary, so a parallel run yields
            the same logical span tree as a serial one.  Defaults to
            the wrapped engine's tracer.
    """

    def __init__(
        self,
        engine: QueueAnalyticEngine,
        workers: int = 2,
        *,
        shard_timeout_s: Optional[float] = None,
        metrics: Optional[MetricsRegistry] = None,
        mp_context=None,
        checkpointer=None,
        tracer=None,
    ):
        from repro.obs.tracer import NULL_TRACER

        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.engine = engine
        self.workers = int(workers)
        self.shard_timeout_s = shard_timeout_s
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if isinstance(mp_context, str):
            mp_context = multiprocessing.get_context(mp_context)
        self._mp_context = mp_context
        self.checkpointer = checkpointer
        if tracer is not None:
            engine.tracer = tracer
        elif getattr(engine, "tracer", None) is None:
            engine.tracer = NULL_TRACER
        self.last_stats: Dict[str, dict] = {}
        self.metrics.gauge("parallel.workers").set(self.workers)

    # -- engine-compatible surface ------------------------------------------

    @property
    def config(self):
        return self.engine.config

    @property
    def zones(self):
        return self.engine.zones

    @property
    def projection(self):
        return self.engine.projection

    @property
    def city_bbox(self):
        return self.engine.city_bbox

    @property
    def inaccessible(self):
        return self.engine.inaccessible

    @property
    def amplification(self):
        return self.engine.amplification

    @property
    def tracer(self):
        """The shared tracer (delegated to the wrapped engine, so serial
        shortcuts and degraded shards land in the same trace)."""
        return self.engine.tracer

    @tracer.setter
    def tracer(self, value):
        self.engine.tracer = value

    @property
    def last_cleaning_report(self) -> Optional[CleaningReport]:
        return self.engine.last_cleaning_report

    def preprocess(self, store: MdtLogStore) -> MdtLogStore:
        """Section-6.1.1 cleaning (serial; per-store, not per-shard)."""
        return self.engine.preprocess(store)

    # -- stage checkpoints ---------------------------------------------------

    def _fingerprint(self, *parts) -> str:
        """A stable digest of the inputs deciding a stage's output."""
        import hashlib

        text = repr((parts, repr(self.engine.config)))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def _store_parts(self, store: MdtLogStore):
        if len(store) == 0:
            return (0, None)
        return (len(store), store.time_span)

    def _load_stage(self, stage: str, fingerprint: str):
        """The newest checkpoint of ``stage`` matching ``fingerprint``."""
        if self.checkpointer is None:
            return None
        payload = self.checkpointer.find(
            lambda p: p.get("kind") == "parallel-stage"
            and p.get("stage") == stage
            and p.get("fingerprint") == fingerprint
        )
        if payload is None:
            return None
        self.metrics.counter(f"parallel.{stage}.checkpoint_reused").inc()
        return payload["result"]

    def _save_stage(self, stage: str, fingerprint: str, result) -> None:
        """Checkpoint a merged stage output at its shard-merge boundary."""
        if self.checkpointer is None:
            return
        self.checkpointer.save(
            {
                "kind": "parallel-stage",
                "stage": stage,
                "fingerprint": fingerprint,
                "result": result,
            }
        )
        self.metrics.counter(f"parallel.{stage}.checkpoint_saved").inc()

    @staticmethod
    def _detach_detection(
        detection: SpotDetectionResult,
    ) -> SpotDetectionResult:
        """A checkpoint-sized copy: drop the pickup events (they
        reference whole parent trajectories; ``disambiguate`` re-derives
        them identically from the store when absent)."""
        return SpotDetectionResult(
            spots=detection.spots,
            pickup_events=[],
            centroids_lonlat=detection.centroids_lonlat,
            noise_count=detection.noise_count,
            per_zone_counts=detection.per_zone_counts,
        )

    # -- internals ----------------------------------------------------------

    def _make_executor(self, max_workers: int) -> ProcessPoolExecutor:
        """Build the process pool (overridable seam for tests)."""
        return ProcessPoolExecutor(
            max_workers=max_workers, mp_context=self._mp_context
        )

    def _target_shards(self) -> int:
        # Twice the worker count: enough slack that one slow shard does
        # not serialise the stage's tail.
        return self.workers * 2

    def _run_stage(self, stage: str, tasks: Sequence, fn: Callable) -> List:
        """Run one stage's tasks, degrading failed shards to serial.

        Tasks run in the pool when both the worker count and the task
        count exceed one; results come back in task order.  A task whose
        future raises (worker crash, broken pool) or exceeds
        ``shard_timeout_s`` is recomputed in the parent process.
        """
        results: List = [None] * len(tasks)
        failed: List[int] = []
        start = time.perf_counter()
        use_pool = self.workers > 1 and len(tasks) > 1
        if use_pool:
            executor = self._make_executor(min(self.workers, len(tasks)))
            timed_out = False
            try:
                futures = [executor.submit(fn, task) for task in tasks]
                for i, future in enumerate(futures):
                    try:
                        results[i] = future.result(
                            timeout=self.shard_timeout_s
                        )
                    except FuturesTimeoutError:
                        timed_out = True
                        failed.append(i)
                    except Exception:
                        failed.append(i)
            finally:
                # A timed-out worker may be stuck; don't wait on it.
                executor.shutdown(wait=not timed_out, cancel_futures=True)
            for i in failed:
                results[i] = fn(tasks[i], allow_fault=False)
                self.metrics.counter(
                    f"parallel.{stage}.serial_fallback"
                ).inc()
        else:
            for i, task in enumerate(tasks):
                results[i] = fn(task, allow_fault=False)
        wall = time.perf_counter() - start
        self.metrics.histogram(f"parallel.{stage}.stage_seconds").observe(wall)
        self.metrics.counter(f"parallel.{stage}.shards").inc(len(tasks))
        for result in results:
            self.metrics.histogram(f"parallel.{stage}.shard_seconds").observe(
                result.elapsed_s
            )
        self.last_stats[stage] = {
            "shards": len(tasks),
            "failed": len(failed),
            "seconds": wall,
            "pool": use_pool,
        }
        return results

    # -- tier 1 -------------------------------------------------------------

    def detect_spots(self, store: MdtLogStore) -> SpotDetectionResult:
        """Tier 1 over an in-memory store, sharded by zone."""
        fingerprint = self._fingerprint("tier1", self._store_parts(store))
        cached = self._load_stage("tier1", fingerprint)
        if cached is not None:
            return cached
        detection = self._detect_spots_uncached(store)
        self._save_stage(
            "tier1", fingerprint, self._detach_detection(detection)
        )
        return detection

    def _detect_spots_uncached(self, store: MdtLogStore) -> SpotDetectionResult:
        if self.workers <= 1:
            return self.engine.detect_spots(store)
        cfg = self.engine.config
        tasks = plan_tier1_batch_shards(
            store,
            self.engine.zones,
            target_shards=self._target_shards(),
            clean=cfg.clean_inputs,
            city_bbox=self.engine.city_bbox,
            inaccessible=self.engine.inaccessible,
            params=cfg.detection,
        )
        if len(tasks) <= 1 or len({task.zone for task in tasks}) <= 1:
            # Single shard or single occupied zone: spawn overhead
            # exceeds the parallelisable work, so stay serial.
            self.metrics.counter("parallel.tier1.serial_shortcut").inc()
            return self.engine.detect_spots(store)
        for task in tasks:
            task.trace = self.tracer.enabled
        results = self._run_stage("tier1", tasks, worker_mod.run_tier1_shard)
        return self._finish_tier1(results, extra_malformed=0)

    def detect_spots_csv(self, path, shard_dir=None) -> SpotDetectionResult:
        """Tier 1 from a log CSV with chunked ingest.

        The CSV is streamed into per-zone shard files (see
        :mod:`repro.parallel.ingest`); workers load only their own
        shard, so no process holds the full day.  Malformed lines are
        counted in the cleaning report, never raised.

        Args:
            path: the log CSV.
            shard_dir: where to write shard files (a temporary
                directory, removed afterwards, when omitted).
        """
        import os

        fingerprint = self._fingerprint(
            "tier1csv", str(path), os.path.getsize(path)
        )
        cached = self._load_stage("tier1", fingerprint)
        if cached is not None:
            return cached
        detection = self._detect_spots_csv_uncached(path, shard_dir)
        self._save_stage(
            "tier1", fingerprint, self._detach_detection(detection)
        )
        return detection

    def _detect_spots_csv_uncached(
        self, path, shard_dir=None
    ) -> SpotDetectionResult:
        if self.workers <= 1:
            # Columnar serial path: parse straight into columns, no
            # intermediate record objects.
            batch = RecordBatch.from_csv(path, on_error="skip")
            detection = self.engine.detect_spots(batch)
            if self.engine.last_cleaning_report is not None:
                self.engine.last_cleaning_report.malformed_line += (
                    batch.skipped_lines
                )
            return detection
        cfg = self.engine.config
        with tempfile.TemporaryDirectory(
            prefix="taxiqueue-shards-"
        ) if shard_dir is None else _keep_dir(shard_dir) as out_dir:
            with self.tracer.span("stage.ingest", mode="split-csv") as span:
                split = split_csv_by_zone(
                    path,
                    self.engine.zones,
                    target_shards=self._target_shards(),
                    out_dir=out_dir,
                )
                span.set(
                    records=split.rows,
                    malformed=split.malformed_lines,
                    shards=len(split.shards),
                )
            self.metrics.counter("parallel.ingest.rows").inc(split.rows)
            self.metrics.counter("parallel.ingest.malformed_lines").inc(
                split.malformed_lines
            )
            occupied_zones = {shard.zone for shard in split.shards}
            if len(split.shards) <= 1 or len(occupied_zones) <= 1:
                self.metrics.counter("parallel.tier1.serial_shortcut").inc()
                batch = RecordBatch.from_csv(path, on_error="skip")
                detection = self.engine.detect_spots(batch)
                if self.engine.last_cleaning_report is not None:
                    self.engine.last_cleaning_report.malformed_line += (
                        batch.skipped_lines + split.malformed_lines
                    )
                return detection
            tasks = [
                Tier1FileShardTask(
                    shard_id=i,
                    zone=shard.zone,
                    path=str(shard.path),
                    clean=cfg.clean_inputs,
                    city_bbox=self.engine.city_bbox,
                    inaccessible=self.engine.inaccessible,
                    params=cfg.detection,
                    trace=self.tracer.enabled,
                )
                for i, shard in enumerate(split.shards)
            ]
            results = self._run_stage(
                "tier1", tasks, worker_mod.run_tier1_shard
            )
        return self._finish_tier1(
            results, extra_malformed=split.malformed_lines
        )

    def _attach_worker_stage_spans(
        self, results: List[Tier1ShardResult]
    ) -> None:
        """Aggregate the shards' clean/pea spans into one logical
        ``stage.clean`` + ``stage.pea`` pair (the serial trace shape),
        keeping the per-shard worker spans as their children."""
        from repro.obs.tracer import worker_span

        groups = {"clean": [], "pea": []}
        for result in results:
            for span in result.spans:
                stage = span["name"].split(".", 1)[0]
                if stage in groups:
                    groups[stage].append(span)
        stage_spans = []
        for stage in ("clean", "pea"):
            children = groups[stage]
            if not children:
                continue
            stage_spans.append(
                worker_span(
                    f"stage.{stage}",
                    min(child["start_ts"] for child in children),
                    sum(child["duration_s"] for child in children),
                    {
                        "aggregated": True,
                        "shards": len(children),
                        "records": sum(
                            child["attrs"].get("records", 0)
                            for child in children
                        ),
                    },
                    children=children,
                )
            )
        self.tracer.attach(stage_spans)

    def _finish_tier1(
        self, results: List[Tier1ShardResult], extra_malformed: int
    ) -> SpotDetectionResult:
        """Merge shard results and run the per-zone clustering stage."""
        cfg = self.engine.config
        if self.tracer.enabled:
            self._attach_worker_stage_spans(results)
        pairs: List[Tuple[str, List[SubTrajectory]]] = []
        report = CleaningReport() if cfg.clean_inputs else None
        records_in = 0
        for result in results:
            pairs.extend(result.events_by_taxi)
            records_in += result.records_in
            if report is not None and result.report is not None:
                report.merge(result.report)
        # The serial engine scans taxis in sorted-id order; restoring
        # that order here is what makes the merge deterministic.
        pairs.sort(key=lambda pair: pair[0])
        events = [event for _, subs in pairs for event in subs]
        if report is not None:
            report.malformed_line += extra_malformed
            self.engine.last_cleaning_report = report
        self.metrics.counter("parallel.tier1.records").inc(records_in)
        self.metrics.counter("parallel.tier1.events").inc(len(events))

        zones = self.engine.zones
        projection = self.engine.projection
        lonlat = pickup_centroids(events)
        zone_tasks: List[ZoneClusterTask] = []
        if len(lonlat) > 0:
            zone_names = np.asarray(
                [zones.classify_or_nearest(lon, lat) for lon, lat in lonlat]
            )
            for zone in zones:
                mask = zone_names == zone.name
                if not mask.any():
                    continue
                zone_tasks.append(
                    ZoneClusterTask(
                        zone=zone.name,
                        lonlat=lonlat[mask],
                        projection=projection,
                        params=cfg.detection,
                        trace=self.tracer.enabled,
                    )
                )
        with self.tracer.span(
            "stage.cluster", points=int(len(lonlat)), zones=len(zone_tasks)
        ) as cluster_span:
            zone_results = self._run_stage(
                "zones", zone_tasks, worker_mod.run_zone_cluster
            )
            for result in zone_results:
                self.tracer.attach(result.spans, parent=cluster_span)

        by_zone: Dict[str, ZoneClusterResult] = {
            result.zone: result for result in zone_results
        }
        raw_spots: List[Tuple[str, float, float, int, float]] = []
        noise = 0
        per_zone: Dict[str, int] = {zone.name: 0 for zone in zones}
        for zone in zones:
            result = by_zone.get(zone.name)
            if result is None:
                continue
            noise += result.noise
            for lon, lat, size, radius in result.clusters:
                raw_spots.append((zone.name, lon, lat, size, radius))
                per_zone[zone.name] += 1
        return SpotDetectionResult(
            spots=assemble_spots(raw_spots),
            pickup_events=events,
            centroids_lonlat=lonlat,
            noise_count=noise,
            per_zone_counts=per_zone,
        )

    # -- tier 2 -------------------------------------------------------------

    def disambiguate(
        self,
        store: MdtLogStore,
        detection: SpotDetectionResult,
        grid: Optional[TimeSlotGrid] = None,
    ) -> Dict[str, SpotAnalysis]:
        """Tier 2 with a per-spot fan-out (WTE + features + QCD)."""
        fingerprint = self._fingerprint(
            "tier2",
            self._store_parts(store),
            tuple(spot.spot_id for spot in detection.spots),
            None
            if grid is None
            else (grid.start_ts, grid.end_ts, grid.slot_seconds),
        )
        cached = self._load_stage("tier2", fingerprint)
        if cached is not None:
            return cached
        analyses = self._disambiguate_uncached(store, detection, grid)
        self._save_stage("tier2", fingerprint, analyses)
        return analyses

    def _disambiguate_uncached(
        self,
        store: MdtLogStore,
        detection: SpotDetectionResult,
        grid: Optional[TimeSlotGrid] = None,
    ) -> Dict[str, SpotAnalysis]:
        if self.workers <= 1 or len(detection.spots) <= 1:
            return self.engine.disambiguate(store, detection, grid)
        cfg = self.engine.config
        cleaned = self.engine.preprocess(store)
        events = detection.pickup_events
        if not events:
            from repro.core.pea import extract_all_pickup_events

            events = extract_all_pickup_events(
                cleaned,
                speed_threshold_kmh=cfg.detection.speed_threshold_kmh,
                apply_state_filters=cfg.detection.apply_state_filters,
            )
        if grid is None:
            lo, hi = cleaned.time_span
            day_start = lo - (lo % 86400.0)
            grid = TimeSlotGrid(
                day_start, max(hi, day_start + 86400.0), cfg.slot_seconds
            )
        buckets = assign_events_to_spots(
            events,
            detection.spots,
            self.engine.projection,
            assign_radius_m=cfg.assign_radius_m,
        )
        ratios = self.engine._zone_ratios(cleaned)
        amplification = self.engine.amplification
        tasks = [
            SpotTask(
                spot=spot,
                events=[detach_event(e) for e in buckets[spot.spot_id]],
                grid=grid,
                amplification=amplification,
                policy=cfg.thresholds,
                slot_seconds=cfg.slot_seconds,
                street_job_ratio=ratios.get(
                    spot.zone, DEFAULT_STREET_JOB_RATIO
                ),
                trace=self.tracer.enabled,
            )
            for spot in detection.spots
        ]
        with self.tracer.span("stage.tier2", spots=len(tasks)) as stage:
            results = self._run_stage(
                "tier2", tasks, worker_mod.run_spot_task
            )
            for result in results:
                self.tracer.attach(result.spans, parent=stage)
            stage.set(labeled=len(results))
        self.metrics.counter("parallel.tier2.spots").inc(len(tasks))
        return {result.spot_id: result.analysis for result in results}


class _keep_dir:
    """Context manager yielding a caller-owned shard directory as-is."""

    def __init__(self, path):
        self.path = path

    def __enter__(self):
        return self.path

    def __exit__(self, *exc):
        return False
