"""Process-side execution of shard tasks.

Every function here is module-level (picklable by reference) and maps
one task dataclass to one result dataclass:

* :func:`run_tier1_shard` — cleaning + PEA over a shard's taxis, from
  inline records or a shard CSV file;
* :func:`run_zone_cluster` — per-zone DBSCAN via
  :func:`repro.core.spots.cluster_zone`;
* :func:`run_spot_task` — tier-2 per-spot analysis via
  :func:`repro.core.engine.analyze_spot`.

Each worker delegates to the same functions the serial engine runs, so
equal inputs give bit-identical outputs — the parallel layer only
decides *where* the code runs.

Fault injection: the ``REPRO_PARALLEL_INJECT_FAULT`` environment
variable (``crash:<stage>`` or ``sleep:<stage>:<seconds>``) makes a
worker raise or stall, letting tests exercise the runner's degrade-to-
serial path without real crashes.  The runner's in-parent fallback
bypasses the hook via the ``allow_fault`` flag.
"""

from __future__ import annotations

import os
import time
from typing import List, Optional, Tuple, Union

from repro.columnar import RecordBatch
from repro.core.engine import analyze_spot
from repro.core.pea import (
    extract_pickup_events,
    extract_pickup_events_from_columns,
)
from repro.core.spots import cluster_zone
from repro.obs.tracer import worker_span
from repro.parallel.shards import (
    SpotResult,
    SpotTask,
    Tier1BatchShardTask,
    Tier1FileShardTask,
    Tier1ShardResult,
    Tier1ShardTask,
    ZoneClusterResult,
    ZoneClusterTask,
    detach_event,
)
from repro.trace.cleaning import CleaningReport, clean_records, clean_taxi_batch
from repro.trace.partition import partition_batch_by_taxi
from repro.trace.record import MdtRecord
from repro.trace.trajectory import SubTrajectory, Trajectory

#: Environment variable consumed by :func:`_maybe_inject_fault`.
FAULT_ENV = "REPRO_PARALLEL_INJECT_FAULT"


def _maybe_inject_fault(stage: str) -> None:
    """Honour a ``crash:<stage>`` / ``sleep:<stage>:<s>`` test directive."""
    spec = os.environ.get(FAULT_ENV)
    if not spec:
        return
    parts = spec.split(":")
    if len(parts) >= 2 and parts[0] == "crash" and parts[1] == stage:
        raise RuntimeError(f"injected fault in stage {stage!r}")
    if len(parts) == 3 and parts[0] == "sleep" and parts[1] == stage:
        time.sleep(float(parts[2]))


def _clean_pea_taxis(
    taxis: List[Tuple[str, List[MdtRecord]]],
    task: Union[Tier1ShardTask, Tier1FileShardTask],
    report: CleaningReport,
) -> Tuple[List[Tuple[str, List[SubTrajectory]]], float, float]:
    """Cleaning + PEA for each taxi; events are detached for pickling.

    Returns ``(events_by_taxi, clean_s, pea_s)``; the per-stage seconds
    are only measured when ``task.trace`` asks for worker spans (zeros
    otherwise, so the untraced hot path pays nothing).
    """
    out: List[Tuple[str, List[SubTrajectory]]] = []
    clean_s = 0.0
    pea_s = 0.0
    trace = task.trace
    for taxi_id, records in taxis:
        if task.clean:
            t0 = time.perf_counter() if trace else 0.0
            records = clean_records(
                records,
                city_bbox=task.city_bbox,
                inaccessible=task.inaccessible,
                report=report,
            )
            if trace:
                clean_s += time.perf_counter() - t0
        trajectory = Trajectory(taxi_id, records)
        t0 = time.perf_counter() if trace else 0.0
        events = extract_pickup_events(
            trajectory,
            speed_threshold_kmh=task.params.speed_threshold_kmh,
            apply_state_filters=task.params.apply_state_filters,
        )
        if trace:
            pea_s += time.perf_counter() - t0
        out.append((taxi_id, [detach_event(event) for event in events]))
    return out, clean_s, pea_s


def _clean_pea_taxi_batches(
    groups: List[Tuple[str, RecordBatch]],
    task: Union[Tier1BatchShardTask, Tier1FileShardTask],
    report: CleaningReport,
) -> Tuple[List[Tuple[str, List[SubTrajectory]]], float, float]:
    """Columnar :func:`_clean_pea_taxis`: mask cleaning + cursor PEA.

    Identical events and accounting for identical rows; record objects
    exist only inside the detached events that ride back on the result.
    """
    out: List[Tuple[str, List[SubTrajectory]]] = []
    clean_s = 0.0
    pea_s = 0.0
    trace = task.trace
    for taxi_id, sub in groups:
        if task.clean:
            t0 = time.perf_counter() if trace else 0.0
            sub = clean_taxi_batch(
                sub,
                city_bbox=task.city_bbox,
                inaccessible=task.inaccessible,
                report=report,
            )
            if trace:
                clean_s += time.perf_counter() - t0
        t0 = time.perf_counter() if trace else 0.0
        events, _ = extract_pickup_events_from_columns(
            taxi_id,
            sub,
            speed_threshold_kmh=task.params.speed_threshold_kmh,
            apply_state_filters=task.params.apply_state_filters,
        )
        if trace:
            pea_s += time.perf_counter() - t0
        out.append((taxi_id, [detach_event(event) for event in events]))
    return out, clean_s, pea_s


def run_tier1_shard(
    task: Union[Tier1ShardTask, Tier1BatchShardTask, Tier1FileShardTask],
    allow_fault: bool = True,
) -> Tier1ShardResult:
    """Cleaning + PEA over one shard (columns, inline records or a CSV).

    :class:`Tier1BatchShardTask` and :class:`Tier1FileShardTask` run the
    columnar plane (a file shard is parsed straight into columns);
    :class:`Tier1ShardTask` keeps the historical row path for callers
    that still plan record-list shards.
    """
    start = time.perf_counter()
    start_wall = time.time()
    if allow_fault:
        _maybe_inject_fault("tier1")
    report = CleaningReport()
    groups: Optional[List[Tuple[str, RecordBatch]]] = None
    if isinstance(task, Tier1FileShardTask):
        batch = RecordBatch.from_csv(task.path, on_error="skip")
        report.malformed_line += batch.skipped_lines
        groups = partition_batch_by_taxi(batch)
        records_in = len(batch)
    elif isinstance(task, Tier1BatchShardTask):
        groups = partition_batch_by_taxi(task.batch)
        records_in = len(task.batch)
    else:
        taxis = task.taxis
        records_in = sum(len(records) for _, records in taxis)
    if groups is not None:
        events_by_taxi, clean_s, pea_s = _clean_pea_taxi_batches(
            groups, task, report
        )
    else:
        events_by_taxi, clean_s, pea_s = _clean_pea_taxis(taxis, task, report)
    spans: List[dict] = []
    if task.trace:
        attrs = {
            "shard": task.shard_id,
            "zone": task.zone,
            "records": records_in,
        }
        spans = [
            worker_span(
                f"clean.shard:{task.shard_id}", start_wall, clean_s, attrs
            ),
            worker_span(
                f"pea.shard:{task.shard_id}",
                start_wall + clean_s,
                pea_s,
                attrs,
            ),
        ]
    return Tier1ShardResult(
        shard_id=task.shard_id,
        events_by_taxi=events_by_taxi,
        report=report if task.clean else None,
        records_in=records_in,
        elapsed_s=time.perf_counter() - start,
        spans=spans,
    )


def run_zone_cluster(
    task: ZoneClusterTask, allow_fault: bool = True
) -> ZoneClusterResult:
    """Per-zone DBSCAN over one zone's pickup centroids."""
    start = time.perf_counter()
    start_wall = time.time()
    if allow_fault:
        _maybe_inject_fault("zones")
    clusters, noise = cluster_zone(task.lonlat, task.projection, task.params)
    elapsed = time.perf_counter() - start
    spans: List[dict] = []
    if task.trace:
        spans = [
            worker_span(
                f"cluster.zone:{task.zone}",
                start_wall,
                elapsed,
                {
                    "zone": task.zone,
                    "points": int(len(task.lonlat)),
                    "clusters": len(clusters),
                    "noise": noise,
                },
            )
        ]
    return ZoneClusterResult(
        zone=task.zone,
        clusters=clusters,
        noise=noise,
        points=int(len(task.lonlat)),
        elapsed_s=elapsed,
        spans=spans,
    )


def run_spot_task(task: SpotTask, allow_fault: bool = True) -> SpotResult:
    """Tier-2 analysis of one spot."""
    start = time.perf_counter()
    start_wall = time.time()
    if allow_fault:
        _maybe_inject_fault("tier2")
    analysis = analyze_spot(
        task.spot,
        task.events,
        task.grid,
        task.amplification,
        task.policy,
        task.slot_seconds,
        task.street_job_ratio,
    )
    elapsed = time.perf_counter() - start
    spans: List[dict] = []
    if task.trace:
        spans = [
            worker_span(
                f"tier2.spot:{task.spot.spot_id}",
                start_wall,
                elapsed,
                {
                    "spot": task.spot.spot_id,
                    "events": len(task.events),
                },
            )
        ]
    return SpotResult(
        spot_id=task.spot.spot_id,
        analysis=analysis,
        elapsed_s=elapsed,
        spans=spans,
    )
