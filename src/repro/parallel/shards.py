"""Picklable shard tasks/results and deterministic shard planning.

The parallel execution layer moves work between processes as plain
dataclasses so every task and result survives pickling under both the
``fork`` and ``spawn`` start methods:

* tier 1 is sharded **by zone**: every taxi is assigned a *home zone*
  (the zone of its first record) and each shard carries the whole
  trajectories of one zone's taxis — cleaning and PEA are per-taxi
  computations, so a shard is self-contained.  Zones with many records
  are sub-chunked for load balance; a taxi never splits across shards.
* the per-zone DBSCAN stage exchanges pickup centroids between shards:
  each :class:`ZoneClusterTask` carries exactly one zone's centroid
  array, mirroring the serial per-zone loop.
* tier 2 is sharded **by spot**: each :class:`SpotTask` carries one
  spot's W(r) bucket plus everything WTE/feature/QCD need.

Determinism: shard *assignment* never influences results — the runner
re-sorts merged pickup events by taxi id (the serial scan order) and
re-assembles zone clusters in partition order, so the merged output is
bit-for-bit the serial output regardless of how work was split.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.columnar import RecordBatch
from repro.core.engine import SpotAnalysis
from repro.core.features import AmplificationPolicy
from repro.core.spots import SpotDetectionParams
from repro.core.thresholds import ThresholdPolicy
from repro.core.types import QueueSpot, TimeSlotGrid
from repro.geo.bbox import BBox
from repro.geo.point import LocalProjection
from repro.geo.zones import ZonePartition
from repro.trace.cleaning import CleaningReport
from repro.trace.log_store import MdtLogStore
from repro.trace.record import MdtRecord
from repro.trace.trajectory import SubTrajectory, Trajectory


def stable_shard(key: str, n_shards: int) -> int:
    """A process-stable shard index for ``key`` (crc32, not ``hash``).

    Python's built-in string hash is salted per process, so it cannot be
    used to agree on shard membership across workers.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    return zlib.crc32(key.encode("utf-8")) % n_shards


def detach_event(sub: SubTrajectory) -> SubTrajectory:
    """Copy a sub-trajectory out of its parent trajectory.

    A :class:`SubTrajectory` normally references its full parent
    trajectory; pickling one would ship the taxi's entire day to the
    other process.  The detached copy owns just the segment's records.
    """
    segment = Trajectory(sub.taxi_id, list(sub))
    return segment.sub(0, len(segment) - 1)


@dataclass
class Tier1ShardTask:
    """Cleaning + PEA over one zone-chunk of taxis (records inline)."""

    shard_id: int
    zone: str
    taxis: List[Tuple[str, List[MdtRecord]]]
    clean: bool
    city_bbox: Optional[BBox]
    inaccessible: List[BBox]
    params: SpotDetectionParams
    trace: bool = False
    """Measure per-stage worker spans into the result (see
    :mod:`repro.obs`); purely observational, never changes output."""


@dataclass
class Tier1BatchShardTask:
    """Cleaning + PEA over one zone-chunk of taxis (columnar records).

    The columnar sibling of :class:`Tier1ShardTask` and the default
    in-memory handoff: ``batch`` pickles as six raw column buffers plus
    the interned id table (see ``RecordBatch.__reduce__``), so shipping
    a shard to a worker costs O(columns) buffer copies instead of
    O(records) object pickling.  Rows are grouped per taxi in sorted-id
    order, time-ordered within each taxi.
    """

    shard_id: int
    zone: str
    batch: RecordBatch
    clean: bool
    city_bbox: Optional[BBox]
    inaccessible: List[BBox]
    params: SpotDetectionParams
    trace: bool = False
    """See :attr:`Tier1ShardTask.trace`."""


@dataclass
class Tier1FileShardTask:
    """Cleaning + PEA over one CSV shard file (chunked ingest).

    The worker loads its own shard from disk, so no process ever holds
    the full day in memory.
    """

    shard_id: int
    zone: str
    path: str
    clean: bool
    city_bbox: Optional[BBox]
    inaccessible: List[BBox]
    params: SpotDetectionParams
    trace: bool = False
    """See :attr:`Tier1ShardTask.trace`."""


@dataclass
class Tier1ShardResult:
    """Pickup events (detached) per taxi, plus cleaning accounting."""

    shard_id: int
    events_by_taxi: List[Tuple[str, List[SubTrajectory]]]
    report: Optional[CleaningReport]
    records_in: int
    elapsed_s: float
    spans: List[dict] = field(default_factory=list)
    """Worker-measured span dicts (only when the task asked to trace),
    re-parented into the live trace at the result-merge boundary."""


@dataclass
class ZoneClusterTask:
    """Per-zone DBSCAN over one zone's pickup centroids."""

    zone: str
    lonlat: np.ndarray
    projection: LocalProjection
    params: SpotDetectionParams
    trace: bool = False
    """See :attr:`Tier1ShardTask.trace`."""


@dataclass
class ZoneClusterResult:
    """One zone's clusters in DBSCAN discovery order."""

    zone: str
    clusters: List[Tuple[float, float, int, float]]
    noise: int
    points: int
    elapsed_s: float
    spans: List[dict] = field(default_factory=list)
    """See :attr:`Tier1ShardResult.spans`."""


@dataclass
class SpotTask:
    """Tier-2 analysis of one spot (WTE -> features -> thresholds -> QCD)."""

    spot: QueueSpot
    events: List[SubTrajectory]
    grid: TimeSlotGrid
    amplification: AmplificationPolicy
    policy: ThresholdPolicy
    slot_seconds: float
    street_job_ratio: float
    trace: bool = False
    """See :attr:`Tier1ShardTask.trace`."""


@dataclass
class SpotResult:
    """The finished :class:`~repro.core.engine.SpotAnalysis` of one spot."""

    spot_id: str
    analysis: SpotAnalysis
    elapsed_s: float
    spans: List[dict] = field(default_factory=list)
    """See :attr:`Tier1ShardResult.spans`."""


def taxi_home_zone(zones: ZonePartition, records: List[MdtRecord]) -> str:
    """The shard-planning zone of a taxi: the zone of its first record.

    Only shard *assignment* depends on this, never results, so the
    cheapest deterministic rule wins over the engine's majority vote.
    """
    first = records[0]
    return zones.classify_or_nearest(first.lon, first.lat)


def plan_tier1_batch_shards(
    source: Union[MdtLogStore, RecordBatch],
    zones: ZonePartition,
    target_shards: int,
    clean: bool,
    city_bbox: Optional[BBox],
    inaccessible: List[BBox],
    params: SpotDetectionParams,
) -> List[Tier1BatchShardTask]:
    """The columnar :func:`plan_tier1_shards`: batch-carrying shards.

    Same plan as the row planner — taxis visited in sorted-id order,
    grouped by home zone, chunks filled greedily against a
    ``total_records / target_shards`` budget — so a chunk holds exactly
    the taxis its row-path twin would; only the payload differs (one
    packed sub-batch per shard instead of a list of record lists).
    """
    from repro.trace.partition import partition_batch_by_taxi

    if target_shards < 1:
        raise ValueError("target_shards must be >= 1")
    batch = (
        source
        if isinstance(source, RecordBatch)
        else RecordBatch.from_store(source)
    )
    by_zone: Dict[str, List[Tuple[str, RecordBatch]]] = {
        zone.name: [] for zone in zones
    }
    total_records = 0
    for taxi_id, sub in partition_batch_by_taxi(batch):
        if len(sub) == 0:
            continue
        zone_name = zones.classify_or_nearest(sub.lon[0], sub.lat[0])
        by_zone[zone_name].append((taxi_id, sub))
        total_records += len(sub)
    if total_records == 0:
        return []

    budget = max(1, total_records // target_shards)
    tasks: List[Tier1BatchShardTask] = []

    def flush(zone_name: str, chunk: List[Tuple[str, RecordBatch]]) -> None:
        tasks.append(
            Tier1BatchShardTask(
                shard_id=len(tasks),
                zone=zone_name,
                batch=RecordBatch.concat([sub for _, sub in chunk]),
                clean=clean,
                city_bbox=city_bbox,
                inaccessible=list(inaccessible),
                params=params,
            )
        )

    for zone in zones:
        group = by_zone[zone.name]
        if not group:
            continue
        chunk: List[Tuple[str, RecordBatch]] = []
        chunk_records = 0
        for taxi_id, sub in group:
            if chunk and chunk_records + len(sub) > budget:
                flush(zone.name, chunk)
                chunk = []
                chunk_records = 0
            chunk.append((taxi_id, sub))
            chunk_records += len(sub)
        if chunk:
            flush(zone.name, chunk)
    return tasks


def plan_tier1_shards(
    store: MdtLogStore,
    zones: ZonePartition,
    target_shards: int,
    clean: bool,
    city_bbox: Optional[BBox],
    inaccessible: List[BBox],
    params: SpotDetectionParams,
) -> List[Tier1ShardTask]:
    """Split a store into zone-grouped, size-balanced tier-1 shards.

    Taxis are grouped by home zone, then each zone's group is chunked so
    no chunk greatly exceeds ``total_records / target_shards`` — zones
    with most of the data (Central, typically) get several chunks while
    sparse zones stay whole.  The plan is deterministic: taxis are
    visited in sorted id order and chunks filled greedily.
    """
    if target_shards < 1:
        raise ValueError("target_shards must be >= 1")
    by_zone: Dict[str, List[Tuple[str, List[MdtRecord]]]] = {
        zone.name: [] for zone in zones
    }
    total_records = 0
    for taxi_id in store.taxi_ids:
        records = store.records_of(taxi_id)
        if not records:
            continue
        by_zone[taxi_home_zone(zones, records)].append((taxi_id, records))
        total_records += len(records)
    if total_records == 0:
        return []

    budget = max(1, total_records // target_shards)
    tasks: List[Tier1ShardTask] = []
    for zone in zones:
        group = by_zone[zone.name]
        if not group:
            continue
        chunk: List[Tuple[str, List[MdtRecord]]] = []
        chunk_records = 0
        for taxi_id, records in group:
            if chunk and chunk_records + len(records) > budget:
                tasks.append(
                    Tier1ShardTask(
                        shard_id=len(tasks),
                        zone=zone.name,
                        taxis=chunk,
                        clean=clean,
                        city_bbox=city_bbox,
                        inaccessible=list(inaccessible),
                        params=params,
                    )
                )
                chunk = []
                chunk_records = 0
            chunk.append((taxi_id, records))
            chunk_records += len(records)
        if chunk:
            tasks.append(
                Tier1ShardTask(
                    shard_id=len(tasks),
                    zone=zone.name,
                    taxis=chunk,
                    clean=clean,
                    city_bbox=city_bbox,
                    inaccessible=list(inaccessible),
                    params=params,
                )
            )
    return tasks
