"""Disorder-tolerant ingest: a bounded reorder buffer with watermarks.

Event-driven MDT feeds arrive late, duplicated and out of order (radio
retries, per-cell batching, operator gateway failover); feeding such a
stream straight into :class:`~repro.stream.StreamingQueueMonitor` would
corrupt WTE intervals — the incremental PEA requires per-taxi time order
and the monitor's slot clock assumes a (mostly) forward-moving stream.

:class:`ReorderBuffer` sits in front of the monitor and restores order
under a *bounded lateness* assumption: a record may arrive at most
``window_s`` stream-seconds after records that are newer than it.  The
buffer holds records in a min-heap and releases them once the
**watermark** — the newest timestamp seen minus the window — passes
them, in a canonical total order (timestamp, then taxi id, then the
remaining fields), so any bounded-disorder arrival permutation of a
stream releases the *same* ordered sequence.

Three fault classes are absorbed and accounted, never raised:

* **duplicates** — a record identical to one still inside the buffer's
  horizon is dropped (``duplicates``);
* **late records** — a record older than the released watermark cannot
  be emitted without breaking order and is dropped (``late_dropped``);
* **overflow** — if more than ``max_buffered`` records are pending (the
  feed violated its lateness bound wholesale), the oldest is force-
  released so memory stays bounded (``forced_releases``).

Counts are mirrored into a :class:`~repro.service.metrics.
MetricsRegistry` when one is supplied, so the serving layer surfaces
ingest health at ``/v1/metrics``.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.service.metrics import MetricsRegistry
from repro.trace.record import MdtRecord

#: Default cap on pending records; at Singapore-fleet rates (~200
#: records/s citywide) this is minutes of slack beyond the window.
DEFAULT_MAX_BUFFERED = 100_000

#: The canonical release order: time first, then taxi id, then the
#: remaining fields so distinct same-instant records order stably.
_SortKey = Tuple[float, str, float, float, float, str]


def record_key(record: MdtRecord) -> _SortKey:
    """The canonical total-order key of one record."""
    return (
        record.ts,
        record.taxi_id,
        record.lon,
        record.lat,
        record.speed,
        record.state.value,
    )


class ReorderBuffer:
    """Restore bounded-disorder record streams to canonical order.

    Args:
        window_s: the lateness bound in stream seconds; records are
            held until the newest seen timestamp exceeds theirs by the
            window.  ``0`` degrades to pass-through with duplicate and
            late-record suppression only.
        max_buffered: hard cap on pending records (memory bound); the
            oldest pending record is force-released beyond it.
        metrics: optional registry mirroring the buffer's accounting
            (``ingest.*`` counters and gauges).
    """

    def __init__(
        self,
        window_s: float,
        max_buffered: int = DEFAULT_MAX_BUFFERED,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if window_s < 0:
            raise ValueError("disorder window must be non-negative")
        if max_buffered < 1:
            raise ValueError("max_buffered must hold at least one record")
        self.window_s = float(window_s)
        self.max_buffered = int(max_buffered)
        self._heap: List[Tuple[_SortKey, MdtRecord]] = []
        self._seen: Dict[_SortKey, None] = {}
        self._high_ts = float("-inf")
        self._released_through = float("-inf")
        self.records_in = 0
        self.released = 0
        self.duplicates = 0
        self.late_dropped = 0
        self.forced_releases = 0
        self._metrics = metrics

    # -- ingestion ---------------------------------------------------------------

    def feed(self, record: MdtRecord) -> List[MdtRecord]:
        """Absorb one record; return the records it releases, in order."""
        self.records_in += 1
        key = record_key(record)
        if key in self._seen:
            self.duplicates += 1
            self._count("ingest.duplicates")
            self._update_gauges()
            return []
        if record.ts < self._released_through:
            self.late_dropped += 1
            self._count("ingest.late_dropped")
            self._update_gauges()
            return []
        self._seen[key] = None
        heapq.heappush(self._heap, (key, record))
        if record.ts > self._high_ts:
            self._high_ts = record.ts
        released = self._drain(self._high_ts - self.window_s)
        while len(self._heap) > self.max_buffered:
            # The feed broke its lateness bound at scale; shed the
            # oldest pending record rather than grow without bound.
            released.append(self._pop_release())
            self.forced_releases += 1
            self._count("ingest.forced_releases")
        self._update_gauges()
        return released

    def flush(self) -> List[MdtRecord]:
        """End of stream: release everything still pending, in order."""
        released = self._drain(float("inf"))
        self._update_gauges()
        return released

    # -- internals ---------------------------------------------------------------

    def _pop_release(self) -> MdtRecord:
        key, record = heapq.heappop(self._heap)
        if record.ts > self._released_through:
            self._released_through = record.ts
        self.released += 1
        self._count("ingest.released")
        return record

    def _drain(self, watermark: float) -> List[MdtRecord]:
        released: List[MdtRecord] = []
        while self._heap and self._heap[0][0][0] <= watermark:
            released.append(self._pop_release())
        if watermark > self._released_through and watermark != float("inf"):
            self._released_through = watermark
        # Forget keys that can no longer collide: anything older than
        # the released horizon is dropped as late before the seen-set
        # lookup matters, so the set stays bounded by the window.
        if released or watermark == float("inf"):
            self._seen = {
                key: None
                for key in self._seen
                if key[0] >= self._released_through
            }
        return released

    def _count(self, name: str) -> None:
        if self._metrics is not None:
            self._metrics.counter(name).inc()

    def _update_gauges(self) -> None:
        if self._metrics is not None:
            self._metrics.gauge("ingest.buffered").set(len(self._heap))
            if self._high_ts != float("-inf"):
                self._metrics.gauge("ingest.watermark").set(
                    self._high_ts - self.window_s
                )

    # -- introspection -----------------------------------------------------------

    @property
    def pending(self) -> int:
        """How many records are currently held back."""
        return len(self._heap)

    @property
    def watermark(self) -> float:
        """The release frontier (newest timestamp minus the window)."""
        return self._high_ts - self.window_s

    # -- checkpointing -----------------------------------------------------------

    def export_state(self) -> dict:
        """Picklable state for checkpoint/restore (see
        :mod:`repro.resilience.checkpoint`)."""
        return {
            "window_s": self.window_s,
            "buffered": [record for _, record in sorted(self._heap)],
            "seen": list(self._seen),
            "high_ts": self._high_ts,
            "released_through": self._released_through,
            "counts": (
                self.records_in,
                self.released,
                self.duplicates,
                self.late_dropped,
                self.forced_releases,
            ),
        }

    def restore_state(self, state: dict) -> None:
        """Restore a state exported by :meth:`export_state`."""
        self._heap = [
            (record_key(record), record) for record in state["buffered"]
        ]
        heapq.heapify(self._heap)
        self._seen = {tuple(key): None for key in state["seen"]}
        self._high_ts = state["high_ts"]
        self._released_through = state["released_through"]
        (
            self.records_in,
            self.released,
            self.duplicates,
            self.late_dropped,
            self.forced_releases,
        ) = state["counts"]
        self._update_gauges()
