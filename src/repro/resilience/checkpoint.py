"""Atomic checkpoint/restore of the live streaming state.

A crash of ``taxiqueue serve`` used to lose everything the
:class:`~repro.stream.StreamingQueueMonitor` had accumulated — open PEA
candidates, bucketed wait events, finalized-slot progress and the
:class:`~repro.service.snapshot.SnapshotStore` version.  This module
makes that state durable:

* :class:`CheckpointManager` owns a checkpoint directory and writes
  each checkpoint **atomically**: payload to a temporary file in the
  same directory, ``fsync``, then ``os.rename`` over the final name (a
  reader never observes a half-written checkpoint, a crash mid-write
  leaves the previous checkpoint intact).  Every file embeds a SHA-256
  digest; a truncated or bit-flipped checkpoint is detected on load and
  skipped in favour of the next-newest good one.
* :class:`ServiceCheckpointer` composes the monitor, the snapshot
  store and (optionally) the reorder buffer into one payload keyed by
  the **stream position** (records consumed from the source), and
  restores all of them in one step so a resumed replay is bit-identical
  to an uninterrupted one.

The payload is a pickled dict — checkpoints are an internal durability
format written and read by the same trusted process, exactly like the
shard files of :mod:`repro.parallel`.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import re
import tempfile
from pathlib import Path
from typing import List, Optional, TYPE_CHECKING

from repro.service.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.history.writer import HistoryWriter
    from repro.resilience.reorder import ReorderBuffer
    from repro.service.snapshot import SnapshotStore
    from repro.stream.monitor import StreamingQueueMonitor

#: File-format magic; bump when the envelope layout changes.
MAGIC = b"TQCKPT1\n"

_NAME_RE = re.compile(r"^checkpoint-(\d{8,})\.ckpt$")


class CheckpointManager:
    """Durable, integrity-checked checkpoints in one directory.

    Args:
        directory: where checkpoints live (created if missing).
        keep: how many most-recent checkpoints to retain.
        metrics: optional registry for ``checkpoint.saved`` /
            ``checkpoint.corrupt`` counters and the
            ``checkpoint.bytes`` gauge.
    """

    def __init__(
        self,
        directory,
        keep: int = 3,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if keep < 1:
            raise ValueError("must keep at least one checkpoint")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = int(keep)
        self._metrics = metrics

    # -- writing -----------------------------------------------------------------

    def save(self, payload: dict) -> Path:
        """Write one checkpoint atomically; returns its final path."""
        body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(body).hexdigest().encode("ascii")
        sequence = self._next_sequence()
        final = self.directory / f"checkpoint-{sequence:08d}.ckpt"
        fd, tmp_name = tempfile.mkstemp(
            prefix=".checkpoint-", suffix=".tmp", dir=self.directory
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(MAGIC)
                handle.write(digest)
                handle.write(b"\n")
                handle.write(body)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, final)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._fsync_directory()
        self._prune()
        if self._metrics is not None:
            self._metrics.counter("checkpoint.saved").inc()
            self._metrics.gauge("checkpoint.bytes").set(len(body))
        return final

    def _next_sequence(self) -> int:
        sequences = [self._sequence_of(path) for path in self.paths()]
        return (max(sequences) + 1) if sequences else 1

    @staticmethod
    def _sequence_of(path: Path) -> int:
        match = _NAME_RE.match(path.name)
        return int(match.group(1)) if match else -1

    def _fsync_directory(self) -> None:
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def _prune(self) -> None:
        paths = self.paths()
        for stale in paths[: max(0, len(paths) - self.keep)]:
            try:
                stale.unlink()
            except OSError:  # pragma: no cover - concurrent prune
                pass

    # -- reading -----------------------------------------------------------------

    def paths(self) -> List[Path]:
        """All checkpoint files, oldest first."""
        return sorted(
            (
                path
                for path in self.directory.glob("checkpoint-*.ckpt")
                if _NAME_RE.match(path.name)
            ),
            key=self._sequence_of,
        )

    def load_latest(self) -> Optional[dict]:
        """The newest checkpoint that passes integrity checks, or None.

        Corrupt files (torn writes, bit flips, foreign content) are
        counted and skipped, never raised: recovery degrades to the
        next-newest good checkpoint, and to a cold start when none is.
        """
        return self.find(lambda payload: True)

    def find(self, predicate) -> Optional[dict]:
        """The newest intact checkpoint satisfying ``predicate``."""
        for path in reversed(self.paths()):
            payload = self._load(path)
            if payload is None:
                if self._metrics is not None:
                    self._metrics.counter("checkpoint.corrupt").inc()
                continue
            if predicate(payload):
                return payload
        return None

    @staticmethod
    def _load(path: Path) -> Optional[dict]:
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        if not raw.startswith(MAGIC):
            return None
        rest = raw[len(MAGIC):]
        newline = rest.find(b"\n")
        if newline != 64:  # hex SHA-256
            return None
        digest, body = rest[:newline], rest[newline + 1:]
        if hashlib.sha256(body).hexdigest().encode("ascii") != digest:
            return None
        try:
            payload = pickle.loads(body)
        except Exception:
            return None
        return payload if isinstance(payload, dict) else None


class ServiceCheckpointer:
    """Periodic whole-service checkpoints at record granularity.

    Args:
        manager: the checkpoint directory owner.
        monitor: the streaming monitor whose state is captured.
        store: the snapshot store (version + finalized results).
        reorder: the ingest reorder buffer, when one is in front of
            the monitor.
        history: the durable history writer, when the service persists
            day segments; captured and restored at the same record
            boundary so segment bytes stay exactly-once.
        every_records: checkpoint cadence in consumed source records.
    """

    def __init__(
        self,
        manager: CheckpointManager,
        monitor: "StreamingQueueMonitor",
        store: "SnapshotStore",
        reorder: Optional["ReorderBuffer"] = None,
        history: Optional["HistoryWriter"] = None,
        every_records: int = 5000,
    ):
        if every_records < 1:
            raise ValueError("checkpoint cadence must be >= 1 record")
        self.manager = manager
        self.monitor = monitor
        self.store = store
        self.reorder = reorder
        self.history = history
        self.every_records = int(every_records)

    def maybe_checkpoint(self, stream_pos: int) -> Optional[Path]:
        """Checkpoint when ``stream_pos`` hits the cadence boundary."""
        if stream_pos % self.every_records == 0:
            return self.checkpoint(stream_pos)
        return None

    def checkpoint(self, stream_pos: int) -> Path:
        """Capture monitor + store (+ reorder) state at a position.

        Must be called at a record boundary from the ingest thread (the
        replayer does), so the captured states are mutually consistent.
        """
        payload = {
            "kind": "service",
            "stream_pos": int(stream_pos),
            "monitor": self.monitor.export_state(),
            "store": self.store.export_state(),
            "reorder": (
                None if self.reorder is None else self.reorder.export_state()
            ),
            "history": (
                None if self.history is None else self.history.export_state()
            ),
        }
        return self.manager.save(payload)

    def restore_latest(self) -> Optional[int]:
        """Restore the newest good checkpoint into the live objects.

        Returns:
            The stream position to resume from (records of the source
            already consumed), or None when no usable checkpoint
            exists (cold start).
        """
        payload = self.manager.find(
            lambda entry: entry.get("kind") == "service"
        )
        if payload is None:
            return None
        self.monitor.restore_state(payload["monitor"])
        self.store.restore_state(payload["store"])
        if self.reorder is not None and payload["reorder"] is not None:
            self.reorder.restore_state(payload["reorder"])
        # ``.get``: checkpoints written before the history subsystem
        # existed have no "history" slice and must keep restoring.
        history_state = payload.get("history")
        if self.history is not None and history_state is not None:
            self.history.restore_state(history_state)
        return int(payload["stream_pos"])
