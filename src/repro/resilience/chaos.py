"""Deterministic fault injection for record streams.

The resilience guarantees of this package are only as good as the
faults they are tested against; :class:`ChaosStream` makes those faults
*reproducible*.  It wraps any record iterator and injects seeded
reorder / duplicate / drop / stall / crash faults from one
``random.Random(seed)``, so a failing chaos run is replayed exactly by
its seed — no flaky tests, and CI can pin a fixed seed matrix.

Fault classes (all independently rated):

* **reorder** — a record is held back and re-emitted up to
  ``max_delay`` positions later (bounded displacement, the disorder
  model :class:`~repro.resilience.reorder.ReorderBuffer` absorbs);
* **duplicate** — a record is emitted twice back to back;
* **drop** — a record is silently lost;
* **stall** — the feed blocks for ``stall_s`` (via ``sleep_fn``, so
  tests can fake time);
* **crash** — :class:`InjectedCrash` is raised after consuming
  ``crash_after`` source records, simulating a hard process kill
  mid-stream.

:func:`disordered_copy` is the offline sibling used by property tests:
a seeded bounded-lateness permutation (plus optional duplicates) of a
record list, guaranteed to stay inside a ``window_s`` lateness bound.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.trace.record import MdtRecord


class InjectedCrash(RuntimeError):
    """Raised by :class:`ChaosStream` to simulate a hard mid-stream kill."""


@dataclass(frozen=True)
class FaultPlan:
    """One seeded fault configuration (all rates are per-record)."""

    seed: int = 0
    reorder_rate: float = 0.0
    max_delay: int = 8
    duplicate_rate: float = 0.0
    drop_rate: float = 0.0
    stall_rate: float = 0.0
    stall_s: float = 0.02
    crash_after: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("reorder_rate", "duplicate_rate", "drop_rate", "stall_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be within [0, 1]")
        if self.max_delay < 1:
            raise ValueError("max_delay must be >= 1")
        if self.crash_after is not None and self.crash_after < 0:
            raise ValueError("crash_after must be >= 0")


class ChaosStream:
    """A fault-injecting iterator over records.

    Args:
        records: the source iterable.
        plan: the seeded fault plan.
        sleep_fn: how stalls block (injectable for tests).

    Attributes:
        stats: per-fault counts (``reordered`` / ``duplicated`` /
            ``dropped`` / ``stalled`` / ``crashed`` / ``consumed``).
    """

    def __init__(
        self,
        records: Iterable[MdtRecord],
        plan: FaultPlan,
        sleep_fn=time.sleep,
    ):
        self.records = records
        self.plan = plan
        self.sleep_fn = sleep_fn
        self.stats: Dict[str, int] = {
            "consumed": 0,
            "reordered": 0,
            "duplicated": 0,
            "dropped": 0,
            "stalled": 0,
            "crashed": 0,
        }

    def __iter__(self) -> Iterator[MdtRecord]:
        rng = random.Random(self.plan.seed)
        plan = self.plan
        # Held-back records as (remaining_delay, arrival_index, record);
        # the arrival index keeps the release order deterministic.
        held: List[List] = []
        for record in self.records:
            if (
                plan.crash_after is not None
                and self.stats["consumed"] >= plan.crash_after
            ):
                self.stats["crashed"] += 1
                raise InjectedCrash(
                    f"injected crash after {self.stats['consumed']} records"
                )
            self.stats["consumed"] += 1
            if plan.stall_rate and rng.random() < plan.stall_rate:
                self.stats["stalled"] += 1
                self.sleep_fn(plan.stall_s)
            if plan.drop_rate and rng.random() < plan.drop_rate:
                self.stats["dropped"] += 1
                continue
            if plan.reorder_rate and rng.random() < plan.reorder_rate:
                self.stats["reordered"] += 1
                held.append(
                    [rng.randint(1, plan.max_delay), len(held), record]
                )
                continue
            yield from self._emit(record, rng)
            yield from self._tick_held(held, rng)
        # End of source: release every held record in arrival order.
        for _, _, record in sorted(held, key=lambda entry: entry[1]):
            yield from self._emit(record, rng)

    def _emit(
        self, record: MdtRecord, rng: random.Random
    ) -> Iterator[MdtRecord]:
        yield record
        if self.plan.duplicate_rate and rng.random() < self.plan.duplicate_rate:
            self.stats["duplicated"] += 1
            yield record

    def _tick_held(
        self, held: List[List], rng: random.Random
    ) -> Iterator[MdtRecord]:
        due: List[List] = []
        for entry in held:
            entry[0] -= 1
            if entry[0] <= 0:
                due.append(entry)
        for entry in sorted(due, key=lambda e: e[1]):
            held.remove(entry)
            yield from self._emit(entry[2], rng)


def disordered_copy(
    records: Sequence[MdtRecord],
    seed: int,
    window_s: float,
    duplicate_rate: float = 0.0,
) -> List[MdtRecord]:
    """A seeded bounded-lateness permutation (with optional duplicates).

    Each record's arrival is jittered by ``uniform(0, window_s)``
    stream-seconds, then the copy is sorted by jittered time: any record
    arrives before every record more than ``window_s`` newer than it, so
    a :class:`~repro.resilience.reorder.ReorderBuffer` with the same
    window provably re-releases the canonical order with no late drops.
    """
    if window_s < 0:
        raise ValueError("window must be non-negative")
    rng = random.Random(seed)
    arrivals = []
    for index, record in enumerate(records):
        arrivals.append((record.ts + rng.uniform(0.0, window_s), index, record))
        if duplicate_rate and rng.random() < duplicate_rate:
            arrivals.append(
                (record.ts + rng.uniform(0.0, window_s), index, record)
            )
    arrivals.sort(key=lambda entry: (entry[0], entry[1]))
    return [record for _, _, record in arrivals]
