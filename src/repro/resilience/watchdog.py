"""Freshness watchdog for the live serving layer.

When the ingest path stalls or crashes, the HTTP layer keeps serving
the last-good snapshot (see :class:`~repro.service.http.
QueueStateServer`) — silently.  :class:`ServiceWatchdog` makes the
degradation *observable*: a small daemon thread tracks how long the
:class:`~repro.service.snapshot.SnapshotStore` version has been
standing still and maintains two gauges in the shared metrics registry:

* ``watchdog.staleness_seconds`` — wall seconds since the snapshot
  last advanced (0 right after an update);
* ``watchdog.stale`` — 1 once staleness exceeds ``stale_after_s``,
  back to 0 as soon as ingest recovers.

Operators alert on ``watchdog.stale``; the chaos tests assert the
gauge rises under injected stalls/crashes and clears on recovery.
An expected quiet period (a replay that finished, an overnight lull)
can be acknowledged with :meth:`expect_idle`.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from repro.service.metrics import MetricsRegistry
from repro.service.snapshot import SnapshotStore


class ServiceWatchdog:
    """Track snapshot freshness in the background.

    Args:
        store: the snapshot store whose version is the heartbeat.
        metrics: registry receiving the ``watchdog.*`` gauges.
        stale_after_s: staleness threshold for the binary flag.
        interval_s: polling cadence of the watchdog thread.
        clock: monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        store: SnapshotStore,
        metrics: Optional[MetricsRegistry] = None,
        stale_after_s: float = 30.0,
        interval_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if stale_after_s <= 0:
            raise ValueError("stale_after_s must be positive")
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.store = store
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.stale_after_s = float(stale_after_s)
        self.interval_s = float(interval_s)
        self._clock = clock
        self._last_version = store.version
        self._last_change = clock()
        self._idle = False
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.check()

    # -- the check ---------------------------------------------------------------

    def check(self) -> float:
        """One freshness probe; returns the current staleness seconds."""
        now = self._clock()
        version = self.store.version
        if version != self._last_version:
            self._last_version = version
            self._last_change = now
            self._idle = False
        staleness = 0.0 if self._idle else now - self._last_change
        self.metrics.gauge("watchdog.staleness_seconds").set(staleness)
        self.metrics.gauge("watchdog.stale").set(
            1.0 if staleness > self.stale_after_s else 0.0
        )
        return staleness

    @property
    def staleness_s(self) -> float:
        """Staleness at the last probe (probe again via :meth:`check`)."""
        return self.check()

    @property
    def is_stale(self) -> bool:
        return self.check() > self.stale_after_s

    def expect_idle(self) -> None:
        """Acknowledge a legitimate quiet period (replay finished).

        Any version advance not yet observed by a probe (the final
        flush of a replay, typically) is absorbed first — otherwise
        the next probe would read it as fresh activity and clear the
        flag it was just asked to set.
        """
        self._last_version = self.store.version
        self._last_change = self._clock()
        self._idle = True
        self.check()

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Probe in a daemon thread every ``interval_s`` (idempotent)."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="queue-state-watchdog", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.check()
