"""Fault tolerance for the live streaming tier.

The paper's deployed system (section 7.1) assumes a clean, ordered MDT
feed and a process that never dies; production feeds are neither.  This
package is the robustness layer between the raw feed and the analytics:

* :mod:`repro.resilience.reorder` — :class:`ReorderBuffer`, a bounded
  disorder-tolerant ingest front-end (watermarks, duplicate
  suppression, late-record accounting);
* :mod:`repro.resilience.checkpoint` — :class:`CheckpointManager` and
  :class:`ServiceCheckpointer`, atomic (write-temp + fsync + rename)
  checkpoint/restore of monitor + snapshot + buffer state so
  ``taxiqueue serve --checkpoint-dir`` resumes bit-identically after a
  kill;
* :mod:`repro.resilience.chaos` — :class:`ChaosStream` and
  :class:`FaultPlan`, seeded deterministic reorder / duplicate / drop /
  stall / crash injection for any record iterator;
* :mod:`repro.resilience.watchdog` — :class:`ServiceWatchdog`, a
  freshness probe maintaining the staleness gauges the degraded
  serving path surfaces.

See ``docs/resilience.md`` for the end-to-end story and tuning.
"""

from repro.resilience.chaos import (
    ChaosStream,
    FaultPlan,
    InjectedCrash,
    disordered_copy,
)
from repro.resilience.checkpoint import CheckpointManager, ServiceCheckpointer
from repro.resilience.reorder import ReorderBuffer, record_key
from repro.resilience.watchdog import ServiceWatchdog

__all__ = [
    "ChaosStream",
    "CheckpointManager",
    "FaultPlan",
    "InjectedCrash",
    "ReorderBuffer",
    "ServiceCheckpointer",
    "ServiceWatchdog",
    "disordered_copy",
    "record_key",
]
