"""Streaming queue analytics: the paper's real-time future work.

Section 1 motivates "real time queuing events information" for driver and
commuter recommendations; the batch engine of :mod:`repro.core` processes
daily files.  This package provides the online counterpart:

* :mod:`repro.stream.pea_stream` — an incremental Algorithm 1: records
  are fed one at a time and completed slow-pickup events pop out;
* :mod:`repro.stream.monitor` — a live per-spot queue-context monitor:
  given a known spot set and thresholds (from the batch tier), it consumes
  a time-ordered record stream and emits a QCD label whenever a time slot
  closes.

The streaming path reuses the exact batch algorithms (WTE, the 5-tuple
features, QCD); only the orchestration is incremental, so batch and
stream agree on identical inputs (see ``tests/test_stream.py``).
"""

from repro.stream.pea_stream import PickupEvent, StreamingPea
from repro.stream.monitor import SlotResult, StreamingQueueMonitor

__all__ = [
    "PickupEvent",
    "StreamingPea",
    "SlotResult",
    "StreamingQueueMonitor",
]
