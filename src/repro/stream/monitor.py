"""Live queue-context monitoring over a record stream.

:class:`StreamingQueueMonitor` wires the streaming PEA into the batch
tier-2 algorithms: given a known spot set (from a batch tier-1 run over
historical days, as the deployed system does, section 7.1) and per-spot
QCD thresholds, it consumes a *time-ordered* record stream and emits one
:class:`SlotResult` per spot each time a 30-minute slot closes.

A grace period delays slot finalization: a pickup whose wait *started*
inside slot j may complete (POB) early in slot j+1, so slot j is only
labelled once the stream clock passes ``slot_end + grace``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.features import AmplificationPolicy, compute_slot_features
from repro.core.qcd import label_slot
from repro.core.thresholds import QcdThresholds
from repro.core.types import QueueSpot, SlotFeatures, SlotLabel, TimeSlotGrid
from repro.core.wte import WaitEvent, extract_wait_event
from repro.geo.point import LocalProjection
from repro.stream.pea_stream import StreamingPea
from repro.trace.record import MdtRecord


@dataclass(frozen=True)
class SlotResult:
    """One finalized spot-slot with its features and label."""

    spot_id: str
    slot: int
    features: SlotFeatures
    label: SlotLabel


class StreamingQueueMonitor:
    """Online tier 2 over a fixed spot set.

    Args:
        spots: the detected queue spots (batch tier 1 output).
        thresholds: per-spot QCD thresholds (from historical data).
        grid: the slot grid of the streaming day.
        projection: lon/lat -> metre projection.
        amplification: observed-fraction correction.
        assign_radius_m: pickup-to-spot assignment radius.
        grace_s: how long after a slot ends before it is finalized.
    """

    def __init__(
        self,
        spots: Sequence[QueueSpot],
        thresholds: Dict[str, QcdThresholds],
        grid: TimeSlotGrid,
        projection: LocalProjection,
        amplification: AmplificationPolicy = AmplificationPolicy(),
        assign_radius_m: float = 30.0,
        grace_s: float = 900.0,
    ):
        self.spots = list(spots)
        self.thresholds = dict(thresholds)
        self.grid = grid
        self.projection = projection
        self.amplification = amplification
        self.assign_radius_m = assign_radius_m
        self.grace_s = grace_s
        self._pea = StreamingPea()
        self._events: Dict[str, Dict[int, List[WaitEvent]]] = {
            spot.spot_id: {} for spot in self.spots
        }
        self._finalized_through = -1
        self._subscribers: List[Callable[[List[SlotResult]], None]] = []
        if self.spots:
            self._spot_xy = projection.to_xy_array(
                np.asarray([s.lon for s in self.spots]),
                np.asarray([s.lat for s in self.spots]),
            )
        else:
            self._spot_xy = np.empty((0, 2))

    # -- subscriptions -----------------------------------------------------------

    def subscribe(
        self, callback: Callable[[List[SlotResult]], None]
    ) -> None:
        """Register a callback fired whenever slots are finalized.

        Callbacks receive the same non-empty result batches that
        :meth:`feed` and :meth:`finish` return, in stream order, from the
        thread driving the monitor.  A live consumer (e.g. the serving
        layer's snapshot store) subscribes instead of polling return
        values.
        """
        self._subscribers.append(callback)

    def _publish(self, results: List[SlotResult]) -> None:
        if results:
            for callback in self._subscribers:
                callback(results)

    # -- ingestion ---------------------------------------------------------------

    def feed(self, record: MdtRecord) -> List[SlotResult]:
        """Process one record; returns any slots finalized by its clock."""
        pickup = self._pea.feed(record)
        if pickup is not None:
            self._absorb(pickup)
        results = self._advance_clock(record.ts)
        self._publish(results)
        return results

    def feed_batch(self, batch) -> List[SlotResult]:
        """Feed every row of a :class:`~repro.columnar.RecordBatch`.

        The stream boundary is a true object boundary: rows materialize
        one at a time via ``batch.iter_rows()`` and pass through
        :meth:`feed` unchanged, so batch and per-record feeding publish
        identical results.
        """
        results: List[SlotResult] = []
        for record in batch.iter_rows():
            results.extend(self.feed(record))
        return results

    def finish(self) -> List[SlotResult]:
        """End of stream: flush open pickups and finalize every slot."""
        for pickup in self._pea.flush():
            self._absorb(pickup)
        results: List[SlotResult] = []
        for slot in range(self._finalized_through + 1, self.grid.n_slots):
            results.extend(self._finalize_slot(slot))
        self._finalized_through = self.grid.n_slots - 1
        self._publish(results)
        return results

    # -- checkpointing -----------------------------------------------------------

    def export_state(self) -> dict:
        """Picklable monitor state (PEA scan state, bucketed wait
        events, finalization progress) for checkpoint/restore.

        Subscribers, spots, thresholds and the grid are *configuration*
        — they are rebuilt from the bootstrap on restart — so only the
        accumulated stream state is exported.
        """
        return {
            "pea": self._pea.export_state(),
            "events": {
                spot_id: {slot: list(waits) for slot, waits in buckets.items()}
                for spot_id, buckets in self._events.items()
            },
            "finalized_through": self._finalized_through,
        }

    def restore_state(self, state: dict) -> None:
        """Restore a state exported by :meth:`export_state`.

        The monitor must be configured with the same spots, thresholds,
        grid and grace period as the exporting one; events of spots
        unknown to this monitor are dropped (a changed spot set cannot
        be resumed into).
        """
        self._pea.restore_state(state["pea"])
        self._events = {spot.spot_id: {} for spot in self.spots}
        for spot_id, buckets in state["events"].items():
            if spot_id in self._events:
                self._events[spot_id] = {
                    slot: list(waits) for slot, waits in buckets.items()
                }
        self._finalized_through = state["finalized_through"]

    # -- internals ----------------------------------------------------------------

    def _absorb(self, pickup) -> None:
        spot_id = self._assign(pickup)
        if spot_id is None:
            return
        wait = extract_wait_event(pickup)
        if wait is None:
            return
        slot = self.grid.slot_of(wait.start_ts)
        if slot is None:
            return
        self._events[spot_id].setdefault(slot, []).append(wait)

    def _assign(self, pickup) -> Optional[str]:
        if not self.spots:
            return None
        lon, lat = pickup.centroid()
        x, y = self.projection.to_xy(lon, lat)
        diff = self._spot_xy - np.array([x, y])
        d2 = np.einsum("ij,ij->i", diff, diff)
        j = int(np.argmin(d2))
        if d2[j] <= self.assign_radius_m**2:
            return self.spots[j].spot_id
        return None

    def _advance_clock(self, ts: float) -> List[SlotResult]:
        results: List[SlotResult] = []
        while self._finalized_through + 1 < self.grid.n_slots:
            candidate = self._finalized_through + 1
            _, end = self.grid.bounds(candidate)
            if ts < end + self.grace_s:
                break
            results.extend(self._finalize_slot(candidate))
            self._finalized_through = candidate
        return results

    def _finalize_slot(self, slot: int) -> List[SlotResult]:
        results: List[SlotResult] = []
        lo, hi = self.grid.bounds(slot)
        one_slot_grid = TimeSlotGrid(lo, hi, hi - lo)
        for spot in self.spots:
            bucket = self._events[spot.spot_id].pop(slot, [])
            features = compute_slot_features(
                bucket, one_slot_grid, self.amplification
            )[0]
            # Re-index the single-slot feature to the day grid.
            features = SlotFeatures(
                slot=slot,
                mean_wait_s=features.mean_wait_s,
                n_arrivals=features.n_arrivals,
                queue_length=features.queue_length,
                mean_departure_interval_s=features.mean_departure_interval_s,
                n_departures=features.n_departures,
            )
            thresholds = self.thresholds.get(spot.spot_id)
            if thresholds is None:
                from repro.core.types import QueueType

                label = SlotLabel(slot=slot, label=QueueType.UNIDENTIFIED, routine=0)
            else:
                label = label_slot(features, thresholds)
            results.append(
                SlotResult(
                    spot_id=spot.spot_id,
                    slot=slot,
                    features=features,
                    label=label,
                )
            )
        return results
