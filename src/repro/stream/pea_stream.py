"""Incremental PEA: Algorithm 1 as a streaming operator.

:class:`StreamingPea` keeps the two PEA flags and the open candidate per
taxi and is fed records one at a time (per taxi, in time order).  A
completed candidate that passes the section-4.2 state constraints is
returned as a :class:`PickupEvent`.

The state machine is the same as the batch implementation in
:mod:`repro.core.pea`; the equivalence is pinned by property tests that
stream random record sequences through both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.pea import DEFAULT_SPEED_THRESHOLD_KMH
from repro.states.states import (
    NON_OPERATIONAL_STATES,
    OCCUPIED_STATES,
    TaxiState,
    UNOCCUPIED_STATES,
)
from repro.trace.record import MdtRecord


@dataclass(frozen=True)
class PickupEvent:
    """A completed slow-pickup event (an owned copy of its records).

    Duck-type compatible with :class:`~repro.trace.trajectory.
    SubTrajectory` where the analytics need it (iteration, ``taxi_id``,
    ``centroid``, ``first``/``last``), so the batch WTE/feature code
    consumes it unchanged.
    """

    taxi_id: str
    records: Tuple[MdtRecord, ...]

    def __iter__(self) -> Iterator[MdtRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def first(self) -> MdtRecord:
        return self.records[0]

    @property
    def last(self) -> MdtRecord:
        return self.records[-1]

    def states(self) -> List[TaxiState]:
        return [r.state for r in self.records]

    def centroid(self) -> Tuple[float, float]:
        n = len(self.records)
        return (
            sum(r.lon for r in self.records) / n,
            sum(r.lat for r in self.records) / n,
        )


class _TaxiScanState:
    __slots__ = ("phi1", "candidate", "prev")

    def __init__(self) -> None:
        self.phi1 = False
        self.candidate: Optional[List[MdtRecord]] = None
        self.prev: Optional[MdtRecord] = None


class StreamingPea:
    """Feed MDT records, collect completed pickup events.

    Args:
        speed_threshold_kmh: PEA's eta_sp (10 km/h in the paper).
        apply_state_filters: the three section-4.2 constraints.
    """

    def __init__(
        self,
        speed_threshold_kmh: float = DEFAULT_SPEED_THRESHOLD_KMH,
        apply_state_filters: bool = True,
    ):
        if speed_threshold_kmh <= 0:
            raise ValueError("speed threshold must be positive")
        self.speed_threshold = speed_threshold_kmh
        self.apply_state_filters = apply_state_filters
        self._taxis: Dict[str, _TaxiScanState] = {}

    def feed(self, record: MdtRecord) -> Optional[PickupEvent]:
        """Process one record; returns a completed event, if any.

        Records must arrive per taxi in time order (cross-taxi
        interleaving is fine).
        """
        state = self._taxis.setdefault(record.taxi_id, _TaxiScanState())
        event: Optional[PickupEvent] = None

        if record.state in NON_OPERATIONAL_STATES:
            state.phi1 = False
            state.candidate = None
            state.prev = record
            return None

        low = record.speed <= self.speed_threshold
        if low:
            if state.candidate is not None:
                state.candidate.append(record)
            elif state.phi1:
                # Second consecutive low-speed record opens the candidate
                # with its predecessor, exactly as the batch PEA does.
                state.candidate = [state.prev, record]
            else:
                state.phi1 = True
        else:
            if state.candidate is not None:
                event = self._finalize(record.taxi_id, state.candidate)
            state.phi1 = False
            state.candidate = None
        state.prev = record
        return event

    def flush(self) -> List[PickupEvent]:
        """Finalize all still-open candidates (end of stream/day)."""
        events: List[PickupEvent] = []
        for taxi_id, state in self._taxis.items():
            if state.candidate is not None:
                event = self._finalize(taxi_id, state.candidate)
                if event is not None:
                    events.append(event)
            state.phi1 = False
            state.candidate = None
        return events

    def export_state(self) -> dict:
        """Picklable per-taxi scan state for checkpoint/restore."""
        return {
            taxi_id: (
                state.phi1,
                None if state.candidate is None else list(state.candidate),
                state.prev,
            )
            for taxi_id, state in self._taxis.items()
        }

    def restore_state(self, state: dict) -> None:
        """Restore a state exported by :meth:`export_state`."""
        self._taxis = {}
        for taxi_id, (phi1, candidate, prev) in state.items():
            scan = _TaxiScanState()
            scan.phi1 = phi1
            scan.candidate = None if candidate is None else list(candidate)
            scan.prev = prev
            self._taxis[taxi_id] = scan

    def _finalize(
        self, taxi_id: str, records: List[MdtRecord]
    ) -> Optional[PickupEvent]:
        if self.apply_state_filters:
            first = records[0].state
            last = records[-1].state
            if first in OCCUPIED_STATES and last in UNOCCUPIED_STATES:
                return None
            if first is TaxiState.FREE and last is TaxiState.ONCALL:
                return None
            if all(r.state is first for r in records):
                return None
        return PickupEvent(taxi_id=taxi_id, records=tuple(records))
