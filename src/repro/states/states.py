"""The 11 taxi states reported by the MDT device (paper Table 1).

The paper groups the states into three sets (Definitions 5.1-5.3):

* occupied          Theta  = { POB, STC, PAYMENT }
* unoccupied        Psi    = { FREE, ONCALL, ARRIVED, NOSHOW }
* non-operational   Lambda = { BREAK, OFFLINE, POWEROFF }

BUSY is deliberately left out of all three sets; the paper treats it as a
special state (it is used by drivers to signal temporary unavailability, and
section 7.2 reports drivers abusing it to cherry-pick passengers).
"""

from __future__ import annotations

import enum


class TaxiState(enum.Enum):
    """One of the 11 MDT taxi states (paper Table 1)."""

    FREE = "FREE"
    """Taxi unoccupied and ready for taking new passengers or bookings."""

    POB = "POB"
    """Passenger on board and taximeter running."""

    STC = "STC"
    """Taxi soon to clear the current job and ready for new bookings."""

    PAYMENT = "PAYMENT"
    """Passenger making payment and taximeter paused."""

    ONCALL = "ONCALL"
    """Taxi unoccupied, but accepted a new booking job."""

    ARRIVED = "ARRIVED"
    """Taxi arrived at the booking pickup location, waiting for passenger."""

    NOSHOW = "NOSHOW"
    """No passenger showing up; the booking is cancelled soon after."""

    BUSY = "BUSY"
    """Taxi driver temporarily unavailable due to a personal reason."""

    BREAK = "BREAK"
    """Taxi on a break with the driver still logged on the MDT."""

    OFFLINE = "OFFLINE"
    """Taxi on a break with the driver logged off from the MDT."""

    POWEROFF = "POWEROFF"
    """MDT shut down and not working."""

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Every state in enum declaration order; index == integer state code.
#: The columnar data plane (``repro.columnar``), the binary ``.npz``
#: format and the shard handoff all share this one coding, so a code
#: written by any layer decodes identically in every other.
STATES_BY_CODE = tuple(TaxiState)

#: ``state -> integer code`` (the inverse of :data:`STATES_BY_CODE`).
STATE_CODES = {state: code for code, state in enumerate(STATES_BY_CODE)}


def state_code(state: TaxiState) -> int:
    """The stable integer code of a state (see :data:`STATES_BY_CODE`)."""
    return STATE_CODES[state]


#: Theta (Definition 5.1): a passenger is on board or just finishing a trip.
OCCUPIED_STATES = frozenset({TaxiState.POB, TaxiState.STC, TaxiState.PAYMENT})

#: Psi (Definition 5.2): the taxi carries no passenger and is in service.
UNOCCUPIED_STATES = frozenset(
    {TaxiState.FREE, TaxiState.ONCALL, TaxiState.ARRIVED, TaxiState.NOSHOW}
)

#: Lambda (Definition 5.3): the taxi is not operating.
NON_OPERATIONAL_STATES = frozenset(
    {TaxiState.BREAK, TaxiState.OFFLINE, TaxiState.POWEROFF}
)

#: The three Definition-5 sets as integer codes, for column scans that
#: never materialize :class:`TaxiState` objects.
OCCUPIED_CODES = frozenset(STATE_CODES[s] for s in OCCUPIED_STATES)
UNOCCUPIED_CODES = frozenset(STATE_CODES[s] for s in UNOCCUPIED_STATES)
NON_OPERATIONAL_CODES = frozenset(
    STATE_CODES[s] for s in NON_OPERATIONAL_STATES
)


def is_occupied(state: TaxiState) -> bool:
    """Return True when ``state`` belongs to the occupied set Theta."""
    return state in OCCUPIED_STATES


def is_unoccupied(state: TaxiState) -> bool:
    """Return True when ``state`` belongs to the unoccupied set Psi."""
    return state in UNOCCUPIED_STATES


def is_non_operational(state: TaxiState) -> bool:
    """Return True when ``state`` belongs to the non-operational set Lambda."""
    return state in NON_OPERATIONAL_STATES


def parse_state(text: str) -> TaxiState:
    """Parse a state name as found in an MDT log field.

    The match is case-insensitive and tolerates surrounding whitespace,
    mirroring what a log-ingestion layer has to accept from real feeds.

    Raises:
        ValueError: if the text names no known taxi state.
    """
    try:
        return TaxiState(text.strip().upper())
    except ValueError:
        raise ValueError(f"unknown taxi state: {text!r}") from None
