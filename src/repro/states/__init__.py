"""Taxi state model: the 11 MDT states, state sets and the transition diagram.

This package encodes section 2 of the paper: the taxi states reported by the
mobile data terminal (Table 1), the three state sets used by the analytics
(Definitions 5.1-5.3) and the state transition diagram of Fig. 3, including
the street-job and booking-job procedures.
"""

from repro.states.states import (
    TaxiState,
    OCCUPIED_STATES,
    UNOCCUPIED_STATES,
    NON_OPERATIONAL_STATES,
    is_occupied,
    is_unoccupied,
    is_non_operational,
)
from repro.states.machine import (
    ALLOWED_TRANSITIONS,
    TransitionError,
    is_valid_transition,
    validate_sequence,
    transition_violations,
    STREET_JOB_SEQUENCE,
    BOOKING_JOB_SEQUENCE,
)
from repro.states.jobs import JobKind, Job, segment_jobs

__all__ = [
    "TaxiState",
    "OCCUPIED_STATES",
    "UNOCCUPIED_STATES",
    "NON_OPERATIONAL_STATES",
    "is_occupied",
    "is_unoccupied",
    "is_non_operational",
    "ALLOWED_TRANSITIONS",
    "TransitionError",
    "is_valid_transition",
    "validate_sequence",
    "transition_violations",
    "STREET_JOB_SEQUENCE",
    "BOOKING_JOB_SEQUENCE",
    "JobKind",
    "Job",
    "segment_jobs",
]
