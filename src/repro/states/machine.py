"""The taxi state transition diagram (paper Fig. 3).

The diagram covers both job procedures described in section 2.2:

* street job:   FREE -> POB -> STC -> PAYMENT -> FREE
* booking job:  FREE/STC -> ... -> ONCALL -> ARRIVED -> POB (or NOSHOW -> FREE)

plus the non-operational branch (BREAK / OFFLINE / POWEROFF) and the special
BUSY state.  The transition table below is the *canonical* diagram; real logs
(and our noise injector) contain violations, which the preprocessing module
detects and removes (section 6.1.1 error class 1).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from repro.states.states import STATES_BY_CODE, TaxiState


class TransitionError(ValueError):
    """Raised when a state sequence violates the canonical diagram."""


def _table() -> Dict[TaxiState, FrozenSet[TaxiState]]:
    s = TaxiState
    edges = {
        # FREE taxis take street jobs, accept bookings, or go off duty.
        s.FREE: {s.POB, s.ONCALL, s.BUSY, s.BREAK},
        # A trip ends through STC and/or PAYMENT.  Some drivers do not press
        # the STC button, so POB -> PAYMENT is part of the diagram as well.
        s.POB: {s.STC, s.PAYMENT},
        s.STC: {s.PAYMENT},
        # After payment the taxi is FREE again, or proceeds straight to a
        # booking it accepted while STC (section 2.2, booking job step a).
        s.PAYMENT: {s.FREE, s.ONCALL},
        # Drivers frequently skip pressing the ARRIVED button (section
        # 6.1.1 lists missing intermediate states as routine), so the
        # observable diagram tolerates ONCALL -> POB directly.
        s.ONCALL: {s.ARRIVED, s.POB},
        s.ARRIVED: {s.POB, s.NOSHOW},
        # NOSHOW reverts to FREE within ~10 seconds (booking job step d).
        s.NOSHOW: {s.FREE},
        # BUSY -> POB covers the cherry-picking behaviour of section 7.2.
        s.BUSY: {s.FREE, s.POB},
        s.BREAK: {s.FREE, s.OFFLINE},
        s.OFFLINE: {s.BREAK, s.POWEROFF},
        s.POWEROFF: {s.OFFLINE},
    }
    return {state: frozenset(nexts) for state, nexts in edges.items()}


#: Canonical adjacency of Fig. 3: state -> set of legal successor states.
ALLOWED_TRANSITIONS: Dict[TaxiState, FrozenSet[TaxiState]] = _table()

#: The typical street-job state sequence (section 2.2, steps a-f).
STREET_JOB_SEQUENCE: Tuple[TaxiState, ...] = (
    TaxiState.FREE,
    TaxiState.POB,
    TaxiState.STC,
    TaxiState.PAYMENT,
    TaxiState.FREE,
)

#: The typical booking-job state sequence (section 2.2, steps a-f).
BOOKING_JOB_SEQUENCE: Tuple[TaxiState, ...] = (
    TaxiState.FREE,
    TaxiState.ONCALL,
    TaxiState.ARRIVED,
    TaxiState.POB,
    TaxiState.STC,
    TaxiState.PAYMENT,
    TaxiState.FREE,
)


def is_valid_transition(current: TaxiState, nxt: TaxiState) -> bool:
    """Return True if ``current -> nxt`` is an edge of the diagram.

    A self-transition is always valid: consecutive MDT records frequently
    repeat the same state (periodic GPS updates during a POB trip, crawl
    records while queueing, ...).
    """
    if current is nxt:
        return True
    return nxt in ALLOWED_TRANSITIONS[current]


def _code_matrix() -> Tuple[bytes, ...]:
    rows = []
    for current in STATES_BY_CODE:
        row = bytearray(len(STATES_BY_CODE))
        for code, nxt in enumerate(STATES_BY_CODE):
            row[code] = 1 if is_valid_transition(current, nxt) else 0
        rows.append(bytes(row))
    return tuple(rows)


#: :func:`is_valid_transition` over integer state codes, as a dense
#: ``matrix[current][nxt]`` byte table (self-transitions included).  The
#: columnar cleaning scan checks chain validity through this table so a
#: column cursor never materializes :class:`TaxiState` objects.
TRANSITION_CODE_MATRIX: Tuple[bytes, ...] = _code_matrix()


def is_valid_transition_code(current: int, nxt: int) -> bool:
    """:func:`is_valid_transition` over integer state codes."""
    return TRANSITION_CODE_MATRIX[current][nxt] == 1


def validate_sequence(states: Sequence[TaxiState]) -> None:
    """Assert that a state sequence walks the canonical diagram.

    Raises:
        TransitionError: on the first illegal transition, reporting its
            position and the offending pair of states.
    """
    for i in range(1, len(states)):
        if not is_valid_transition(states[i - 1], states[i]):
            raise TransitionError(
                f"illegal transition {states[i - 1]} -> {states[i]} "
                f"at position {i}"
            )


def transition_violations(
    states: Iterable[TaxiState],
) -> List[Tuple[int, TaxiState, TaxiState]]:
    """Return every illegal transition in a state sequence.

    Each violation is reported as ``(index, previous_state, state)`` where
    ``index`` is the position of the *second* state of the illegal pair.
    Used by the preprocessing layer to quantify error class 1 of
    section 6.1.1 (improper/missing taxi states).
    """
    violations: List[Tuple[int, TaxiState, TaxiState]] = []
    prev: TaxiState | None = None
    for i, state in enumerate(states):
        if prev is not None and not is_valid_transition(prev, state):
            violations.append((i, prev, state))
        prev = state
    return violations


def reachable_states(start: TaxiState) -> FrozenSet[TaxiState]:
    """Return all states reachable from ``start`` along diagram edges.

    The diagram of Fig. 3 is strongly connected on its operational core;
    this helper exists mainly for tests and documentation tooling.
    """
    seen = {start}
    frontier = [start]
    while frontier:
        state = frontier.pop()
        for nxt in ALLOWED_TRANSITIONS[state]:
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return frozenset(seen)
