"""Street-job / booking-job segmentation of a taxi's state stream.

Section 2.2 distinguishes two job categories: *street jobs* (passenger
hails a FREE taxi) and *booking jobs* (passenger books; the taxi goes
ONCALL -> ARRIVED -> POB).  Section 6.2.1 uses the taxi state transition
knowledge "to derive and separate booking jobs and street jobs from the
MDT logs": the daily street-to-total job ratio provides the QCD threshold
tau_ratio.  This module implements that derivation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.states.states import TaxiState


class JobKind(enum.Enum):
    """Category of a completed taxi job."""

    STREET = "street"
    BOOKING = "booking"


@dataclass(frozen=True)
class Job:
    """A single completed passenger trip extracted from the state stream.

    Attributes:
        kind: street or booking job.
        pickup_ts: timestamp of the first POB record of the trip.
        dropoff_ts: timestamp when the taxi left the occupied set again
            (first FREE/ONCALL/non-operational record after the trip).
        pickup_index: index of the first POB record within the input
            sequence.
    """

    kind: JobKind
    pickup_ts: float
    dropoff_ts: float
    pickup_index: int


def segment_jobs(timeline: Sequence[Tuple[float, TaxiState]]) -> List[Job]:
    """Split one taxi's ``(timestamp, state)`` stream into completed jobs.

    A job begins at a transition into POB.  It is a *booking* job when the
    preceding unoccupied stretch contains ONCALL or ARRIVED (the taxi was
    dispatched), otherwise a *street* job.  The job completes when the taxi
    state leaves the occupied set {POB, STC, PAYMENT}; trips still occupied
    at the end of the stream are dropped as incomplete.

    Args:
        timeline: temporally ordered ``(timestamp, state)`` pairs.

    Returns:
        Completed jobs in temporal order.
    """
    jobs: List[Job] = []
    dispatched = False  # saw ONCALL/ARRIVED since the last trip ended
    in_trip = False
    pickup_ts = 0.0
    pickup_index = -1
    kind = JobKind.STREET

    occupied = {TaxiState.POB, TaxiState.STC, TaxiState.PAYMENT}

    for i, (ts, state) in enumerate(timeline):
        if in_trip:
            if state not in occupied:
                jobs.append(Job(kind, pickup_ts, ts, pickup_index))
                in_trip = False
                dispatched = state in (TaxiState.ONCALL, TaxiState.ARRIVED)
            continue
        if state is TaxiState.POB:
            in_trip = True
            pickup_ts = ts
            pickup_index = i
            kind = JobKind.BOOKING if dispatched else JobKind.STREET
            dispatched = False
        elif state in (TaxiState.ONCALL, TaxiState.ARRIVED):
            dispatched = True
        elif state in (TaxiState.FREE, TaxiState.NOSHOW):
            # NOSHOW cancels the dispatch; FREE after NOSHOW starts afresh.
            if state is TaxiState.NOSHOW:
                dispatched = False
        elif state in (TaxiState.BREAK, TaxiState.OFFLINE, TaxiState.POWEROFF):
            dispatched = False
    return jobs


def street_job_ratio(timeline: Sequence[Tuple[float, TaxiState]]) -> float:
    """Ratio of street jobs to all completed jobs in the stream.

    Returns 0.0 when the stream contains no completed job; callers that
    aggregate across taxis should instead aggregate counts (see
    :func:`job_counts`).
    """
    street, total = job_counts(timeline)
    if total == 0:
        return 0.0
    return street / total


def job_counts(
    timeline: Sequence[Tuple[float, TaxiState]],
) -> Tuple[int, int]:
    """Return ``(street_jobs, total_jobs)`` for one taxi's stream."""
    jobs = segment_jobs(timeline)
    street = sum(1 for job in jobs if job.kind is JobKind.STREET)
    return street, len(jobs)
