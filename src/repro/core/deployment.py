"""The deployed system's update policy (paper section 7.1).

The production deployment keeps two detection datasets:

* queue spots for a *week day* come from the most recent 5 week days'
  logs;
* queue spots for a *weekend day* come from the most recent 2 weekend
  days' logs;

and the context module "mainly runs on the short-term historical dataset"
(the current day).  :class:`DeploymentScheduler` implements that policy
over a rolling window of daily log stores.

Note on DBSCAN parameters: section 6.1.2 warns that multi-day datasets
need re-tuned parameters (more days, more pickups per spot).  The
scheduler scales ``min_pts`` linearly with the number of pooled days,
which keeps "50 pickups within 15 m per day" invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from repro.core.engine import EngineConfig, QueueAnalyticEngine, SpotAnalysis
from repro.core.spots import SpotDetectionResult
from repro.core.types import TimeSlotGrid
from repro.trace.log_store import MdtLogStore, merge_stores


def _is_weekend(day_of_week: int) -> bool:
    """Saturday/Sunday check (Monday=0), kept local so :mod:`repro.core`
    stays independent of the simulator package."""
    if not 0 <= day_of_week <= 6:
        raise ValueError("day_of_week must be in 0..6 (Monday=0)")
    return day_of_week >= 5


@dataclass
class DailyLog:
    """One day's logs with its calendar position."""

    day_of_week: int
    store: MdtLogStore

    @property
    def is_weekend(self) -> bool:
        return _is_weekend(self.day_of_week)


class DeploymentScheduler:
    """Rolling-window spot detection + daily context labelling.

    Args:
        engine: a configured :class:`QueueAnalyticEngine`.
        weekday_window: how many recent week days feed weekday detection
            (paper: 5).
        weekend_window: how many recent weekend days feed weekend
            detection (paper: 2).
    """

    def __init__(
        self,
        engine: QueueAnalyticEngine,
        weekday_window: int = 5,
        weekend_window: int = 2,
    ):
        if weekday_window < 1 or weekend_window < 1:
            raise ValueError("windows must hold at least one day")
        self.engine = engine
        self.weekday_window = weekday_window
        self.weekend_window = weekend_window
        self._weekdays: List[DailyLog] = []
        self._weekends: List[DailyLog] = []
        self._detections: Dict[str, Optional[SpotDetectionResult]] = {}

    # -- ingestion -------------------------------------------------------------

    def ingest(self, day: DailyLog) -> None:
        """Add a finished day's logs and refresh the affected detection."""
        if day.is_weekend:
            self._weekends.append(day)
            self._weekends = self._weekends[-self.weekend_window :]
        else:
            self._weekdays.append(day)
            self._weekdays = self._weekdays[-self.weekday_window :]
        self._refresh(day.is_weekend)

    def _refresh(self, weekend: bool) -> None:
        days = self._weekends if weekend else self._weekdays
        if not days:
            return
        pooled = merge_stores(day.store for day in days)
        # Scale min_pts with the pooled-day count (section 6.1.2's note
        # that multi-day datasets need re-tuned DBSCAN parameters).
        base = self.engine.config.detection
        scaled = replace(base, min_pts=base.min_pts * len(days))
        engine_config = EngineConfig(
            detection=scaled,
            thresholds=self.engine.config.thresholds,
            slot_seconds=self.engine.config.slot_seconds,
            assign_radius_m=self.engine.config.assign_radius_m,
            observed_fraction=self.engine.config.observed_fraction,
            clean_inputs=self.engine.config.clean_inputs,
        )
        engine = QueueAnalyticEngine(
            zones=self.engine.zones,
            projection=self.engine.projection,
            config=engine_config,
            city_bbox=self.engine.city_bbox,
            inaccessible=self.engine.inaccessible,
        )
        self._detections["weekend" if weekend else "weekday"] = (
            engine.detect_spots(pooled)
        )

    # -- queries ----------------------------------------------------------------

    def detection_for(self, day_of_week: int) -> Optional[SpotDetectionResult]:
        """The current spot set applicable to a given day of week."""
        key = "weekend" if _is_weekend(day_of_week) else "weekday"
        return self._detections.get(key)

    def label_day(
        self, day: DailyLog, grid: Optional[TimeSlotGrid] = None
    ) -> Dict[str, SpotAnalysis]:
        """Tier 2 for one day, against the applicable spot set.

        Raises:
            RuntimeError: when no detection exists yet for the day kind.
        """
        detection = self.detection_for(day.day_of_week)
        if detection is None:
            raise RuntimeError(
                "no spot detection available for this day kind yet; "
                "ingest at least one matching day first"
            )
        # Events carried in the pooled detection span several days;
        # re-extract from the single day instead.
        single = SpotDetectionResult(
            spots=detection.spots,
            pickup_events=[],
            centroids_lonlat=detection.centroids_lonlat,
            noise_count=detection.noise_count,
            per_zone_counts=detection.per_zone_counts,
        )
        return self.engine.disambiguate(day.store, single, grid)

    @property
    def window_sizes(self) -> Dict[str, int]:
        """Current number of days held per day kind."""
        return {"weekday": len(self._weekdays), "weekend": len(self._weekends)}
