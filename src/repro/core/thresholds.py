"""Threshold selection for the QCD algorithm (section 6.2.1).

QCD needs six thresholds per queue spot; the paper derives them from the
spot's own data:

* ``eta_wait`` — mean of the spot's top 20% *shortest* street wait times
  ("which can commonly depict taxi wait ... when the passenger queue
  exists");
* ``eta_dep``  — mean of the top 20% shortest departure intervals;
* ``tau_arr``  = slot_length / eta_wait;
* ``tau_dep``  = slot_length / eta_dep;
* ``eta_dur``  = 90% of the slot length (1620 s for 30-minute slots);
* ``tau_ratio`` — the daily ratio of street jobs to all jobs in the
  spot's zone and day of week (e.g. 0.84 in the Central zone on Sunday),
  derived from the logs via taxi-state job segmentation.

Multipliers (default 1.0) allow the sensitivity ablation of DESIGN.md
without touching the faithful defaults.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List

from repro.core.wte import WaitEvent
from repro.states.jobs import job_counts
from repro.trace.log_store import MdtLogStore


@dataclass(frozen=True)
class QcdThresholds:
    """The six thresholds consumed by the QCD algorithm."""

    eta_wait: float
    eta_dep: float
    tau_arr: float
    tau_dep: float
    eta_dur: float
    tau_ratio: float


@dataclass(frozen=True)
class ThresholdPolicy:
    """How thresholds are derived (section 6.2.1, plus one robustness knob).

    ``granularity`` selects what the shortest-20% statistic runs over:

    * ``"slot"`` (default) — per-slot *mean* waits and *mean* departure
      intervals.  This is a documented deviation from the paper's literal
      wording (see DESIGN.md): with event-level gaps, Poisson clumping
      drives the shortest quintile towards zero and makes the C1/C2
      branches unreachable; slot means measure the cadence the QCD
      comparisons actually use.
    * ``"event"`` — the paper's literal raw-value statistic (kept for the
      threshold-sensitivity ablation bench).
    """

    shortest_fraction: float = 0.2
    """Quantile of shortest waits / departure intervals averaged."""

    duration_fraction: float = 0.9
    """eta_dur as a fraction of the slot length."""

    eta_wait_multiplier: float = 3.0
    """Scales eta_wait (and hence 1/tau_arr).  The paper's literal value
    is 1.0; section 6.2.1 notes thresholds "need to be properly set" per
    deployment, and the calibration pass against simulator ground truth
    (DESIGN.md) selects 3.0: it places eta_wait between the short
    passenger-queue waits and the long no-queue waits, which is what the
    C2/C4 comparison needs."""

    eta_dep_multiplier: float = 2.2
    """Scales eta_dep (and hence 1/tau_dep); calibrated like
    ``eta_wait_multiplier`` (paper-literal: 1.0).  Places eta_dep between
    the fast passenger-queue departure cadence and the slow taxi-queue
    cadence, separating C1 from C3."""

    granularity: str = "slot"
    """``"slot"`` or ``"event"`` (see class docstring)."""

    def __post_init__(self) -> None:
        if not 0.0 < self.shortest_fraction <= 1.0:
            raise ValueError("shortest_fraction must be in (0, 1]")
        if not 0.0 < self.duration_fraction <= 1.0:
            raise ValueError("duration_fraction must be in (0, 1]")
        if self.granularity not in ("slot", "event"):
            raise ValueError("granularity must be 'slot' or 'event'")


def _mean_of_shortest(values: List[float], fraction: float) -> float:
    """Mean of the shortest ``fraction`` of the values.

    Raises:
        ValueError: on an empty input.
    """
    if not values:
        raise ValueError("cannot derive a threshold from zero values")
    ordered = sorted(values)
    k = max(1, math.ceil(len(ordered) * fraction))
    head = ordered[:k]
    return sum(head) / len(head)


def derive_thresholds_from_features(
    features: Iterable,
    slot_seconds: float,
    street_job_ratio: float,
    policy: ThresholdPolicy = ThresholdPolicy(),
) -> QcdThresholds:
    """Derive thresholds from per-slot aggregate features (default policy).

    Args:
        features: the spot's :class:`~repro.core.types.SlotFeatures`.
        slot_seconds: time-slot length.
        street_job_ratio: zone/day street-to-total job ratio (tau_ratio).
        policy: derivation policy.

    Raises:
        ValueError: when no slot carries a wait or departure cadence.
    """
    slot_waits: List[float] = []
    slot_deps: List[float] = []
    for f in features:
        if f.mean_wait_s is not None:
            slot_waits.append(f.mean_wait_s)
        # Slots with fewer than two departures carry the slot length as a
        # placeholder interval; exclude them from the cadence statistic.
        if f.n_departures > 0 and f.mean_departure_interval_s < slot_seconds:
            slot_deps.append(f.mean_departure_interval_s)
    if not slot_waits:
        raise ValueError("no slot has a street wait to derive eta_wait")
    if not slot_deps:
        raise ValueError("no slot has a departure cadence to derive eta_dep")
    eta_wait = max(
        1.0,
        _mean_of_shortest(slot_waits, policy.shortest_fraction)
        * policy.eta_wait_multiplier,
    )
    eta_dep = max(
        1.0,
        _mean_of_shortest(slot_deps, policy.shortest_fraction)
        * policy.eta_dep_multiplier,
    )
    return QcdThresholds(
        eta_wait=eta_wait,
        eta_dep=eta_dep,
        tau_arr=slot_seconds / eta_wait,
        tau_dep=slot_seconds / eta_dep,
        eta_dur=slot_seconds * policy.duration_fraction,
        tau_ratio=street_job_ratio,
    )


def derive_thresholds(
    events: Iterable[WaitEvent],
    slot_seconds: float,
    street_job_ratio: float,
    policy: ThresholdPolicy = ThresholdPolicy(),
) -> QcdThresholds:
    """Derive a spot's QCD thresholds from raw wait events (event-level).

    This is the paper's literal statistic; the engine defaults to the
    slot-level variant (:func:`derive_thresholds_from_features`) per the
    ``ThresholdPolicy.granularity`` discussion.

    Args:
        events: the spot's wait events over the analysis window.
        slot_seconds: time-slot length (1800 s in the paper).
        street_job_ratio: the zone/day street-to-total job ratio for
            ``tau_ratio`` (see :func:`zone_street_job_ratio`).
        policy: derivation policy (paper defaults).

    Returns:
        The six thresholds.

    Raises:
        ValueError: when the spot has no street waits or fewer than two
            departures (no cadence to derive thresholds from).
    """
    events = list(events)
    street_waits = [e.wait_s for e in events if e.is_street]
    eta_wait = (
        _mean_of_shortest(street_waits, policy.shortest_fraction)
        * policy.eta_wait_multiplier
    )
    departures = sorted(e.end_ts for e in events)
    if len(departures) < 2:
        raise ValueError("need at least two departures to derive eta_dep")
    gaps = [b - a for a, b in zip(departures, departures[1:]) if b > a]
    if not gaps:
        raise ValueError("all departures are simultaneous")
    eta_dep = (
        _mean_of_shortest(gaps, policy.shortest_fraction)
        * policy.eta_dep_multiplier
    )
    eta_wait = max(eta_wait, 1.0)
    eta_dep = max(eta_dep, 1.0)
    return QcdThresholds(
        eta_wait=eta_wait,
        eta_dep=eta_dep,
        tau_arr=slot_seconds / eta_wait,
        tau_dep=slot_seconds / eta_dep,
        eta_dur=slot_seconds * policy.duration_fraction,
        tau_ratio=street_job_ratio,
    )


def zone_street_job_ratio(store: MdtLogStore) -> float:
    """Street-to-total job ratio over a (zone-filtered) log store.

    Section 6.2.1 computes "the daily ratio of the total street job number
    to the total job number (street jobs + booking jobs) in different
    zones and days of week" and uses it as ``tau_ratio``.  Returns the
    paper's Central-zone Sunday value (0.84) as a neutral default when the
    store contains no completed jobs.
    """
    street_total = 0
    all_total = 0
    for trajectory in store.iter_trajectories():
        street, total = job_counts(trajectory.timeline())
        street_total += street
        all_total += total
    if all_total == 0:
        return 0.84
    return street_total / all_total
