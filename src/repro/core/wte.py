"""Algorithm 2 — the Wait Time Extraction (WTE) algorithm.

For every pickup-event sub-trajectory of a queue spot, WTE derives the taxi
wait interval:

* the wait *start* is the timestamp of the first FREE, ONCALL or ARRIVED
  record;
* if a PAYMENT record appears afterwards, the start is reset (the taxi was
  still finishing the previous job; the wait restarts at the subsequent
  FREE record);
* the wait *end* is the timestamp of the first POB record after a start.

Sub-trajectories without both endpoints produce no wait event (e.g. the
BUSY cherry-picking pickups of section 7.2, or NOSHOW bookings).

Beyond the paper's wait-time set Y(r), each event also carries the state
that opened the wait, because section 5.2 needs to distinguish *street*
waits (opened by FREE — used for the mean wait and arrival count) from
*booking* waits (opened by ONCALL/ARRIVED — used only for departures).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.states.states import TaxiState
from repro.trace.trajectory import SubTrajectory

_START_STATES = (TaxiState.FREE, TaxiState.ONCALL, TaxiState.ARRIVED)


@dataclass(frozen=True)
class WaitEvent:
    """One taxi's wait at a queue spot, extracted from a pickup event.

    Attributes:
        start_ts: wait start (first FREE/ONCALL/ARRIVED, PAYMENT-reset).
        end_ts: wait end (first POB after the start).
        start_state: the state that opened the wait; FREE marks a street
            job, ONCALL/ARRIVED a booking job.
        taxi_id: the waiting taxi.
    """

    start_ts: float
    end_ts: float
    start_state: TaxiState
    taxi_id: str

    @property
    def wait_s(self) -> float:
        """The wait duration t_end - t_start in seconds."""
        return self.end_ts - self.start_ts

    @property
    def is_street(self) -> bool:
        """True when the wait belongs to a street job (opened by FREE)."""
        return self.start_state is TaxiState.FREE


def extract_wait_event(sub: SubTrajectory) -> Optional[WaitEvent]:
    """Run the WTE inner loop on one sub-trajectory.

    Returns:
        The wait event, or None when no complete wait interval exists.
    """
    t_start: Optional[float] = None
    t_end: Optional[float] = None
    start_state: Optional[TaxiState] = None
    for record in sub:
        if record.state in _START_STATES and t_start is None:
            t_start = record.ts
            start_state = record.state
        elif record.state is TaxiState.PAYMENT and t_start is not None:
            t_start = None
            t_end = None
            start_state = None
        elif (
            record.state is TaxiState.POB
            and t_start is not None
            and t_end is None
        ):
            t_end = record.ts
    if t_start is None or t_end is None:
        return None
    return WaitEvent(
        start_ts=t_start,
        end_ts=t_end,
        start_state=start_state,
        taxi_id=sub.taxi_id,
    )


def extract_wait_times(subs: Iterable[SubTrajectory]) -> List[WaitEvent]:
    """Run WTE over a spot's sub-trajectory set W(r).

    Returns:
        The wait-event set (the paper's Y(r), enriched with endpoints and
        job kind), ordered by wait start time.
    """
    events = [extract_wait_event(sub) for sub in subs]
    kept = [event for event in events if event is not None]
    kept.sort(key=lambda event: event.start_ts)
    return kept
