"""The paper's primary contribution: the two-tier queue analytics engine.

* :mod:`repro.core.pea` — Algorithm 1 (pickup extraction);
* :mod:`repro.core.spots` — tier 1, queue spot detection (section 4);
* :mod:`repro.core.wte` — Algorithm 2 (wait time extraction);
* :mod:`repro.core.features` — the per-slot 5-tuple (section 5.2);
* :mod:`repro.core.thresholds` — threshold selection (section 6.2.1);
* :mod:`repro.core.qcd` — Algorithm 3 (queue context disambiguation);
* :mod:`repro.core.engine` — the assembled two-tier engine (Fig. 4);
* :mod:`repro.core.reports` — transition reports and proportions.
"""

from repro.core.types import (
    QueueType,
    QueueSpot,
    SlotFeatures,
    SlotLabel,
    TimeSlotGrid,
)
from repro.core.pea import (
    DEFAULT_SPEED_THRESHOLD_KMH,
    extract_pickup_events,
    extract_pickup_events_with_stats,
    extract_all_pickup_events,
    PeaStats,
)
from repro.core.wte import WaitEvent, extract_wait_event, extract_wait_times
from repro.core.features import AmplificationPolicy, compute_slot_features
from repro.core.thresholds import (
    QcdThresholds,
    ThresholdPolicy,
    derive_thresholds,
    derive_thresholds_from_features,
    zone_street_job_ratio,
)
from repro.core.qcd import disambiguate, label_slot, label_proportions
from repro.core.qcd_extended import (
    ExtendedPolicy,
    ROUTINE_EXTENDED,
    disambiguate_extended,
    label_slot_extended,
)
from repro.core.spots import (
    SpotDetectionParams,
    SpotDetectionResult,
    detect_queue_spots,
    detect_from_centroids,
    pickup_centroids,
    assign_events_to_spots,
)
from repro.core.engine import EngineConfig, QueueAnalyticEngine, SpotAnalysis
from repro.core.deployment import DailyLog, DeploymentScheduler
from repro.core.reports import (
    LabelSpan,
    merge_labels,
    transition_report,
    format_transition_report,
    citywide_proportions,
    format_proportions,
)

__all__ = [
    "QueueType",
    "QueueSpot",
    "SlotFeatures",
    "SlotLabel",
    "TimeSlotGrid",
    "DEFAULT_SPEED_THRESHOLD_KMH",
    "extract_pickup_events",
    "extract_pickup_events_with_stats",
    "extract_all_pickup_events",
    "PeaStats",
    "WaitEvent",
    "extract_wait_event",
    "extract_wait_times",
    "AmplificationPolicy",
    "compute_slot_features",
    "QcdThresholds",
    "ThresholdPolicy",
    "derive_thresholds",
    "derive_thresholds_from_features",
    "zone_street_job_ratio",
    "disambiguate",
    "label_slot",
    "label_proportions",
    "ExtendedPolicy",
    "ROUTINE_EXTENDED",
    "disambiguate_extended",
    "label_slot_extended",
    "SpotDetectionParams",
    "SpotDetectionResult",
    "detect_queue_spots",
    "detect_from_centroids",
    "pickup_centroids",
    "assign_events_to_spots",
    "EngineConfig",
    "QueueAnalyticEngine",
    "SpotAnalysis",
    "DailyLog",
    "DeploymentScheduler",
]
