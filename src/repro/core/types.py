"""Shared value types of the queue analytics engine.

Defines the four queue contexts of paper Table 3, the detected queue spot,
the per-slot 5-tuple feature vector of section 5.2, and the time-slot grid
(section 5.2 divides the day into 48 fixed 30-minute slots).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple


class QueueType(enum.Enum):
    """The four queue contexts of paper Table 3, plus Unidentified."""

    C1 = "C1"
    """Taxi queue and passenger queue concurrently (supply and demand high)."""

    C2 = "C2"
    """Passenger queue only (demand exceeds supply)."""

    C3 = "C3"
    """Taxi queue only (supply exceeds demand)."""

    C4 = "C4"
    """Neither taxi queue nor passenger queue."""

    UNIDENTIFIED = "Unidentified"
    """Features too insignificant for the QCD algorithm to decide."""

    @property
    def has_taxi_queue(self) -> bool:
        """True for contexts with a standing taxi queue (C1, C3)."""
        return self in (QueueType.C1, QueueType.C3)

    @property
    def has_passenger_queue(self) -> bool:
        """True for contexts with a standing passenger queue (C1, C2)."""
        return self in (QueueType.C1, QueueType.C2)

    @classmethod
    def from_flags(cls, taxi_queue: bool, passenger_queue: bool) -> "QueueType":
        """Map the two Table 3 booleans to a context label."""
        if taxi_queue and passenger_queue:
            return cls.C1
        if passenger_queue:
            return cls.C2
        if taxi_queue:
            return cls.C3
        return cls.C4


@dataclass(frozen=True)
class QueueSpot:
    """A detected queue spot: a DBSCAN cluster centroid (section 4.3).

    Attributes:
        spot_id: stable identifier within one detection run.
        lon, lat: centroid coordinates in degrees.
        zone: the Fig. 5 zone the centroid falls in.
        pickup_count: number of pickup-event centroids in the cluster.
        radius_m: RMS spread of the cluster members, metres.
    """

    spot_id: str
    lon: float
    lat: float
    zone: str
    pickup_count: int
    radius_m: float


@dataclass(frozen=True)
class SlotFeatures:
    """The 5-tuple phi(r)^j of section 5.2 for one spot and time slot.

    Attributes:
        slot: index j of the time slot within the grid.
        mean_wait_s: t_wait mean over *street-job* waits started in the
            slot, seconds (NaN-free: None when no street wait started).
        n_arrivals: N_arr — FREE-taxi arrivals (street wait starts),
            amplified by the coverage factor.
        queue_length: L = mean_wait * arrival_rate (Little's law),
            amplified.
        mean_departure_interval_s: t_dep mean over consecutive departure
            intervals within the slot (slot length when fewer than two
            departures), scaled down by the coverage factor.
        n_departures: N_dep — all departures (street + booking) in the
            slot, amplified.
    """

    slot: int
    mean_wait_s: Optional[float]
    n_arrivals: float
    queue_length: float
    mean_departure_interval_s: float
    n_departures: float


@dataclass(frozen=True)
class SlotLabel:
    """A QCD-labelled time slot with the routine that decided it."""

    slot: int
    label: QueueType
    routine: int
    """1 or 2 for QCD Routine 1/2; 0 when unidentified."""


@dataclass(frozen=True)
class TimeSlotGrid:
    """Fixed-size partition of a time domain (section 5.2).

    The paper uses 48 half-hour slots over a day; the grid generalizes to
    any start/end and slot length.
    """

    start_ts: float
    end_ts: float
    slot_seconds: float = 1800.0

    def __post_init__(self) -> None:
        if self.end_ts <= self.start_ts:
            raise ValueError("grid end must be after start")
        if self.slot_seconds <= 0:
            raise ValueError("slot length must be positive")

    @property
    def n_slots(self) -> int:
        """Number of slots L covering the domain (last may be partial)."""
        span = self.end_ts - self.start_ts
        return int(-(-span // self.slot_seconds))

    def slot_of(self, ts: float) -> Optional[int]:
        """Slot index containing ``ts``, or None outside the domain."""
        if not self.start_ts <= ts < self.end_ts:
            return None
        return int((ts - self.start_ts) // self.slot_seconds)

    def bounds(self, slot: int) -> Tuple[float, float]:
        """``(start, end)`` timestamps of slot ``slot``.

        Raises:
            IndexError: for an out-of-range slot index.
        """
        if not 0 <= slot < self.n_slots:
            raise IndexError(f"slot {slot} out of range 0..{self.n_slots - 1}")
        lo = self.start_ts + slot * self.slot_seconds
        return lo, min(lo + self.slot_seconds, self.end_ts)

    def label_of(self, slot: int) -> str:
        """Human-readable ``HH:MM-HH:MM`` label of a slot within its day."""
        lo, hi = self.bounds(slot)
        def fmt(ts: float) -> str:
            seconds = int(ts - self.start_ts + (self.start_ts % 86400.0)) % 86400
            return f"{seconds // 3600:02d}:{(seconds % 3600) // 60:02d}"
        return f"{fmt(lo)}-{fmt(hi)}"

    def all_slots(self) -> List[int]:
        """All slot indices, in order."""
        return list(range(self.n_slots))

    @classmethod
    def for_day(cls, day_start_ts: float, slot_seconds: float = 1800.0) -> "TimeSlotGrid":
        """The paper's daily grid: 48 half-hour slots from midnight."""
        return cls(day_start_ts, day_start_ts + 86400.0, slot_seconds)
