"""Per-time-slot pickup-event features — the 5-tuple of section 5.2.

The day is divided into L fixed time slots (48 x 30 min in the paper).
The wait events Y(r) of a spot are partitioned by *wait start time* and
each slot j yields the 5-tuple

    phi(r)^j = < t_wait_mean, N_arr, L_mean, t_dep_mean, N_dep >

where

* ``t_wait_mean`` averages only *street-job* waits (booking waits depend
  on the booked passenger's arrival, section 5.2);
* ``N_arr`` counts FREE-taxi arrivals (street wait starts);
* ``L_mean = t_wait_mean * lambda_mean`` is the FREE-taxi queue length by
  Little's law, with ``lambda_mean = N_arr / slot_length``;
* ``t_dep_mean`` averages consecutive departure intervals (street and
  booking departures both); with fewer than two departures in the slot
  it is taken as the slot length (no meaningful departure cadence);
* ``N_dep`` counts all departures in the slot.

Because the analyst only observes a fraction of the fleet (60% in the
paper), counts are multiplied by the amplification factor (1.667 in the
paper) and the departure interval by its inverse (0.6) — exactly the
correction of section 6.2.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.core.types import SlotFeatures, TimeSlotGrid
from repro.core.wte import WaitEvent
from repro.queueing.littles_law import little_queue_length


@dataclass(frozen=True)
class AmplificationPolicy:
    """Scales observed features up to full-fleet estimates (section 6.2.1).

    ``factor`` is 1/coverage; counts and queue lengths are multiplied by
    it, mean departure intervals divided by it.  ``factor=1`` disables the
    correction (full-fleet data).
    """

    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ValueError("amplification factor must be >= 1")

    @classmethod
    def for_coverage(cls, observed_fraction: float) -> "AmplificationPolicy":
        """Policy for a given observed fleet fraction (0 < f <= 1)."""
        if not 0.0 < observed_fraction <= 1.0:
            raise ValueError("observed fraction must be in (0, 1]")
        return cls(factor=1.0 / observed_fraction)


def compute_slot_features(
    events: Iterable[WaitEvent],
    grid: TimeSlotGrid,
    amplification: AmplificationPolicy = AmplificationPolicy(),
) -> List[SlotFeatures]:
    """Compute the 5-tuple feature set Omega(r) for one spot.

    Args:
        events: the spot's wait events (any order).
        grid: the time-slot grid (start/end/slot length).
        amplification: observed-fraction correction.

    Returns:
        One :class:`~repro.core.types.SlotFeatures` per slot, in slot
        order; slots without any wait event have ``mean_wait_s=None``,
        zero counts, and the slot length as departure interval.
    """
    per_slot: Dict[int, List[WaitEvent]] = {}
    for event in events:
        slot = grid.slot_of(event.start_ts)
        if slot is not None:
            per_slot.setdefault(slot, []).append(event)

    factor = amplification.factor
    features: List[SlotFeatures] = []
    for slot in grid.all_slots():
        lo, hi = grid.bounds(slot)
        slot_len = hi - lo
        bucket = sorted(per_slot.get(slot, []), key=lambda e: e.start_ts)

        street_waits = [e.wait_s for e in bucket if e.is_street]
        mean_wait: Optional[float] = (
            sum(street_waits) / len(street_waits) if street_waits else None
        )
        n_arr = len(street_waits) * factor
        if mean_wait is None or slot_len <= 0:
            queue_len = 0.0
        else:
            queue_len = little_queue_length(n_arr / slot_len, mean_wait)

        departures = sorted(e.end_ts for e in bucket)
        n_dep = len(departures) * factor
        if len(departures) >= 2:
            gaps = [
                b - a for a, b in zip(departures, departures[1:])
            ]
            mean_dep = (sum(gaps) / len(gaps)) / factor
        else:
            mean_dep = slot_len
        features.append(
            SlotFeatures(
                slot=slot,
                mean_wait_s=mean_wait,
                n_arrivals=n_arr,
                queue_length=queue_len,
                mean_departure_interval_s=mean_dep,
                n_departures=n_dep,
            )
        )
    return features


def feature_matrix(features: List[SlotFeatures]) -> List[List[float]]:
    """The features as rows ``[slot, wait, N_arr, L, t_dep, N_dep]``.

    ``None`` waits become ``float('nan')``; handy for NumPy consumers and
    report tables.
    """
    rows: List[List[float]] = []
    for f in features:
        rows.append(
            [
                float(f.slot),
                float("nan") if f.mean_wait_s is None else f.mean_wait_s,
                f.n_arrivals,
                f.queue_length,
                f.mean_departure_interval_s,
                f.n_departures,
            ]
        )
    return rows
