"""Algorithm 3 — the Queue Context Disambiguation (QCD) algorithm.

QCD labels each time slot of a queue spot with one of the four contexts of
Table 3 using the slot's 5-tuple features and the six thresholds.

Routine 1 (features significant on their own):

* no taxi queue (L < 1):
    - many FREE-taxi arrivals AND short mean wait        -> C2
    - few arrivals AND long mean wait                    -> C4
* taxi queue (L >= 1):
    - many departures AND short departure interval       -> C1
    - few departures AND long departure interval         -> C3

Routine 2 (slots Routine 1 left unlabeled): when departures span most of
the slot (N_dep * t_dep > eta_dur) and the ratio of FREE-taxi arrivals to
total departures is small (N_arr/N_dep < tau_ratio — i.e. a large share of
ONCALL taxis departs, signalling passengers who could not hail a FREE
taxi), a passenger queue is inferred: label C1 if a taxi queue exists,
else C2.

Slots neither routine can decide stay ``UNIDENTIFIED`` (about 16% in the
paper's evaluation).
"""

from __future__ import annotations

from typing import Iterable, List

from repro.core.thresholds import QcdThresholds
from repro.core.types import QueueType, SlotFeatures, SlotLabel


def label_slot(
    features: SlotFeatures, thresholds: QcdThresholds
) -> SlotLabel:
    """Label a single time slot (both routines)."""
    label = _routine1(features, thresholds)
    if label is not None:
        return SlotLabel(slot=features.slot, label=label, routine=1)
    label = _routine2(features, thresholds)
    if label is not None:
        return SlotLabel(slot=features.slot, label=label, routine=2)
    return SlotLabel(slot=features.slot, label=QueueType.UNIDENTIFIED, routine=0)


def _routine1(f: SlotFeatures, th: QcdThresholds) -> QueueType | None:
    if f.queue_length < 1.0:
        if f.mean_wait_s is None:
            return None
        if f.n_arrivals >= th.tau_arr and f.mean_wait_s < th.eta_wait:
            return QueueType.C2
        if f.n_arrivals < th.tau_arr and f.mean_wait_s >= th.eta_wait:
            return QueueType.C4
        return None
    if f.n_departures >= th.tau_dep and f.mean_departure_interval_s < th.eta_dep:
        return QueueType.C1
    if f.n_departures < th.tau_dep and f.mean_departure_interval_s >= th.eta_dep:
        return QueueType.C3
    return None


def _routine2(f: SlotFeatures, th: QcdThresholds) -> QueueType | None:
    if f.n_departures <= 0:
        return None
    sustained = f.n_departures * f.mean_departure_interval_s > th.eta_dur
    oncall_heavy = (f.n_arrivals / f.n_departures) < th.tau_ratio
    if not (sustained and oncall_heavy):
        return None
    return QueueType.C1 if f.queue_length >= 1.0 else QueueType.C2


def disambiguate(
    features: Iterable[SlotFeatures], thresholds: QcdThresholds
) -> List[SlotLabel]:
    """Label every slot of a spot's feature set Omega(r)."""
    return [label_slot(f, thresholds) for f in features]


def label_proportions(labels: Iterable[SlotLabel]) -> dict:
    """Fraction of slots per queue type (the paper's Table 7 rows)."""
    counts = {qt: 0 for qt in QueueType}
    total = 0
    for slot_label in labels:
        counts[slot_label.label] += 1
        total += 1
    if total == 0:
        return {qt: 0.0 for qt in QueueType}
    return {qt: counts[qt] / total for qt in QueueType}
