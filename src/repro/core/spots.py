"""Tier 1 — queue spot detection (paper section 4).

Pipeline: PEA over every taxi's trajectory -> one central GPS location per
pickup event -> per-zone DBSCAN over the location set -> cluster centroids
are the detected queue spots.

The per-zone split mirrors section 6.1.2: the paper divides Singapore into
the four rectangular zones of Fig. 5 and clusters each zone separately,
both for locality of parameters and to cut DBSCAN's cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.centroids import cluster_centroids
from repro.cluster.dbscan import dbscan
from repro.cluster.neighbors import GridNeighbors, NeighborsFactory
from repro.core.pea import DEFAULT_SPEED_THRESHOLD_KMH, extract_all_pickup_events
from repro.core.types import QueueSpot
from repro.geo.point import LocalProjection
from repro.geo.zones import ZonePartition
from repro.trace.log_store import MdtLogStore
from repro.trace.trajectory import SubTrajectory


@dataclass(frozen=True)
class SpotDetectionParams:
    """Parameters of the detection tier (paper defaults)."""

    eps_m: float = 15.0
    """DBSCAN eps_d in metres (Fig. 6 sweeps 5..20; the paper picks 15)."""

    min_pts: int = 50
    """DBSCAN p_d (Fig. 6 sweeps 25..150; the paper picks 50 per day)."""

    speed_threshold_kmh: float = DEFAULT_SPEED_THRESHOLD_KMH
    """PEA's eta_sp (10 km/h in section 6.1.2)."""

    apply_state_filters: bool = True
    """PEA's three state-transition constraints (ablation knob)."""


@dataclass
class SpotDetectionResult:
    """Everything the detection tier produces."""

    spots: List[QueueSpot]
    pickup_events: List[SubTrajectory]
    centroids_lonlat: np.ndarray
    """``(n, 2)`` lon/lat of every pickup event centroid."""

    noise_count: int
    """Pickup events DBSCAN classified as noise (scattered street hails)."""

    per_zone_counts: Dict[str, int] = field(default_factory=dict)
    """Detected spots per zone (paper Fig. 8)."""


def pickup_centroids(events: Sequence[SubTrajectory]) -> np.ndarray:
    """The central GPS location of every pickup event, ``(n, 2)`` lon/lat."""
    if not events:
        return np.empty((0, 2), dtype=np.float64)
    return np.asarray([sub.centroid() for sub in events], dtype=np.float64)


def detect_queue_spots(
    store: MdtLogStore,
    zones: ZonePartition,
    projection: LocalProjection,
    params: SpotDetectionParams = SpotDetectionParams(),
    neighbors_factory: NeighborsFactory = GridNeighbors,
    tracer=None,
) -> SpotDetectionResult:
    """Detect queue spots from a log store (the full tier-1 pipeline).

    Args:
        store: cleaned MDT logs (one or more days).
        zones: the Fig. 5 zone partition used to split the clustering.
        projection: lon/lat -> metre projection for the city.
        params: PEA/DBSCAN parameters.
        neighbors_factory: DBSCAN neighbour backend (grid index default).
        tracer: optional :class:`repro.obs.Tracer` recording the PEA
            and clustering stage spans (no-op by default).

    Returns:
        A :class:`SpotDetectionResult`; spots are ordered by descending
        pickup count and get ids ``QS001, QS002, ...``.
    """
    if tracer is None:
        from repro.obs.tracer import NULL_TRACER as tracer
    with tracer.span("stage.pea") as span:
        events = extract_all_pickup_events(
            store,
            speed_threshold_kmh=params.speed_threshold_kmh,
            apply_state_filters=params.apply_state_filters,
        )
        span.set(records=len(store), events=len(events))
    lonlat = pickup_centroids(events)
    return detect_from_centroids(
        lonlat,
        zones,
        projection,
        params,
        neighbors_factory=neighbors_factory,
        events=events,
        tracer=tracer,
    )


def cluster_zone(
    zone_lonlat: np.ndarray,
    projection: LocalProjection,
    params: SpotDetectionParams = SpotDetectionParams(),
    neighbors_factory: NeighborsFactory = GridNeighbors,
) -> Tuple[List[Tuple[float, float, int, float]], int]:
    """DBSCAN one zone's pickup centroids.

    The per-zone unit of work, shared by the serial pipeline and the
    multiprocessing layer (``repro.parallel``) so both produce identical
    clusters for identical inputs.

    Args:
        zone_lonlat: ``(n, 2)`` lon/lat of the zone's pickup centroids.

    Returns:
        ``(clusters, noise)`` where each cluster is a
        ``(lon, lat, size, radius_m)`` tuple in DBSCAN discovery order
        and ``noise`` counts unclustered centroids.
    """
    xy = projection.to_xy_array(zone_lonlat[:, 0], zone_lonlat[:, 1])
    result = dbscan(
        xy, eps=params.eps_m, min_pts=params.min_pts,
        neighbors_factory=neighbors_factory,
    )
    clusters: List[Tuple[float, float, int, float]] = []
    for summary in cluster_centroids(xy, result):
        lon, lat = projection.to_lonlat(summary.x, summary.y)
        clusters.append((lon, lat, summary.size, summary.radius_m))
    return clusters, int(len(result.noise_indices()))


def assemble_spots(
    raw_spots: List[Tuple[str, float, float, int, float]],
) -> List[QueueSpot]:
    """Order raw ``(zone, lon, lat, size, radius)`` clusters into spots.

    Spots are sorted by descending pickup count (stable, so zone order
    breaks ties) and assigned ids ``QS001, QS002, ...`` — the
    deterministic merge both the serial and the parallel pipeline use.
    """
    ordered = sorted(raw_spots, key=lambda item: -item[3])
    return [
        QueueSpot(
            spot_id=f"QS{i + 1:03d}",
            lon=lon,
            lat=lat,
            zone=zone_name,
            pickup_count=size,
            radius_m=radius,
        )
        for i, (zone_name, lon, lat, size, radius) in enumerate(ordered)
    ]


def detect_from_centroids(
    lonlat: np.ndarray,
    zones: ZonePartition,
    projection: LocalProjection,
    params: SpotDetectionParams = SpotDetectionParams(),
    neighbors_factory: NeighborsFactory = GridNeighbors,
    events: Optional[List[SubTrajectory]] = None,
    tracer=None,
) -> SpotDetectionResult:
    """Cluster pre-computed pickup centroids into queue spots.

    Split out of :func:`detect_queue_spots` so parameter sweeps (the
    Fig. 6 bench) can reuse one PEA pass across many DBSCAN settings.
    """
    if tracer is None:
        from repro.obs.tracer import NULL_TRACER as tracer
    lonlat = np.asarray(lonlat, dtype=np.float64).reshape(-1, 2)
    raw_spots: List[Tuple[str, float, float, int, float]] = []
    noise = 0
    per_zone: Dict[str, int] = {zone.name: 0 for zone in zones}

    zone_names = np.asarray(
        [zones.classify_or_nearest(lon, lat) for lon, lat in lonlat]
    )
    with tracer.span("stage.cluster", points=int(len(lonlat))) as stage:
        for zone in zones:
            mask = zone_names == zone.name
            zone_lonlat = lonlat[mask]
            if len(zone_lonlat) == 0:
                continue
            with tracer.span(f"cluster.zone:{zone.name}") as span:
                clusters, zone_noise = cluster_zone(
                    zone_lonlat, projection, params, neighbors_factory
                )
                span.set(
                    points=int(len(zone_lonlat)),
                    clusters=len(clusters),
                    noise=zone_noise,
                )
            noise += zone_noise
            for lon, lat, size, radius in clusters:
                raw_spots.append((zone.name, lon, lat, size, radius))
                per_zone[zone.name] += 1
        stage.set(spots=len(raw_spots), noise=noise)

    return SpotDetectionResult(
        spots=assemble_spots(raw_spots),
        pickup_events=list(events) if events is not None else [],
        centroids_lonlat=lonlat,
        noise_count=noise,
        per_zone_counts=per_zone,
    )


def assign_events_to_spots(
    events: Sequence[SubTrajectory],
    spots: Sequence[QueueSpot],
    projection: LocalProjection,
    assign_radius_m: float = 30.0,
) -> Dict[str, List[SubTrajectory]]:
    """Build W(r): map pickup events to the nearest detected spot.

    An event belongs to the closest spot whose centroid lies within
    ``assign_radius_m`` of the event's central location (twice the
    detection eps by default, absorbing GPS jitter); unmatched events are
    dropped (scattered street pickups).

    Returns:
        ``spot_id -> list of sub-trajectories``; every spot id appears,
        possibly with an empty list.
    """
    buckets: Dict[str, List[SubTrajectory]] = {s.spot_id: [] for s in spots}
    if not spots or not events:
        return buckets
    spot_xy = projection.to_xy_array(
        np.asarray([s.lon for s in spots]), np.asarray([s.lat for s in spots])
    )
    lonlat = pickup_centroids(events)
    event_xy = projection.to_xy_array(lonlat[:, 0], lonlat[:, 1])
    # Brute-force over spots is fine: |spots| is O(100).
    for i, event in enumerate(events):
        diff = spot_xy - event_xy[i]
        d2 = np.einsum("ij,ij->i", diff, diff)
        j = int(np.argmin(d2))
        if d2[j] <= assign_radius_m * assign_radius_m:
            buckets[spots[j].spot_id].append(event)
    return buckets
