"""The two-tier Queue Analytic Engine (paper section 3, Fig. 4).

Ties the pieces together the way the deployed system does (section 7.1):

* **tier 1** (:meth:`QueueAnalyticEngine.detect_spots`) runs on the
  long-term dataset — preprocessing, PEA, per-zone DBSCAN — and yields the
  queue spots;
* **tier 2** (:meth:`QueueAnalyticEngine.disambiguate`) runs on a
  short-term dataset — W(r) assembly, WTE, 5-tuple features, threshold
  derivation, QCD — and yields per-slot context labels for each spot.

The engine is substrate-agnostic: it consumes any
:class:`~repro.trace.log_store.MdtLogStore`, whether simulated or loaded
from CSV.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.columnar import RecordBatch
from repro.core.features import AmplificationPolicy, compute_slot_features
from repro.core.pea import extract_pickup_events_batch
from repro.core.qcd import disambiguate
from repro.core.spots import (
    SpotDetectionParams,
    SpotDetectionResult,
    assign_events_to_spots,
    detect_from_centroids,
    pickup_centroids,
)
from repro.core.thresholds import (
    QcdThresholds,
    ThresholdPolicy,
    derive_thresholds,
    derive_thresholds_from_features,
    zone_street_job_ratio,
)
from repro.core.types import QueueSpot, SlotFeatures, SlotLabel, TimeSlotGrid
from repro.core.wte import WaitEvent, extract_wait_times
from repro.geo.bbox import BBox
from repro.geo.point import LocalProjection
from repro.geo.zones import ZonePartition
from repro.trace.cleaning import CleaningReport, clean_batch, clean_store
from repro.trace.log_store import MdtLogStore


#: Fallback street-job ratio when a spot's zone has no trajectories to
#: estimate one from (the paper's citywide figure, section 6.2.1).
DEFAULT_STREET_JOB_RATIO = 0.84


@dataclass
class SpotAnalysis:
    """Tier-2 output for one queue spot."""

    spot: QueueSpot
    wait_events: List[WaitEvent]
    features: List[SlotFeatures]
    labels: List[SlotLabel]
    thresholds: Optional[QcdThresholds]

    def label_of(self, slot: int) -> SlotLabel:
        """The label of one slot.

        Raises:
            IndexError: for an out-of-range slot.
        """
        return self.labels[slot]


def analyze_spot(
    spot: QueueSpot,
    events: List,
    grid: TimeSlotGrid,
    amplification: AmplificationPolicy,
    policy: ThresholdPolicy,
    slot_seconds: float,
    street_job_ratio: float,
) -> SpotAnalysis:
    """Tier-2 analysis of one spot: WTE -> features -> thresholds -> QCD.

    The per-spot unit of work, shared by the serial engine loop and the
    multiprocessing layer (``repro.parallel``) so both produce identical
    labels for identical inputs.

    Args:
        spot: the detected queue spot.
        events: the spot's W(r) bucket of pickup sub-trajectories.
        grid: the time-slot grid.
        amplification: observed-fraction correction policy.
        policy: threshold derivation policy.
        slot_seconds: slot length in seconds.
        street_job_ratio: the zone's tau_ratio input.
    """
    wait_events = extract_wait_times(events)
    features = compute_slot_features(wait_events, grid, amplification)
    thresholds: Optional[QcdThresholds]
    try:
        if policy.granularity == "slot":
            thresholds = derive_thresholds_from_features(
                features,
                slot_seconds=slot_seconds,
                street_job_ratio=street_job_ratio,
                policy=policy,
            )
        else:
            thresholds = derive_thresholds(
                wait_events,
                slot_seconds=slot_seconds,
                street_job_ratio=street_job_ratio,
                policy=policy,
            )
    except ValueError:
        thresholds = None
    if thresholds is None:
        from repro.core.types import QueueType

        labels = [
            SlotLabel(slot=f.slot, label=QueueType.UNIDENTIFIED, routine=0)
            for f in features
        ]
    else:
        labels = disambiguate(features, thresholds)
    return SpotAnalysis(
        spot=spot,
        wait_events=wait_events,
        features=features,
        labels=labels,
        thresholds=thresholds,
    )


@dataclass
class EngineConfig:
    """Engine-wide configuration."""

    detection: SpotDetectionParams = field(default_factory=SpotDetectionParams)
    thresholds: ThresholdPolicy = field(default_factory=ThresholdPolicy)
    slot_seconds: float = 1800.0
    assign_radius_m: float = 30.0
    observed_fraction: float = 1.0
    """Fraction of the fleet the logs cover; <1 turns on the section-6.2.1
    amplification."""

    clean_inputs: bool = True
    """Run the section-6.1.1 preprocessing before each tier."""


class QueueAnalyticEngine:
    """The deployable queue detection and analysis engine.

    Args:
        zones: Fig. 5 zone partition of the city.
        projection: lon/lat -> metre projection for the city.
        config: engine configuration.
        city_bbox: optional city rectangle for GPS-error cleaning.
        inaccessible: optional inaccessible rectangles (water) for
            GPS-error cleaning.
        tracer: optional :class:`repro.obs.Tracer`; stage spans
            (cleaning, PEA, clustering, tier 2) are recorded into it.
            Defaults to the no-op tracer — tracing never changes
            detection output, only observes it.
    """

    def __init__(
        self,
        zones: ZonePartition,
        projection: LocalProjection,
        config: Optional[EngineConfig] = None,
        city_bbox: Optional[BBox] = None,
        inaccessible: Optional[List[BBox]] = None,
        tracer=None,
    ):
        from repro.obs.tracer import NULL_TRACER

        self.zones = zones
        self.projection = projection
        self.config = config or EngineConfig()
        self.city_bbox = city_bbox
        self.inaccessible = list(inaccessible or [])
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.last_cleaning_report: Optional[CleaningReport] = None

    # -- shared -----------------------------------------------------------------

    def preprocess(self, store: MdtLogStore) -> MdtLogStore:
        """Section-6.1.1 cleaning (no-op when ``clean_inputs`` is False)."""
        if not self.config.clean_inputs:
            return store
        with self.tracer.span("stage.clean") as span:
            cleaned, report = clean_store(
                store, city_bbox=self.city_bbox, inaccessible=self.inaccessible
            )
            span.set(records=report.total_in, removed=report.total_removed)
        self.last_cleaning_report = report
        return cleaned

    @property
    def amplification(self) -> AmplificationPolicy:
        """The observed-fraction correction policy."""
        return AmplificationPolicy.for_coverage(self.config.observed_fraction)

    # -- tier 1 -----------------------------------------------------------------

    def detect_spots(self, store) -> SpotDetectionResult:
        """Run the queue spot detection tier on a (long-term) store.

        Accepts an :class:`MdtLogStore` or a
        :class:`~repro.columnar.RecordBatch`; either way the tier runs
        on the columnar data plane — cleaning as column masks, PEA as a
        column cursor — with rows materialized only at the pickup-event
        boundary.  Outputs are byte-identical to the historical
        row-at-a-time path (pinned by the conformance matrix and the
        golden fixture).
        """
        if isinstance(store, RecordBatch):
            batch = store
        else:
            batch = RecordBatch.from_store(store)
        if self.config.clean_inputs:
            with self.tracer.span("stage.clean") as span:
                cleaned, report = clean_batch(
                    batch,
                    city_bbox=self.city_bbox,
                    inaccessible=self.inaccessible,
                )
                span.set(
                    records=report.total_in, removed=report.total_removed
                )
            self.last_cleaning_report = report
        else:
            cleaned = batch
        with self.tracer.span("stage.pea") as span:
            events = extract_pickup_events_batch(
                cleaned,
                speed_threshold_kmh=self.config.detection.speed_threshold_kmh,
                apply_state_filters=self.config.detection.apply_state_filters,
            )
            span.set(records=len(cleaned), events=len(events))
        return detect_from_centroids(
            pickup_centroids(events),
            self.zones,
            self.projection,
            self.config.detection,
            events=events,
            tracer=self.tracer,
        )

    # -- tier 2 -----------------------------------------------------------------

    def disambiguate(
        self,
        store: MdtLogStore,
        detection: SpotDetectionResult,
        grid: Optional[TimeSlotGrid] = None,
    ) -> Dict[str, SpotAnalysis]:
        """Run queue context disambiguation for every detected spot.

        Args:
            store: the short-term dataset (typically one day).
            detection: tier-1 output (spots + pickup events).  When the
                detection ran on a different store, events are re-extracted
                from this one.
            grid: time-slot grid; defaults to one day of 30-minute slots
                aligned to the store's first midnight.

        Returns:
            ``spot_id -> SpotAnalysis``.
        """
        cleaned = self.preprocess(store)
        events = detection.pickup_events
        if not events:
            from repro.core.pea import extract_all_pickup_events

            events = extract_all_pickup_events(
                cleaned,
                speed_threshold_kmh=self.config.detection.speed_threshold_kmh,
                apply_state_filters=self.config.detection.apply_state_filters,
            )
        if grid is None:
            lo, hi = cleaned.time_span
            day_start = lo - (lo % 86400.0)
            grid = TimeSlotGrid(
                day_start,
                max(hi, day_start + 86400.0),
                self.config.slot_seconds,
            )

        buckets = assign_events_to_spots(
            events,
            detection.spots,
            self.projection,
            assign_radius_m=self.config.assign_radius_m,
        )
        ratios = self._zone_ratios(cleaned)
        amplification = self.amplification

        analyses: Dict[str, SpotAnalysis] = {}
        with self.tracer.span(
            "stage.tier2", spots=len(detection.spots)
        ) as stage:
            for spot in detection.spots:
                with self.tracer.span(
                    f"tier2.spot:{spot.spot_id}"
                ) as span:
                    analyses[spot.spot_id] = analyze_spot(
                        spot,
                        buckets[spot.spot_id],
                        grid,
                        amplification,
                        self.config.thresholds,
                        self.config.slot_seconds,
                        ratios.get(spot.zone, DEFAULT_STREET_JOB_RATIO),
                    )
                    span.set(events=len(buckets[spot.spot_id]))
            stage.set(labeled=len(analyses))
        return analyses

    def _zone_ratios(self, store: MdtLogStore) -> Dict[str, float]:
        """Street-job ratio per zone (tau_ratio inputs, section 6.2.1).

        A taxi is attributed to the zone where most of its records lie;
        this keeps job segmentation whole-trajectory while still giving
        zone-level ratios.
        """
        zone_stores: Dict[str, MdtLogStore] = {
            zone.name: MdtLogStore() for zone in self.zones
        }
        for trajectory in store.iter_trajectories():
            if len(trajectory) == 0:
                continue
            counts: Dict[str, int] = {}
            step = max(1, len(trajectory) // 25)
            for record in trajectory.records[::step]:
                name = self.zones.classify_or_nearest(record.lon, record.lat)
                counts[name] = counts.get(name, 0) + 1
            home = max(counts, key=counts.get)
            zone_stores[home].extend(trajectory.records)
        return {
            name: zone_street_job_ratio(zone_store)
            for name, zone_store in zone_stores.items()
        }
