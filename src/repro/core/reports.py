"""Report generation: the textual output of the deployed system.

Section 7.1's frontend lets a user query a spot's identified queue type
per slot and "further query the long-term queue type transition reports".
These helpers turn :class:`~repro.core.engine.SpotAnalysis` objects into
such reports: merged label timelines (the Table 9 presentation), type
proportions (Table 7), and plain-text summaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.core.engine import SpotAnalysis
from repro.core.qcd import label_proportions
from repro.core.types import QueueType, SlotLabel, TimeSlotGrid


@dataclass(frozen=True)
class LabelSpan:
    """A maximal run of consecutive slots sharing one label."""

    start_slot: int
    end_slot: int
    label: QueueType

    def time_range(self, grid: TimeSlotGrid) -> str:
        """``HH:MM-HH:MM`` covering the whole span."""
        lo = grid.label_of(self.start_slot).split("-")[0]
        hi = grid.label_of(self.end_slot).split("-")[1]
        return f"{lo}-{hi}"


def merge_labels(labels: Sequence[SlotLabel]) -> List[LabelSpan]:
    """Collapse per-slot labels into maximal same-label spans (Table 9)."""
    spans: List[LabelSpan] = []
    for slot_label in labels:
        if spans and spans[-1].label is slot_label.label:
            last = spans[-1]
            spans[-1] = LabelSpan(last.start_slot, slot_label.slot, last.label)
        else:
            spans.append(
                LabelSpan(slot_label.slot, slot_label.slot, slot_label.label)
            )
    return spans


def transition_report(
    analysis: SpotAnalysis, grid: TimeSlotGrid
) -> List[Dict[str, str]]:
    """The spot's queue-type transition report as table rows."""
    rows: List[Dict[str, str]] = []
    for span in merge_labels(analysis.labels):
        rows.append(
            {
                "time": span.time_range(grid),
                "queue_type": span.label.value,
                "slots": str(span.end_slot - span.start_slot + 1),
            }
        )
    return rows


def format_transition_report(analysis: SpotAnalysis, grid: TimeSlotGrid) -> str:
    """Human-readable transition report for one spot."""
    lines = [
        f"Queue spot {analysis.spot.spot_id} "
        f"({analysis.spot.zone}, {analysis.spot.pickup_count} pickups)",
        f"{'time':>13}  type",
    ]
    for row in transition_report(analysis, grid):
        lines.append(f"{row['time']:>13}  {row['queue_type']}")
    return "\n".join(lines)


def citywide_proportions(
    analyses: Iterable[SpotAnalysis],
) -> Dict[QueueType, float]:
    """Queue-type proportions over all spots' slots (Table 7)."""
    all_labels: List[SlotLabel] = []
    for analysis in analyses:
        all_labels.extend(analysis.labels)
    return label_proportions(all_labels)


def format_proportions(proportions: Dict[QueueType, float]) -> str:
    """Table-7-style text: one line per queue type with its percentage."""
    lines = ["Queue Type   Percentage in All Time Slots"]
    for qt in QueueType:
        lines.append(f"{qt.value:<12} {proportions.get(qt, 0.0) * 100.0:5.1f}%")
    return "\n".join(lines)
