"""Extended QCD: a third routine that shrinks the Unidentified share.

**This is an extension, not part of the paper.**  The paper's QCD leaves
~16.5% of slots unidentified; on sparse simulated data the share is
larger, dominated by two recoverable cases the paper's example in
section 6.2.2 describes ("only several taxis arrive and depart with a
moderate average wait time"):

* *light-flow quick-service* slots — few FREE-taxi arrivals, each served
  quickly: with so few probes a standing passenger queue would have
  served them instantly too, but a standing queue also implies sustained
  departures, which are absent -> **C4**;
* *sustained quick-service* slots — arrivals near (but under) tau_arr
  with consistently short waits: the same evidence Routine 1 calls C2,
  at slightly lower intensity -> **C2**;
* *moderate-cadence taxi queues* — a standing taxi queue (L >= 1) whose
  departure cadence sits between the C1 and C3 thresholds: split at
  ``mid_factor x eta_dep`` -> **C1** below, **C3** above.

Routine 3 runs only on slots Routines 1-2 left unidentified, so enabling
it never changes a paper-faithful label.  The coverage/accuracy
trade-off is measured in ``benchmarks/bench_extended_qcd.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.core.qcd import label_slot
from repro.core.thresholds import QcdThresholds
from repro.core.types import QueueType, SlotFeatures, SlotLabel

#: Routine id reported for extension-decided labels.
ROUTINE_EXTENDED = 3


@dataclass(frozen=True)
class ExtendedPolicy:
    """Knobs of the extension routine.

    Attributes:
        light_flow_fraction: N_arr below this fraction of tau_arr counts
            as light flow (-> C4 when waits are short and departures are
            not sustained).
        sustained_fraction: N_arr above this fraction of tau_arr counts
            as sustained quick service (-> C2 when waits are short).
        mid_factor: taxi-queue slots with t_dep below
            ``mid_factor * eta_dep`` lean C1, above lean C3.
    """

    light_flow_fraction: float = 0.25
    sustained_fraction: float = 0.60
    mid_factor: float = 1.5

    def __post_init__(self) -> None:
        if not 0.0 < self.light_flow_fraction < self.sustained_fraction:
            raise ValueError(
                "need 0 < light_flow_fraction < sustained_fraction"
            )
        if self.mid_factor < 1.0:
            raise ValueError("mid_factor must be >= 1")


def _routine3(
    f: SlotFeatures, th: QcdThresholds, policy: ExtendedPolicy
) -> Optional[QueueType]:
    if f.mean_wait_s is None:
        return None  # genuinely no evidence
    if f.queue_length < 1.0:
        if f.mean_wait_s >= th.eta_wait:
            return None  # slow service without arrivals: ambiguous
        if f.n_arrivals <= th.tau_arr * policy.light_flow_fraction:
            return QueueType.C4
        if f.n_arrivals >= th.tau_arr * policy.sustained_fraction:
            return QueueType.C2
        return None
    # Taxi queue with a cadence between the Routine-1 branches.
    if f.mean_departure_interval_s < th.eta_dep * policy.mid_factor:
        return QueueType.C1
    return QueueType.C3


def label_slot_extended(
    features: SlotFeatures,
    thresholds: QcdThresholds,
    policy: ExtendedPolicy = ExtendedPolicy(),
) -> SlotLabel:
    """Label a slot with Routines 1-2 first, then the extension.

    Identical to :func:`repro.core.qcd.label_slot` whenever the paper's
    routines decide; only unidentified slots reach Routine 3.
    """
    label = label_slot(features, thresholds)
    if label.label is not QueueType.UNIDENTIFIED:
        return label
    extended = _routine3(features, thresholds, policy)
    if extended is None:
        return label
    return SlotLabel(
        slot=features.slot, label=extended, routine=ROUTINE_EXTENDED
    )


def disambiguate_extended(
    features: Iterable[SlotFeatures],
    thresholds: QcdThresholds,
    policy: ExtendedPolicy = ExtendedPolicy(),
) -> List[SlotLabel]:
    """Label every slot with the extended routine chain."""
    return [label_slot_extended(f, thresholds, policy) for f in features]
