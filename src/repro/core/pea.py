"""Algorithm 1 — the Pickup Extraction Algorithm (PEA).

PEA scans one taxi's trajectory and extracts *slow pickup events*:
sub-trajectories with at least two consecutive low-speed records (the taxi
inching forward in a waiting line) whose taxi states show a genuine pickup.

The algorithm keeps two flags while scanning:

* ``phi1`` — the previous record was low-speed;
* ``phi2`` — a candidate sub-trajectory R_k is currently open (at least
  two consecutive low-speed records seen).

Records with a non-operational state (BREAK/OFFLINE/POWEROFF) reset the
scan (the paper's TAG1).  When speed rises back above the threshold with a
candidate open, the candidate is kept unless one of the three state
constraints of section 4.2 rejects it:

1. it starts occupied and ends unoccupied (a passenger-alight event);
2. it starts FREE and ends ONCALL (the taxi left for a booking elsewhere);
3. its state never changes (a traffic jam or red light).

Two deliberate clarifications of the published pseudocode, documented in
DESIGN.md: the candidate state is fully reset after a keep decision (the
paper resets it only on the discard paths, which would leak state), and a
candidate still open at the end of the trajectory is finalized with the
same constraints (the paper leaves end-of-input unspecified).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.columnar import RecordBatch
from repro.states.states import (
    STATE_CODES,
    TaxiState,
    OCCUPIED_CODES,
    OCCUPIED_STATES,
    UNOCCUPIED_CODES,
    UNOCCUPIED_STATES,
    NON_OPERATIONAL_CODES,
    NON_OPERATIONAL_STATES,
)
from repro.trace.trajectory import SubTrajectory, Trajectory

#: The paper's speed threshold eta_sp: 10 km/h (section 6.1.2).
DEFAULT_SPEED_THRESHOLD_KMH = 10.0


@dataclass(frozen=True)
class PeaStats:
    """Bookkeeping of one PEA run (useful for ablations and tests)."""

    candidates: int = 0
    kept: int = 0
    rejected_alight: int = 0
    rejected_oncall_leave: int = 0
    rejected_no_transition: int = 0


def extract_pickup_events(
    trajectory: Trajectory,
    speed_threshold_kmh: float = DEFAULT_SPEED_THRESHOLD_KMH,
    apply_state_filters: bool = True,
) -> List[SubTrajectory]:
    """Run PEA over one taxi's trajectory.

    Args:
        trajectory: the taxi's full (cleaned) trajectory.
        speed_threshold_kmh: eta_sp; records at or below it are low-speed.
        apply_state_filters: disable to ablate the three state-transition
            constraints (bench ``ablation_state_filters``).

    Returns:
        The sub-trajectory set omega of slow pickup events, in temporal
        order.
    """
    events, _ = extract_pickup_events_with_stats(
        trajectory, speed_threshold_kmh, apply_state_filters
    )
    return events


def extract_pickup_events_with_stats(
    trajectory: Trajectory,
    speed_threshold_kmh: float = DEFAULT_SPEED_THRESHOLD_KMH,
    apply_state_filters: bool = True,
) -> tuple:
    """Like :func:`extract_pickup_events` but also returns :class:`PeaStats`."""
    if speed_threshold_kmh <= 0:
        raise ValueError("speed threshold must be positive")

    omega: List[SubTrajectory] = []
    candidates = 0
    rejected_alight = 0
    rejected_oncall_leave = 0
    rejected_no_transition = 0

    phi1 = False
    phi2 = False
    start_idx = -1  # index of p_{i-1} when the candidate opened

    def finalize(end_idx: int) -> None:
        """Apply the section-4.2 constraints to R_k = R(start_idx, end_idx)."""
        nonlocal candidates, rejected_alight, rejected_oncall_leave
        nonlocal rejected_no_transition
        candidates += 1
        sub = trajectory.sub(start_idx, end_idx)
        if apply_state_filters:
            first_state = sub.first.state
            last_state = sub.last.state
            if first_state in OCCUPIED_STATES and last_state in UNOCCUPIED_STATES:
                rejected_alight += 1
                return
            if first_state is TaxiState.FREE and last_state is TaxiState.ONCALL:
                rejected_oncall_leave += 1
                return
            states = sub.states()
            if all(state is states[0] for state in states):
                rejected_no_transition += 1
                return
        omega.append(sub)

    records = trajectory.records
    for i, record in enumerate(records):
        if record.state in NON_OPERATIONAL_STATES:
            # TAG1: drop any open candidate and restart the scan.
            phi1 = False
            phi2 = False
            continue
        low = record.speed <= speed_threshold_kmh
        if low:
            if not phi1:
                phi1 = True
            elif not phi2:
                start_idx = i - 1
                phi2 = True
            # with phi1 and phi2 the record simply extends the candidate
        else:
            if phi2:
                finalize(i - 1)
            phi1 = False
            phi2 = False
    if phi2:
        finalize(len(records) - 1)

    stats = PeaStats(
        candidates=candidates,
        kept=len(omega),
        rejected_alight=rejected_alight,
        rejected_oncall_leave=rejected_oncall_leave,
        rejected_no_transition=rejected_no_transition,
    )
    return omega, stats


def extract_pickup_events_from_columns(
    taxi_id: str,
    batch: RecordBatch,
    speed_threshold_kmh: float = DEFAULT_SPEED_THRESHOLD_KMH,
    apply_state_filters: bool = True,
) -> Tuple[List[SubTrajectory], PeaStats]:
    """Algorithm 1 as a cursor over one taxi's columns.

    The scan and the section-4.2 constraints run on the speed and
    state-code columns alone; a :class:`Trajectory` is materialized
    once per taxi — and only for taxis that keep at least one event —
    so rejected candidates and event-free taxis never allocate record
    objects.  Events and :class:`PeaStats` are identical to
    :func:`extract_pickup_events` over the same rows (pinned by parity
    tests and the conformance matrix).

    Args:
        taxi_id: the taxi the rows belong to.
        batch: the taxi's cleaned rows, time-ordered.
    """
    if speed_threshold_kmh <= 0:
        raise ValueError("speed threshold must be positive")
    speed_col, state_col = batch.speed, batch.state
    free_code = STATE_CODES[TaxiState.FREE]
    oncall_code = STATE_CODES[TaxiState.ONCALL]

    kept: List[Tuple[int, int]] = []
    candidates = 0
    rejected_alight = 0
    rejected_oncall_leave = 0
    rejected_no_transition = 0

    def finalize(start_idx: int, end_idx: int) -> None:
        nonlocal candidates, rejected_alight, rejected_oncall_leave
        nonlocal rejected_no_transition
        candidates += 1
        if apply_state_filters:
            first_code = state_col[start_idx]
            last_code = state_col[end_idx]
            if first_code in OCCUPIED_CODES and last_code in UNOCCUPIED_CODES:
                rejected_alight += 1
                return
            if first_code == free_code and last_code == oncall_code:
                rejected_oncall_leave += 1
                return
            if all(
                state_col[j] == first_code
                for j in range(start_idx + 1, end_idx + 1)
            ):
                rejected_no_transition += 1
                return
        kept.append((start_idx, end_idx))

    phi1 = False
    phi2 = False
    start_idx = -1
    n = len(batch)
    for i in range(n):
        if state_col[i] in NON_OPERATIONAL_CODES:
            # TAG1: drop any open candidate and restart the scan.
            phi1 = False
            phi2 = False
            continue
        low = speed_col[i] <= speed_threshold_kmh
        if low:
            if not phi1:
                phi1 = True
            elif not phi2:
                start_idx = i - 1
                phi2 = True
        else:
            if phi2:
                finalize(start_idx, i - 1)
            phi1 = False
            phi2 = False
    if phi2:
        finalize(start_idx, n - 1)

    events: List[SubTrajectory] = []
    if kept:
        # The one per-taxi object boundary: rows materialize only when
        # the taxi actually produced events.
        trajectory = Trajectory(taxi_id, batch.to_rows())
        events = [trajectory.sub(s, e) for s, e in kept]
    stats = PeaStats(
        candidates=candidates,
        kept=len(events),
        rejected_alight=rejected_alight,
        rejected_oncall_leave=rejected_oncall_leave,
        rejected_no_transition=rejected_no_transition,
    )
    return events, stats


def extract_pickup_events_batch(
    batch: RecordBatch,
    speed_threshold_kmh: float = DEFAULT_SPEED_THRESHOLD_KMH,
    apply_state_filters: bool = True,
) -> List[SubTrajectory]:
    """Run PEA over every taxi in a batch (columnar sibling of
    :func:`extract_all_pickup_events`).

    Taxis are visited in sorted-id order, so the event list is
    identical to the store path's.
    """
    from repro.trace.partition import partition_batch_by_taxi

    events: List[SubTrajectory] = []
    for taxi_id, sub in partition_batch_by_taxi(batch):
        taxi_events, _ = extract_pickup_events_from_columns(
            taxi_id, sub, speed_threshold_kmh, apply_state_filters
        )
        events.extend(taxi_events)
    return events


def extract_all_pickup_events(
    store,
    speed_threshold_kmh: float = DEFAULT_SPEED_THRESHOLD_KMH,
    apply_state_filters: bool = True,
) -> List[SubTrajectory]:
    """Run PEA over every taxi in a log store (the multi-taxi set W).

    Args:
        store: an :class:`~repro.trace.log_store.MdtLogStore`.

    Returns:
        The union of all taxis' pickup-event sub-trajectories.
    """
    events: List[SubTrajectory] = []
    for trajectory in store.iter_trajectories():
        events.extend(
            extract_pickup_events(
                trajectory, speed_threshold_kmh, apply_state_filters
            )
        )
    return events
