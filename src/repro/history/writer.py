"""Durable capture of slot finalization into day segments.

:class:`HistoryWriter` is the bridge between the live monitor and the
:class:`~repro.history.segments.SegmentStore`: subscribed to
:meth:`StreamingQueueMonitor.subscribe`, it converts every finalized
:class:`~repro.stream.SlotResult` batch into
:class:`~repro.history.format.SlotRecord` rows bucketed per calendar
day, and rewrites each touched day's segment atomically after the
batch.  Because a segment is always re-emitted from the writer's full
in-memory day state (never appended to in place), the bytes on disk
are a pure function of the records absorbed so far — which is what
makes crash recovery exact:

* the writer's state is part of the
  :class:`~repro.resilience.ServiceCheckpointer` payload (the
  ``history`` slice), captured at the same record boundary as the
  monitor and the snapshot store;
* on restart, :meth:`restore_state` reinstates that state **and
  reflushes** every day it covers, overwriting whatever a post-
  checkpoint flush had written before the kill;
* the resumed replay then re-finalizes exactly the slots the restored
  monitor has not finalized yet, so every record lands in the segment
  exactly once and the final bytes equal an uninterrupted run's.

Day-of-week handling: the simulator's demand day (``--day``) is
configuration, not calendar — a Monday demand profile can be stamped on
any epoch day — so the writer takes an explicit ``day_of_week`` for the
stream's first day (subsequent days increment mod 7) and falls back to
the calendar weekday of the epoch day when none is declared.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Dict, List, Optional, Sequence

from repro.core.types import QueueSpot, TimeSlotGrid
from repro.history.format import SlotRecord, day_of_week_of
from repro.history.segments import DaySegment, SegmentStore
from repro.service.metrics import MetricsRegistry
from repro.stream.monitor import SlotResult


class HistoryWriter:
    """Append finalized slot results to the durable history.

    Args:
        store: the segment store to write into.
        spots: the served spot set (each day segment embeds it).
        grid: the slot grid the incoming results are indexed against.
        day_of_week: 0=Mon..6=Sun of the grid's first day; None derives
            the calendar weekday from the epoch-day number.
        metrics: optional registry (``history.append_seconds``
            histogram, plus the store's own counters).
        tracer: optional :class:`repro.obs.Tracer`; each flush runs
            under a ``history.append`` span.
    """

    def __init__(
        self,
        store: SegmentStore,
        spots: Sequence[QueueSpot],
        grid: TimeSlotGrid,
        day_of_week: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
    ):
        if day_of_week is not None and not 0 <= day_of_week <= 6:
            raise ValueError("day_of_week must be in 0..6 (Monday=0)")
        if tracer is None:
            from repro.obs.tracer import NULL_TRACER as tracer
        self.store = store
        self.spots = list(spots)
        self.grid = grid
        self.first_day = int(grid.start_ts // 86400)
        self.day_of_week = day_of_week
        self.tracer = tracer
        self._metrics = metrics
        self._by_day: Dict[int, List[SlotRecord]] = {}

    # -- day bookkeeping ---------------------------------------------------------

    def day_of_slot(self, slot: int) -> int:
        """Epoch-day number the grid slot's start falls in."""
        return int(
            (self.grid.start_ts + slot * self.grid.slot_seconds) // 86400
        )

    def dow_of_day(self, day: int) -> int:
        """The declared (or calendar) day of week of an epoch day."""
        if self.day_of_week is None:
            return day_of_week_of(day)
        return (self.day_of_week + (day - self.first_day)) % 7

    def _day_slot(self, slot: int) -> int:
        """The slot index within its own day."""
        ts = self.grid.start_ts + slot * self.grid.slot_seconds
        return int((ts - (ts // 86400) * 86400.0) // self.grid.slot_seconds)

    # -- ingestion ---------------------------------------------------------------

    def absorb(self, results: Sequence[SlotResult]) -> None:
        """Record one finalized batch and reflush the touched days.

        This is the monitor-subscription entry point; it runs on the
        ingest thread, between records, so its view of the monitor's
        progress is always at a record boundary.
        """
        touched = set()
        for result in results:
            day = self.day_of_slot(result.slot)
            features = result.features
            self._by_day.setdefault(day, []).append(
                SlotRecord(
                    spot_id=result.spot_id,
                    slot=self._day_slot(result.slot),
                    label=result.label.label,
                    routine=result.label.routine,
                    mean_wait_s=features.mean_wait_s,
                    n_arrivals=features.n_arrivals,
                    queue_length=features.queue_length,
                    mean_departure_interval_s=(
                        features.mean_departure_interval_s
                    ),
                    n_departures=features.n_departures,
                )
            )
            touched.add(day)
        for day in sorted(touched):
            self.flush_day(day)

    def flush_day(self, day: int) -> None:
        """Atomically rewrite one day's segment from in-memory state."""
        records = self._by_day.get(day, [])
        timer = (
            self._metrics.time("history.append_seconds")
            if self._metrics is not None
            else nullcontext()
        )
        with self.tracer.span(
            "history.append", day=day, records=len(records)
        ):
            with timer:
                self.store.write_day(
                    DaySegment(
                        day=day,
                        day_of_week=self.dow_of_day(day),
                        slot_seconds=self.grid.slot_seconds,
                        spots=self.spots,
                        records=records,
                    )
                )

    def flush_all(self) -> None:
        """Rewrite every day this writer holds records for."""
        for day in sorted(self._by_day):
            self.flush_day(day)

    # -- checkpointing -----------------------------------------------------------

    def export_state(self) -> dict:
        """Picklable writer state (records per day) for the service
        checkpoint; spots and grid are configuration."""
        return {
            "by_day": {
                day: list(records) for day, records in self._by_day.items()
            }
        }

    def restore_state(self, state: dict) -> None:
        """Restore a state exported by :meth:`export_state` and reflush
        the covered segments so disk matches the checkpoint exactly
        (any post-checkpoint bytes from before the kill are
        overwritten)."""
        self._by_day = {
            int(day): list(records)
            for day, records in state["by_day"].items()
        }
        self.flush_all()
