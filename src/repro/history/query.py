"""Online queries over the durable history.

:class:`HistoryQueryEngine` answers the three serving-layer questions
from the segment store:

* ``spot_history`` — one spot's finalized slot records across a day
  range, with pagination and slot downsampling
  (``GET /v1/spots/{id}/history``);
* ``citywide`` — per-day citywide summaries: spot/zone counts and
  queue-type proportions (``GET /v1/history/citywide``);
* ``patterns`` — the week-level section-6 numbers: per-zone spot
  counts and C1–C4 mixes per day of week, plus per-spot day-of-week ×
  slot profiles (``GET /v1/history/patterns``).

**Pattern determinism.**  ``patterns`` starts from the compactor's
``weekly.agg`` when its per-day SHA footers still match the segments on
disk, folds the not-yet-compacted days on top, and falls back to a
from-scratch fold when the aggregate is stale or absent.  Every
aggregated quantity is an integer count, so all three paths produce
*byte-identical* JSON — compaction timing (never ran, ran mid-day,
ran after a crash) can never change a query answer.

Payload values derived from floats are rounded to 6 decimals, matching
the live ``/v1/citywide`` endpoint.
"""

from __future__ import annotations

import copy
import threading
from contextlib import nullcontext
from typing import Dict, List, Optional, Tuple

from repro.history.compact import empty_aggregate, fold_segment
from repro.history.format import SlotRecord
from repro.history.segments import DaySegment, SegmentStore
from repro.service.metrics import MetricsRegistry

#: Mon..Sun, index 0..6 (kept local so the history package does not
#: depend on the simulator).
DOW_NAMES = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")

#: Pagination bounds of the spot-history endpoint.
DEFAULT_PER_PAGE = 200
MAX_PER_PAGE = 1000


class QueryError(ValueError):
    """A query carried invalid parameters (HTTP 400)."""


def _slot_time_label(slot: int, slot_seconds: float) -> str:
    """``HH:MM-HH:MM`` of a slot within its day."""
    def fmt(seconds: float) -> str:
        total = int(seconds) % 86400
        return f"{total // 3600:02d}:{(total % 3600) // 60:02d}"

    lo = slot * slot_seconds
    return f"{fmt(lo)}-{fmt(lo + slot_seconds)}"


def _round6(value: float) -> float:
    return round(value, 6)


class HistoryQueryEngine:
    """Query facade over a :class:`SegmentStore`.

    Args:
        store: the segment store (shared with the live writer).
        metrics: optional registry (``history.query_seconds``
            latency histogram, ``history.queries`` counter).
        tracer: optional tracer; each query runs under a
            ``history.query`` span.
    """

    def __init__(
        self,
        store: SegmentStore,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
    ):
        if tracer is None:
            from repro.obs.tracer import NULL_TRACER as tracer
        self.store = store
        self.tracer = tracer
        self._metrics = metrics
        self._lock = threading.Lock()
        self._cache_version = -1
        self._segment_cache: Dict[int, DaySegment] = {}

    # -- shared plumbing ---------------------------------------------------------

    @property
    def version(self) -> int:
        """The store's write version (history ETag component)."""
        return self.store.version

    def _observe(self, kind: str):
        if self._metrics is not None:
            self._metrics.counter("history.queries").inc()
            timer = self._metrics.time("history.query_seconds")
        else:
            timer = nullcontext()
        return timer

    def _segment(self, day: int) -> Optional[DaySegment]:
        """Read-through segment cache, invalidated on store writes."""
        version = self.store.version
        with self._lock:
            if version != self._cache_version:
                self._segment_cache.clear()
                self._cache_version = version
            if day in self._segment_cache:
                return self._segment_cache[day]
        segment = self.store.read_day(day)
        if segment is not None:
            with self._lock:
                if self._cache_version == version:
                    self._segment_cache[day] = segment
        return segment

    def _segments_in(
        self, start_day: Optional[int], end_day: Optional[int]
    ) -> List[DaySegment]:
        out = []
        for day in self.store.days():
            if start_day is not None and day < start_day:
                continue
            if end_day is not None and day > end_day:
                continue
            segment = self._segment(day)
            if segment is not None:
                out.append(segment)
        return out

    # -- spot history ------------------------------------------------------------

    def spot_history(
        self,
        spot_id: str,
        start_day: Optional[int] = None,
        end_day: Optional[int] = None,
        page: int = 1,
        per_page: int = DEFAULT_PER_PAGE,
        downsample: int = 1,
    ) -> Optional[dict]:
        """One spot's slot records over a day range, paginated.

        ``downsample=k`` folds each run of ``k`` consecutive slots
        (within one day) into a single item carrying the majority label
        (earliest-slot wins ties) and count-weighted mean features.

        Returns None for a spot id the history has never seen (404).

        Raises:
            QueryError: for invalid pagination/downsampling parameters.
        """
        if page < 1:
            raise QueryError("page must be >= 1")
        if not 1 <= per_page <= MAX_PER_PAGE:
            raise QueryError(f"per_page must be in 1..{MAX_PER_PAGE}")
        if downsample < 1:
            raise QueryError("downsample must be >= 1")
        with self.tracer.span(
            "history.query", endpoint="spot_history", spot=spot_id
        ), self._observe("spot_history"):
            items: List[dict] = []
            meta: Optional[dict] = None
            for segment in self._segments_in(start_day, end_day):
                for spot in segment.spots:
                    if spot.spot_id == spot_id:
                        meta = {
                            "zone": spot.zone,
                            "lon": spot.lon,
                            "lat": spot.lat,
                        }
                records = [
                    r for r in segment.records if r.spot_id == spot_id
                ]
                if not records:
                    continue
                records.sort(key=lambda r: r.slot)
                if downsample == 1:
                    items.extend(
                        self._record_item(segment, record)
                        for record in records
                    )
                else:
                    items.extend(
                        self._downsampled_items(
                            segment, records, downsample
                        )
                    )
            if meta is None and not items:
                return None
            total = len(items)
            lo = (page - 1) * per_page
            return {
                "spot_id": spot_id,
                "spot": meta,
                "total_items": total,
                "page": page,
                "per_page": per_page,
                "downsample": downsample,
                "items": items[lo: lo + per_page],
            }

    @staticmethod
    def _record_item(segment: DaySegment, record: SlotRecord) -> dict:
        return {
            "day": segment.day,
            "day_of_week": DOW_NAMES[segment.day_of_week],
            "slot": record.slot,
            "time": _slot_time_label(record.slot, segment.slot_seconds),
            "queue_type": record.label.value,
            "routine": record.routine,
            "mean_wait_s": (
                None
                if record.mean_wait_s is None
                else _round6(record.mean_wait_s)
            ),
            "n_arrivals": _round6(record.n_arrivals),
            "queue_length": _round6(record.queue_length),
            "mean_departure_interval_s": _round6(
                record.mean_departure_interval_s
            ),
            "n_departures": _round6(record.n_departures),
        }

    @staticmethod
    def _downsampled_items(
        segment: DaySegment, records: List[SlotRecord], k: int
    ) -> List[dict]:
        items = []
        for start in range(0, len(records), k):
            group = records[start: start + k]
            label_counts: Dict[str, int] = {}
            for record in group:
                value = record.label.value
                label_counts[value] = label_counts.get(value, 0) + 1
            best = max(
                label_counts.items(),
                key=lambda kv: (kv[1], -_first_slot(group, kv[0])),
            )[0]
            waits = [
                r.mean_wait_s for r in group if r.mean_wait_s is not None
            ]
            n = len(group)
            items.append(
                {
                    "day": segment.day,
                    "day_of_week": DOW_NAMES[segment.day_of_week],
                    "slot": group[0].slot,
                    "slots": n,
                    "time": "-".join(
                        (
                            _slot_time_label(
                                group[0].slot, segment.slot_seconds
                            ).split("-")[0],
                            _slot_time_label(
                                group[-1].slot, segment.slot_seconds
                            ).split("-")[1],
                        )
                    ),
                    "queue_type": best,
                    "mean_wait_s": (
                        _round6(sum(waits) / len(waits)) if waits else None
                    ),
                    "n_arrivals": _round6(
                        sum(r.n_arrivals for r in group) / n
                    ),
                    "queue_length": _round6(
                        sum(r.queue_length for r in group) / n
                    ),
                    "mean_departure_interval_s": _round6(
                        sum(r.mean_departure_interval_s for r in group) / n
                    ),
                    "n_departures": _round6(
                        sum(r.n_departures for r in group) / n
                    ),
                }
            )
        return items

    # -- citywide ----------------------------------------------------------------

    def citywide(
        self,
        start_day: Optional[int] = None,
        end_day: Optional[int] = None,
    ) -> dict:
        """Per-day citywide summary over a day range."""
        with self.tracer.span(
            "history.query", endpoint="citywide"
        ), self._observe("citywide"):
            days = []
            for segment in self._segments_in(start_day, end_day):
                zone_counts: Dict[str, int] = {}
                for spot in segment.spots:
                    zone_counts[spot.zone] = (
                        zone_counts.get(spot.zone, 0) + 1
                    )
                label_counts: Dict[str, int] = {}
                for record in segment.records:
                    value = record.label.value
                    label_counts[value] = label_counts.get(value, 0) + 1
                total = sum(label_counts.values())
                days.append(
                    {
                        "day": segment.day,
                        "day_of_week": DOW_NAMES[segment.day_of_week],
                        "spots": len(segment.spots),
                        "zone_counts": zone_counts,
                        "finalized_slot_results": total,
                        "proportions": {
                            label: _round6(count / total)
                            for label, count in sorted(
                                label_counts.items()
                            )
                        }
                        if total
                        else {},
                    }
                )
            return {
                "days": days,
                "count": len(days),
                "corrupt_days": sorted(self.store.corrupt_days),
            }

    # -- patterns ----------------------------------------------------------------

    def _fresh_aggregate(self) -> dict:
        """The weekly aggregate, guaranteed current.

        Starts from the compacted ``weekly.agg`` when every folded
        day's SHA footer still matches its segment file, then folds the
        remaining days; otherwise folds everything from scratch.  Both
        paths produce identical integer counts (see module docstring).
        """
        days_on_disk = self.store.days()
        aggregate = self.store.read_aggregate()
        if aggregate is not None:
            footers = aggregate.get("day_footers", {})
            for day in aggregate.get("days", ()):
                on_disk = self.store.read_footer(day)
                if on_disk is not None and on_disk != footers.get(str(day)):
                    aggregate = None  # stale: a folded day was rewritten
                    break
        if aggregate is None:
            aggregate = empty_aggregate()
        else:
            aggregate = copy.deepcopy(aggregate)
        included = set(aggregate["days"])
        for day in days_on_disk:
            if day in included:
                continue
            segment = self._segment(day)
            if segment is not None:
                fold_segment(aggregate, segment)
        return aggregate

    def patterns(self) -> dict:
        """The section-6 pattern numbers over all recorded days."""
        with self.tracer.span(
            "history.query", endpoint="patterns"
        ), self._observe("patterns"):
            aggregate = self._fresh_aggregate()
            dow_days: Dict[str, int] = aggregate["dow_days"]

            zone_spots = {}
            for zone, per_dow in sorted(aggregate["zone_spots"].items()):
                zone_spots[zone] = {
                    DOW_NAMES[int(dow)]: {
                        "days": dow_days.get(dow, 0),
                        "total_spots": count,
                        "mean_spots": _round6(
                            count / dow_days[dow]
                        )
                        if dow_days.get(dow)
                        else 0.0,
                    }
                    for dow, count in sorted(per_dow.items())
                }

            type_mix = {}
            for dow, counts in sorted(aggregate["type_counts"].items()):
                total = sum(counts.values())
                type_mix[DOW_NAMES[int(dow)]] = {
                    "finalized_slot_results": total,
                    "proportions": {
                        label: _round6(count / total)
                        for label, count in sorted(counts.items())
                    }
                    if total
                    else {},
                }

            return {
                "days": sorted(aggregate["days"]),
                "day_count": len(aggregate["days"]),
                "spot_count": len(aggregate["spot_meta"]),
                "zone_spots": zone_spots,
                "queue_type_mix": type_mix,
                "corrupt_days": sorted(self.store.corrupt_days),
            }

    def spot_profile(self, spot_id: str) -> Optional[dict]:
        """One spot's day-of-week × slot label profile, or None for an
        unknown spot (the ``view=profile`` mode of the spot-history
        endpoint and of ``taxiqueue history query --spot``)."""
        with self.tracer.span(
            "history.query", endpoint="spot_profile", spot=spot_id
        ), self._observe("spot_profile"):
            aggregate = self._fresh_aggregate()
            profile = aggregate["spot_profiles"].get(spot_id)
            meta = aggregate["spot_meta"].get(spot_id)
            if profile is None and meta is None:
                return None
            by_dow = {}
            for dow, slots in sorted((profile or {}).items()):
                by_dow[DOW_NAMES[int(dow)]] = {
                    slot: {
                        "counts": dict(sorted(counts.items())),
                        "majority": max(
                            sorted(counts.items()),
                            key=lambda kv: kv[1],
                        )[0],
                    }
                    for slot, counts in sorted(
                        slots.items(), key=lambda kv: int(kv[0])
                    )
                }
            return {
                "spot_id": spot_id,
                "spot": (
                    {k: v for k, v in meta.items() if k != "day"}
                    if meta
                    else None
                ),
                "profile": by_dow,
            }


def _first_slot(group: List[SlotRecord], label_value: str) -> int:
    """The earliest slot carrying ``label_value`` (tie-break helper)."""
    for record in group:
        if record.label.value == label_value:
            return record.slot
    return -1  # pragma: no cover - label always present in group
