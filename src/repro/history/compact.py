"""Week-level compaction of day segments.

The compactor rolls the day segments into one **weekly aggregate** —
the paper's section-6 pattern numbers, kept hot so the pattern query
never has to rescan a month of segments:

* per-spot day-of-week × slot label-count profiles (the "what does
  this spot look like on Fridays at 18:00?" lookup);
* per-zone detected-spot counts per day of week (Fig. 8);
* C1–C4 queue-type label distributions per day of week (Fig. 9).

**Crash safety.**  The aggregate is *recomputed from scratch* from all
intact day segments and written atomically to a single fixed name
(``weekly.agg``, temp + fsync + rename).  Day segments are never
mutated or deleted, so a kill at any instruction leaves either the old
or the new aggregate on disk, both intact; re-running compaction is
idempotent.  No segment can be lost and no record double-counted.

**Merge equality.**  Every aggregated quantity is an integer count
folded in ascending day order, so
``aggregate(all days) == fold(aggregate(some days), remaining days)``
holds *exactly* — the pattern query (:mod:`repro.history.query`) relies
on this to produce byte-identical output whether compaction has run
never, partially, or fully.
"""

from __future__ import annotations

import threading
from contextlib import nullcontext
from typing import Dict, List, Optional

from repro.history.segments import DaySegment, SegmentStore
from repro.service.metrics import MetricsRegistry


def empty_aggregate() -> dict:
    """A zero-day aggregate (all JSON keys are strings so an aggregate
    round-trips through its on-disk JSON encoding unchanged)."""
    return {
        "days": [],
        "day_footers": {},       # day -> segment SHA footer when folded
        "dow_days": {},          # dow -> number of days folded
        "zone_spots": {},        # zone -> dow -> summed spot count
        "type_counts": {},       # dow -> label value -> slot-record count
        "spot_profiles": {},     # spot -> dow -> slot -> label -> count
        "spot_meta": {},         # spot -> {day, zone, lon, lat}
    }


def fold_segment(aggregate: dict, segment: DaySegment) -> dict:
    """Fold one day into the aggregate (in place; returns it).

    Folding the same day twice would double-count, so callers fold each
    day at most once, in ascending day order; :func:`fold_segments`
    and the query engine both enforce this via ``days``.
    """
    dow = str(segment.day_of_week)
    aggregate["days"].append(segment.day)
    if segment.footer is not None:
        aggregate["day_footers"][str(segment.day)] = segment.footer
    aggregate["dow_days"][dow] = aggregate["dow_days"].get(dow, 0) + 1
    zone_spots = aggregate["zone_spots"]
    meta = aggregate["spot_meta"]
    for spot in segment.spots:
        per_dow = zone_spots.setdefault(spot.zone, {})
        per_dow[dow] = per_dow.get(dow, 0) + 1
        # Newest-day wins, independent of fold order, so merging an
        # aggregate with later segments equals a from-scratch fold.
        known = meta.get(spot.spot_id)
        if known is None or segment.day >= known["day"]:
            meta[spot.spot_id] = {
                "day": segment.day,
                "zone": spot.zone,
                "lon": spot.lon,
                "lat": spot.lat,
            }
    type_counts = aggregate["type_counts"].setdefault(dow, {})
    profiles = aggregate["spot_profiles"]
    for record in segment.records:
        label = record.label.value
        type_counts[label] = type_counts.get(label, 0) + 1
        slot_counts = (
            profiles.setdefault(record.spot_id, {})
            .setdefault(dow, {})
            .setdefault(str(record.slot), {})
        )
        slot_counts[label] = slot_counts.get(label, 0) + 1
    return aggregate


def fold_segments(
    aggregate: dict, segments: List[DaySegment]
) -> dict:
    """Fold every not-yet-included segment, ascending by day."""
    included = set(aggregate["days"])
    for segment in sorted(segments, key=lambda s: s.day):
        if segment.day not in included:
            fold_segment(aggregate, segment)
            included.add(segment.day)
    return aggregate


def compact_store(
    store: SegmentStore,
    metrics: Optional[MetricsRegistry] = None,
    tracer=None,
) -> dict:
    """Recompute and persist the weekly aggregate from all intact day
    segments; returns the written aggregate.

    Corrupt segments are skipped (and accounted by the store); they
    simply contribute nothing until repaired or rewritten.
    """
    if tracer is None:
        from repro.obs.tracer import NULL_TRACER as tracer
    timer = (
        metrics.time("history.compaction_seconds")
        if metrics is not None
        else nullcontext()
    )
    with tracer.span("history.compact") as span, timer:
        segments = store.read_all()
        aggregate = fold_segments(empty_aggregate(), segments)
        store.write_aggregate(aggregate)
        span.set(days=len(aggregate["days"]))
        if metrics is not None:
            metrics.counter("history.compactions").inc()
            metrics.gauge("history.compacted_days").set(
                len(aggregate["days"])
            )
    return aggregate


class HistoryCompactor:
    """Background thread compacting the store on a fixed interval.

    Args:
        store: the segment store to compact.
        interval_s: seconds between compaction passes.
        metrics: optional registry (``history.compaction_seconds``
            histogram, ``history.compactions`` counter).
        tracer: optional tracer (``history.compact`` spans).
    """

    def __init__(
        self,
        store: SegmentStore,
        interval_s: float = 300.0,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
    ):
        if interval_s <= 0:
            raise ValueError("compaction interval must be positive")
        self.store = store
        self.interval_s = float(interval_s)
        self.metrics = metrics
        self.tracer = tracer
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def compact_once(self) -> dict:
        """One synchronous compaction pass."""
        return compact_store(
            self.store, metrics=self.metrics, tracer=self.tracer
        )

    def start(self) -> None:
        """Compact every ``interval_s`` in a daemon thread (idempotent)."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._loop, name="history-compactor", daemon=True
        )
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.compact_once()
            except Exception:
                # A failed pass (disk full, transient IO error) must not
                # kill the thread; the next interval retries and the
                # query path keeps folding segments directly meanwhile.
                if self.metrics is not None:
                    self.metrics.counter("history.compaction_errors").inc()

    def stop(self, final_pass: bool = True) -> None:
        """Stop the thread; optionally run one last pass so the
        aggregate covers everything written before shutdown."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        if final_pass:
            try:
                self.compact_once()
            except Exception:  # pragma: no cover - shutdown best effort
                pass
