"""Binary on-disk format of the durable queue history.

One **segment file** holds one day of finalized ``(spot, slot, label,
5-tuple feature)`` records.  The layout is deliberately simple enough to
be re-derived from this docstring:

```
MAGIC                 b"TQHSEG1\\n"
header JSON + "\\n"    day metadata + spot table (UTF-8, one line)
record block          n_records fixed-size packed structs
footer                64 hex chars: SHA-256 of everything above
```

Records are packed with :data:`RECORD_STRUCT` — spot index and slot as
unsigned shorts, label/routine as bytes, the five slot features as
float64 (``mean_wait_s`` is NaN-encoded when absent) — so a day of 30
spots × 48 slots is ~66 KiB and decoding is one ``iter_unpack``.

Every write goes through :func:`write_bytes_atomic` (temp file in the
same directory, ``fsync``, ``os.replace``), the protocol the resilience
checkpoints already use: a reader never observes a half-written file
and a crash mid-write leaves the previous version intact.  A truncated
or bit-flipped file fails the SHA-256 footer check in
:func:`decode_segment` and is reported as corrupt by the segment store,
never raised through a query path.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import struct
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.types import QueueSpot, QueueType

#: Segment file magic; bump when the layout changes.
SEGMENT_MAGIC = b"TQHSEG1\n"

#: Weekly aggregate file magic (JSON payload, same envelope/footer).
AGGREGATE_MAGIC = b"TQHAGG1\n"

#: One packed record: spot index, slot-in-day, label code, routine,
#: then the 5-tuple (mean_wait_s NaN-encoded when None).
RECORD_STRUCT = struct.Struct("<HHBBddddd")

#: Stable wire codes of the queue contexts (never reorder).
LABEL_CODES: Dict[QueueType, int] = {
    QueueType.C1: 1,
    QueueType.C2: 2,
    QueueType.C3: 3,
    QueueType.C4: 4,
    QueueType.UNIDENTIFIED: 0,
}
CODE_LABELS: Dict[int, QueueType] = {v: k for k, v in LABEL_CODES.items()}

#: Unix epoch day 0 (1970-01-01) was a Thursday; Monday = 0.
EPOCH_DAY_WEEKDAY = 3


def day_of_week_of(day: int) -> int:
    """Calendar weekday (0=Mon..6=Sun) of a Unix epoch-day number."""
    return (day + EPOCH_DAY_WEEKDAY) % 7


@dataclass(frozen=True)
class SlotRecord:
    """One finalized spot-slot as persisted in a day segment.

    ``slot`` is the index *within the day* (0..47 on the paper's grid),
    not the global grid index of a multi-day stream.
    """

    spot_id: str
    slot: int
    label: QueueType
    routine: int
    mean_wait_s: Optional[float]
    n_arrivals: float
    queue_length: float
    mean_departure_interval_s: float
    n_departures: float


class SegmentFormatError(ValueError):
    """A segment/aggregate file failed structural validation."""


# -- record block codec ------------------------------------------------------------


def encode_records(
    records: Sequence[SlotRecord], spot_index: Dict[str, int]
) -> bytes:
    """Pack records against a spot-id -> index table.

    Raises:
        SegmentFormatError: for a spot id missing from the table or a
            field outside its wire range.
    """
    out = bytearray()
    for record in records:
        index = spot_index.get(record.spot_id)
        if index is None:
            raise SegmentFormatError(
                f"record spot {record.spot_id!r} not in the segment's "
                "spot table"
            )
        if not 0 <= record.slot <= 0xFFFF:
            raise SegmentFormatError(f"slot {record.slot} out of range")
        if not 0 <= record.routine <= 0xFF:
            raise SegmentFormatError(f"routine {record.routine} out of range")
        wait = (
            float("nan")
            if record.mean_wait_s is None
            else float(record.mean_wait_s)
        )
        out += RECORD_STRUCT.pack(
            index,
            record.slot,
            LABEL_CODES[record.label],
            record.routine,
            wait,
            float(record.n_arrivals),
            float(record.queue_length),
            float(record.mean_departure_interval_s),
            float(record.n_departures),
        )
    return bytes(out)


def decode_records(
    block: bytes, spot_ids: Sequence[str]
) -> List[SlotRecord]:
    """Unpack a record block written by :func:`encode_records`.

    Raises:
        SegmentFormatError: for a ragged block, an unknown label code
            or a spot index outside the table.
    """
    if len(block) % RECORD_STRUCT.size:
        raise SegmentFormatError(
            f"record block length {len(block)} is not a multiple of "
            f"{RECORD_STRUCT.size}"
        )
    records: List[SlotRecord] = []
    for fields in RECORD_STRUCT.iter_unpack(block):
        index, slot, code, routine, wait, arr, length, dep_iv, dep = fields
        if index >= len(spot_ids):
            raise SegmentFormatError(f"spot index {index} out of table")
        label = CODE_LABELS.get(code)
        if label is None:
            raise SegmentFormatError(f"unknown label code {code}")
        records.append(
            SlotRecord(
                spot_id=spot_ids[index],
                slot=slot,
                label=label,
                routine=routine,
                mean_wait_s=None if math.isnan(wait) else wait,
                n_arrivals=arr,
                queue_length=length,
                mean_departure_interval_s=dep_iv,
                n_departures=dep,
            )
        )
    return records


# -- whole-segment codec -----------------------------------------------------------


def _spot_to_header(spot: QueueSpot) -> dict:
    return {
        "spot_id": spot.spot_id,
        "lon": spot.lon,
        "lat": spot.lat,
        "zone": spot.zone,
        "pickup_count": spot.pickup_count,
        "radius_m": spot.radius_m,
    }


def _spot_from_header(entry: dict) -> QueueSpot:
    return QueueSpot(
        spot_id=entry["spot_id"],
        lon=entry["lon"],
        lat=entry["lat"],
        zone=entry["zone"],
        pickup_count=entry["pickup_count"],
        radius_m=entry["radius_m"],
    )


def encode_segment(
    day: int,
    day_of_week: int,
    slot_seconds: float,
    spots: Sequence[QueueSpot],
    records: Sequence[SlotRecord],
) -> bytes:
    """Serialize one day segment (header + record block + footer)."""
    spot_index = {spot.spot_id: i for i, spot in enumerate(spots)}
    header = {
        "version": 1,
        "day": int(day),
        "day_of_week": int(day_of_week),
        "slot_seconds": float(slot_seconds),
        "spots": [_spot_to_header(s) for s in spots],
        "n_records": len(records),
    }
    body = (
        SEGMENT_MAGIC
        + json.dumps(header, sort_keys=True).encode("utf-8")
        + b"\n"
        + encode_records(records, spot_index)
    )
    return body + hashlib.sha256(body).hexdigest().encode("ascii")


def decode_segment(raw: bytes) -> Tuple[dict, List[QueueSpot], List[SlotRecord]]:
    """Parse and verify a segment file's bytes.

    Returns:
        ``(header, spots, records)``.

    Raises:
        SegmentFormatError: on a bad magic, failed digest, or any
            structural violation.
    """
    header, payload = _verify_envelope(raw, SEGMENT_MAGIC)
    try:
        spots = [_spot_from_header(e) for e in header["spots"]]
    except (KeyError, TypeError) as exc:
        raise SegmentFormatError(f"bad spot table: {exc}") from exc
    records = decode_records(payload, [s.spot_id for s in spots])
    if header.get("n_records") != len(records):
        raise SegmentFormatError(
            f"header claims {header.get('n_records')} records, block "
            f"holds {len(records)}"
        )
    return header, spots, records


def encode_json_payload(magic: bytes, payload: dict) -> bytes:
    """Serialize a JSON document under the same envelope (used by the
    weekly aggregate)."""
    body = (
        magic
        + json.dumps({"version": 1}, sort_keys=True).encode("utf-8")
        + b"\n"
        + json.dumps(payload, sort_keys=True).encode("utf-8")
    )
    return body + hashlib.sha256(body).hexdigest().encode("ascii")


def decode_json_payload(raw: bytes, magic: bytes) -> dict:
    """Parse and verify a JSON-payload file (aggregate)."""
    _, payload = _verify_envelope(raw, magic)
    try:
        document = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SegmentFormatError(f"bad JSON payload: {exc}") from exc
    if not isinstance(document, dict):
        raise SegmentFormatError("JSON payload must be an object")
    return document


def _verify_envelope(raw: bytes, magic: bytes) -> Tuple[dict, bytes]:
    """Shared magic + header + SHA-256 footer validation."""
    if not raw.startswith(magic):
        raise SegmentFormatError("bad magic")
    if len(raw) < len(magic) + 64:
        raise SegmentFormatError("file too short for a footer")
    body, digest = raw[:-64], raw[-64:]
    if hashlib.sha256(body).hexdigest().encode("ascii") != digest:
        raise SegmentFormatError("SHA-256 footer mismatch")
    rest = body[len(magic):]
    newline = rest.find(b"\n")
    if newline < 0:
        raise SegmentFormatError("missing header line")
    try:
        header = json.loads(rest[:newline].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SegmentFormatError(f"bad header: {exc}") from exc
    if not isinstance(header, dict):
        raise SegmentFormatError("header must be an object")
    return header, rest[newline + 1:]


# -- atomic file IO ----------------------------------------------------------------


def write_bytes_atomic(path: Union[str, Path], data: bytes) -> Path:
    """Write ``data`` to ``path`` atomically (temp + fsync + rename).

    The temporary file lives in the target directory so the rename is
    a same-filesystem atomic replace; the directory entry is fsynced so
    the rename itself is durable.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}-", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    try:
        dir_fd = os.open(path.parent, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return path
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)
    return path
