"""Durable multi-day queue history: segment store, compactor, queries.

The package turns the streaming monitor's transient slot finalizations
into a durable, queryable record:

* :mod:`repro.history.format` — the binary day-segment codec (packed
  records, JSON header, SHA-256 footer, atomic writes);
* :mod:`repro.history.segments` — :class:`SegmentStore`, one directory
  of ``day-*.seg`` files plus the weekly aggregate;
* :mod:`repro.history.writer` — :class:`HistoryWriter`, subscribed to
  slot finalization and checkpointed for exactly-once capture;
* :mod:`repro.history.compact` — :class:`HistoryCompactor` /
  :func:`compact_store`, crash-safe week-level rollups;
* :mod:`repro.history.query` — :class:`HistoryQueryEngine`, the
  time-range / citywide / pattern queries behind ``/v1/history/*``.
"""

from repro.history.compact import (
    HistoryCompactor,
    compact_store,
    empty_aggregate,
    fold_segment,
    fold_segments,
)
from repro.history.format import (
    SegmentFormatError,
    SlotRecord,
    day_of_week_of,
    decode_segment,
    encode_segment,
    write_bytes_atomic,
)
from repro.history.query import HistoryQueryEngine, QueryError
from repro.history.segments import DaySegment, SegmentStore
from repro.history.writer import HistoryWriter

__all__ = [
    "DaySegment",
    "HistoryCompactor",
    "HistoryQueryEngine",
    "HistoryWriter",
    "QueryError",
    "SegmentFormatError",
    "SegmentStore",
    "SlotRecord",
    "compact_store",
    "day_of_week_of",
    "decode_segment",
    "empty_aggregate",
    "encode_segment",
    "fold_segment",
    "fold_segments",
    "write_bytes_atomic",
]
