"""The durable day-segment store.

A :class:`SegmentStore` owns one directory of ``day-<epochday>.seg``
files (see :mod:`repro.history.format` for the binary layout) plus the
compactor's ``weekly.agg`` aggregate.  All writes are atomic, all reads
verify the embedded SHA-256 footer, and a corrupt segment is *skipped
with accounting* (``history.corrupt_segments`` counter plus the
:attr:`corrupt_days` listing) rather than raised through a query path —
the same degrade-don't-die posture as the checkpoint manager.

The store keeps an in-process **version** that increments on every
segment write; the HTTP layer uses it as the history ETag and the query
engine as its read-cache key.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.core.types import QueueSpot
from repro.history.format import (
    AGGREGATE_MAGIC,
    SegmentFormatError,
    SlotRecord,
    decode_json_payload,
    decode_segment,
    encode_json_payload,
    encode_segment,
    write_bytes_atomic,
)
from repro.service.metrics import MetricsRegistry

_SEGMENT_RE = re.compile(r"^day-(\d+)\.seg$")

#: The compactor's single output file (atomic replace keeps exactly one
#: intact generation at any kill point).
AGGREGATE_NAME = "weekly.agg"


@dataclass
class DaySegment:
    """One day of history: its spot table plus finalized slot records."""

    day: int
    """Unix epoch-day number (``ts // 86400``)."""
    day_of_week: int
    """0=Mon..6=Sun (declared by the writer, not re-derived)."""
    slot_seconds: float
    spots: List[QueueSpot] = field(default_factory=list)
    records: List[SlotRecord] = field(default_factory=list)
    footer: Optional[str] = None
    """The on-disk SHA-256 footer (set when loaded from a file); the
    compactor stores it per folded day so the query engine can detect a
    stale aggregate without re-reading whole segments."""

    @property
    def day_start_ts(self) -> float:
        return self.day * 86400.0


class SegmentStore:
    """Durable multi-day history in one directory.

    Args:
        directory: where segments live (created if missing).
        metrics: optional registry; the store maintains the
            ``history.segments_written`` / ``history.records_written`` /
            ``history.corrupt_segments`` counters and the
            ``history.segment_bytes`` gauge (total intact segment
            bytes on disk).
    """

    def __init__(
        self,
        directory,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._metrics = metrics
        self._lock = threading.Lock()
        self._version = 0
        self.corrupt_days: Dict[int, str] = {}
        """Day -> reason of every corrupt segment seen by this store."""

    # -- identity ----------------------------------------------------------------

    @property
    def version(self) -> int:
        """Bumped on every in-process segment write (history ETag)."""
        with self._lock:
            return self._version

    def path_of(self, day: int) -> Path:
        return self.directory / f"day-{int(day)}.seg"

    @property
    def aggregate_path(self) -> Path:
        return self.directory / AGGREGATE_NAME

    def days(self) -> List[int]:
        """Every day with a segment file on disk, ascending."""
        out = []
        for path in self.directory.iterdir():
            match = _SEGMENT_RE.match(path.name)
            if match:
                out.append(int(match.group(1)))
        return sorted(out)

    # -- segments ----------------------------------------------------------------

    def write_day(self, segment: DaySegment) -> Path:
        """Persist one day segment atomically; bumps the version."""
        data = encode_segment(
            day=segment.day,
            day_of_week=segment.day_of_week,
            slot_seconds=segment.slot_seconds,
            spots=segment.spots,
            records=segment.records,
        )
        path = write_bytes_atomic(self.path_of(segment.day), data)
        with self._lock:
            self._version += 1
        if self._metrics is not None:
            self._metrics.counter("history.segments_written").inc()
            self._metrics.counter("history.records_written").inc(
                len(segment.records)
            )
            self._metrics.gauge("history.segment_bytes").set(
                self.total_bytes()
            )
        return path

    def read_day(self, day: int) -> Optional[DaySegment]:
        """Load one day, or None when missing or corrupt (accounted)."""
        path = self.path_of(day)
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        try:
            header, spots, records = decode_segment(raw)
        except SegmentFormatError as exc:
            self._account_corrupt(day, str(exc))
            return None
        return DaySegment(
            day=header["day"],
            day_of_week=header["day_of_week"],
            slot_seconds=header["slot_seconds"],
            spots=spots,
            records=records,
            footer=raw[-64:].decode("ascii", errors="replace"),
        )

    def read_footer(self, day: int) -> Optional[str]:
        """Just the 64-char SHA-256 footer of a day's segment file, or
        None when the file is missing or too short.  Reads 64 bytes —
        the staleness probe of the pattern query."""
        try:
            with open(self.path_of(day), "rb") as handle:
                handle.seek(0, 2)
                size = handle.tell()
                if size < 64:
                    return None
                handle.seek(size - 64)
                return handle.read(64).decode("ascii", errors="replace")
        except OSError:
            return None

    def read_all(self) -> List[DaySegment]:
        """Every intact day segment, ascending by day."""
        out = []
        for day in self.days():
            segment = self.read_day(day)
            if segment is not None:
                out.append(segment)
        return out

    def total_bytes(self) -> int:
        """Total on-disk bytes of all segment files."""
        total = 0
        for day in self.days():
            try:
                total += self.path_of(day).stat().st_size
            except OSError:  # pragma: no cover - racing unlink
                pass
        return total

    def digests(self) -> Dict[str, str]:
        """SHA-256 of every segment file on disk, keyed by file name.

        Whole-file digests (not the embedded footer, which covers only
        the payload): two stores are byte-identical exactly when their
        digest maps are equal.  The conformance harness compares these
        across straight and kill-restarted runs.
        """
        import hashlib

        out: Dict[str, str] = {}
        for day in self.days():
            path = self.path_of(day)
            try:
                out[path.name] = hashlib.sha256(
                    path.read_bytes()
                ).hexdigest()
            except OSError:  # pragma: no cover - racing unlink
                pass
        return out

    def _account_corrupt(self, day: int, reason: str) -> None:
        with self._lock:
            fresh = day not in self.corrupt_days
            self.corrupt_days[day] = reason
        if fresh and self._metrics is not None:
            self._metrics.counter("history.corrupt_segments").inc()

    # -- aggregate ---------------------------------------------------------------

    def write_aggregate(self, payload: dict) -> Path:
        """Persist the compactor's weekly aggregate atomically."""
        return write_bytes_atomic(
            self.aggregate_path,
            encode_json_payload(AGGREGATE_MAGIC, payload),
        )

    def read_aggregate(self) -> Optional[dict]:
        """The intact weekly aggregate, or None (missing or corrupt —
        the query path then folds day segments directly)."""
        try:
            raw = self.aggregate_path.read_bytes()
        except OSError:
            return None
        try:
            return decode_json_payload(raw, AGGREGATE_MAGIC)
        except SegmentFormatError:
            if self._metrics is not None:
                self._metrics.counter("history.corrupt_aggregates").inc()
            return None
