"""Cluster centroiding: from DBSCAN labels to queue-spot candidates.

Section 4.3: "We then compute the centroid of all the found clusters, and
each centroid is the detected taxi queue spot."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.cluster.dbscan import DbscanResult


@dataclass(frozen=True)
class ClusterSummary:
    """Centroid and size of one cluster in the metre plane."""

    cluster_id: int
    x: float
    y: float
    size: int
    radius_m: float
    """Root-mean-square distance of member points from the centroid."""


def cluster_centroids(
    points: np.ndarray, result: DbscanResult
) -> List[ClusterSummary]:
    """Summarize every cluster of a DBSCAN result.

    Args:
        points: the ``(n, 2)`` array that was clustered.
        result: the DBSCAN output over those points.

    Returns:
        One :class:`ClusterSummary` per cluster, ordered by cluster id.
    """
    points = np.asarray(points, dtype=np.float64)
    summaries: List[ClusterSummary] = []
    for cid in range(result.n_clusters):
        members = points[result.labels == cid]
        centroid = members.mean(axis=0)
        spread = members - centroid
        rms = float(np.sqrt(np.einsum("ij,ij->i", spread, spread).mean()))
        summaries.append(
            ClusterSummary(
                cluster_id=cid,
                x=float(centroid[0]),
                y=float(centroid[1]),
                size=len(members),
                radius_m=rms,
            )
        )
    return summaries
