"""DBSCAN, implemented from scratch (Ester et al., KDD 1996).

The classic density-based clustering used in paper section 4.3 to turn the
set of pickup-event centroids into queue-spot clusters:

* a point with at least ``min_pts`` neighbours within ``eps`` is a *core*
  point;
* clusters are the connected components of core points under the
  eps-neighbourhood relation, plus the border points they reach;
* everything else is noise.

Neighbour queries go through a pluggable backend (grid index by default;
see :mod:`repro.cluster.neighbors`), matching the paper's advice to use a
grid or R-tree spatial index instead of the naive O(n^2) scan.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.cluster.neighbors import NOISE, UNCLASSIFIED, GridNeighbors, NeighborsFactory


@dataclass
class DbscanResult:
    """Outcome of a DBSCAN run.

    Attributes:
        labels: per-point cluster id (0..n_clusters-1) or ``NOISE`` (-1).
        n_clusters: number of clusters found.
        core_mask: boolean array marking core points.
    """

    labels: np.ndarray
    n_clusters: int
    core_mask: np.ndarray

    def cluster_indices(self, cluster_id: int) -> np.ndarray:
        """Indices of the points belonging to one cluster."""
        return np.flatnonzero(self.labels == cluster_id)

    def noise_indices(self) -> np.ndarray:
        """Indices of the noise points."""
        return np.flatnonzero(self.labels == NOISE)


def dbscan(
    points: np.ndarray,
    eps: float,
    min_pts: int,
    neighbors_factory: NeighborsFactory = GridNeighbors,
) -> DbscanResult:
    """Cluster an ``(n, 2)`` metre-plane point array with DBSCAN.

    Args:
        points: point coordinates; eps is measured in the same unit.
        eps: neighbourhood radius (``eps_d``; the paper settles on 15 m).
        min_pts: minimum neighbourhood size for a core point (``p_d``; the
            paper settles on 50 for a full-fleet day).
        neighbors_factory: backend constructor ``(points, eps) -> index``.

    Returns:
        A :class:`DbscanResult` with labels, cluster count and core mask.

    Raises:
        ValueError: for non-positive ``eps`` or ``min_pts``.
    """
    if eps <= 0:
        raise ValueError("eps must be positive")
    if min_pts <= 0:
        raise ValueError("min_pts must be positive")
    points = np.asarray(points, dtype=np.float64)
    n = len(points)
    labels = np.full(n, UNCLASSIFIED, dtype=np.int64)
    core_mask = np.zeros(n, dtype=bool)
    if n == 0:
        return DbscanResult(labels, 0, core_mask)

    index = neighbors_factory(points, eps)
    cluster_id = 0
    for i in range(n):
        if labels[i] != UNCLASSIFIED:
            continue
        seeds = index.query_radius_index(i, eps)
        if len(seeds) < min_pts:
            labels[i] = NOISE
            continue
        # i is a core point: grow a new cluster from it (BFS expansion).
        core_mask[i] = True
        labels[i] = cluster_id
        queue = deque(int(s) for s in seeds if labels[s] in (UNCLASSIFIED, NOISE))
        for s in seeds:
            if labels[s] in (UNCLASSIFIED, NOISE):
                labels[s] = cluster_id
        while queue:
            j = queue.popleft()
            neighborhood = index.query_radius_index(j, eps)
            if len(neighborhood) < min_pts:
                continue  # border point: belongs to the cluster, not grown
            core_mask[j] = True
            for k in neighborhood:
                k = int(k)
                if labels[k] == UNCLASSIFIED:
                    labels[k] = cluster_id
                    queue.append(k)
                elif labels[k] == NOISE:
                    labels[k] = cluster_id  # noise becomes a border point
        cluster_id += 1
    return DbscanResult(labels, cluster_id, core_mask)


def cluster_sizes(result: DbscanResult) -> List[int]:
    """Sizes of the clusters, ordered by cluster id."""
    return [
        int(np.count_nonzero(result.labels == cid))
        for cid in range(result.n_clusters)
    ]
