"""Neighbour-query backends for DBSCAN.

All backends expose the same interface: ``query_radius_index(i, radius)``
returns the indices of points within ``radius`` of point ``i`` (including
``i`` itself).  Three implementations are provided:

* :class:`BruteForceNeighbors` — O(n) per query, the reference baseline
  (and the configuration the paper calls "significantly slow").
* :class:`GridNeighbors` — uniform grid, expected O(1) per query.
* :class:`RTreeNeighbors` — STR-packed R-tree.

The ablation bench ``bench_ablation_index`` compares the three.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.geo.grid_index import GridIndex
from repro.geo.rtree import StrRTree

#: DBSCAN label for noise points.
NOISE = -1
#: DBSCAN label for points not yet visited (internal).
UNCLASSIFIED = -2


class BruteForceNeighbors:
    """Reference backend: scans every point for each query."""

    def __init__(self, points: np.ndarray, radius: float):
        self.points = np.asarray(points, dtype=np.float64)
        self.radius = float(radius)

    def query_radius_index(self, i: int, radius: float) -> np.ndarray:
        """All indices within ``radius`` of point ``i`` (self included)."""
        diff = self.points - self.points[i]
        d2 = np.einsum("ij,ij->i", diff, diff)
        return np.flatnonzero(d2 <= radius * radius).astype(np.int64)


class GridNeighbors:
    """Grid-index backend; cell size defaults to the query radius."""

    def __init__(self, points: np.ndarray, radius: float):
        self._index = GridIndex(points, cell_size=radius)

    def query_radius_index(self, i: int, radius: float) -> np.ndarray:
        return self._index.query_radius_index(i, radius)


class RTreeNeighbors:
    """STR R-tree backend."""

    def __init__(self, points: np.ndarray, radius: float):
        self._index = StrRTree(points)

    def query_radius_index(self, i: int, radius: float) -> np.ndarray:
        return self._index.query_radius_index(i, radius)


#: Factory signature: ``(points, radius) -> backend``.
NeighborsFactory = Callable[[np.ndarray, float], object]

_BACKENDS = {
    "brute": BruteForceNeighbors,
    "grid": GridNeighbors,
    "rtree": RTreeNeighbors,
}


def make_neighbors(name: str) -> NeighborsFactory:
    """Look a backend factory up by name (``brute``, ``grid``, ``rtree``).

    Raises:
        KeyError: for an unknown backend name.
    """
    try:
        return _BACKENDS[name]
    except KeyError:
        raise KeyError(
            f"unknown neighbour backend {name!r}; "
            f"choose from {sorted(_BACKENDS)}"
        ) from None
