"""Clustering substrate: DBSCAN with pluggable spatial-index backends.

Section 4.3 clusters pickup-event centroids with DBSCAN [Ester et al. 1996]
and recommends an R-tree or grid spatial index to avoid the naive O(n^2)
neighbourhood cost.  This package provides a faithful from-scratch DBSCAN
(:mod:`repro.cluster.dbscan`) whose neighbour queries are served by one of
three interchangeable backends (:mod:`repro.cluster.neighbors`), plus
cluster centroiding (:mod:`repro.cluster.centroids`).
"""

from repro.cluster.neighbors import (
    NOISE,
    UNCLASSIFIED,
    BruteForceNeighbors,
    GridNeighbors,
    RTreeNeighbors,
    make_neighbors,
)
from repro.cluster.dbscan import dbscan, DbscanResult
from repro.cluster.centroids import cluster_centroids, ClusterSummary
from repro.cluster.optics import optics, OpticsResult

__all__ = [
    "NOISE",
    "UNCLASSIFIED",
    "BruteForceNeighbors",
    "GridNeighbors",
    "RTreeNeighbors",
    "make_neighbors",
    "dbscan",
    "DbscanResult",
    "cluster_centroids",
    "ClusterSummary",
    "optics",
    "OpticsResult",
]
