"""OPTICS — the alternative density clustering section 4.3 points at.

"Many other advanced density-based clustering methods can also be
considered and introduced [13]" — OPTICS [Ankerst et al. 1999] is the
canonical one: instead of fixing eps it computes a *reachability
ordering* of the points, from which clusters at any eps' <= max_eps can
be extracted afterwards.  Extracting at the paper's eps reproduces the
DBSCAN partition (up to border points); sweeping eps' replays Fig. 6
from a single ordering.

The implementation is classic textbook OPTICS over the same neighbour
backends DBSCAN uses.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.cluster.neighbors import NOISE, GridNeighbors, NeighborsFactory


@dataclass
class OpticsResult:
    """Reachability ordering of a point set.

    Attributes:
        ordering: point indices in OPTICS visit order.
        reachability: reachability distance per point (inf for the first
            point of each component), aligned with point indices.
        core_distance: core distance per point (inf for non-core points).
    """

    ordering: np.ndarray
    reachability: np.ndarray
    core_distance: np.ndarray

    def extract_dbscan(self, eps: float) -> np.ndarray:
        """Extract a DBSCAN-equivalent labelling at ``eps`` <= max_eps.

        Walks the ordering: a point with reachability > eps starts a new
        cluster if it is a core point at ``eps`` (else it is noise);
        otherwise it continues the current cluster.
        """
        labels = np.full(len(self.reachability), NOISE, dtype=np.int64)
        cluster_id = -1
        for idx in self.ordering:
            if self.reachability[idx] > eps:
                if self.core_distance[idx] <= eps:
                    cluster_id += 1
                    labels[idx] = cluster_id
                # else: noise at this eps
            else:
                labels[idx] = cluster_id
        return labels

    def n_clusters_at(self, eps: float) -> int:
        """Number of clusters the ``eps`` extraction yields."""
        labels = self.extract_dbscan(eps)
        return int(labels.max()) + 1 if labels.size and labels.max() >= 0 else 0


def optics(
    points: np.ndarray,
    max_eps: float,
    min_pts: int,
    neighbors_factory: NeighborsFactory = GridNeighbors,
) -> OpticsResult:
    """Compute the OPTICS ordering of an ``(n, 2)`` point array.

    Args:
        points: metre-plane coordinates.
        max_eps: generating radius (an upper bound on extractable eps).
        min_pts: density threshold, as in DBSCAN.
        neighbors_factory: neighbour backend ``(points, radius) -> index``.

    Raises:
        ValueError: for non-positive parameters.
    """
    if max_eps <= 0:
        raise ValueError("max_eps must be positive")
    if min_pts <= 0:
        raise ValueError("min_pts must be positive")
    points = np.asarray(points, dtype=np.float64)
    n = len(points)
    reach = np.full(n, math.inf, dtype=np.float64)
    core = np.full(n, math.inf, dtype=np.float64)
    processed = np.zeros(n, dtype=bool)
    ordering: List[int] = []
    if n == 0:
        return OpticsResult(
            np.empty(0, dtype=np.int64), reach, core
        )

    index = neighbors_factory(points, max_eps)

    def neighbors_and_dists(i: int):
        ids = index.query_radius_index(i, max_eps)
        diff = points[ids] - points[i]
        dists = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        return ids, dists

    def set_core_distance(i: int, dists: np.ndarray) -> None:
        if len(dists) >= min_pts:
            core[i] = float(np.partition(dists, min_pts - 1)[min_pts - 1])

    for start in range(n):
        if processed[start]:
            continue
        ids, dists = neighbors_and_dists(start)
        set_core_distance(start, dists)
        processed[start] = True
        ordering.append(start)
        if not math.isfinite(core[start]):
            continue
        # Seed heap: (reachability, sequence, point).  Stale entries are
        # skipped on pop (lazy-deletion priority queue).
        seeds: List = []
        counter = 0

        def update(ids: np.ndarray, dists: np.ndarray, center: int) -> None:
            nonlocal counter
            cd = core[center]
            for j, d in zip(ids, dists):
                j = int(j)
                if processed[j]:
                    continue
                new_reach = max(cd, float(d))
                if new_reach < reach[j]:
                    reach[j] = new_reach
                    counter += 1
                    heapq.heappush(seeds, (new_reach, counter, j))

        update(ids, dists, start)
        while seeds:
            r, _, j = heapq.heappop(seeds)
            if processed[j] or r > reach[j]:
                continue  # stale entry
            ids_j, dists_j = neighbors_and_dists(j)
            set_core_distance(j, dists_j)
            processed[j] = True
            ordering.append(j)
            if math.isfinite(core[j]):
                update(ids_j, dists_j, j)

    return OpticsResult(
        ordering=np.asarray(ordering, dtype=np.int64),
        reachability=reach,
        core_distance=core,
    )
