"""An optional road-network substrate for the simulator.

By default simulated taxis move in straight lines — adequate for the
analytics (which only see GPS points), but it produces occasional fixes
over water and unrealistically direct paths.  With
``SimulationConfig(use_road_network=True)`` the fleet routes every
driving leg over a generated road graph instead:

* a perturbed grid of nodes (~spacing_m apart) covering the accessible
  part of the city — water rectangles get no nodes, so routes go around
  them;
* 4-neighbour edges plus a sparse set of diagonals (arterial shortcuts);
* A* shortest paths by edge length, with an LRU cache over node pairs.

The graph lives in :mod:`networkx`; route geometry is returned as lon/lat
waypoint lists that :meth:`TaxiAgent.emit_drive_route` interpolates.
"""

from __future__ import annotations

import math
import random
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.geo.point import equirectangular_m
from repro.sim.city import City

Waypoint = Tuple[float, float]


class RoadNetwork:
    """A routable road graph over a city.

    Args:
        city: the city geography (nodes avoid its water rectangles).
        spacing_m: grid spacing between road nodes.
        seed: RNG seed for node perturbation and diagonal selection.
    """

    def __init__(self, city: City, spacing_m: float = 800.0, seed: int = 7):
        if spacing_m <= 0:
            raise ValueError("spacing must be positive")
        self.city = city
        self.spacing_m = spacing_m
        self._graph = nx.Graph()
        self._build(random.Random(f"roads:{seed}"))
        # Per-instance cache (lru_cache on a bound method would leak the
        # instance; wrap a local function instead).
        self._route_nodes = lru_cache(maxsize=4096)(self._route_nodes_impl)

    # -- construction --------------------------------------------------------

    def _build(self, rng: random.Random) -> None:
        bbox = self.city.bbox
        lat_step = self.spacing_m / 111_000.0
        lon_step = self.spacing_m / (
            111_000.0 * math.cos(math.radians((bbox.south + bbox.north) / 2))
        )
        self._lon_step = lon_step
        self._lat_step = lat_step
        nodes: Dict[Tuple[int, int], Waypoint] = {}
        i = 0
        lon = bbox.west
        while lon <= bbox.east:
            j = 0
            lat = bbox.south
            while lat <= bbox.north:
                if self.city.is_accessible(lon, lat):
                    # Perturb so the grid doesn't look synthetic; keep the
                    # node on land.
                    plon = lon + rng.uniform(-0.15, 0.15) * lon_step
                    plat = lat + rng.uniform(-0.15, 0.15) * lat_step
                    if not self.city.is_accessible(plon, plat):
                        plon, plat = lon, lat
                    nodes[(i, j)] = (plon, plat)
                lat += lat_step
                j += 1
            lon += lon_step
            i += 1
        self._nodes = nodes
        for (i, j), (lon1, lat1) in nodes.items():
            self._graph.add_node((i, j), lon=lon1, lat=lat1)
        for (i, j), (lon1, lat1) in nodes.items():
            neighbours = [(i + 1, j), (i, j + 1)]
            if rng.random() < 0.25:
                neighbours.append((i + 1, j + 1))
            if rng.random() < 0.25:
                neighbours.append((i + 1, j - 1))
            for key in neighbours:
                if key in nodes:
                    lon2, lat2 = nodes[key]
                    self._graph.add_edge(
                        (i, j),
                        key,
                        length=equirectangular_m(lon1, lat1, lon2, lat2),
                    )

    @property
    def graph(self) -> nx.Graph:
        """The underlying networkx graph (read-only by convention)."""
        return self._graph

    @property
    def node_count(self) -> int:
        return self._graph.number_of_nodes()

    # -- routing -------------------------------------------------------------

    def nearest_node(self, lon: float, lat: float) -> Tuple[int, int]:
        """Grid key of the road node nearest to a point.

        Raises:
            ValueError: when the network has no nodes.
        """
        if not self._nodes:
            raise ValueError("road network has no nodes")
        bbox = self.city.bbox
        i = round((lon - bbox.west) / self._lon_step)
        j = round((lat - bbox.south) / self._lat_step)
        # Search outward from the snapped cell (water gaps leave holes).
        for radius in range(0, 8):
            best: Optional[Tuple[int, int]] = None
            best_d = float("inf")
            for di in range(-radius, radius + 1):
                for dj in range(-radius, radius + 1):
                    if max(abs(di), abs(dj)) != radius:
                        continue
                    key = (i + di, j + dj)
                    point = self._nodes.get(key)
                    if point is None:
                        continue
                    d = equirectangular_m(lon, lat, point[0], point[1])
                    if d < best_d:
                        best, best_d = key, d
            if best is not None:
                return best
        # Degenerate geography: fall back to a full scan.
        return min(
            self._nodes,
            key=lambda key: equirectangular_m(
                lon, lat, self._nodes[key][0], self._nodes[key][1]
            ),
        )

    def _route_nodes_impl(
        self, a: Tuple[int, int], b: Tuple[int, int]
    ) -> Tuple[Tuple[int, int], ...]:
        def heuristic(u, v):
            lon1, lat1 = self._nodes[u]
            lon2, lat2 = self._nodes[v]
            return equirectangular_m(lon1, lat1, lon2, lat2)

        try:
            path = nx.astar_path(
                self._graph, a, b, heuristic=heuristic, weight="length"
            )
        except nx.NetworkXNoPath:
            path = [a, b]  # disconnected pocket: degrade to straight line
        return tuple(path)

    def route(
        self, lon1: float, lat1: float, lon2: float, lat2: float
    ) -> List[Waypoint]:
        """Waypoints from one point to another along the roads.

        The returned polyline starts at the exact origin and ends at the
        exact destination, with road nodes in between.
        """
        a = self.nearest_node(lon1, lat1)
        b = self.nearest_node(lon2, lat2)
        waypoints: List[Waypoint] = [(lon1, lat1)]
        waypoints.extend(self._nodes[key] for key in self._route_nodes(a, b))
        waypoints.append((lon2, lat2))
        return waypoints

    @staticmethod
    def path_length_m(waypoints: List[Waypoint]) -> float:
        """Total polyline length in metres."""
        return sum(
            equirectangular_m(a[0], a[1], b[0], b[1])
            for a, b in zip(waypoints, waypoints[1:])
        )

    def travel(
        self, lon1: float, lat1: float, lon2: float, lat2: float,
        speed_kmh: float,
    ) -> Tuple[List[Waypoint], float]:
        """Route plus its driving time at a given speed.

        Returns:
            ``(waypoints, seconds)`` with a 20 s floor on the time.
        """
        waypoints = self.route(lon1, lat1, lon2, lat2)
        seconds = self.path_length_m(waypoints) / (speed_kmh / 3.6)
        return waypoints, max(20.0, seconds)

    def detour_factor(
        self, lon1: float, lat1: float, lon2: float, lat2: float
    ) -> float:
        """Route length over straight-line distance (>= ~1)."""
        direct = equirectangular_m(lon1, lat1, lon2, lat2)
        if direct < 1.0:
            return 1.0
        return self.path_length_m(self.route(lon1, lat1, lon2, lat2)) / direct


def split_polyline(
    waypoints: List[Waypoint], fraction: float
) -> Tuple[List[Waypoint], List[Waypoint]]:
    """Split a polyline at an arc-length fraction.

    Returns ``(head, tail)``; the split point (linearly interpolated on
    its segment) ends the head and starts the tail.

    Raises:
        ValueError: for a fraction outside (0, 1) or fewer than 2 points.
    """
    if not 0.0 < fraction < 1.0:
        raise ValueError("fraction must be strictly between 0 and 1")
    if len(waypoints) < 2:
        raise ValueError("polyline needs at least two waypoints")
    lengths = [
        equirectangular_m(a[0], a[1], b[0], b[1])
        for a, b in zip(waypoints, waypoints[1:])
    ]
    total = sum(lengths)
    if total <= 0:
        return list(waypoints), [waypoints[-1], waypoints[-1]]
    target = total * fraction
    walked = 0.0
    for i, seg_len in enumerate(lengths):
        if walked + seg_len >= target:
            frac = 0.0 if seg_len <= 0 else (target - walked) / seg_len
            (lon1, lat1), (lon2, lat2) = waypoints[i], waypoints[i + 1]
            mid = (lon1 + (lon2 - lon1) * frac, lat1 + (lat2 - lat1) * frac)
            head = list(waypoints[: i + 1]) + [mid]
            tail = [mid] + list(waypoints[i + 1 :])
            return head, tail
        walked += seg_len
    return list(waypoints), [waypoints[-1], waypoints[-1]]
