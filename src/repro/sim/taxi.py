"""Per-taxi agent: state bookkeeping and event-driven record emission.

Every taxi owns its MDT record buffer and emits records exactly the way
section 2.3 describes the real device: a record on every state change,
plus periodic GPS updates while moving and low-speed "crawl" records while
inching forward in a queue.  The fleet simulator drives agents through the
state machine; agents only know how to turn activity segments into
plausible record sequences.
"""

from __future__ import annotations

import enum
import math
import random
from typing import List, Optional, Sequence, Tuple

from repro.geo.point import destination_point, equirectangular_m
from repro.sim.config import SimulationConfig
from repro.states.states import TaxiState
from repro.trace.record import MdtRecord


class TaxiStatus(enum.Enum):
    """Coarse scheduling status used by the fleet simulator."""

    OFF_DUTY = "off"
    IDLE = "idle"
    BUSY = "busy"


class TaxiAgent:
    """One simulated taxi.

    Attributes:
        taxi_id: e.g. ``"SH0042A"``.
        lon, lat: last known position.
        status: scheduling status (off-duty / idle / busy).
        records: the MDT record buffer (clean; noise is injected later).
        idle_since: when the current idle stretch began (None when not
            idle); cruise records for the stretch are emitted lazily when
            it ends.
    """

    def __init__(
        self,
        taxi_id: str,
        lon: float,
        lat: float,
        config: SimulationConfig,
        rng: random.Random,
    ):
        self.taxi_id = taxi_id
        self.lon = lon
        self.lat = lat
        self.config = config
        self.rng = rng
        self.status = TaxiStatus.OFF_DUTY
        self.records: List[MdtRecord] = []
        self.idle_since: Optional[float] = None
        self.shift_end_ts: float = math.inf
        self.pending_break_s: float = 0.0

    # -- low-level logging ---------------------------------------------------

    def log(
        self, ts: float, lon: float, lat: float, speed: float, state: TaxiState
    ) -> None:
        """Append one MDT record and update the taxi's position.

        Records past the simulated day's end are silently dropped: the
        paper's pipeline consumes daily log files, so activity crossing
        midnight is truncated exactly as a daily export would be.
        """
        self.lon = lon
        self.lat = lat
        if ts >= self.config.day_end_ts:
            return
        self.records.append(
            MdtRecord(ts, self.taxi_id, lon, lat, speed, state)
        )

    # -- movement segments ----------------------------------------------------

    def travel_time_s(self, to_lon: float, to_lat: float) -> float:
        """Driving time to a destination at the configured speed."""
        dist = equirectangular_m(self.lon, self.lat, to_lon, to_lat)
        speed_ms = self.config.drive_speed_kmh / 3.6
        return max(20.0, dist / speed_ms)

    def emit_drive(
        self,
        t0: float,
        t1: float,
        to_lon: float,
        to_lat: float,
        state: TaxiState,
        allow_jam: bool = False,
    ) -> None:
        """Emit periodic GPS-update records for a driving leg.

        Positions interpolate linearly from the current position to the
        destination; speeds scatter around the leg's average.  With
        ``allow_jam`` a traffic-jam crawl (consecutive low-speed records
        with no state change — which PEA must discard) is inserted with
        the configured probability.
        """
        if t1 <= t0:
            self.lon, self.lat = to_lon, to_lat
            return
        rng = self.rng
        from_lon, from_lat = self.lon, self.lat
        duration = t1 - t0
        interval = self.config.drive_record_interval_s
        n_ticks = int(duration // interval)
        jam_window: Optional[Tuple[float, float]] = None
        if allow_jam and duration > 360 and rng.random() < self.config.jam_prob:
            jam_start = t0 + rng.uniform(0.2, 0.6) * duration
            jam_window = (jam_start, jam_start + rng.uniform(90.0, 200.0))
        ticks = [t0 + k * interval for k in range(1, n_ticks + 1)]
        if jam_window:
            # Guarantee at least two in-jam records so the PEA filter for
            # unchanged-state crawls is genuinely exercised.
            mid = (jam_window[0] + jam_window[1]) / 2.0
            ticks.extend([jam_window[0] + 5.0, mid])
            ticks.sort()
        for ts in ticks:
            if not t0 < ts < t1:
                continue
            frac = (ts - t0) / duration
            lon = from_lon + (to_lon - from_lon) * frac
            lat = from_lat + (to_lat - from_lat) * frac
            if jam_window and jam_window[0] <= ts <= jam_window[1]:
                speed = rng.uniform(0.0, self.config.low_speed_max_kmh)
            else:
                speed = max(12.0, rng.gauss(self.config.drive_speed_kmh, 6.0))
            self.log(ts, lon, lat, speed, state)
        self.lon, self.lat = to_lon, to_lat

    def emit_drive_route(
        self,
        t0: float,
        t1: float,
        waypoints: Sequence[Tuple[float, float]],
        state: TaxiState,
    ) -> None:
        """Emit periodic GPS records along a road polyline.

        Like :meth:`emit_drive` but positions interpolate along the
        waypoint chain instead of the straight line, so records follow
        roads (and never cross water) when the road network is enabled.
        """
        if t1 <= t0 or len(waypoints) < 2:
            if waypoints:
                self.lon, self.lat = waypoints[-1]
            return
        # Cumulative arc lengths along the polyline.
        cumulative = [0.0]
        for a, b in zip(waypoints, waypoints[1:]):
            cumulative.append(
                cumulative[-1] + equirectangular_m(a[0], a[1], b[0], b[1])
            )
        total = cumulative[-1]
        rng = self.rng
        interval = self.config.drive_record_interval_s
        duration = t1 - t0
        n_ticks = int(duration // interval)
        for k in range(1, n_ticks + 1):
            ts = t0 + k * interval
            if ts >= t1:
                break
            target = total * (ts - t0) / duration
            # Locate the segment containing the target arc length.
            seg = 1
            while seg < len(cumulative) - 1 and cumulative[seg] < target:
                seg += 1
            seg_len = cumulative[seg] - cumulative[seg - 1]
            frac = 0.0 if seg_len <= 0 else (target - cumulative[seg - 1]) / seg_len
            (lon1, lat1), (lon2, lat2) = waypoints[seg - 1], waypoints[seg]
            lon = lon1 + (lon2 - lon1) * frac
            lat = lat1 + (lat2 - lat1) * frac
            speed = max(12.0, rng.gauss(self.config.drive_speed_kmh, 6.0))
            self.log(ts, lon, lat, speed, state)
        self.lon, self.lat = waypoints[-1]

    def emit_crawl(
        self,
        spot_lon: float,
        spot_lat: float,
        t_join: float,
        t_leave: float,
        state_points: Sequence[Tuple[float, TaxiState]],
        line_bearing_deg: Optional[float] = None,
        start_offset_m: float = 0.0,
    ) -> None:
        """Emit queue-crawl records at a spot between join and leave.

        ``state_points`` are ``(ts, state)`` change points, the first at
        ``t_join``.  A record is emitted at every change point (the MDT is
        event-driven) and on a periodic tick while waiting; all records
        carry low speeds and positions jittered a few metres around the
        spot, which is what makes PEA's two-consecutive-low-speed rule
        fire.

        With ``line_bearing_deg`` set, positions model a physical waiting
        line: the taxi starts ``start_offset_m`` metres down the line and
        inches towards the head as time passes.  This gives pickup-event
        centroids the 10-20 m dispersion real taxi stands show (the paper
        reports a 7.6 m mean location error and picks eps = 15 m).
        """
        if not state_points or state_points[0][0] > t_join:
            raise ValueError("state_points must start at or before t_join")
        rng = self.rng
        interval = self.config.crawl_record_interval_s
        wait = max(0.0, t_leave - t_join)
        if wait > 1800.0:
            # Long airport-style waits: thin the cadence to bound volume.
            interval = wait / 40.0
        ticks = [t_join]
        t = t_join + interval
        while t < t_leave - 1.0:
            ticks.append(t)
            t += interval
        change_ts = [ts for ts, _ in state_points if t_join < ts <= t_leave]
        all_ts = sorted(set(ticks + change_ts + [t_leave]))

        def state_at(ts: float) -> TaxiState:
            current = state_points[0][1]
            for point_ts, point_state in state_points:
                if point_ts <= ts:
                    current = point_state
                else:
                    break
            return current

        span = max(1.0, t_leave - t_join)
        for ts in all_ts:
            if line_bearing_deg is not None and start_offset_m > 0:
                remaining = max(0.0, 1.0 - (ts - t_join) / span)
                lon, lat = destination_point(
                    spot_lon, spot_lat, line_bearing_deg,
                    start_offset_m * remaining,
                )
                lon, lat = destination_point(
                    lon, lat, rng.uniform(0.0, 360.0), abs(rng.gauss(0.0, 4.0))
                )
            else:
                bearing = rng.uniform(0.0, 360.0)
                offset = abs(rng.gauss(0.0, 6.0))
                lon, lat = destination_point(spot_lon, spot_lat, bearing, offset)
            speed = rng.uniform(0.0, self.config.low_speed_max_kmh)
            self.log(ts, lon, lat, speed, state_at(ts))
        self.lon, self.lat = spot_lon, spot_lat

    # -- idle handling ---------------------------------------------------------

    def begin_idle(self, ts: float) -> None:
        """Mark the taxi idle (cruising for street hails) from ``ts``."""
        self.status = TaxiStatus.IDLE
        self.idle_since = ts

    def end_idle(self, ts: float) -> None:
        """Close the idle stretch, emitting its FREE cruising records."""
        if self.idle_since is None:
            return
        start = self.idle_since
        self.idle_since = None
        rng = self.rng
        interval = self.config.cruise_record_interval_s
        anchor_lon, anchor_lat = self.lon, self.lat
        t = start + interval * rng.uniform(0.5, 1.0)
        while t < ts - 5.0:
            bearing = rng.uniform(0.0, 360.0)
            radius = rng.uniform(0.0, 1200.0)
            lon, lat = destination_point(anchor_lon, anchor_lat, bearing, radius)
            self.log(t, lon, lat, rng.uniform(15.0, 45.0), TaxiState.FREE)
            t += interval
        self.lon, self.lat = anchor_lon, anchor_lat

    # -- duty transitions --------------------------------------------------------

    def power_on(self, ts: float) -> None:
        """Emit the power-up sequence and become idle."""
        self.log(ts, self.lon, self.lat, 0.0, TaxiState.POWEROFF)
        self.log(ts + 4.0, self.lon, self.lat, 0.0, TaxiState.OFFLINE)
        self.log(ts + 8.0, self.lon, self.lat, 0.0, TaxiState.BREAK)
        self.log(ts + 12.0, self.lon, self.lat, 0.0, TaxiState.FREE)
        self.begin_idle(ts + 12.0)

    def power_off(self, ts: float) -> None:
        """Emit the power-down sequence and go off duty."""
        self.end_idle(ts)
        self.log(ts, self.lon, self.lat, 0.0, TaxiState.BREAK)
        self.log(ts + 4.0, self.lon, self.lat, 0.0, TaxiState.OFFLINE)
        self.log(ts + 8.0, self.lon, self.lat, 0.0, TaxiState.POWEROFF)
        self.status = TaxiStatus.OFF_DUTY
        self.idle_since = None

    def take_break(self, ts: float, duration_s: float) -> float:
        """Emit a BREAK stretch; returns the timestamp the break ends."""
        self.end_idle(ts)
        self.status = TaxiStatus.BUSY
        self.log(ts, self.lon, self.lat, 0.0, TaxiState.BREAK)
        end = ts + duration_s
        self.log(end, self.lon, self.lat, 0.0, TaxiState.FREE)
        return end
