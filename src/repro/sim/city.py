"""The synthetic city: geography, zones, water and the landmark inventory.

A Singapore-sized rectangle (~50 km x 26 km, the extent section 6.1.3
quotes) centred near the real island's coordinates, partitioned into the
four zones of Fig. 5, with a few water rectangles (inaccessible zones used
by GPS-error cleaning) and a generated landmark inventory whose category
mix follows paper Table 4.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.geo.bbox import BBox
from repro.geo.point import LocalProjection, equirectangular_m
from repro.geo.zones import ZonePartition, four_zone_partition
from repro.sim.landmarks import (
    Landmark,
    LandmarkCategory,
    TABLE4_SHARES,
    ZONE_PLACEMENT_WEIGHTS,
)

#: Default city rectangle: ~50 km x 26 km around Singapore's centroid.
DEFAULT_CITY_BBOX = BBox(103.5954, 1.2351, 104.0446, 1.4689)

#: Landmark names per category, cycled with an index suffix.
_NAME_STEMS = {
    LandmarkCategory.MRT_BUS: "MRT/Bus Interchange",
    LandmarkCategory.MALL_HOTEL: "Shopping Plaza",
    LandmarkCategory.OFFICE: "Office Tower",
    LandmarkCategory.HOSPITAL_SCHOOL: "Hospital/Campus",
    LandmarkCategory.TOURIST: "Attraction",
    LandmarkCategory.AIRPORT_FERRY: "Air/Ferry Terminal",
    LandmarkCategory.INDUSTRIAL_RESIDENTIAL: "Estate Hub",
    LandmarkCategory.LEISURE_PARK: "Leisure Park",
    LandmarkCategory.NONE: "Unnamed Corner",
}

#: Minimum separation between queue-spot landmarks in metres, so DBSCAN
#: at eps = 15 m can never merge two distinct ground-truth spots.
MIN_SPOT_SEPARATION_M = 400.0


@dataclass
class City:
    """City geography plus the landmark inventory.

    Attributes:
        bbox: the city rectangle.
        zones: the Central/North/West/East partition (Fig. 5).
        water: inaccessible rectangles (sea inlets, reservoirs); GPS fixes
            inside them are treated as urban-canyon errors by cleaning.
        landmarks: every landmark, queue-spot hosts and decoys alike.
    """

    bbox: BBox
    zones: ZonePartition
    water: List[BBox]
    landmarks: List[Landmark]
    hail_hotspots: List[Tuple[float, float]] = field(default_factory=list)
    """Popular roadside stretches where street hails cluster loosely.

    Pickups there are dispersed over tens of metres — dense enough that
    permissive DBSCAN parameters (large eps, small minPts) start admitting
    them as insignificant queue spots, which is exactly the behaviour
    paper Fig. 6 reports.
    """

    @property
    def projection(self) -> LocalProjection:
        """Metre-plane projection centred on the city."""
        lon, lat = self.bbox.center
        return LocalProjection(lon, lat)

    @property
    def queue_spot_landmarks(self) -> List[Landmark]:
        """Landmarks that host real queue activity (ground-truth spots)."""
        return [lm for lm in self.landmarks if lm.hosts_queue_spot]

    @property
    def decoy_landmarks(self) -> List[Landmark]:
        """Landmarks without queue activity."""
        return [lm for lm in self.landmarks if not lm.hosts_queue_spot]

    def is_accessible(self, lon: float, lat: float) -> bool:
        """True when the point is on land inside the city."""
        if not self.bbox.contains(lon, lat):
            return False
        return not any(w.contains(lon, lat) for w in self.water)

    def random_land_point(
        self, rng: random.Random, zone: Optional[str] = None
    ) -> Tuple[float, float]:
        """Uniform random accessible point, optionally within one zone.

        Raises:
            RuntimeError: if no accessible point is found in 1000 draws
                (indicates a degenerate water layout).
        """
        box = self.zones.zone_named(zone).bbox if zone else self.bbox
        for _ in range(1000):
            lon = rng.uniform(box.west, box.east)
            lat = rng.uniform(box.south, box.north)
            if self.is_accessible(lon, lat):
                return lon, lat
        raise RuntimeError("could not sample an accessible point")

    def zone_of(self, lon: float, lat: float) -> str:
        """Zone name of a point (nearest zone for out-of-bbox points)."""
        return self.zones.classify_or_nearest(lon, lat)

    @classmethod
    def generate(
        cls,
        seed: int = 7,
        n_queue_spots: int = 60,
        n_decoys: int = 40,
        bbox: BBox = DEFAULT_CITY_BBOX,
    ) -> "City":
        """Generate a city with a Table 4-faithful landmark inventory.

        The queue-spot landmarks follow :data:`TABLE4_SHARES` (at least one
        airport), are biased towards zones per
        :data:`ZONE_PLACEMENT_WEIGHTS` (Central gets the most, as in
        Fig. 8), keep :data:`MIN_SPOT_SEPARATION_M` between each other, and
        include one weekend-only leisure park in the West zone
        (section 7.2's sporadic spot).
        """
        rng = random.Random(seed)
        zones = four_zone_partition(bbox)
        water = _default_water(bbox)
        city = cls(bbox=bbox, zones=zones, water=water, landmarks=[])

        categories = _category_plan(rng, n_queue_spots)
        spots: List[Landmark] = []
        counter = 0
        for category in categories:
            lon, lat = _place_landmark(city, rng, category, spots)
            zone = zones.classify_or_nearest(lon, lat)
            weekend_only = category is LandmarkCategory.LEISURE_PARK
            counter += 1
            spots.append(
                Landmark(
                    landmark_id=f"LM{counter:03d}",
                    name=f"{_NAME_STEMS[category]} #{counter}",
                    category=category,
                    lon=lon,
                    lat=lat,
                    zone=zone,
                    hosts_queue_spot=True,
                    weekend_only=weekend_only,
                )
            )

        decoys: List[Landmark] = []
        decoy_cats = [
            c
            for c in LandmarkCategory
            if c not in (LandmarkCategory.NONE, LandmarkCategory.LEISURE_PARK)
        ]
        for _ in range(n_decoys):
            category = rng.choice(decoy_cats)
            lon, lat = _place_landmark(city, rng, category, spots + decoys)
            counter += 1
            decoys.append(
                Landmark(
                    landmark_id=f"LM{counter:03d}",
                    name=f"{_NAME_STEMS[category]} #{counter}",
                    category=category,
                    lon=lon,
                    lat=lat,
                    zone=zones.classify_or_nearest(lon, lat),
                    hosts_queue_spot=False,
                )
            )

        city.landmarks = spots + decoys
        hotspot_rng = random.Random(seed * 31 + 5)
        # Few enough that each accumulates ~20-40 observed quick pickups
        # per day: below the paper's minPts=50 operating point, above the
        # permissive minPts=25 setting of Fig. 6.
        city.hail_hotspots = [
            city.random_land_point(hotspot_rng) for _ in range(28)
        ]
        return city


def _default_water(bbox: BBox) -> List[BBox]:
    """A southern strait and a central reservoir, scaled to the bbox."""
    lon_span = bbox.east - bbox.west
    lat_span = bbox.north - bbox.south
    strait = BBox(
        bbox.west,
        bbox.south,
        bbox.west + lon_span * 0.35,
        bbox.south + lat_span * 0.08,
    )
    reservoir = BBox(
        bbox.west + lon_span * 0.46,
        bbox.south + lat_span * 0.62,
        bbox.west + lon_span * 0.54,
        bbox.south + lat_span * 0.74,
    )
    return [strait, reservoir]


def _category_plan(
    rng: random.Random, n_queue_spots: int
) -> List[LandmarkCategory]:
    """Expand Table 4 shares into a concrete category list.

    Guarantees at least one airport/ferry terminal and exactly one
    weekend-only leisure park (replacing one industrial/residential slot).
    """
    plan: List[LandmarkCategory] = []
    for category, share in TABLE4_SHARES.items():
        plan.extend([category] * max(0, round(share * n_queue_spots)))
    while len(plan) < n_queue_spots:
        plan.append(LandmarkCategory.MRT_BUS)
    while len(plan) > n_queue_spots:
        plan.remove(LandmarkCategory.MRT_BUS)
    if LandmarkCategory.AIRPORT_FERRY not in plan:
        plan[0] = LandmarkCategory.AIRPORT_FERRY
    # One sporadic leisure park (section 7.2).
    replaceable = (
        LandmarkCategory.INDUSTRIAL_RESIDENTIAL,
        LandmarkCategory.MRT_BUS,
    )
    for i, category in enumerate(plan):
        if category in replaceable:
            plan[i] = LandmarkCategory.LEISURE_PARK
            break
    rng.shuffle(plan)
    return plan


def _place_landmark(
    city: City,
    rng: random.Random,
    category: LandmarkCategory,
    existing: Sequence[Landmark],
) -> Tuple[float, float]:
    """Sample a location for a landmark of a category.

    Zone choice follows :data:`ZONE_PLACEMENT_WEIGHTS`; the point must be
    accessible and at least :data:`MIN_SPOT_SEPARATION_M` away from every
    existing landmark.
    """
    weights = ZONE_PLACEMENT_WEIGHTS[category]
    zone_names = [z.name for z in city.zones]
    for _ in range(2000):
        zone = rng.choices(zone_names, weights=weights)[0]
        lon, lat = city.random_land_point(rng, zone)
        if all(
            equirectangular_m(lon, lat, lm.lon, lm.lat) >= MIN_SPOT_SEPARATION_M
            for lm in existing
        ):
            return lon, lat
    raise RuntimeError(
        f"could not place a {category} landmark with "
        f"{MIN_SPOT_SEPARATION_M} m separation"
    )
