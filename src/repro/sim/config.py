"""Simulation configuration.

All simulator knobs live in two frozen dataclasses so that every experiment
records exactly what produced its data.  Defaults follow DESIGN.md's
scale-down policy: a 1,500-taxi fleet over a Singapore-sized city, with the
paper's 60% observed-fleet fraction (section 6.2.1) so the amplification
code path is always exercised.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class DayKind(enum.Enum):
    """Weekday/weekend classification used by the demand profiles."""

    WEEKDAY = "weekday"
    SATURDAY = "saturday"
    SUNDAY = "sunday"


#: Monday-first weekday names used throughout reports.
DAY_NAMES = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")


def day_kind_of(day_of_week: int) -> DayKind:
    """Map Monday=0..Sunday=6 to a :class:`DayKind`.

    Raises:
        ValueError: for values outside 0..6.
    """
    if not 0 <= day_of_week <= 6:
        raise ValueError("day_of_week must be in 0..6 (Monday=0)")
    if day_of_week <= 4:
        return DayKind.WEEKDAY
    return DayKind.SATURDAY if day_of_week == 5 else DayKind.SUNDAY


@dataclass(frozen=True)
class NoiseConfig:
    """Log-noise rates reproducing section 6.1.1's three error classes.

    Defaults are tuned so the combined error fraction lands near the
    paper's reported ~2.8% of all records.
    """

    duplicate_prob: float = 0.011
    """Probability a record is followed by a GPRS re-transmission copy."""

    spurious_free_prob: float = 0.10
    """Probability a PAYMENT record gains a spurious FREE + PAYMENT pair
    (the clock-synchronisation MDT bug the paper describes)."""

    gps_outlier_prob: float = 0.005
    """Probability a record's GPS fix jumps far off (urban canyon)."""

    gps_outlier_km: float = 30.0
    """How far an outlier fix lands from the true position, in km."""

    drop_arrived_prob: float = 0.25
    """Probability the ARRIVED record of a booking job is never logged
    (driver skipped the button)."""

    drop_stc_prob: float = 0.3
    """Probability the STC record of a trip is never logged."""

    gps_jitter_m: float = 4.0
    """Standard deviation of everyday GPS jitter applied to every record."""

    enabled: bool = True
    """Master switch; disable for noise-free unit-test datasets."""


@dataclass(frozen=True)
class SimulationConfig:
    """Top-level knobs of one simulated day.

    Attributes mirror the dataset facts of paper section 6.1.1 where they
    exist, scaled per DESIGN.md.
    """

    seed: int = 7
    """Root RNG seed; every derived stream is seeded from it."""

    fleet_size: int = 1500
    """Number of simulated taxis (paper: ~15,000; see DESIGN.md scale-down)."""

    day_of_week: int = 0
    """Monday=0 .. Sunday=6; selects demand profiles."""

    day_index: int = 0
    """Absolute day number; offsets timestamps so multi-day runs don't
    overlap (day d spans ``d*86400 .. (d+1)*86400`` plus the epoch)."""

    epoch_ts: float = 1_217_548_800.0
    """POSIX timestamp of day 0 midnight (2008-08-01 UTC, a Friday in the
    paper's sample record; purely cosmetic)."""

    observed_fraction: float = 0.6
    """Fraction of the fleet whose MDT logs the analyst receives (the
    paper's dataset covers ~60% of Singapore's taxis)."""

    n_queue_spots: int = 60
    """Ground-truth queue spots across the city (paper detects ~180 with
    a 10x larger fleet over a full-size city)."""

    n_decoy_landmarks: int = 40
    """Landmarks without queue activity (no spot should be detected)."""

    cruise_record_interval_s: float = 150.0
    """Period of FREE cruising records while a taxi is idle."""

    drive_record_interval_s: float = 90.0
    """Period of GPS-update records while a taxi is driving."""

    crawl_record_interval_s: float = 30.0
    """Period of low-speed records while a taxi waits in a spot queue."""

    low_speed_max_kmh: float = 8.0
    """Upper bound of crawl speeds (below the paper's 10 km/h threshold)."""

    drive_speed_kmh: float = 38.0
    """Average driving speed used for travel times."""

    boarding_mean_s: float = 75.0
    """Mean bay occupancy per pickup (pull in + board + pull out)."""

    taxi_queue_patience_s: float = 800.0
    """How long a taxi waits in a spot queue before reneging (mean)."""

    passenger_patience_s: float = 900.0
    """How long a passenger waits before abandoning (mean)."""

    booking_noshow_prob: float = 0.05
    """Probability a booked passenger never shows up (NOSHOW)."""

    busy_cherry_pick_prob: float = 0.03
    """Probability a taxi joins a spot queue in BUSY state and leaves with
    POB (the driver behaviour of section 7.2)."""

    queue_poach_prob: float = 0.05
    """Probability a queued FREE taxi accepts a booking and leaves
    (produces the FREE -> ONCALL sub-trajectories PEA must filter)."""

    jam_prob: float = 0.06
    """Probability a driving leg contains a traffic-jam crawl (low-speed
    records with no state change, which PEA must filter)."""

    dispatch_radius_m: float = 1000.0
    """Booking dispatch circle radius (paper: 1 km)."""

    booking_retry_prob: float = 0.6
    """Probability a failed booking is re-booked and served by a taxi
    beyond the dispatch circle (passengers retry; a farther taxi bids)."""

    monitor_interval_s: float = 60.0
    """Vehicle-monitor sampling period (paper: 60 s)."""

    truth_taxi_queue_len: float = 1.0
    """Ground truth: a taxi queue exists when the slot's time-average taxi
    queue length reaches this value (paper's L >= 1 semantics)."""

    truth_pax_queue_len: float = 1.0
    """Ground truth: a passenger queue exists when the slot's time-average
    passenger queue length reaches this value."""

    slot_seconds: float = 1800.0
    """Time-slot length for ground-truth labels (paper: 48 x 30 min)."""

    use_road_network: bool = False
    """Route driving legs over a generated road graph instead of straight
    lines (slower; see :mod:`repro.sim.roads`)."""

    road_spacing_m: float = 800.0
    """Grid spacing of the road network when enabled."""

    noise: NoiseConfig = field(default_factory=NoiseConfig)

    def __post_init__(self) -> None:
        if self.fleet_size <= 0:
            raise ValueError("fleet_size must be positive")
        if not 0.0 < self.observed_fraction <= 1.0:
            raise ValueError("observed_fraction must be in (0, 1]")
        if not 0 <= self.day_of_week <= 6:
            raise ValueError("day_of_week must be in 0..6")
        if self.n_queue_spots < 1:
            raise ValueError("need at least one queue spot")

    @property
    def day_kind(self) -> DayKind:
        """Weekday/Saturday/Sunday classification of the simulated day."""
        return day_kind_of(self.day_of_week)

    @property
    def day_start_ts(self) -> float:
        """POSIX timestamp of the simulated day's midnight."""
        return self.epoch_ts + self.day_index * 86400.0

    @property
    def day_end_ts(self) -> float:
        """POSIX timestamp of the simulated day's end (exclusive)."""
        return self.day_start_ts + 86400.0

    @property
    def amplification_factor(self) -> float:
        """The section-6.2.1 count amplification, 1/observed_fraction."""
        return 1.0 / self.observed_fraction
