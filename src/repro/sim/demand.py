"""Time-of-day demand and supply profiles per landmark category.

The queue regimes of paper Table 3 emerge from the balance between three
Poisson flows at each queue spot:

* passenger arrivals (rate ``pax_per_s``),
* FREE taxis deciding to queue at the spot (rate ``taxi_per_s``),
* booking pickups at the spot (rate ``booking_per_s``),

against the boarding-bay service rate (``1 / boarding_mean_s`` per bay).
With boarding ~45 s a single bay serves ~80 pickups/hour; when both
arrival flows exceed that, both queues grow concurrently (C1); when taxis
outpace passengers a taxi queue forms (C3); the reverse gives a passenger
queue (C2); and low flows on both sides give C4.

Profiles are 24-entry hourly multiplier vectors per landmark category,
with separate weekday/weekend shapes.  They are designed (not fitted) to
produce the qualitative patterns the paper reports: commuter peaks at
MRT stations, evening passenger queues at offices, round-the-clock taxi
queues at the airport, the Lucky-Plaza Sunday pattern at malls
(Table 9), and weekend-only activity at leisure parks (section 7.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.sim.config import DayKind, SimulationConfig
from repro.sim.landmarks import Landmark, LandmarkCategory

Profile = Tuple[float, ...]  # 24 hourly multipliers


def _profile(base: float, bumps: Sequence[Tuple[int, int, float]]) -> Profile:
    """Build a 24-hour multiplier vector.

    Args:
        base: floor multiplier applied to every hour.
        bumps: ``(start_hour, end_hour, level)`` windows; the level replaces
            the base inside ``[start_hour, end_hour)`` (later bumps win).
    """
    hours = [base] * 24
    for start, end, level in bumps:
        for h in range(start, end):
            hours[h % 24] = level
    return tuple(hours)


@dataclass(frozen=True)
class CategoryProfile:
    """Demand/supply shape of one landmark category.

    ``pax_peak`` / ``taxi_peak`` are peak-hour arrival rates in events per
    hour; the hourly vectors multiply them.  ``booking_frac`` scales the
    additional booking-pickup flow as a fraction of the passenger rate.
    ``bays`` is the number of concurrent boarding bays at the spot.
    """

    pax_peak: float
    taxi_peak: float
    pax_weekday: Profile
    pax_weekend: Profile
    taxi_weekday: Profile
    taxi_weekend: Profile
    booking_frac: float = 0.10
    bays: int = 1


def _mrt_bus() -> CategoryProfile:
    # Commuter peaks near the bay service rate (~65/h at 55 s boarding):
    # both queues build -> C1 at peaks; C4 overnight; C2 when the evening
    # crush outruns taxi supply.
    return CategoryProfile(
        pax_peak=74.0,
        taxi_peak=76.0,
        pax_weekday=_profile(0.05, [(7, 10, 1.0), (11, 17, 0.35), (17, 21, 1.0), (21, 23, 0.25)]),
        pax_weekend=_profile(0.05, [(9, 12, 0.45), (12, 21, 0.55), (21, 23, 0.25)]),
        taxi_weekday=_profile(0.06, [(6, 7, 0.4), (7, 10, 1.0), (11, 17, 0.35), (17, 21, 0.95), (21, 23, 0.25)]),
        taxi_weekend=_profile(0.06, [(9, 12, 0.45), (12, 21, 0.55), (21, 23, 0.25)]),
        booking_frac=0.08,
    )


def _mall_hotel() -> CategoryProfile:
    # The Lucky-Plaza pattern of Table 9: queues just after midnight
    # (night-club crowd, then a leftover taxi queue), C4 until morning,
    # C1/C2 alternating through the shopping peak, C4 late evening.
    return CategoryProfile(
        pax_peak=72.0,
        taxi_peak=74.0,
        pax_weekday=_profile(0.05, [(0, 1, 0.85), (10, 11, 0.3), (11, 20, 0.9), (20, 22, 0.25)]),
        pax_weekend=_profile(0.05, [(0, 1, 0.95), (9, 11, 0.45), (11, 20, 1.05), (20, 22, 0.3)]),
        taxi_weekday=_profile(0.06, [(0, 1, 0.95), (1, 2, 0.45), (10, 11, 0.3), (11, 20, 0.9), (20, 22, 0.25)]),
        taxi_weekend=_profile(0.06, [(0, 1, 1.0), (1, 2, 0.5), (9, 11, 0.45), (11, 20, 1.05), (20, 22, 0.3)]),
        booking_frac=0.12,
    )


def _office() -> CategoryProfile:
    # Sharp weekday evening exodus with undersupplied taxis -> C2;
    # quiet weekends.  High booking share feeds Table 8's failed bookings.
    return CategoryProfile(
        pax_peak=85.0,
        taxi_peak=42.0,
        pax_weekday=_profile(0.05, [(8, 10, 0.3), (12, 14, 0.25), (17, 21, 1.0)]),
        pax_weekend=_profile(0.05, [(10, 18, 0.1)]),
        taxi_weekday=_profile(0.06, [(8, 10, 0.55), (12, 14, 0.5), (17, 21, 0.95)]),
        taxi_weekend=_profile(0.06, [(10, 18, 0.2)]),
        booking_frac=0.25,
        bays=2,
    )


def _hospital_school() -> CategoryProfile:
    return CategoryProfile(
        pax_peak=45.0,
        taxi_peak=42.0,
        pax_weekday=_profile(0.05, [(7, 9, 0.6), (9, 17, 0.75), (17, 19, 0.5)]),
        pax_weekend=_profile(0.05, [(9, 17, 0.35)]),
        taxi_weekday=_profile(0.06, [(7, 9, 0.65), (9, 17, 0.7), (17, 19, 0.5)]),
        taxi_weekend=_profile(0.06, [(9, 17, 0.35)]),
        booking_frac=0.15,
    )


def _tourist() -> CategoryProfile:
    return CategoryProfile(
        pax_peak=60.0,
        taxi_peak=64.0,
        pax_weekday=_profile(0.05, [(10, 18, 0.7), (18, 22, 0.9)]),
        pax_weekend=_profile(0.05, [(10, 22, 1.05)]),
        taxi_weekday=_profile(0.06, [(10, 18, 0.75), (18, 22, 0.95)]),
        taxi_weekend=_profile(0.06, [(10, 22, 1.1)]),
        booking_frac=0.08,
    )


def _airport_ferry() -> CategoryProfile:
    # Round-the-clock flows with a persistent taxi oversupply: the classic
    # airport taxi queue (C3/C1), and the highest daily pickup counts
    # (paper Table 6: East zone is the busiest, driven by Changi).
    return CategoryProfile(
        pax_peak=60.0,
        taxi_peak=80.0,
        pax_weekday=_profile(0.30, [(6, 23, 0.85)]),
        pax_weekend=_profile(0.35, [(6, 23, 0.95)]),
        taxi_weekday=_profile(0.40, [(6, 23, 0.95)]),
        taxi_weekend=_profile(0.40, [(6, 23, 1.0)]),
        booking_frac=0.04,
        bays=3,
    )


def _industrial_residential() -> CategoryProfile:
    # Morning commute from housing estates with thin taxi supply -> C2
    # in the morning, C4 otherwise.
    return CategoryProfile(
        pax_peak=55.0,
        taxi_peak=30.0,
        pax_weekday=_profile(0.05, [(6, 9, 1.0), (17, 20, 0.4)]),
        pax_weekend=_profile(0.05, [(8, 12, 0.3)]),
        taxi_weekday=_profile(0.06, [(6, 9, 0.6), (17, 20, 0.45)]),
        taxi_weekend=_profile(0.06, [(8, 12, 0.3)]),
        booking_frac=0.22,
        bays=2,
    )


def _leisure_park() -> CategoryProfile:
    # Weekend-only family destination (the sporadic spot of section 7.2);
    # weekday rates are ~zero so no weekday spot is detected.
    return CategoryProfile(
        pax_peak=55.0,
        taxi_peak=52.0,
        pax_weekday=_profile(0.005, []),
        pax_weekend=_profile(0.05, [(10, 19, 1.0)]),
        taxi_weekday=_profile(0.005, []),
        taxi_weekend=_profile(0.06, [(10, 19, 0.95)]),
        booking_frac=0.10,
    )


def _unidentified() -> CategoryProfile:
    # Busy corners without a named facility (5.6% in Table 4).
    return CategoryProfile(
        pax_peak=45.0,
        taxi_peak=44.0,
        pax_weekday=_profile(0.05, [(8, 22, 0.65)]),
        pax_weekend=_profile(0.05, [(9, 22, 0.6)]),
        taxi_weekday=_profile(0.06, [(8, 22, 0.63)]),
        taxi_weekend=_profile(0.06, [(9, 22, 0.62)]),
        booking_frac=0.10,
    )


CATEGORY_PROFILES: Dict[LandmarkCategory, CategoryProfile] = {
    LandmarkCategory.MRT_BUS: _mrt_bus(),
    LandmarkCategory.MALL_HOTEL: _mall_hotel(),
    LandmarkCategory.OFFICE: _office(),
    LandmarkCategory.HOSPITAL_SCHOOL: _hospital_school(),
    LandmarkCategory.TOURIST: _tourist(),
    LandmarkCategory.AIRPORT_FERRY: _airport_ferry(),
    LandmarkCategory.INDUSTRIAL_RESIDENTIAL: _industrial_residential(),
    LandmarkCategory.LEISURE_PARK: _leisure_park(),
    LandmarkCategory.NONE: _unidentified(),
}

#: Hourly street-hail rate per zone (events/hour), weekday shape; weekends
#: scale Central down and keep the rest (paper Fig 8's weekend dip).
STREET_HAIL_ZONE_PEAK: Dict[str, float] = {
    "Central": 450.0,
    "North": 170.0,
    "West": 180.0,
    "East": 190.0,
}

_STREET_SHAPE_WEEKDAY = _profile(0.10, [(7, 10, 1.0), (10, 17, 0.5), (17, 22, 0.9), (22, 24, 0.3)])
_STREET_SHAPE_WEEKEND = _profile(0.12, [(9, 22, 0.6), (22, 24, 0.35)])

#: Background (off-spot) booking requests per hour, city-wide.
_BOOKING_BG_PEAK = 200.0
_BOOKING_BG_SHAPE = _profile(0.15, [(7, 10, 1.0), (17, 22, 0.95), (10, 17, 0.45)])

#: Fraction of the fleet on duty per hour.
_DUTY_SHAPE = _profile(0.45, [(6, 10, 0.85), (10, 17, 0.8), (17, 23, 0.85), (23, 24, 0.55)])


@dataclass(frozen=True)
class SpotRates:
    """Instantaneous Poisson rates (per second) at one queue spot."""

    pax_per_s: float
    taxi_per_s: float
    booking_per_s: float
    bays: int


class DemandModel:
    """Evaluates all demand/supply rates for a configured day."""

    def __init__(self, config: SimulationConfig):
        self.config = config
        self._weekend = config.day_kind is not DayKind.WEEKDAY
        self._sunday = config.day_kind is DayKind.SUNDAY
        # Fleet scaling: profiles were designed for the default 1,500-taxi
        # fleet; street/booking totals scale with fleet size so smaller
        # test fleets stay self-consistent.  Spot rates do NOT scale: the
        # paper's per-spot pickup volumes (Table 6) are absolute.
        self._fleet_scale = config.fleet_size / 1500.0

    # -- queue spots ---------------------------------------------------------

    def spot_rates(self, landmark: Landmark, hour: int) -> SpotRates:
        """Poisson rates at a spot for a given local hour (0..23)."""
        if not 0 <= hour <= 23:
            raise ValueError("hour must be in 0..23")
        prof = CATEGORY_PROFILES[landmark.category]
        if self._weekend:
            pax_shape, taxi_shape = prof.pax_weekend, prof.taxi_weekend
        else:
            pax_shape, taxi_shape = prof.pax_weekday, prof.taxi_weekday
        pax_rate = prof.pax_peak * pax_shape[hour]
        taxi_rate = prof.taxi_peak * taxi_shape[hour]
        if landmark.weekend_only and not self._weekend:
            pax_rate *= 0.05
            taxi_rate *= 0.05
        # Sunday is slightly quieter than Saturday outside leisure spots
        # (drives Fig 9's Sunday C4 rise).
        if self._sunday and landmark.category not in (
            LandmarkCategory.LEISURE_PARK,
            LandmarkCategory.TOURIST,
            LandmarkCategory.AIRPORT_FERRY,
        ):
            # Markedly quieter than Saturday: both flows drop below the
            # queue thresholds while enough pickups remain to label the
            # slots (drives Fig. 9's Sunday C4 rise).
            pax_rate *= 0.62
            taxi_rate *= 0.68
        booking_rate = pax_rate * prof.booking_frac
        return SpotRates(
            pax_per_s=pax_rate / 3600.0,
            taxi_per_s=taxi_rate / 3600.0,
            booking_per_s=booking_rate / 3600.0,
            bays=prof.bays,
        )

    def spot_daily_pax(self, landmark: Landmark) -> float:
        """Expected passenger arrivals at the spot over the whole day."""
        return sum(
            self.spot_rates(landmark, h).pax_per_s * 3600.0 for h in range(24)
        )

    # -- city-wide flows -----------------------------------------------------

    def street_hail_rate(self, zone: str, hour: int) -> float:
        """Street-hail Poisson rate (per second) in a zone at an hour."""
        peak = STREET_HAIL_ZONE_PEAK.get(zone, 200.0)
        shape = _STREET_SHAPE_WEEKEND if self._weekend else _STREET_SHAPE_WEEKDAY
        rate = peak * shape[hour] * self._fleet_scale
        if self._weekend and zone == "Central":
            rate *= 0.75
        return rate / 3600.0

    def background_booking_rate(self, hour: int) -> float:
        """Off-spot booking-request rate (per second), city-wide."""
        rate = _BOOKING_BG_PEAK * _BOOKING_BG_SHAPE[hour] * self._fleet_scale
        if self._weekend:
            rate *= 0.8
        return rate / 3600.0

    def duty_fraction(self, hour: int) -> float:
        """Fraction of the fleet on duty at an hour."""
        return _DUTY_SHAPE[hour]


def hourly_table(model: DemandModel, landmark: Landmark) -> List[SpotRates]:
    """The 24 hourly :class:`SpotRates` of a landmark (for inspection)."""
    return [model.spot_rates(landmark, h) for h in range(24)]
