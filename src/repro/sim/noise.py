"""Log-noise injection reproducing the error classes of section 6.1.1.

Real MDT logs contain (1) improper/missing taxi states, (2) duplicated
records from GPRS re-transmission and (3) GPS coordinate errors, jointly
~2.8% of all records.  The injector transforms each taxi's clean record
stream into a realistically dirty one:

* everyday GPS jitter (a few metres; not an error, just sensor noise);
* a spurious ``PAYMENT -> FREE -> PAYMENT`` stutter — the paper attributes
  this exact pattern to a clock-synchronisation bug between old MDTs and
  the taximeter (error class 1);
* randomly dropped ARRIVED/STC records (missing intermediate states —
  tolerated by the observable transition diagram, as in the real system);
* exact duplicate records (error class 2);
* large GPS outliers, possibly off-island or in water (error class 3).
"""

from __future__ import annotations

import random
from typing import List

from repro.geo.point import destination_point
from repro.sim.config import NoiseConfig
from repro.states.states import TaxiState
from repro.trace.record import MdtRecord


class NoiseInjector:
    """Applies :class:`~repro.sim.config.NoiseConfig` to record streams."""

    def __init__(self, config: NoiseConfig, seed: int = 0):
        self.config = config
        self._rng = random.Random(seed)

    def apply(self, records: List[MdtRecord]) -> List[MdtRecord]:
        """Return a noisy copy of one taxi's time-ordered records."""
        if not self.config.enabled:
            return list(records)
        noisy = self._drop_intermediate(records)
        noisy = [self._jitter(rec) for rec in noisy]
        noisy = self._insert_spurious_free(noisy)
        noisy = self._outliers(noisy)
        return self._duplicate(noisy)

    # -- individual noise channels ------------------------------------------

    def _jitter(self, rec: MdtRecord) -> MdtRecord:
        sigma = self.config.gps_jitter_m
        if sigma <= 0:
            return rec
        rng = self._rng
        bearing = rng.uniform(0.0, 360.0)
        dist = abs(rng.gauss(0.0, sigma))
        lon, lat = destination_point(rec.lon, rec.lat, bearing, dist)
        return MdtRecord(rec.ts, rec.taxi_id, lon, lat, rec.speed, rec.state)

    def _drop_intermediate(self, records: List[MdtRecord]) -> List[MdtRecord]:
        rng = self._rng
        out: List[MdtRecord] = []
        for rec in records:
            if rec.state is TaxiState.ARRIVED and rng.random() < self.config.drop_arrived_prob:
                continue
            if rec.state is TaxiState.STC and rng.random() < self.config.drop_stc_prob:
                continue
            out.append(rec)
        return out

    def _insert_spurious_free(self, records: List[MdtRecord]) -> List[MdtRecord]:
        rng = self._rng
        out: List[MdtRecord] = []
        for rec in records:
            out.append(rec)
            if (
                rec.state is TaxiState.PAYMENT
                and rng.random() < self.config.spurious_free_prob
            ):
                out.append(
                    MdtRecord(
                        rec.ts + 2.0, rec.taxi_id, rec.lon, rec.lat, 0.0,
                        TaxiState.FREE,
                    )
                )
                out.append(
                    MdtRecord(
                        rec.ts + 4.0, rec.taxi_id, rec.lon, rec.lat, 0.0,
                        TaxiState.PAYMENT,
                    )
                )
        return out

    def _outliers(self, records: List[MdtRecord]) -> List[MdtRecord]:
        rng = self._rng
        out: List[MdtRecord] = []
        for rec in records:
            if rng.random() < self.config.gps_outlier_prob:
                bearing = rng.uniform(0.0, 360.0)
                dist = self.config.gps_outlier_km * 1000.0 * rng.uniform(0.6, 1.4)
                lon, lat = destination_point(rec.lon, rec.lat, bearing, dist)
                rec = MdtRecord(rec.ts, rec.taxi_id, lon, lat, rec.speed, rec.state)
            out.append(rec)
        return out

    def _duplicate(self, records: List[MdtRecord]) -> List[MdtRecord]:
        rng = self._rng
        out: List[MdtRecord] = []
        for rec in records:
            out.append(rec)
            if rng.random() < self.config.duplicate_prob:
                out.append(rec)  # exact GPRS re-transmission
        return out


def expected_error_fraction(config: NoiseConfig, payment_fraction: float = 0.035) -> float:
    """Back-of-envelope expected fraction of *removable* error records.

    Args:
        config: the noise configuration.
        payment_fraction: fraction of records that are PAYMENT records
            (approximately trips/records).

    Returns:
        Expected fraction of records the cleaning stage should remove;
        useful for sanity checks against the paper's 2.8%.
    """
    spurious = payment_fraction * config.spurious_free_prob  # 1 of the 2 inserted
    duplicates = config.duplicate_prob
    outliers = config.gps_outlier_prob * 0.8  # most, not all, leave the city
    return spurious + duplicates + outliers
