"""Named simulation scenarios.

The default configuration reproduces the paper's balanced Singapore-like
regime.  Real deployments want to stress the analytics under skewed
regimes; each scenario is a named, documented variant a user can request
by name (``taxiqueue simulate --scenario undersupplied``) or compose
further via :func:`dataclasses.replace`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List

from repro.sim.config import SimulationConfig


def default(seed: int = 7) -> SimulationConfig:
    """The paper-calibrated baseline (see DESIGN.md scale-down policy)."""
    return SimulationConfig(seed=seed)


def undersupplied(seed: int = 7) -> SimulationConfig:
    """Taxi famine: a third of the fleet serves unchanged demand.

    Expected analytics response: passenger queues everywhere during
    peaks — C2 share rises sharply, failed bookings spike, C3 nearly
    disappears.
    """
    return SimulationConfig(seed=seed, fleet_size=500)


def oversupplied(seed: int = 7) -> SimulationConfig:
    """Taxi glut: double the fleet, patient drivers.

    Expected response: taxi queues linger at every spot — C3 and C1 grow
    at C2's expense; failed bookings nearly vanish.
    """
    return SimulationConfig(
        seed=seed,
        fleet_size=3000,
        taxi_queue_patience_s=1600.0,
    )


def night_economy(seed: int = 7) -> SimulationConfig:
    """A Saturday with strong night-life flows (the Table 9 setting)."""
    return SimulationConfig(seed=seed, day_of_week=5)


def sparse_observation(seed: int = 7) -> SimulationConfig:
    """Only 30% of the fleet is observed (stressing the amplification).

    The section-6.2.1 correction becomes a 3.33x multiplier; spot
    detection needs the full day to reach minPts.
    """
    return SimulationConfig(seed=seed, observed_fraction=0.3)


def pristine(seed: int = 7) -> SimulationConfig:
    """Noise-free logs: no duplicates, no spurious states, no jitter.

    Cleaning removes (almost) nothing: a residual ~0.3% of GPS fixes
    still land in water because simulated movement is straight-line
    rather than road-following — the same signature real urban-canyon
    data shows, so the inaccessible-zone filter keeps earning its keep.
    """
    config = SimulationConfig(seed=seed)
    return replace(config, noise=replace(config.noise, enabled=False))


SCENARIOS: Dict[str, Callable[[int], SimulationConfig]] = {
    "default": default,
    "undersupplied": undersupplied,
    "oversupplied": oversupplied,
    "night-economy": night_economy,
    "sparse-observation": sparse_observation,
    "pristine": pristine,
}


def scenario_names() -> List[str]:
    """All registered scenario names, sorted."""
    return sorted(SCENARIOS)


def build_scenario(name: str, seed: int = 7) -> SimulationConfig:
    """Build a scenario configuration by name.

    Raises:
        KeyError: for an unknown scenario name (message lists the
            available ones).
    """
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {scenario_names()}"
        ) from None
    return factory(seed)
