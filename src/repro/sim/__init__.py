"""City and taxi-fleet simulator: the data substrate of this reproduction.

The paper evaluates on proprietary MDT logs from ~15,000 Singapore taxis.
This package replaces that dataset with a discrete-event simulator that
produces logs with the same event-driven semantics:

* a synthetic 50 km x 26 km city with four zones and a landmark inventory
  matching paper Table 4's category mix (:mod:`repro.sim.city`);
* per-landmark, time-of-day demand profiles for passenger arrivals, taxi
  supply, street hails and bookings (:mod:`repro.sim.demand`);
* queue spots modelled as two-sided FIFO matching queues with boarding
  bays, so taxi queues and passenger queues emerge from arrival/service
  imbalance exactly as section 3 defines them (:mod:`repro.sim.fleet`);
* the full 11-state MDT machine per taxi, with event-driven log records
  (:mod:`repro.sim.taxi`);
* the validation side-channels of section 6.2.2 — an independent vehicle
  monitor and a booking backend that records failed bookings
  (:mod:`repro.sim.monitor`, part of the fleet simulator);
* log-noise injection reproducing the three error classes of section
  6.1.1 (:mod:`repro.sim.noise`);
* full ground truth (true spot locations, per-slot queue lengths and
  C1..C4 labels) for accuracy evaluation (:mod:`repro.sim.ground_truth`).
"""

from repro.sim.config import SimulationConfig, NoiseConfig, DayKind, day_kind_of
from repro.sim.landmarks import Landmark, LandmarkCategory
from repro.sim.city import City
from repro.sim.demand import DemandModel, SpotRates
from repro.sim.ground_truth import GroundTruth, SpotTruth, TrueSlot
from repro.sim.fleet import FleetSimulator, SimulationOutput, simulate_day
from repro.sim.noise import NoiseInjector
from repro.sim.monitor import MonitorReading, VehicleMonitor
from repro.sim.scenarios import SCENARIOS, build_scenario, scenario_names

__all__ = [
    "SimulationConfig",
    "NoiseConfig",
    "DayKind",
    "day_kind_of",
    "Landmark",
    "LandmarkCategory",
    "City",
    "DemandModel",
    "SpotRates",
    "GroundTruth",
    "SpotTruth",
    "TrueSlot",
    "FleetSimulator",
    "SimulationOutput",
    "simulate_day",
    "NoiseInjector",
    "MonitorReading",
    "VehicleMonitor",
    "SCENARIOS",
    "build_scenario",
    "scenario_names",
]
