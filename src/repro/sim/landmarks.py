"""Landmark inventory: the facilities queue spots sit next to.

Paper Table 4 classifies detected queue spots by their nearby facility:

    MRT & bus station               48.3%
    Shopping mall & hotel           11.8%
    Office building                  9.6%
    Hospital & school                8.4%
    Tourist attraction               6.2%
    Airport & ferry terminal         5.6%
    Industrial & residential area    4.5%
    Unidentified                     5.6%

The synthetic city instantiates landmarks with this category mix (the
"Unidentified" share becomes queue spots with no landmark nearby), plus
decoy landmarks that host no queue activity and a weekend-only leisure
park reproducing the sporadic-spot finding of section 7.2.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple


class LandmarkCategory(enum.Enum):
    """Facility categories of paper Table 4 (plus the leisure park of
    section 7.2's sporadic-spot finding)."""

    MRT_BUS = "MRT & BUS station"
    MALL_HOTEL = "Shopping Mall & Hotel"
    OFFICE = "Office Building"
    HOSPITAL_SCHOOL = "Hospital & School"
    TOURIST = "Tourist Attraction"
    AIRPORT_FERRY = "Airport & Ferry Terminal"
    INDUSTRIAL_RESIDENTIAL = "Industrial and Residential Area"
    LEISURE_PARK = "Leisure Park"
    NONE = "Unidentified"


#: Table 4 category shares among queue spots (NONE = "Unidentified").
TABLE4_SHARES: Dict[LandmarkCategory, float] = {
    LandmarkCategory.MRT_BUS: 0.483,
    LandmarkCategory.MALL_HOTEL: 0.118,
    LandmarkCategory.OFFICE: 0.096,
    LandmarkCategory.HOSPITAL_SCHOOL: 0.084,
    LandmarkCategory.TOURIST: 0.062,
    LandmarkCategory.AIRPORT_FERRY: 0.056,
    LandmarkCategory.INDUSTRIAL_RESIDENTIAL: 0.045,
    LandmarkCategory.NONE: 0.056,
}

#: How category placement is biased towards the four zones
#: (Central, North, West, East); rows needn't be normalised.
ZONE_PLACEMENT_WEIGHTS: Dict[LandmarkCategory, Tuple[float, float, float, float]] = {
    LandmarkCategory.MRT_BUS: (4.0, 2.0, 2.0, 2.0),
    LandmarkCategory.MALL_HOTEL: (6.0, 1.0, 1.0, 1.0),
    LandmarkCategory.OFFICE: (8.0, 0.5, 0.5, 0.5),
    LandmarkCategory.HOSPITAL_SCHOOL: (2.0, 2.0, 2.0, 2.0),
    LandmarkCategory.TOURIST: (6.0, 0.5, 0.5, 1.0),
    LandmarkCategory.AIRPORT_FERRY: (0.2, 0.2, 0.2, 6.0),
    LandmarkCategory.INDUSTRIAL_RESIDENTIAL: (0.5, 2.0, 3.0, 2.0),
    LandmarkCategory.LEISURE_PARK: (0.0, 0.5, 3.0, 0.5),
    LandmarkCategory.NONE: (2.0, 1.0, 1.0, 1.0),
}


@dataclass(frozen=True)
class Landmark:
    """A named facility that may anchor a queue spot.

    Attributes:
        landmark_id: stable identifier, e.g. ``"LM012"``.
        name: human-readable name used in reports/UI.
        category: Table 4 facility category.
        lon, lat: location in degrees.
        zone: the zone the landmark falls in (Central/North/West/East).
        hosts_queue_spot: True for landmarks with real queue activity.
        weekend_only: True for the sporadic leisure-park style spots that
            only see demand on weekends (section 7.2).
    """

    landmark_id: str
    name: str
    category: LandmarkCategory
    lon: float
    lat: float
    zone: str
    hosts_queue_spot: bool = True
    weekend_only: bool = False
