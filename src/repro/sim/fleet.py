"""The discrete-event fleet simulator.

Drives :class:`~repro.sim.taxi.TaxiAgent` objects through a simulated day:

* queue spots are two-sided FIFO matching queues (passengers on one side,
  FREE taxis on the other) with a limited number of boarding bays, so taxi
  queues and passenger queues — and the four contexts of paper Table 3 —
  emerge from arrival/service imbalance;
* demand is *pulled*: per-spot Poisson processes for passenger arrivals,
  taxi queue-joining and booking pickups (rates from
  :class:`~repro.sim.demand.DemandModel`), plus city-wide street hails and
  background bookings, are pre-generated hour by hour and recruit taxis
  from the idle pool;
* everything a taxi does is logged event-driven through its agent, then
  passed through the noise injector; only the configured observed fraction
  of taxis reaches the output store (the paper's 60% fleet coverage);
* ground truth (queue-length step functions, per-slot labels), vehicle
  monitor readings and failed bookings are captured on the side.
"""

from __future__ import annotations

import heapq
import itertools
import random
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.core.types import TimeSlotGrid
from repro.geo.point import destination_point, equirectangular_m
from repro.sim.city import City
from repro.sim.config import SimulationConfig
from repro.sim.demand import DemandModel
from repro.sim.ground_truth import GroundTruth, SpotTruth, StepFunction
from repro.sim.landmarks import Landmark
from repro.sim.monitor import MonitorReading, VehicleMonitor
from repro.sim.noise import NoiseInjector
from repro.sim.taxi import TaxiAgent, TaxiStatus
from repro.states.states import TaxiState
from repro.trace.log_store import MdtLogStore


@dataclass(frozen=True)
class FailedBooking:
    """A booking request that found no available taxi in the 1 km circle."""

    ts: float
    lon: float
    lat: float


@dataclass
class SimulationOutput:
    """Everything one simulated day produces."""

    config: SimulationConfig
    city: City
    store: MdtLogStore
    """Noisy MDT logs of the *observed* fraction of the fleet."""

    ground_truth: GroundTruth
    monitor_readings: List[MonitorReading]
    failed_bookings: List[FailedBooking]
    counters: Dict[str, int] = field(default_factory=dict)


class _IdlePool:
    """Grid-bucketed pool of idle taxis with O(1) random sampling.

    Membership is kept twice: per grid cell for nearest-within queries and
    in a swap-pop list for uniform random draws (street hails).
    """

    CELL_DEG = 0.02  # ~2.2 km

    def __init__(self) -> None:
        self._cells: Dict[Tuple[int, int], Set[TaxiAgent]] = {}
        self._order: List[TaxiAgent] = []
        self._pos: Dict[TaxiAgent, int] = {}

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, taxi: TaxiAgent) -> bool:
        return taxi in self._pos

    def _key(self, lon: float, lat: float) -> Tuple[int, int]:
        return int(lon // self.CELL_DEG), int(lat // self.CELL_DEG)

    def add(self, taxi: TaxiAgent) -> None:
        if taxi in self._pos:
            return
        key = self._key(taxi.lon, taxi.lat)
        self._cells.setdefault(key, set()).add(taxi)
        taxi._pool_key = key  # type: ignore[attr-defined]
        self._pos[taxi] = len(self._order)
        self._order.append(taxi)

    def remove(self, taxi: TaxiAgent) -> None:
        if taxi not in self._pos:
            return
        key = getattr(taxi, "_pool_key", None)
        if key is not None and key in self._cells:
            self._cells[key].discard(taxi)
        i = self._pos.pop(taxi)
        last = self._order.pop()
        if last is not taxi:
            self._order[i] = last
            self._pos[last] = i

    def nearest_within(
        self, lon: float, lat: float, radius_m: float
    ) -> Optional[TaxiAgent]:
        """The idle taxi nearest to a point, if any within the radius."""
        reach = int(radius_m / 111_000.0 / self.CELL_DEG) + 1
        cx, cy = self._key(lon, lat)
        best: Optional[TaxiAgent] = None
        best_key = (radius_m, "￿")
        for gx in range(cx - reach, cx + reach + 1):
            for gy in range(cy - reach, cy + reach + 1):
                for taxi in self._cells.get((gx, gy), ()):
                    d = equirectangular_m(lon, lat, taxi.lon, taxi.lat)
                    # Tie-break on taxi id: several idle taxis can sit at
                    # the exact same spot coordinates, and set iteration
                    # order must not leak into the simulation.
                    key = (d, taxi.taxi_id)
                    if key <= best_key:
                        best = taxi
                        best_key = key
        return best

    def random_member(self, rng: random.Random) -> Optional[TaxiAgent]:
        if not self._order:
            return None
        return self._order[rng.randrange(len(self._order))]


@dataclass
class _QueuedTaxi:
    taxi: TaxiAgent
    join_ts: float
    state: TaxiState  # FREE or BUSY while waiting
    offset_m: float = 0.0
    """How far down the physical waiting line the taxi joined."""


class _SpotState:
    """Runtime queue state of one ground-truth spot."""

    def __init__(self, landmark: Landmark, truth: SpotTruth, bays: int):
        self.landmark = landmark
        self.truth = truth
        self.pax: Deque[int] = deque()
        self.pax_arrival: Dict[int, float] = {}
        self.taxis: Deque[_QueuedTaxi] = deque()
        self.bay_free: List[float] = [0.0] * bays
        heapq.heapify(self.bay_free)
        self.retry_scheduled = False
        # Orientation of the physical waiting line (stable per spot).
        self.line_bearing = (landmark.lon * 7919.0 + landmark.lat * 104729.0) % 360.0


class FleetSimulator:
    """Simulates one day of city-wide taxi activity."""

    def __init__(self, config: SimulationConfig, city: Optional[City] = None):
        self.config = config
        self.city = city or City.generate(
            seed=config.seed,
            n_queue_spots=config.n_queue_spots,
            n_decoys=config.n_decoy_landmarks,
        )
        self.demand = DemandModel(config)
        # String seeds hash deterministically (SHA-512 path of random.seed),
        # unlike tuples, which raise, or hash()-based mixing, which varies
        # per process.
        self.rng = random.Random(f"{config.seed}:{config.day_index}:fleet")
        self._events: List[Tuple[float, int, Callable[[float], None]]] = []
        self._seq = itertools.count()
        self.taxis: List[TaxiAgent] = []
        self.idle = _IdlePool()
        self.spots: Dict[str, _SpotState] = {}
        self.failed_bookings: List[FailedBooking] = []
        self.counters: Dict[str, int] = {
            "trips": 0,
            "spot_pickups": 0,
            "street_pickups": 0,
            "booking_pickups": 0,
            "noshows": 0,
            "taxi_reneges": 0,
            "pax_abandons": 0,
            "supply_shortages": 0,
            "poached": 0,
        }
        self._pax_counter = itertools.count()
        if config.use_road_network:
            from repro.sim.roads import RoadNetwork

            self.roads = RoadNetwork(
                self.city, spacing_m=config.road_spacing_m, seed=config.seed
            )
        else:
            self.roads = None
        # Route street hails to hotspots at a probability that keeps the
        # expected per-hotspot volume *fleet-independent* (~55 true
        # pickups/day: visible at Fig. 6's permissive DBSCAN settings,
        # below the minPts=50 operating point at 60% observation).
        expected_street = sum(
            self.demand.street_hail_rate(zone.name, hour) * 3600.0
            for zone in self.city.zones
            for hour in range(24)
        )
        n_hotspots = len(self.city.hail_hotspots)
        if expected_street > 0 and n_hotspots > 0:
            self._hotspot_prob = min(
                0.5, (n_hotspots * 55.0) / expected_street
            )
        else:
            self._hotspot_prob = 0.0

    # -- event machinery -------------------------------------------------------

    def _schedule(self, ts: float, handler: Callable[[float], None]) -> None:
        if ts < self.config.day_end_ts + 3600.0:
            heapq.heappush(self._events, (ts, next(self._seq), handler))

    # -- setup -----------------------------------------------------------------

    def _setup_taxis(self) -> None:
        cfg = self.config
        day0 = cfg.day_start_ts
        for i in range(cfg.fleet_size):
            rng = random.Random(f"{cfg.seed}:{cfg.day_index}:taxi:{i}")
            lon, lat = self.city.random_land_point(rng)
            taxi = TaxiAgent(f"SH{i:04d}A", lon, lat, cfg, rng)
            self.taxis.append(taxi)
            roll = rng.random()
            shifts: List[Tuple[float, float]] = []
            if roll < 0.70:  # day shift
                shifts.append(
                    (
                        day0 + rng.uniform(5.0, 8.0) * 3600.0,
                        day0 + rng.uniform(21.0, 23.8) * 3600.0,
                    )
                )
            elif roll < 0.90:  # night shift: early-morning and evening legs
                shifts.append((day0 + 60.0, day0 + rng.uniform(8.0, 10.0) * 3600.0))
                shifts.append(
                    (day0 + rng.uniform(16.0, 19.0) * 3600.0, day0 + 86400.0)
                )
            else:  # all-day
                shifts.append((day0 + rng.uniform(0.0, 1.0) * 3600.0, day0 + 86400.0))
            for start, end in shifts:
                self._schedule(start, self._make_power_on(taxi, until=end))
                self._schedule(end, self._make_shift_end(taxi))
            first_start = shifts[0][0]
            if rng.random() < 0.4:
                taxi.pending_break_s = rng.uniform(1200.0, 3600.0)
                self._schedule(
                    first_start + rng.uniform(3.0, 8.0) * 3600.0,
                    self._make_break(taxi),
                )

    def _make_power_on(self, taxi: TaxiAgent, until: float):
        def handler(ts: float) -> None:
            if taxi.status is not TaxiStatus.OFF_DUTY:
                return
            taxi.shift_end_ts = until
            taxi.power_on(ts)
            self.idle.add(taxi)

        return handler

    def _make_shift_end(self, taxi: TaxiAgent):
        def handler(ts: float) -> None:
            if taxi.status is TaxiStatus.IDLE and ts >= taxi.shift_end_ts - 1.0:
                self.idle.remove(taxi)
                taxi.power_off(ts)

        return handler

    def _make_break(self, taxi: TaxiAgent):
        def handler(ts: float) -> None:
            if taxi.status is not TaxiStatus.IDLE or taxi.pending_break_s <= 0:
                return
            self.idle.remove(taxi)
            duration = taxi.pending_break_s
            taxi.pending_break_s = 0.0
            end = taxi.take_break(ts, duration)
            self._schedule(end, lambda t: self._return_to_service(taxi, t))

        return handler

    def _setup_spots(self) -> None:
        grid = TimeSlotGrid.for_day(
            self.config.day_start_ts, self.config.slot_seconds
        )
        self.grid = grid
        day0 = self.config.day_start_ts
        for landmark in self.city.queue_spot_landmarks:
            truth = SpotTruth(
                spot_id=landmark.landmark_id,
                landmark=landmark,
                taxi_queue=StepFunction(day0),
                pax_queue=StepFunction(day0),
            )
            bays = self.demand.spot_rates(landmark, 12).bays
            self.spots[landmark.landmark_id] = _SpotState(landmark, truth, bays)

    def _pregenerate_demand(self) -> None:
        """Pre-generate all Poisson demand events hour by hour.

        Rates are piecewise-constant per hour, so sampling a Poisson count
        per hour and spreading the events uniformly is exact.
        """
        rng = random.Random(f"{self.config.seed}:{self.config.day_index}:demand")
        day0 = self.config.day_start_ts
        for hour in range(24):
            t_lo = day0 + hour * 3600.0
            for spot in self.spots.values():
                rates = self.demand.spot_rates(spot.landmark, hour)
                for ts in _poisson_times(rng, rates.pax_per_s, t_lo, 3600.0):
                    self._schedule(ts, self._make_pax_arrival(spot))
                for ts in _poisson_times(rng, rates.taxi_per_s, t_lo, 3600.0):
                    self._schedule(ts, self._make_taxi_seek(spot))
                for ts in _poisson_times(rng, rates.booking_per_s, t_lo, 3600.0):
                    self._schedule(ts, self._make_spot_booking(spot))
            for zone in self.city.zones:
                rate = self.demand.street_hail_rate(zone.name, hour)
                for ts in _poisson_times(rng, rate, t_lo, 3600.0):
                    self._schedule(ts, self._make_street_hail(zone.name))
            bg = self.demand.background_booking_rate(hour)
            for ts in _poisson_times(rng, bg, t_lo, 3600.0):
                self._schedule(ts, self._background_booking)

    def _drive(
        self,
        taxi: TaxiAgent,
        t0: float,
        to_lon: float,
        to_lat: float,
        state: TaxiState,
        allow_jam: bool = False,
    ) -> float:
        """Drive a taxi to a destination; returns the arrival timestamp.

        Routes over the road network when enabled, straight-line
        otherwise; records are emitted either way.
        """
        if self.roads is not None:
            waypoints, seconds = self.roads.travel(
                taxi.lon, taxi.lat, to_lon, to_lat,
                self.config.drive_speed_kmh,
            )
            arrive = t0 + seconds
            taxi.emit_drive_route(t0, arrive, waypoints, state)
            return arrive
        arrive = t0 + taxi.travel_time_s(to_lon, to_lat)
        taxi.emit_drive(t0, arrive, to_lon, to_lat, state, allow_jam=allow_jam)
        return arrive

    # -- queue-spot handlers ------------------------------------------------------

    def _make_pax_arrival(self, spot: _SpotState):
        def handler(ts: float) -> None:
            pax_id = next(self._pax_counter)
            spot.pax.append(pax_id)
            spot.pax_arrival[pax_id] = ts
            spot.truth.pax_queue.add(ts, +1)
            patience = self.rng.expovariate(
                1.0 / self.config.passenger_patience_s
            )
            self._schedule(
                ts + patience, lambda t: self._pax_abandon(spot, pax_id, t)
            )
            self._try_match(spot, ts)

        return handler

    def _pax_abandon(self, spot: _SpotState, pax_id: int, ts: float) -> None:
        if pax_id in spot.pax_arrival and pax_id in spot.pax:
            spot.pax.remove(pax_id)
            del spot.pax_arrival[pax_id]
            spot.truth.pax_queue.add(ts, -1)
            self.counters["pax_abandons"] += 1

    def _make_taxi_seek(self, spot: _SpotState):
        def handler(ts: float) -> None:
            lm = spot.landmark
            taxi = self.idle.nearest_within(lm.lon, lm.lat, 8000.0)
            if taxi is None:
                self.counters["supply_shortages"] += 1
                return
            self._claim(taxi, ts)
            busy = self.rng.random() < self.config.busy_cherry_pick_prob
            arrive = self._drive(
                taxi, ts, lm.lon, lm.lat, TaxiState.FREE, allow_jam=True
            )
            self._schedule(arrive, lambda t: self._spot_join(spot, taxi, busy, t))

        return handler

    def _spot_join(
        self, spot: _SpotState, taxi: TaxiAgent, busy: bool, ts: float
    ) -> None:
        state = TaxiState.BUSY if busy else TaxiState.FREE
        offset = 5.0 + 7.0 * len(spot.taxis) + self.rng.uniform(0.0, 4.0)
        entry = _QueuedTaxi(
            taxi=taxi, join_ts=ts, state=state, offset_m=min(offset, 45.0)
        )
        spot.taxis.append(entry)
        spot.truth.taxi_queue.add(ts, +1)
        patience = self.rng.expovariate(1.0 / self.config.taxi_queue_patience_s)
        self._schedule(
            ts + patience, lambda t: self._taxi_renege(spot, entry, t)
        )
        self._try_match(spot, ts)

    def _taxi_renege(self, spot: _SpotState, entry: _QueuedTaxi, ts: float) -> None:
        if entry not in spot.taxis:
            return
        spot.taxis.remove(entry)
        spot.truth.taxi_queue.add(ts, -1)
        self.counters["taxi_reneges"] += 1
        lm = spot.landmark
        # Crawl records with an unchanged state: PEA must discard these.
        entry.taxi.emit_crawl(
            lm.lon, lm.lat, entry.join_ts, ts, [(entry.join_ts, entry.state)],
            line_bearing_deg=spot.line_bearing, start_offset_m=entry.offset_m,
        )
        if entry.state is TaxiState.BUSY:
            entry.taxi.log(ts + 5.0, lm.lon, lm.lat, 0.0, TaxiState.FREE)
        self._schedule(
            ts + 10.0, lambda t: self._return_to_service(entry.taxi, t)
        )

    def _try_match(self, spot: _SpotState, ts: float) -> None:
        while spot.pax and spot.taxis:
            bay_free = spot.bay_free[0]
            if bay_free > ts + 1.0:
                if not spot.retry_scheduled:
                    spot.retry_scheduled = True
                    self._schedule(bay_free, lambda t: self._match_retry(spot, t))
                return
            heapq.heappop(spot.bay_free)
            start = ts  # bay is free now (or within the 1 s tolerance)
            pax_id = spot.pax.popleft()
            del spot.pax_arrival[pax_id]
            entry = spot.taxis.popleft()
            spot.truth.pax_queue.add(start, -1)
            spot.truth.taxi_queue.add(start, -1)
            duration = min(
                180.0,
                max(15.0, self.rng.expovariate(1.0 / self.config.boarding_mean_s)),
            )
            end = start + duration
            heapq.heappush(spot.bay_free, end)
            self._schedule(
                end, lambda t, e=entry: self._pickup_depart(spot, e, t)
            )

    def _match_retry(self, spot: _SpotState, ts: float) -> None:
        spot.retry_scheduled = False
        self._try_match(spot, ts)

    def _pickup_depart(
        self, spot: _SpotState, entry: _QueuedTaxi, ts: float
    ) -> None:
        lm = spot.landmark
        taxi = entry.taxi
        # Crawl from queue join until boarding completes, then POB.
        taxi.emit_crawl(
            lm.lon, lm.lat, entry.join_ts, ts - 2.0,
            [(entry.join_ts, entry.state)],
            line_bearing_deg=spot.line_bearing, start_offset_m=entry.offset_m,
        )
        taxi.log(ts, lm.lon, lm.lat, self.rng.uniform(1.0, 6.0), TaxiState.POB)
        spot.truth.pickups += 1
        self.counters["spot_pickups"] += 1
        self._start_trip(taxi, ts + 15.0)

    # -- bookings ----------------------------------------------------------------

    def _make_spot_booking(self, spot: _SpotState):
        def handler(ts: float) -> None:
            lm = spot.landmark
            self._dispatch_booking(ts, lm.lon, lm.lat, at_spot=spot)

        return handler

    def _background_booking(self, ts: float) -> None:
        rng = self.rng
        if rng.random() < 0.3 and self.city.landmarks:
            lm = rng.choice(self.city.landmarks)
            bearing = rng.uniform(0.0, 360.0)
            lon, lat = destination_point(
                lm.lon, lm.lat, bearing, rng.uniform(50.0, 500.0)
            )
            lon, lat = self.city.bbox.clamp(lon, lat)
        else:
            lon, lat = self.city.random_land_point(rng)
        self._dispatch_booking(ts, lon, lat, at_spot=None)

    def _dispatch_booking(
        self,
        ts: float,
        lon: float,
        lat: float,
        at_spot: Optional[_SpotState],
    ) -> None:
        radius = self.config.dispatch_radius_m
        taxi = self.idle.nearest_within(lon, lat, radius)
        if taxi is not None:
            self._claim(taxi, ts)
            taxi.log(ts, taxi.lon, taxi.lat, 0.0, TaxiState.ONCALL)
        else:
            taxi = self._poach_queued_taxi(ts, lon, lat, radius)
            if taxi is None:
                # No taxi inside the 1 km dispatch circle: the request
                # fails (paper section 6.2.2's failed-booking definition).
                self.failed_bookings.append(FailedBooking(ts, lon, lat))
                # Most passengers re-book; a taxi from further out often
                # accepts the retry, producing the ONCALL departures that
                # QCD's Routine 2 keys on during passenger-queue periods.
                if self.rng.random() < self.config.booking_retry_prob:
                    taxi = self.idle.nearest_within(lon, lat, 4.0 * radius)
                if taxi is None:
                    return
                self._claim(taxi, ts + 30.0)
                taxi.log(ts + 30.0, taxi.lon, taxi.lat, 0.0, TaxiState.ONCALL)
        arrive = self._drive(
            taxi, ts, lon, lat, TaxiState.ONCALL, allow_jam=True
        )
        self._schedule(
            arrive,
            lambda t: self._booking_arrived(taxi, lon, lat, at_spot, t),
        )

    def _poach_queued_taxi(
        self, ts: float, lon: float, lat: float, radius: float
    ) -> Optional[TaxiAgent]:
        """Pull the tail taxi out of a nearby spot queue for a booking.

        Produces the FREE -> ONCALL sub-trajectories that PEA rule 2 must
        discard (the taxi leaves the spot without a pickup there).
        """
        if self.rng.random() > self.config.queue_poach_prob * 10.0:
            return None
        for spot in self.spots.values():
            lm = spot.landmark
            if equirectangular_m(lon, lat, lm.lon, lm.lat) > radius:
                continue
            for entry in reversed(spot.taxis):
                if entry.state is TaxiState.FREE:
                    spot.taxis.remove(entry)
                    spot.truth.taxi_queue.add(ts, -1)
                    self.counters["poached"] += 1
                    entry.taxi.emit_crawl(
                        lm.lon, lm.lat, entry.join_ts, ts,
                        [(entry.join_ts, TaxiState.FREE)],
                        line_bearing_deg=spot.line_bearing,
                        start_offset_m=entry.offset_m,
                    )
                    entry.taxi.log(
                        ts + 2.0, lm.lon, lm.lat, 0.0, TaxiState.ONCALL
                    )
                    return entry.taxi
        return None

    def _booking_arrived(
        self,
        taxi: TaxiAgent,
        lon: float,
        lat: float,
        at_spot: Optional[_SpotState],
        ts: float,
    ) -> None:
        rng = self.rng
        taxi.log(ts, lon, lat, rng.uniform(1.0, 6.0), TaxiState.ARRIVED)
        if rng.random() < self.config.booking_noshow_prob:
            wait = rng.uniform(300.0, 900.0)
            taxi.emit_crawl(lon, lat, ts, ts + wait, [(ts, TaxiState.ARRIVED)])
            taxi.log(ts + wait + 2.0, lon, lat, 0.0, TaxiState.NOSHOW)
            taxi.log(ts + wait + 8.0, lon, lat, 0.0, TaxiState.FREE)
            self.counters["noshows"] += 1
            # Scheduled, not called: the taxi must not re-enter the idle
            # pool before its already-logged future records have elapsed.
            self._schedule(
                ts + wait + 20.0, lambda t: self._return_to_service(taxi, t)
            )
            return
        board = ts + rng.uniform(20.0, 120.0)
        taxi.emit_crawl(lon, lat, ts, board - 2.0, [(ts, TaxiState.ARRIVED)])
        taxi.log(board, lon, lat, rng.uniform(1.0, 6.0), TaxiState.POB)
        self.counters["booking_pickups"] += 1
        if at_spot is not None:
            at_spot.truth.pickups += 1
        self._start_trip(taxi, board + 15.0)

    # -- street hails ---------------------------------------------------------------

    def _make_street_hail(self, zone_name: str):
        def handler(ts: float) -> None:
            taxi = self._random_idle_in_zone(zone_name)
            if taxi is None:
                self.counters["supply_shortages"] += 1
                return
            self._claim(taxi, ts)
            rng = self.rng
            if self.city.hail_hotspots and rng.random() < self._hotspot_prob:
                # Popular roadside stretches: hails cluster loosely there,
                # which is what makes Fig. 6's small-minPts settings admit
                # insignificant spots.
                hlon, hlat = rng.choice(self.city.hail_hotspots)
                lon, lat = destination_point(
                    hlon, hlat, rng.uniform(0.0, 360.0),
                    abs(rng.gauss(0.0, 12.0)),
                )
            else:
                bearing = rng.uniform(0.0, 360.0)
                lon, lat = destination_point(
                    taxi.lon, taxi.lat, bearing, rng.uniform(100.0, 1500.0)
                )
            lon, lat = self.city.bbox.clamp(lon, lat)
            arrive = ts + taxi.travel_time_s(lon, lat)
            taxi.emit_drive(ts, arrive, lon, lat, TaxiState.FREE)
            # Quick roadside pickup: two low-speed records, FREE then POB.
            taxi.log(arrive, lon, lat, rng.uniform(2.0, 7.0), TaxiState.FREE)
            board = arrive + rng.uniform(15.0, 40.0)
            taxi.log(board, lon, lat, rng.uniform(1.0, 6.0), TaxiState.POB)
            self.counters["street_pickups"] += 1
            self._start_trip(taxi, board + 10.0)

        return handler

    def _random_idle_in_zone(self, zone_name: str) -> Optional[TaxiAgent]:
        for _ in range(12):
            taxi = self.idle.random_member(self.rng)
            if taxi is None:
                return None
            if self.city.zone_of(taxi.lon, taxi.lat) == zone_name:
                return taxi
        return None

    # -- trips ------------------------------------------------------------------------

    def _start_trip(self, taxi: TaxiAgent, ts: float) -> None:
        rng = self.rng
        dest = self._sample_destination(rng, taxi.lon, taxi.lat)
        self.counters["trips"] += 1
        if self.roads is not None:
            arrive = self._trip_via_roads(taxi, ts, dest)
            self._schedule(arrive, lambda t: self._dropoff(taxi, t))
            return
        arrive = ts + taxi.travel_time_s(*dest)
        stc_at = arrive - 60.0
        if rng.random() < 0.7 and stc_at > ts + 60.0:
            # Drive in POB until pressing STC, then STC for the last minute.
            mid = self._interp(taxi.lon, taxi.lat, dest, (stc_at - ts) / (arrive - ts))
            taxi.emit_drive(ts, stc_at, mid[0], mid[1], TaxiState.POB, allow_jam=True)
            taxi.log(stc_at, mid[0], mid[1], rng.gauss(38.0, 5.0), TaxiState.STC)
            taxi.emit_drive(stc_at, arrive, dest[0], dest[1], TaxiState.STC)
        else:
            taxi.emit_drive(ts, arrive, dest[0], dest[1], TaxiState.POB, allow_jam=True)
        self._schedule(arrive, lambda t: self._dropoff(taxi, t))

    def _trip_via_roads(
        self, taxi: TaxiAgent, ts: float, dest: Tuple[float, float]
    ) -> float:
        """A POB trip along the road network, pressing STC near the end."""
        from repro.sim.roads import split_polyline

        rng = self.rng
        waypoints, seconds = self.roads.travel(
            taxi.lon, taxi.lat, dest[0], dest[1], self.config.drive_speed_kmh
        )
        arrive = ts + seconds
        stc_fraction = 1.0 - 60.0 / seconds if seconds > 120.0 else None
        if stc_fraction and rng.random() < 0.7:
            head, tail = split_polyline(waypoints, stc_fraction)
            stc_at = ts + seconds * stc_fraction
            taxi.emit_drive_route(ts, stc_at, head, TaxiState.POB)
            taxi.log(
                stc_at, taxi.lon, taxi.lat, rng.gauss(38.0, 5.0),
                TaxiState.STC,
            )
            taxi.emit_drive_route(stc_at, arrive, tail, TaxiState.STC)
        else:
            taxi.emit_drive_route(ts, arrive, waypoints, TaxiState.POB)
        return arrive

    @staticmethod
    def _interp(
        lon: float, lat: float, dest: Tuple[float, float], frac: float
    ) -> Tuple[float, float]:
        return lon + (dest[0] - lon) * frac, lat + (dest[1] - lat) * frac

    def _sample_destination(
        self, rng: random.Random, from_lon: float, from_lat: float
    ) -> Tuple[float, float]:
        """Trip destination with realistic exponential leg lengths.

        Urban taxi trips are short-haul (a few km); sampling the distance
        as ``800 m + Exp(mean 4.5 km)`` keeps the fleet's trip capacity at
        city scale instead of criss-crossing the 50 km island.  A minority
        of trips end right at a landmark, feeding the idle pool near spots.
        """
        for _ in range(50):
            dist = 800.0 + rng.expovariate(1.0 / 4500.0)
            bearing = rng.uniform(0.0, 360.0)
            lon, lat = destination_point(from_lon, from_lat, bearing, dist)
            if rng.random() < 0.25 and self.city.landmarks:
                lm = min(
                    rng.sample(self.city.landmarks, min(4, len(self.city.landmarks))),
                    key=lambda m: equirectangular_m(lon, lat, m.lon, m.lat),
                )
                off = rng.uniform(60.0, 400.0)
                lon, lat = destination_point(
                    lm.lon, lm.lat, rng.uniform(0.0, 360.0), off
                )
            if self.city.is_accessible(lon, lat):
                return lon, lat
        return self.city.random_land_point(rng)

    def _dropoff(self, taxi: TaxiAgent, ts: float) -> None:
        rng = self.rng
        last_state = taxi.records[-1].state if taxi.records else TaxiState.POB
        taxi.log(ts, taxi.lon, taxi.lat, rng.uniform(2.0, 7.0), last_state)
        taxi.log(ts + 10.0, taxi.lon, taxi.lat, 0.0, TaxiState.PAYMENT)
        pay = rng.uniform(20.0, 90.0)
        taxi.log(ts + 10.0 + pay, taxi.lon, taxi.lat, 0.0, TaxiState.FREE)
        self._schedule(
            ts + 15.0 + pay, lambda t: self._return_to_service(taxi, t)
        )

    # -- common bookkeeping --------------------------------------------------------------

    def _claim(self, taxi: TaxiAgent, ts: float) -> None:
        """Remove a taxi from the idle pool and flush its cruise records."""
        self.idle.remove(taxi)
        taxi.end_idle(ts)
        taxi.status = TaxiStatus.BUSY

    def _return_to_service(self, taxi: TaxiAgent, ts: float) -> None:
        """Taxi finished an activity: go off duty, on break, or idle."""
        if ts >= taxi.shift_end_ts or ts >= self.config.day_end_ts:
            taxi.status = TaxiStatus.BUSY
            taxi.power_off(min(ts, self.config.day_end_ts - 1.0))
            return
        taxi.status = TaxiStatus.IDLE
        taxi.begin_idle(ts)
        self.idle.add(taxi)

    # -- run ---------------------------------------------------------------------------------

    def run(self) -> SimulationOutput:
        """Simulate the configured day and assemble the output bundle."""
        cfg = self.config
        self._setup_spots()
        self._setup_taxis()
        self._pregenerate_demand()

        day_end = cfg.day_end_ts
        while self._events:
            ts, _, handler = heapq.heappop(self._events)
            if ts >= day_end:
                break
            handler(ts)

        self._finalize_day(day_end)

        grid = self.grid
        truth_spots: Dict[str, SpotTruth] = {}
        for spot in self.spots.values():
            spot.truth.finalize(
                grid, cfg.truth_taxi_queue_len, cfg.truth_pax_queue_len
            )
            truth_spots[spot.truth.spot_id] = spot.truth
        ground_truth = GroundTruth(grid=grid, spots=truth_spots)

        monitor = VehicleMonitor(cfg.monitor_interval_s)
        readings: List[MonitorReading] = []
        for truth in truth_spots.values():
            readings.extend(monitor.observe(truth, cfg.day_start_ts, day_end))

        store = self._build_store()
        return SimulationOutput(
            config=cfg,
            city=self.city,
            store=store,
            ground_truth=ground_truth,
            monitor_readings=readings,
            failed_bookings=self.failed_bookings,
            counters=dict(self.counters),
        )

    def _finalize_day(self, day_end: float) -> None:
        """Drain queues and close every taxi's day at the horizon."""
        for spot in self.spots.values():
            lm = spot.landmark
            while spot.taxis:
                entry = spot.taxis.popleft()
                spot.truth.taxi_queue.add(day_end - 1.0, -1)
                leave = max(entry.join_ts + 5.0, day_end - 60.0)
                entry.taxi.emit_crawl(
                    lm.lon, lm.lat, entry.join_ts, leave,
                    [(entry.join_ts, entry.state)],
                    line_bearing_deg=spot.line_bearing,
                    start_offset_m=entry.offset_m,
                )
            while spot.pax:
                pax_id = spot.pax.popleft()
                del spot.pax_arrival[pax_id]
                spot.truth.pax_queue.add(day_end - 1.0, -1)
        for taxi in self.taxis:
            if taxi.status is TaxiStatus.IDLE:
                self.idle.remove(taxi)
                # Never power off earlier than already-logged records
                # (a late dropoff logs its FREE a minute into the future).
                last_ts = taxi.records[-1].ts if taxi.records else day_end
                taxi.power_off(max(day_end - 30.0, last_ts + 5.0))

    def _build_store(self) -> MdtLogStore:
        """Noise-inject every observed taxi's records and build the store."""
        cfg = self.config
        rng = random.Random(f"{cfg.seed}:{cfg.day_index}:observe")
        observed = {
            taxi.taxi_id
            for taxi in self.taxis
            if rng.random() < cfg.observed_fraction
        }
        injector = NoiseInjector(cfg.noise, seed=cfg.seed * 7919 + cfg.day_index)
        store = MdtLogStore()
        for taxi in self.taxis:
            if taxi.taxi_id not in observed or not taxi.records:
                continue
            taxi.records.sort(key=lambda r: r.ts)
            store.extend(injector.apply(taxi.records))
        return store


def _poisson_times(
    rng: random.Random, rate_per_s: float, t_lo: float, span_s: float
) -> List[float]:
    """Event times of a constant-rate Poisson process over a window."""
    if rate_per_s <= 0:
        return []
    expected = rate_per_s * span_s
    n = _poisson_sample(rng, expected)
    return sorted(t_lo + rng.random() * span_s for _ in range(n))


def _poisson_sample(rng: random.Random, mean: float) -> int:
    """Draw from a Poisson distribution (Knuth for small, normal for large)."""
    if mean <= 0:
        return 0
    if mean > 50.0:
        return max(0, int(round(rng.gauss(mean, mean**0.5))))
    limit = 2.718281828459045 ** (-mean)
    k = 0
    product = rng.random()
    while product > limit:
        k += 1
        product *= rng.random()
    return k


def simulate_day(
    config: SimulationConfig, city: Optional[City] = None
) -> SimulationOutput:
    """Convenience wrapper: build a simulator, run it, return its output."""
    return FleetSimulator(config, city=city).run()
