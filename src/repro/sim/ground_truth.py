"""Ground truth captured by the simulator for accuracy evaluation.

The paper validates against external data sources (landmarks, a vehicle
monitor, failed bookings) because it has no ground truth.  The simulator
does: it records, per queue spot, the exact step functions of taxi-queue
and passenger-queue length over the day.  Per 30-minute slot these yield
time-averaged queue lengths and therefore *true* C1..C4 labels, against
which the engine's output is scored.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.types import QueueType, TimeSlotGrid
from repro.sim.landmarks import Landmark


class StepFunction:
    """A piecewise-constant integer function of time (queue length)."""

    def __init__(self, t0: float, value: int = 0):
        self._times: List[float] = [t0]
        self._values: List[int] = [value]

    def set(self, ts: float, value: int) -> None:
        """Record a new value from time ``ts`` onward.

        Raises:
            ValueError: when ``ts`` precedes the last change point.
        """
        if ts < self._times[-1]:
            raise ValueError("step function updates must be time-ordered")
        if value == self._values[-1]:
            return
        if ts == self._times[-1]:
            self._values[-1] = value
            return
        self._times.append(ts)
        self._values.append(value)

    def add(self, ts: float, delta: int) -> int:
        """Increment the current value by ``delta`` at ``ts``.

        Tolerates sub-second reordering from simultaneous simulator events
        by clamping ``ts`` forward to the last change point.
        """
        if self._times[-1] - 2.0 <= ts < self._times[-1]:
            ts = self._times[-1]
        new_value = self._values[-1] + delta
        if new_value < 0:
            raise ValueError("queue length cannot go negative")
        self.set(ts, new_value)
        return new_value

    @property
    def current(self) -> int:
        """The latest value."""
        return self._values[-1]

    def value_at(self, ts: float) -> int:
        """The value in effect at time ``ts``."""
        i = bisect.bisect_right(self._times, ts) - 1
        return self._values[max(0, i)]

    def mean_over(self, start: float, end: float) -> float:
        """Time-average of the function over ``[start, end)``.

        Raises:
            ValueError: for an empty interval.
        """
        if end <= start:
            raise ValueError("interval must have positive length")
        area = 0.0
        i = bisect.bisect_right(self._times, start) - 1
        i = max(0, i)
        t = start
        while t < end:
            seg_end = self._times[i + 1] if i + 1 < len(self._times) else end
            seg_end = min(seg_end, end)
            area += self._values[i] * (seg_end - t)
            t = seg_end
            i += 1
            if i >= len(self._times):
                break
        return area / (end - start)


@dataclass(frozen=True)
class TrueSlot:
    """Ground truth for one spot and one time slot."""

    slot: int
    mean_taxi_queue: float
    mean_pax_queue: float
    label: QueueType


@dataclass
class SpotTruth:
    """Everything the simulator knows about one ground-truth queue spot."""

    spot_id: str
    landmark: Landmark
    taxi_queue: StepFunction
    pax_queue: StepFunction
    pickups: int = 0
    """Completed pickups at the spot over the simulated day."""

    slots: List[TrueSlot] = field(default_factory=list)
    """Filled by :meth:`finalize`."""

    @property
    def lon(self) -> float:
        return self.landmark.lon

    @property
    def lat(self) -> float:
        return self.landmark.lat

    def finalize(
        self,
        grid: TimeSlotGrid,
        taxi_threshold: float,
        pax_threshold: float,
    ) -> None:
        """Compute per-slot averages and true labels."""
        self.slots = []
        for j in grid.all_slots():
            lo, hi = grid.bounds(j)
            taxi_avg = self.taxi_queue.mean_over(lo, hi)
            pax_avg = self.pax_queue.mean_over(lo, hi)
            label = QueueType.from_flags(
                taxi_queue=taxi_avg >= taxi_threshold,
                passenger_queue=pax_avg >= pax_threshold,
            )
            self.slots.append(TrueSlot(j, taxi_avg, pax_avg, label))


@dataclass
class GroundTruth:
    """Simulator ground truth for a whole day."""

    grid: TimeSlotGrid
    spots: Dict[str, SpotTruth]

    def true_spot_locations(self) -> List[Tuple[float, float]]:
        """``(lon, lat)`` of every ground-truth spot that saw pickups."""
        return [
            (spot.lon, spot.lat)
            for spot in self.spots.values()
            if spot.pickups > 0
        ]

    def label_of(self, spot_id: str, slot: int) -> QueueType:
        """True label of one spot-slot.

        Raises:
            KeyError / IndexError: for unknown spot or slot.
        """
        return self.spots[spot_id].slots[slot].label

    def label_counts(self) -> Dict[QueueType, int]:
        """How many spot-slots carry each true label."""
        counts: Dict[QueueType, int] = {label: 0 for label in QueueType}
        for spot in self.spots.values():
            for slot in spot.slots:
                counts[slot.label] += 1
        return counts
