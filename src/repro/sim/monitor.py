"""The independent vehicle monitor system (paper section 6.2.2, Table 8).

The paper validates taxi-queue labels against "an independent vehicle
monitor system [14] ... continuously observing the vehicle number inside a
taxi stand area (normally a predefined polygon).  The monitor system
updates the vehicle number every 60 seconds".

Our monitor samples each spot's *true* taxi-queue step function on the
same 60-second cadence, which is exactly what a camera/loop sensor over
the stand polygon would report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.types import TimeSlotGrid
from repro.sim.ground_truth import SpotTruth


@dataclass(frozen=True)
class MonitorReading:
    """One 60-second sample of the waiting-taxi count at a spot."""

    spot_id: str
    ts: float
    taxi_count: int


class VehicleMonitor:
    """Samples waiting-taxi counts at monitored spots every ``interval_s``."""

    def __init__(self, interval_s: float = 60.0):
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        self.interval_s = interval_s

    def observe(
        self, spot: SpotTruth, start_ts: float, end_ts: float
    ) -> List[MonitorReading]:
        """Readings for one spot over ``[start_ts, end_ts)``."""
        readings: List[MonitorReading] = []
        t = start_ts
        while t < end_ts:
            readings.append(
                MonitorReading(
                    spot_id=spot.spot_id,
                    ts=t,
                    taxi_count=spot.taxi_queue.value_at(t),
                )
            )
            t += self.interval_s
        return readings

    def slot_averages(
        self, readings: List[MonitorReading], grid: TimeSlotGrid
    ) -> Dict[int, float]:
        """Average monitored taxi count per time slot."""
        sums: Dict[int, float] = {}
        counts: Dict[int, int] = {}
        for reading in readings:
            slot = grid.slot_of(reading.ts)
            if slot is None:
                continue
            sums[slot] = sums.get(slot, 0.0) + reading.taxi_count
            counts[slot] = counts.get(slot, 0) + 1
        return {slot: sums[slot] / counts[slot] for slot in sums}
