"""Landmark matching for detected queue spots (paper Table 4).

The paper manually labelled each detected spot with its nearby facility
via Google Street View; the synthetic city's landmark inventory lets us do
the same mechanically.  A spot matches the nearest landmark within
``radius_m``; spots with no landmark in range are "Unidentified" (5.6% in
the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.types import QueueSpot
from repro.geo.point import equirectangular_m
from repro.sim.landmarks import Landmark, LandmarkCategory

#: Default match radius: a spot belongs to a facility within ~60 m
#: (taxi stands sit at entrances/driveways, not on the rooftop point).
DEFAULT_MATCH_RADIUS_M = 60.0


@dataclass(frozen=True)
class LandmarkMatch:
    """A spot-to-landmark assignment."""

    spot: QueueSpot
    landmark: Optional[Landmark]
    distance_m: float

    @property
    def category(self) -> LandmarkCategory:
        """Matched category, NONE when no landmark is in range."""
        if self.landmark is None:
            return LandmarkCategory.NONE
        return self.landmark.category


def match_spots_to_landmarks(
    spots: Sequence[QueueSpot],
    landmarks: Sequence[Landmark],
    radius_m: float = DEFAULT_MATCH_RADIUS_M,
) -> List[LandmarkMatch]:
    """Assign each spot to its nearest landmark within the radius."""
    matches: List[LandmarkMatch] = []
    for spot in spots:
        best: Optional[Landmark] = None
        best_d = float("inf")
        for lm in landmarks:
            d = equirectangular_m(spot.lon, spot.lat, lm.lon, lm.lat)
            if d < best_d:
                best = lm
                best_d = d
        if best is None or best_d > radius_m:
            matches.append(LandmarkMatch(spot, None, best_d))
        else:
            matches.append(LandmarkMatch(spot, best, best_d))
    return matches


def landmark_category_table(
    matches: Sequence[LandmarkMatch],
) -> Dict[LandmarkCategory, float]:
    """Category shares among detected spots (the Table 4 rows).

    The sporadic LEISURE_PARK category is folded into
    INDUSTRIAL_RESIDENTIAL for comparability with the paper's eight rows
    (the paper's weekend-only leisure park is reported under that bucket).
    """
    counts: Dict[LandmarkCategory, int] = {}
    for match in matches:
        category = match.category
        if category is LandmarkCategory.LEISURE_PARK:
            category = LandmarkCategory.INDUSTRIAL_RESIDENTIAL
        counts[category] = counts.get(category, 0) + 1
    total = sum(counts.values())
    if total == 0:
        return {}
    return {category: counts[category] / total for category in counts}
