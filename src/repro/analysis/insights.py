"""Driver-behaviour mining (paper section 7.2, "Interesting Findings").

The paper reports that "during the time slots of C1 and C2, especially C2
(namely only passenger queue), a number of taxis enter the queue spots
with a BUSY state and then quickly leave with a POB state", i.e. drivers
abuse BUSY to cherry-pick passengers while dodging the queue discipline.

:func:`find_busy_cherry_picks` mines exactly that pattern from the logs;
:func:`cherry_pick_report` cross-tabulates it with the QCD labels so the
section-7.2 claim (the behaviour concentrates in passenger-queue slots)
can be checked quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.engine import SpotAnalysis
from repro.core.types import QueueType, TimeSlotGrid
from repro.geo.point import equirectangular_m
from repro.states.states import TaxiState
from repro.trace.log_store import MdtLogStore


@dataclass(frozen=True)
class CherryPickEvent:
    """One BUSY -> POB pickup: a driver choosing their passenger.

    Attributes:
        taxi_id: the cherry-picking driver's vehicle.
        ts: timestamp of the POB record.
        lon, lat: where it happened (the BUSY dwell centroid).
        dwell_s: how long the taxi sat in BUSY before picking up.
    """

    taxi_id: str
    ts: float
    lon: float
    lat: float
    dwell_s: float


def find_busy_cherry_picks(
    store: MdtLogStore,
    min_dwell_s: float = 30.0,
    max_dwell_s: float = 3600.0,
) -> List[CherryPickEvent]:
    """Mine BUSY -> POB pickup events from a log store.

    A cherry-pick is a maximal run of BUSY records followed directly by a
    POB record, with the BUSY dwell inside ``[min_dwell_s, max_dwell_s]``
    (momentary BUSY blips and all-day personal breaks are excluded).
    """
    events: List[CherryPickEvent] = []
    for trajectory in store.iter_trajectories():
        records = trajectory.records
        run_start: Optional[int] = None
        for i, record in enumerate(records):
            if record.state is TaxiState.BUSY:
                if run_start is None:
                    run_start = i
                continue
            if run_start is not None and record.state is TaxiState.POB:
                busy_run = records[run_start:i]
                dwell = busy_run[-1].ts - busy_run[0].ts
                if min_dwell_s <= dwell <= max_dwell_s:
                    lon = sum(r.lon for r in busy_run) / len(busy_run)
                    lat = sum(r.lat for r in busy_run) / len(busy_run)
                    events.append(
                        CherryPickEvent(
                            taxi_id=trajectory.taxi_id,
                            ts=record.ts,
                            lon=lon,
                            lat=lat,
                            dwell_s=dwell,
                        )
                    )
            run_start = None
    return events


@dataclass
class CherryPickReport:
    """Cross-tabulation of cherry-picks against queue contexts."""

    events_total: int
    events_at_spots: int
    by_label: Dict[QueueType, int]
    per_label_rate: Dict[QueueType, float]
    """Cherry-picks per labelled slot (normalises for label frequency)."""

    repeat_offenders: List[str]
    """Taxi ids with more than one cherry-pick at queue spots."""


def cherry_pick_report(
    events: Sequence[CherryPickEvent],
    analyses: Iterable[SpotAnalysis],
    grid: TimeSlotGrid,
    spot_radius_m: float = 60.0,
) -> CherryPickReport:
    """Attribute cherry-picks to spots/slots and their QCD labels."""
    analyses = list(analyses)
    by_label: Dict[QueueType, int] = {qt: 0 for qt in QueueType}
    slot_counts: Dict[QueueType, int] = {qt: 0 for qt in QueueType}
    for analysis in analyses:
        for slot_label in analysis.labels:
            slot_counts[slot_label.label] += 1

    offender_counts: Dict[str, int] = {}
    at_spots = 0
    for event in events:
        best: Optional[SpotAnalysis] = None
        best_d = spot_radius_m
        for analysis in analyses:
            d = equirectangular_m(
                event.lon, event.lat, analysis.spot.lon, analysis.spot.lat
            )
            if d <= best_d:
                best = analysis
                best_d = d
        if best is None:
            continue
        slot = grid.slot_of(event.ts)
        if slot is None or slot >= len(best.labels):
            continue
        at_spots += 1
        by_label[best.labels[slot].label] += 1
        offender_counts[event.taxi_id] = offender_counts.get(event.taxi_id, 0) + 1

    per_label_rate = {
        qt: (by_label[qt] / slot_counts[qt]) if slot_counts[qt] else 0.0
        for qt in QueueType
    }
    return CherryPickReport(
        events_total=len(events),
        events_at_spots=at_spots,
        by_label=by_label,
        per_label_rate=per_label_rate,
        repeat_offenders=sorted(
            taxi for taxi, n in offender_counts.items() if n > 1
        ),
    )
