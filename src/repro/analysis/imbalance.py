"""Supply/demand imbalance reporting — the government-stakeholder view.

The paper's introduction names three consumers of the analytics; the
third is "the government agencies [who] need such information to
understand the imbalance between taxi supply and demand, and accordingly
take necessary actions (e.g., increase operating taxis or adjust taxi
fares)".  Section 9 adds working with the LTA to "set up new taxi stands
at the busy queuing spots".

This module turns per-slot labels into that report:

* an *imbalance index* per slot-of-day: +1 means pure passenger queueing
  (demand excess), -1 pure taxi queueing (supply excess), 0 balanced;
* per-zone hourly profiles of the index (where and when to act);
* a new-taxi-stand shortlist: detected spots with heavy queueing that sit
  at no known stand-like landmark (the section-9 action item).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.engine import SpotAnalysis
from repro.core.types import QueueType
from repro.geo.point import equirectangular_m
from repro.sim.landmarks import Landmark

#: Contribution of each label to the imbalance index.
_LABEL_WEIGHT: Dict[QueueType, Optional[float]] = {
    QueueType.C1: 0.0,     # both queue: busy but balanced
    QueueType.C2: +1.0,    # passenger queue: demand excess
    QueueType.C3: -1.0,    # taxi queue: supply excess
    QueueType.C4: 0.0,     # idle: balanced
    QueueType.UNIDENTIFIED: None,  # no evidence
}


def imbalance_index(labels: Iterable[QueueType]) -> Optional[float]:
    """Mean demand-supply imbalance over a set of labels, in [-1, +1].

    Returns None when no label carries evidence (all unidentified).
    """
    weights = [
        _LABEL_WEIGHT[label]
        for label in labels
        if _LABEL_WEIGHT[label] is not None
    ]
    if not weights:
        return None
    return sum(weights) / len(weights)


@dataclass
class ZoneImbalanceProfile:
    """Hourly imbalance profile of one zone."""

    zone: str
    hourly: List[Optional[float]]
    """24 values in [-1, +1], None where no labelled evidence exists."""

    @property
    def peak_demand_hour(self) -> Optional[int]:
        """Hour with the strongest passenger-side imbalance."""
        best: Optional[int] = None
        for hour, value in enumerate(self.hourly):
            if value is None:
                continue
            if best is None or value > self.hourly[best]:
                best = hour
        return best

    @property
    def peak_supply_hour(self) -> Optional[int]:
        """Hour with the strongest taxi-side imbalance."""
        best: Optional[int] = None
        for hour, value in enumerate(self.hourly):
            if value is None:
                continue
            if best is None or value < self.hourly[best]:
                best = hour
        return best


def zone_imbalance_profiles(
    analyses: Iterable[SpotAnalysis],
    slots_per_hour: int = 2,
) -> Dict[str, ZoneImbalanceProfile]:
    """Hourly imbalance index per zone from per-slot labels.

    Args:
        analyses: tier-2 output (slot index 0 = midnight).
        slots_per_hour: slot-grid resolution (2 for 30-minute slots).
    """
    buckets: Dict[str, Dict[int, List[QueueType]]] = {}
    for analysis in analyses:
        zone = analysis.spot.zone
        for slot_label in analysis.labels:
            hour = (slot_label.slot // slots_per_hour) % 24
            buckets.setdefault(zone, {}).setdefault(hour, []).append(
                slot_label.label
            )
    profiles: Dict[str, ZoneImbalanceProfile] = {}
    for zone, hours in buckets.items():
        hourly = [
            imbalance_index(hours.get(hour, [])) for hour in range(24)
        ]
        profiles[zone] = ZoneImbalanceProfile(zone=zone, hourly=hourly)
    return profiles


@dataclass(frozen=True)
class StandProposal:
    """A candidate location for a new official taxi stand (section 9)."""

    spot_id: str
    lon: float
    lat: float
    zone: str
    queueing_slots: int
    """Slots labelled C1/C2/C3 — sustained queueing either side."""

    nearest_landmark: Optional[str]
    nearest_landmark_m: float


def propose_new_stands(
    analyses: Iterable[SpotAnalysis],
    landmarks: Sequence[Landmark],
    stand_categories: Sequence = (),
    min_queueing_slots: int = 10,
    known_stand_radius_m: float = 60.0,
) -> List[StandProposal]:
    """Shortlist busy queueing spots lacking official infrastructure.

    Args:
        analyses: tier-2 output.
        landmarks: the known facility inventory.
        stand_categories: landmark categories considered to already have
            stand infrastructure; a spot within ``known_stand_radius_m``
            of one is excluded.  Empty means "exclude nothing by
            category" (every landmark counts as infrastructure).
        min_queueing_slots: minimum C1/C2/C3 slots to qualify.

    Returns:
        Proposals ordered by queueing intensity (busiest first).
    """
    proposals: List[StandProposal] = []
    for analysis in analyses:
        queueing = sum(
            1
            for slot_label in analysis.labels
            if slot_label.label
            in (QueueType.C1, QueueType.C2, QueueType.C3)
        )
        if queueing < min_queueing_slots:
            continue
        spot = analysis.spot
        nearest: Optional[Landmark] = None
        nearest_d = float("inf")
        for lm in landmarks:
            d = equirectangular_m(spot.lon, spot.lat, lm.lon, lm.lat)
            if d < nearest_d:
                nearest, nearest_d = lm, d
        has_infrastructure = (
            nearest is not None
            and nearest_d <= known_stand_radius_m
            and (not stand_categories or nearest.category in stand_categories)
        )
        if has_infrastructure:
            continue
        proposals.append(
            StandProposal(
                spot_id=spot.spot_id,
                lon=spot.lon,
                lat=spot.lat,
                zone=spot.zone,
                queueing_slots=queueing,
                nearest_landmark=nearest.name if nearest else None,
                nearest_landmark_m=nearest_d,
            )
        )
    proposals.sort(key=lambda p: -p.queueing_slots)
    return proposals
