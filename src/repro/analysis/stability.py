"""Multi-day stability analyses (paper Fig. 8, Tables 5/6, Fig. 9).

Runs the simulate -> detect -> disambiguate pipeline for each day of the
week and derives:

* per-zone detected spot counts per day (Fig. 8);
* the modified-Hausdorff distance matrix between daily spot sets
  (Table 5);
* average pickup sub-trajectory counts per spot per zone (Table 6);
* queue-type proportions per day of week (Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.engine import EngineConfig, QueueAnalyticEngine, SpotAnalysis
from repro.core.reports import citywide_proportions
from repro.core.spots import SpotDetectionResult
from repro.core.types import QueueType
from repro.geo.hausdorff import modified_hausdorff
from repro.sim.city import City
from repro.sim.config import DAY_NAMES, SimulationConfig
from repro.sim.fleet import SimulationOutput, simulate_day


@dataclass
class DayResult:
    """Pipeline output for one simulated day."""

    day_of_week: int
    output: SimulationOutput
    detection: SpotDetectionResult
    analyses: Optional[Dict[str, SpotAnalysis]] = None

    @property
    def day_name(self) -> str:
        """Mon..Sun."""
        return DAY_NAMES[self.day_of_week]


def run_week(
    base_config: SimulationConfig,
    city: Optional[City] = None,
    engine_config: Optional[EngineConfig] = None,
    disambiguate: bool = False,
    days: Sequence[int] = tuple(range(7)),
) -> List[DayResult]:
    """Run the full pipeline for each requested day of week.

    The same city is reused across days (the geography does not change;
    only demand profiles do), matching the paper's week-long study.

    Args:
        base_config: configuration template; ``day_of_week``/``day_index``
            are overridden per day.
        city: optional pre-built city (built from the config otherwise).
        engine_config: engine configuration (defaults derived from the
            simulation's observed fraction).
        disambiguate: also run tier 2 per day (needed for Fig. 9).
        days: which days of week to simulate (0=Mon..6=Sun).
    """
    from dataclasses import replace

    city = city or City.generate(
        seed=base_config.seed,
        n_queue_spots=base_config.n_queue_spots,
        n_decoys=base_config.n_decoy_landmarks,
    )
    results: List[DayResult] = []
    for day in days:
        config = replace(base_config, day_of_week=day, day_index=day)
        output = simulate_day(config, city=city)
        ecfg = engine_config or EngineConfig(
            observed_fraction=config.observed_fraction
        )
        engine = QueueAnalyticEngine(
            zones=city.zones,
            projection=city.projection,
            config=ecfg,
            city_bbox=city.bbox,
            inaccessible=city.water,
        )
        detection = engine.detect_spots(output.store)
        analyses = (
            engine.disambiguate(output.store, detection, output.ground_truth.grid)
            if disambiguate
            else None
        )
        results.append(DayResult(day, output, detection, analyses))
    return results


def zone_counts_by_day(results: Sequence[DayResult]) -> Dict[str, List[int]]:
    """Detected spot count per zone per day (Fig. 8 series)."""
    zones = sorted(
        {zone for r in results for zone in r.detection.per_zone_counts}
    )
    return {
        zone: [r.detection.per_zone_counts.get(zone, 0) for r in results]
        for zone in zones
    }


def hausdorff_matrix(results: Sequence[DayResult]) -> np.ndarray:
    """Pairwise modified-Hausdorff distances between daily spot sets
    (Table 5), in metres.
    """
    n = len(results)
    matrix = np.zeros((n, n), dtype=np.float64)
    projections = [r.output.city.projection for r in results]
    xy_sets = []
    for r, proj in zip(results, projections):
        lons = np.asarray([s.lon for s in r.detection.spots])
        lats = np.asarray([s.lat for s in r.detection.spots])
        xy_sets.append(proj.to_xy_array(lons, lats))
    for i in range(n):
        for j in range(i + 1, n):
            d = modified_hausdorff(xy_sets[i], xy_sets[j])
            matrix[i, j] = d
            matrix[j, i] = d
    return matrix


def pickup_counts_table(
    results: Sequence[DayResult],
) -> Dict[str, Dict[str, float]]:
    """Average pickup-event count per detected spot per zone (Table 6).

    Returns ``{"Working Day"/"Weekend Day": {zone: avg_count}}``.
    """
    groups = {
        "Working Day": [r for r in results if r.day_of_week <= 4],
        "Weekend Day": [r for r in results if r.day_of_week >= 5],
    }
    table: Dict[str, Dict[str, float]] = {}
    for name, days in groups.items():
        if not days:
            continue
        zone_sums: Dict[str, float] = {}
        zone_spots: Dict[str, int] = {}
        for r in days:
            for spot in r.detection.spots:
                zone_sums[spot.zone] = (
                    zone_sums.get(spot.zone, 0.0) + spot.pickup_count
                )
                zone_spots[spot.zone] = zone_spots.get(spot.zone, 0) + 1
        table[name] = {
            zone: zone_sums[zone] / zone_spots[zone] for zone in zone_sums
        }
    return table


def weekly_type_proportions(
    results: Sequence[DayResult],
) -> Dict[str, Dict[QueueType, float]]:
    """Queue-type proportions per day (Fig. 9 series).

    Requires the results to have been produced with ``disambiguate=True``.

    Raises:
        ValueError: when a day lacks tier-2 analyses.
    """
    series: Dict[str, Dict[QueueType, float]] = {}
    for r in results:
        if r.analyses is None:
            raise ValueError(f"day {r.day_name} has no tier-2 analyses")
        series[r.day_name] = citywide_proportions(r.analyses.values())
    return series
