"""Commuter-side recommendations: where can I get a taxi right now?

The paper's first stakeholder application (section 1): "suggest commuters
to the nearby taxi queue locations".  Given the current slot's labels and
features, rank spots for a commuter standing at a given position:

* **C3** (taxi queue only) — ideal: taxis are waiting, board instantly;
* **C1** (both queues) — good: taxis flow, expect roughly one pickup
  cadence (t_dep) of queueing behind the passengers already there;
* **C4** — usable: no queue either way, expect to wait about the recent
  taxi inter-arrival time for the next FREE taxi;
* **C2** (passenger queue only) — poor: an unknown passenger line and
  scarce taxis; penalised but still listed when nothing better exists;
* **Unidentified** — skipped (no evidence).

The expected-wait model is deliberately simple and transparent: it uses
only the slot's observable 5-tuple, with each assumption stated inline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.core.engine import SpotAnalysis
from repro.core.types import QueueType
from repro.geo.point import equirectangular_m

#: Walking speed used to convert distance to access time.
WALK_SPEED_KMH = 4.8


@dataclass(frozen=True)
class CommuterOption:
    """One ranked pickup option for a commuter."""

    spot_id: str
    label: QueueType
    walk_min: float
    expected_wait_min: float
    total_min: float


def _expected_wait_min(label: QueueType, features) -> float:
    """Expected on-spot wait in minutes under the stated model."""
    dep_min = features.mean_departure_interval_s / 60.0
    if label is QueueType.C3:
        # Taxis are queueing for passengers: boarding is immediate.
        return 0.5
    if label is QueueType.C1:
        # Both sides flow at the pickup cadence; assume the commuter
        # joins a passenger line roughly one service cycle deep.
        return min(15.0, dep_min)
    if label is QueueType.C4:
        # No queues: the wait is the residual taxi inter-arrival time.
        # With N_arr arrivals in the slot, the mean gap is slot/N_arr;
        # the residual of a Poisson process equals the full mean gap.
        if features.n_arrivals > 0:
            return min(30.0, 30.0 / features.n_arrivals)
        return 30.0
    if label is QueueType.C2:
        # Passenger queue with scarce taxis: at least a few service
        # cycles behind the existing line.
        return min(45.0, 3.0 * max(dep_min, 2.0))
    raise ValueError(f"no wait model for label {label}")


def recommend_for_commuter(
    analyses: Iterable[SpotAnalysis],
    slot: int,
    lon: float,
    lat: float,
    max_walk_km: float = 1.5,
    top: int = 5,
) -> List[CommuterOption]:
    """Rank nearby spots for a commuter by total door-to-taxi time.

    Args:
        analyses: tier-2 output (live or batch).
        slot: the current time slot index.
        lon, lat: the commuter's position.
        max_walk_km: spots further than this are not offered.
        top: maximum options returned.

    Returns:
        Options sorted by ``total_min`` (walk + expected wait).
    """
    options: List[CommuterOption] = []
    for analysis in analyses:
        if slot >= len(analysis.labels):
            continue
        label = analysis.labels[slot].label
        if label is QueueType.UNIDENTIFIED:
            continue
        dist_km = (
            equirectangular_m(lon, lat, analysis.spot.lon, analysis.spot.lat)
            / 1000.0
        )
        if dist_km > max_walk_km:
            continue
        walk_min = dist_km / WALK_SPEED_KMH * 60.0
        wait_min = _expected_wait_min(label, analysis.features[slot])
        options.append(
            CommuterOption(
                spot_id=analysis.spot.spot_id,
                label=label,
                walk_min=walk_min,
                expected_wait_min=wait_min,
                total_min=walk_min + wait_min,
            )
        )
    options.sort(key=lambda option: option.total_min)
    return options[:top]
