"""Evaluation harness: the analyses behind every table/figure of section 6.

* :mod:`repro.analysis.landmark_match` — Table 4 (landmarks near spots);
* :mod:`repro.analysis.stability` — Fig. 8, Tables 5/6, Fig. 9 (multi-day
  stability of spots and labels);
* :mod:`repro.analysis.validation` — Table 8 (monitor counts and failed
  bookings per label);
* :mod:`repro.analysis.sample_case` — Table 9 (single-spot timeline);
* :mod:`repro.analysis.accuracy` — scoring against simulator ground truth
  (spot recall/location error, label confusion), which the paper could
  not do and we can.
"""

from repro.analysis.landmark_match import (
    LandmarkMatch,
    match_spots_to_landmarks,
    landmark_category_table,
)
from repro.analysis.stability import (
    DayResult,
    run_week,
    zone_counts_by_day,
    hausdorff_matrix,
    pickup_counts_table,
    weekly_type_proportions,
)
from repro.analysis.validation import (
    SlotValidation,
    validate_against_monitor_and_bookings,
)
from repro.analysis.sample_case import sample_case_timeline
from repro.analysis.accuracy import (
    SpotAccuracy,
    spot_detection_accuracy,
    LabelAccuracy,
    label_accuracy,
)
from repro.analysis.insights import (
    CherryPickEvent,
    CherryPickReport,
    find_busy_cherry_picks,
    cherry_pick_report,
)
from repro.analysis.commuter import CommuterOption, recommend_for_commuter
from repro.analysis.imbalance import (
    ZoneImbalanceProfile,
    StandProposal,
    imbalance_index,
    zone_imbalance_profiles,
    propose_new_stands,
)

__all__ = [
    "LandmarkMatch",
    "match_spots_to_landmarks",
    "landmark_category_table",
    "DayResult",
    "run_week",
    "zone_counts_by_day",
    "hausdorff_matrix",
    "pickup_counts_table",
    "weekly_type_proportions",
    "SlotValidation",
    "validate_against_monitor_and_bookings",
    "sample_case_timeline",
    "SpotAccuracy",
    "spot_detection_accuracy",
    "LabelAccuracy",
    "label_accuracy",
    "CherryPickEvent",
    "CherryPickReport",
    "find_busy_cherry_picks",
    "cherry_pick_report",
    "ZoneImbalanceProfile",
    "StandProposal",
    "CommuterOption",
    "recommend_for_commuter",
    "imbalance_index",
    "zone_imbalance_profiles",
    "propose_new_stands",
]
