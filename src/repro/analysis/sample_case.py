"""The single-spot sample case (paper Table 9: Lucky Plaza on a Sunday).

Section 6.2.3 walks one mall queue spot through a Sunday: C1 just after
midnight (night-club crowd), C3 as the leftover taxi queue drains, C4
until morning, C1/C2 alternation through the shopping peak, and C4 again
late in the evening.  :func:`sample_case_timeline` produces that
presentation for any analysed spot.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.engine import SpotAnalysis
from repro.core.reports import merge_labels
from repro.core.types import QueueType, TimeSlotGrid
from repro.geo.point import equirectangular_m
from repro.sim.landmarks import LandmarkCategory


def sample_case_timeline(
    analysis: SpotAnalysis, grid: TimeSlotGrid
) -> Dict[str, List[str]]:
    """Group the spot's day into per-type time ranges (Table 9 layout).

    Returns:
        ``queue type -> list of "HH:MM-HH:MM" ranges``, covering the whole
        day; every queue type (including Unidentified) is present as a
        key, possibly with an empty list.
    """
    table: Dict[str, List[str]] = {qt.value: [] for qt in QueueType}
    for span in merge_labels(analysis.labels):
        table[span.label.value].append(span.time_range(grid))
    return table


def pick_mall_spot(
    analyses: Sequence[SpotAnalysis], city
) -> Optional[SpotAnalysis]:
    """The busiest analysed spot anchored at a mall/hotel landmark.

    The Lucky-Plaza analogue: among spots whose nearest landmark is a
    shopping mall, pick the one with the most pickups.
    """
    candidates = []
    for analysis in analyses:
        spot = analysis.spot
        lm = min(
            city.landmarks,
            key=lambda m: equirectangular_m(m.lon, m.lat, spot.lon, spot.lat),
            default=None,
        )
        if lm is None:
            continue
        if (
            lm.category is LandmarkCategory.MALL_HOTEL
            and equirectangular_m(lm.lon, lm.lat, spot.lon, spot.lat) < 60.0
        ):
            candidates.append(analysis)
    if not candidates:
        return None
    return max(candidates, key=lambda a: a.spot.pickup_count)
