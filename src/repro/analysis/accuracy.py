"""Accuracy scoring against simulator ground truth.

The paper validates indirectly (landmarks, LTA taxi stands, a vehicle
monitor, failed bookings) because real deployments have no ground truth.
The simulator does, so this module provides the direct scores DESIGN.md
commits to: spot-detection recall/precision and mean location error
(the analogue of the paper's "30 of 31 taxi stands detected, 7.6 m mean
error"), and label accuracy/confusion for the QCD output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.engine import SpotAnalysis
from repro.core.types import QueueSpot, QueueType
from repro.geo.point import equirectangular_m
from repro.sim.ground_truth import GroundTruth, SpotTruth


@dataclass
class SpotAccuracy:
    """Spot-detection quality versus ground truth."""

    truth_total: int
    matched: int
    false_positives: int
    mean_error_m: float

    @property
    def recall(self) -> float:
        """Fraction of ground-truth spots detected."""
        if self.truth_total == 0:
            return 0.0
        return self.matched / self.truth_total

    @property
    def precision(self) -> float:
        """Fraction of detected spots matching a ground-truth spot."""
        detected = self.matched + self.false_positives
        if detected == 0:
            return 0.0
        return self.matched / detected


def spot_detection_accuracy(
    spots: Sequence[QueueSpot],
    ground_truth: GroundTruth,
    match_radius_m: float = 50.0,
    min_pickups: int = 50,
) -> SpotAccuracy:
    """Score detected spots against the simulator's true spot locations.

    Args:
        spots: detected spots.
        ground_truth: simulator ground truth.
        match_radius_m: a detection within this distance of a true spot
            counts as that spot.
        min_pickups: true spots with fewer daily pickups are not expected
            to be detectable (DBSCAN's min_pts would reject them) and are
            excluded from recall.
    """
    truths: List[SpotTruth] = [
        t for t in ground_truth.spots.values() if t.pickups >= min_pickups
    ]
    used: set = set()
    errors: List[float] = []
    matched = 0
    for truth in truths:
        best = None
        best_d = match_radius_m
        for i, spot in enumerate(spots):
            if i in used:
                continue
            d = equirectangular_m(truth.lon, truth.lat, spot.lon, spot.lat)
            if d <= best_d:
                best = i
                best_d = d
        if best is not None:
            used.add(best)
            matched += 1
            errors.append(best_d)
    false_positives = 0
    all_truths = list(ground_truth.spots.values())
    for i, spot in enumerate(spots):
        if i in used:
            continue
        near_any = any(
            equirectangular_m(t.lon, t.lat, spot.lon, spot.lat)
            <= match_radius_m
            for t in all_truths
        )
        if not near_any:
            false_positives += 1
    return SpotAccuracy(
        truth_total=len(truths),
        matched=matched,
        false_positives=false_positives,
        mean_error_m=sum(errors) / len(errors) if errors else 0.0,
    )


@dataclass
class LabelAccuracy:
    """QCD label quality versus true slot labels."""

    labeled: int
    correct: int
    unidentified: int
    confusion: Dict[Tuple[QueueType, QueueType], int] = field(
        default_factory=dict
    )
    """``(truth, predicted) -> count`` over labeled slots."""

    @property
    def accuracy(self) -> float:
        """Exact-match accuracy over labeled (non-unidentified) slots."""
        if self.labeled == 0:
            return 0.0
        return self.correct / self.labeled

    @property
    def passenger_queue_agreement(self) -> float:
        """Agreement on the *passenger-queue* boolean (C1/C2 vs C3/C4)."""
        agree = sum(
            n
            for (truth, pred), n in self.confusion.items()
            if truth.has_passenger_queue == pred.has_passenger_queue
        )
        return agree / self.labeled if self.labeled else 0.0

    @property
    def taxi_queue_agreement(self) -> float:
        """Agreement on the *taxi-queue* boolean (C1/C3 vs C2/C4)."""
        agree = sum(
            n
            for (truth, pred), n in self.confusion.items()
            if truth.has_taxi_queue == pred.has_taxi_queue
        )
        return agree / self.labeled if self.labeled else 0.0


def label_accuracy(
    analyses: Iterable[SpotAnalysis],
    ground_truth: GroundTruth,
    match_radius_m: float = 50.0,
) -> LabelAccuracy:
    """Score QCD labels against true slot labels.

    Each analysed spot is matched to the nearest ground-truth spot within
    ``match_radius_m``; unmatched spots are skipped.  Unidentified slots
    are counted separately, not as errors (the paper treats them as
    "insignificant features").
    """
    result = LabelAccuracy(labeled=0, correct=0, unidentified=0)
    truths = list(ground_truth.spots.values())
    for analysis in analyses:
        spot = analysis.spot
        truth = min(
            truths,
            key=lambda t: equirectangular_m(t.lon, t.lat, spot.lon, spot.lat),
            default=None,
        )
        if truth is None:
            continue
        if (
            equirectangular_m(truth.lon, truth.lat, spot.lon, spot.lat)
            > match_radius_m
        ):
            continue
        for slot_label, true_slot in zip(analysis.labels, truth.slots):
            if slot_label.label is QueueType.UNIDENTIFIED:
                result.unidentified += 1
                continue
            result.labeled += 1
            key = (true_slot.label, slot_label.label)
            result.confusion[key] = result.confusion.get(key, 0) + 1
            if slot_label.label is true_slot.label:
                result.correct += 1
    return result
