"""Label validation with external signals (paper Table 8).

Section 6.2.2 validates the queue-type labels against two independent
sources: the average taxi count from a vehicle monitor system, and failed
taxi bookings from the operator backend.  The expected ordering:

* monitored taxi count: C1 and C3 notably higher than C2 and C4 (taxi
  queues really hold taxis);
* failed bookings: C2 significantly higher than all others (passengers
  who cannot get a taxi book — and the booking fails too).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.core.engine import SpotAnalysis
from repro.core.types import QueueType, TimeSlotGrid
from repro.geo.point import equirectangular_m
from repro.sim.fleet import FailedBooking
from repro.sim.monitor import MonitorReading


@dataclass
class SlotValidation:
    """Average external signals per queue-type label (Table 8 rows)."""

    avg_taxi_count: Dict[QueueType, float]
    avg_failed_bookings: Dict[QueueType, float]
    slots_per_label: Dict[QueueType, int]


def validate_against_monitor_and_bookings(
    analyses: Iterable[SpotAnalysis],
    readings: Sequence[MonitorReading],
    failed_bookings: Sequence[FailedBooking],
    grid: TimeSlotGrid,
    spot_locations: Dict[str, tuple],
    booking_radius_m: float = 1000.0,
) -> SlotValidation:
    """Build the Table 8 comparison.

    Args:
        analyses: tier-2 output per spot.
        readings: monitor samples, keyed by ground-truth spot id.
        failed_bookings: failed booking events with locations.
        grid: the time-slot grid labels refer to.
        spot_locations: ground-truth ``spot_id -> (lon, lat)`` used to
            join monitor readings and bookings to detected spots.
        booking_radius_m: a failed booking belongs to the nearest spot
            within this distance (the paper's dispatch circle radius).
    """
    analyses = list(analyses)
    # Join each detected spot to the nearest monitored (ground-truth) spot.
    monitor_by_spot: Dict[str, List[MonitorReading]] = {}
    for reading in readings:
        monitor_by_spot.setdefault(reading.spot_id, []).append(reading)

    def nearest_truth_spot(lon: float, lat: float):
        best_id, best_d = None, float("inf")
        for spot_id, (slon, slat) in spot_locations.items():
            d = equirectangular_m(lon, lat, slon, slat)
            if d < best_d:
                best_id, best_d = spot_id, d
        return best_id, best_d

    # Failed bookings per (truth spot, slot).
    failures: Dict[str, Dict[int, int]] = {}
    for booking in failed_bookings:
        spot_id, d = nearest_truth_spot(booking.lon, booking.lat)
        if spot_id is None or d > booking_radius_m:
            continue
        slot = grid.slot_of(booking.ts)
        if slot is None:
            continue
        failures.setdefault(spot_id, {})
        failures[spot_id][slot] = failures[spot_id].get(slot, 0) + 1

    taxi_sums: Dict[QueueType, float] = {qt: 0.0 for qt in QueueType}
    fail_sums: Dict[QueueType, float] = {qt: 0.0 for qt in QueueType}
    counts: Dict[QueueType, int] = {qt: 0 for qt in QueueType}

    for analysis in analyses:
        spot = analysis.spot
        truth_id, d = nearest_truth_spot(spot.lon, spot.lat)
        if truth_id is None or d > 100.0:
            continue
        spot_readings = monitor_by_spot.get(truth_id, [])
        per_slot_counts: Dict[int, List[int]] = {}
        for reading in spot_readings:
            slot = grid.slot_of(reading.ts)
            if slot is not None:
                per_slot_counts.setdefault(slot, []).append(reading.taxi_count)
        spot_failures = failures.get(truth_id, {})
        for slot_label in analysis.labels:
            label = slot_label.label
            samples = per_slot_counts.get(slot_label.slot, [])
            avg_count = sum(samples) / len(samples) if samples else 0.0
            taxi_sums[label] += avg_count
            fail_sums[label] += spot_failures.get(slot_label.slot, 0)
            counts[label] += 1

    avg_taxi = {
        qt: (taxi_sums[qt] / counts[qt]) if counts[qt] else 0.0
        for qt in QueueType
    }
    avg_fail = {
        qt: (fail_sums[qt] / counts[qt]) if counts[qt] else 0.0
        for qt in QueueType
    }
    return SlotValidation(
        avg_taxi_count=avg_taxi,
        avg_failed_bookings=avg_fail,
        slots_per_label=counts,
    )
