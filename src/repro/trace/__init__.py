"""MDT trace substrate: records, trajectories, log storage and cleaning.

This package models section 2.3 of the paper — the event-driven MDT log
with its six selected fields (timestamp, taxi ID, longitude, latitude,
speed, taxi state) — and section 6.1.1's preprocessing of the three error
classes found in real logs.
"""

from repro.trace.record import (
    MdtRecord,
    TIMESTAMP_FORMAT,
    format_timestamp,
    parse_timestamp,
)
from repro.trace.trajectory import Trajectory, SubTrajectory
from repro.trace.log_store import MdtLogStore
from repro.trace.cleaning import CleaningReport, clean_store, clean_records

__all__ = [
    "MdtRecord",
    "TIMESTAMP_FORMAT",
    "format_timestamp",
    "parse_timestamp",
    "Trajectory",
    "SubTrajectory",
    "MdtLogStore",
    "CleaningReport",
    "clean_store",
    "clean_records",
]
