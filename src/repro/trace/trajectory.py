"""Trajectories and sub-trajectories (paper Definitions 1-4).

* Definition 1 — an individual taxi's *trajectory* is the temporally
  ordered sequence of its trimmed MDT records ``p_1 -> ... -> p_n``.
* Definition 2 — a *sub-trajectory* ``R(s, e)`` is a contiguous segment.
* Definitions 3/4 — per-taxi and multi-taxi sub-trajectory sets are plain
  Python lists in this implementation.

:class:`SubTrajectory` keeps a reference into its parent trajectory rather
than copying records, so extracting hundreds of thousands of pickup events
(section 6.1.2) stays cheap.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from repro.states.states import TaxiState
from repro.trace.record import MdtRecord


class Trajectory:
    """One taxi's temporally ordered MDT records (Definition 1)."""

    def __init__(self, taxi_id: str, records: Sequence[MdtRecord]):
        self.taxi_id = taxi_id
        self.records: List[MdtRecord] = list(records)
        for rec in self.records:
            if rec.taxi_id != taxi_id:
                raise ValueError(
                    f"record for taxi {rec.taxi_id!r} in trajectory of "
                    f"{taxi_id!r}"
                )
        for a, b in zip(self.records, self.records[1:]):
            if b.ts < a.ts:
                raise ValueError("trajectory records must be time-ordered")

    def __len__(self) -> int:
        return len(self.records)

    def __getitem__(self, i: int) -> MdtRecord:
        return self.records[i]

    def __iter__(self) -> Iterator[MdtRecord]:
        return iter(self.records)

    @property
    def span_seconds(self) -> float:
        """Time covered by the trajectory (0 for fewer than 2 records)."""
        if len(self.records) < 2:
            return 0.0
        return self.records[-1].ts - self.records[0].ts

    def states(self) -> List[TaxiState]:
        """The state sequence of the trajectory."""
        return [rec.state for rec in self.records]

    def timeline(self) -> List[Tuple[float, TaxiState]]:
        """``(timestamp, state)`` pairs, as consumed by job segmentation."""
        return [(rec.ts, rec.state) for rec in self.records]

    def sub(self, start: int, end: int) -> "SubTrajectory":
        """The sub-trajectory ``R(start, end)`` with inclusive bounds."""
        return SubTrajectory(self, start, end)


class SubTrajectory:
    """A contiguous segment ``R(s, e)`` of a trajectory (Definition 2).

    Bounds are inclusive indices into the parent trajectory, matching the
    paper's ``p_s -> ... -> p_e`` notation.
    """

    __slots__ = ("trajectory", "start", "end")

    def __init__(self, trajectory: Trajectory, start: int, end: int):
        if not 0 <= start <= end < len(trajectory):
            raise IndexError(
                f"sub-trajectory bounds [{start}, {end}] out of range for "
                f"trajectory of length {len(trajectory)}"
            )
        self.trajectory = trajectory
        self.start = start
        self.end = end

    def __len__(self) -> int:
        return self.end - self.start + 1

    def __iter__(self) -> Iterator[MdtRecord]:
        for i in range(self.start, self.end + 1):
            yield self.trajectory.records[i]

    def __getitem__(self, i: int) -> MdtRecord:
        if i < 0:
            i += len(self)
        if not 0 <= i < len(self):
            raise IndexError("sub-trajectory index out of range")
        return self.trajectory.records[self.start + i]

    @property
    def taxi_id(self) -> str:
        """The taxi the segment belongs to."""
        return self.trajectory.taxi_id

    @property
    def first(self) -> MdtRecord:
        """``p_s``, the first record of the segment."""
        return self.trajectory.records[self.start]

    @property
    def last(self) -> MdtRecord:
        """``p_e``, the last record of the segment."""
        return self.trajectory.records[self.end]

    def states(self) -> List[TaxiState]:
        """The state sequence of the segment."""
        return [rec.state for rec in self]

    def centroid(self) -> Tuple[float, float]:
        """Central GPS location: the mean of lon and lat (section 4.3)."""
        n = len(self)
        lon = sum(rec.lon for rec in self) / n
        lat = sum(rec.lat for rec in self) / n
        return lon, lat

    def duration_seconds(self) -> float:
        """Elapsed time between first and last record of the segment."""
        return self.last.ts - self.first.ts
