"""Calendar and per-taxi partitioning of logs.

The deployed system (section 7.1) works in daily units: detection pools
"the most recent 5 week days' dataset and 2 weekend days' dataset", and
context runs on single days.  These helpers split a multi-day store along
midnight boundaries and tag each day with its day of week, producing
exactly what :class:`repro.core.deployment.DeploymentScheduler` ingests.

The columnar data plane partitions per taxi here too:
:func:`partition_batch_by_taxi` turns a :class:`~repro.columnar.
RecordBatch` into per-taxi sub-batches via one stable argsort over
``(taxi, ts)`` instead of the store's dict-of-lists — with a linear
fast path for batches already in the canonical grouped order, which is
what cleaning output and ``RecordBatch.from_store`` produce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.trace.log_store import MdtLogStore

if TYPE_CHECKING:  # cycle-free: columnar.batch imports trace.record
    from repro.columnar import RecordBatch


@dataclass(frozen=True)
class DayPartition:
    """One calendar day's slice of a store."""

    day_start_ts: float
    day_of_week: int
    store: MdtLogStore

    @property
    def day_end_ts(self) -> float:
        return self.day_start_ts + 86400.0


def day_of_week_of(ts: float) -> int:
    """Day of week (Monday=0) of a POSIX timestamp, in UTC.

    The POSIX epoch (1970-01-01) was a Thursday (=3).
    """
    days_since_epoch = int(ts // 86400.0)
    return (days_since_epoch + 3) % 7


def split_by_day(store: MdtLogStore) -> List[DayPartition]:
    """Split a store along UTC midnight boundaries.

    Returns:
        One partition per calendar day that contains records, in
        chronological order.  An empty store yields an empty list.
    """
    if len(store) == 0:
        return []
    lo, hi = store.time_span
    first_day = lo - (lo % 86400.0)
    partitions: List[DayPartition] = []
    day_start = first_day
    while day_start <= hi:
        day_store = store.filter_time(day_start, day_start + 86400.0)
        if len(day_store) > 0:
            partitions.append(
                DayPartition(
                    day_start_ts=day_start,
                    day_of_week=day_of_week_of(day_start),
                    store=day_store,
                )
            )
        day_start += 86400.0
    return partitions


def records_per_day(store: MdtLogStore) -> Dict[float, int]:
    """Record counts keyed by day-start timestamp (dataset statistics)."""
    return {
        part.day_start_ts: len(part.store) for part in split_by_day(store)
    }


# -- per-taxi partitioning of columnar batches ------------------------------


def _grouped_runs(batch: RecordBatch) -> List[Tuple[int, int, int]] | None:
    """``(taxi_code, start, stop)`` runs when the batch is already in
    canonical grouped order (each taxi contiguous, sorted ids,
    nondecreasing ts within each run), else None.

    One linear pass; this is the fast path that lets cleaning output and
    ``from_store`` batches skip the argsort entirely.
    """
    taxi, ts = batch.taxi, batch.ts
    table = batch.taxi_table
    runs: List[Tuple[int, int, int]] = []
    start = 0
    prev_code = taxi[0]
    seen = {prev_code}
    for i in range(1, len(taxi)):
        code = taxi[i]
        if code == prev_code:
            if ts[i] < ts[i - 1]:
                return None
            continue
        if code in seen:
            return None  # taxi split across runs
        runs.append((prev_code, start, i))
        if table[code] < table[prev_code]:
            return None  # runs not in sorted-id order
        seen.add(code)
        start = i
        prev_code = code
    runs.append((prev_code, start, len(taxi)))
    return runs


def partition_batch_by_taxi(
    batch: RecordBatch,
) -> List[Tuple[str, RecordBatch]]:
    """Split a batch into per-taxi sub-batches, sorted by taxi id.

    Rows within each taxi come out in stable timestamp order — exactly
    the order :meth:`MdtLogStore.records_of` produces, so the columnar
    and the row pipeline scan identical per-taxi sequences.

    Already-grouped batches (cleaning output, ``from_store``) split in
    one linear pass; arbitrary row orders (a raw CSV day interleaves
    taxis) fall back to a single stable argsort over ``(taxi, ts)``.
    """
    if len(batch) == 0:
        return []
    runs = _grouped_runs(batch)
    if runs is not None:
        return [
            (batch.taxi_table[code], batch.slice(start, stop))
            for code, start, stop in runs
        ]
    ts, taxi = batch.ts, batch.taxi
    # Rank taxi codes by id so the tuple key sorts taxis lexically.
    by_id = sorted(range(len(batch.taxi_table)), key=batch.taxi_table.__getitem__)
    rank = [0] * len(by_id)
    for r, code in enumerate(by_id):
        rank[code] = r
    order = sorted(range(len(ts)), key=lambda i: (rank[taxi[i]], ts[i]))
    groups: List[Tuple[str, RecordBatch]] = []
    start = 0
    for i in range(1, len(order) + 1):
        if i == len(order) or taxi[order[i]] != taxi[order[start]]:
            taxi_id = batch.taxi_table[taxi[order[start]]]
            groups.append((taxi_id, batch.take(order[start:i])))
            start = i
    return groups


def group_batch_by_taxi(batch: RecordBatch) -> RecordBatch:
    """The batch re-ordered into canonical grouped form.

    Canonical form — taxis contiguous in sorted-id order, stable ts
    order within each taxi — is the order the whole columnar pipeline
    assumes and produces; after this, per-taxi partitioning is linear.
    """
    from repro.columnar import RecordBatch

    runs = _grouped_runs(batch) if len(batch) else []
    if runs is not None:
        return batch
    return RecordBatch.concat(
        [sub for _, sub in partition_batch_by_taxi(batch)]
    )


@dataclass(frozen=True)
class DayBatchPartition:
    """One calendar day's slice of a batch (columnar sibling of
    :class:`DayPartition`)."""

    day_start_ts: float
    day_of_week: int
    batch: RecordBatch

    @property
    def day_end_ts(self) -> float:
        return self.day_start_ts + 86400.0


def split_batch_by_day(batch: RecordBatch) -> List[DayBatchPartition]:
    """Split a batch along UTC midnight boundaries (column-mask scan)."""
    if len(batch) == 0:
        return []
    ts = batch.ts
    lo, hi = min(ts), max(ts)
    day_start = lo - (lo % 86400.0)
    partitions: List[DayBatchPartition] = []
    while day_start <= hi:
        day_end = day_start + 86400.0
        indices = [i for i, t in enumerate(ts) if day_start <= t < day_end]
        if indices:
            partitions.append(
                DayBatchPartition(
                    day_start_ts=day_start,
                    day_of_week=day_of_week_of(day_start),
                    batch=batch.take(indices),
                )
            )
        day_start = day_end
    return partitions
