"""Calendar partitioning of log stores.

The deployed system (section 7.1) works in daily units: detection pools
"the most recent 5 week days' dataset and 2 weekend days' dataset", and
context runs on single days.  These helpers split a multi-day store along
midnight boundaries and tag each day with its day of week, producing
exactly what :class:`repro.core.deployment.DeploymentScheduler` ingests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.trace.log_store import MdtLogStore


@dataclass(frozen=True)
class DayPartition:
    """One calendar day's slice of a store."""

    day_start_ts: float
    day_of_week: int
    store: MdtLogStore

    @property
    def day_end_ts(self) -> float:
        return self.day_start_ts + 86400.0


def day_of_week_of(ts: float) -> int:
    """Day of week (Monday=0) of a POSIX timestamp, in UTC.

    The POSIX epoch (1970-01-01) was a Thursday (=3).
    """
    days_since_epoch = int(ts // 86400.0)
    return (days_since_epoch + 3) % 7


def split_by_day(store: MdtLogStore) -> List[DayPartition]:
    """Split a store along UTC midnight boundaries.

    Returns:
        One partition per calendar day that contains records, in
        chronological order.  An empty store yields an empty list.
    """
    if len(store) == 0:
        return []
    lo, hi = store.time_span
    first_day = lo - (lo % 86400.0)
    partitions: List[DayPartition] = []
    day_start = first_day
    while day_start <= hi:
        day_store = store.filter_time(day_start, day_start + 86400.0)
        if len(day_store) > 0:
            partitions.append(
                DayPartition(
                    day_start_ts=day_start,
                    day_of_week=day_of_week_of(day_start),
                    store=day_store,
                )
            )
        day_start += 86400.0
    return partitions


def records_per_day(store: MdtLogStore) -> Dict[float, int]:
    """Record counts keyed by day-start timestamp (dataset statistics)."""
    return {
        part.day_start_ts: len(part.store) for part in split_by_day(store)
    }
