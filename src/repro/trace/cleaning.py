"""MDT log preprocessing (paper section 6.1.1).

The paper identifies three error classes in raw MDT logs, jointly ~2.8% of
all records, and removes them before analysis:

1. *Improper/missing taxi states* — state sequences that violate the
   transition diagram of Fig. 3 (e.g. a spurious FREE between two PAYMENT
   records, caused by a clock-synchronisation bug; or skipped intermediate
   states such as ARRIVED/STC that drivers never pressed).
2. *Record duplication* — GPRS re-transmissions between the MDT and the
   backend produce byte-identical records.
3. *GPS coordinate errors* — points outside the city or inside inaccessible
   zones (urban-canyon multipath).

:func:`clean_records` applies the three filters to one taxi's ordered
records; :func:`clean_store` runs it store-wide and returns both the cleaned
store and a :class:`CleaningReport` with per-class counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple

from repro.geo.bbox import BBox
from repro.states.machine import TRANSITION_CODE_MATRIX, is_valid_transition
from repro.trace.log_store import MdtLogStore
from repro.trace.record import MdtRecord

if TYPE_CHECKING:  # cycle-free: columnar.batch imports trace.record
    from repro.columnar import RecordBatch


@dataclass
class CleaningReport:
    """Counts of removed records per section-6.1.1 error class."""

    total_in: int = 0
    improper_state: int = 0
    duplicate: int = 0
    gps_error: int = 0
    malformed_line: int = 0
    """Raw CSV lines that never became records (truncated, non-numeric
    or non-finite fields, unknown state codes).  Counted separately from
    ``total_in``, which only sees parsed records."""

    @property
    def total_removed(self) -> int:
        """Records removed across all three error classes."""
        return self.improper_state + self.duplicate + self.gps_error

    @property
    def removed_fraction(self) -> float:
        """Fraction of input records removed (the paper reports ~2.8%)."""
        if self.total_in == 0:
            return 0.0
        return self.total_removed / self.total_in

    def merge(self, other: "CleaningReport") -> None:
        """Accumulate another report into this one."""
        self.total_in += other.total_in
        self.improper_state += other.improper_state
        self.duplicate += other.duplicate
        self.gps_error += other.gps_error
        self.malformed_line += other.malformed_line


def _is_duplicate(a: MdtRecord, b: MdtRecord) -> bool:
    """True when ``b`` is a GPRS re-transmission of ``a``.

    Re-transmissions repeat the full payload: same timestamp, state,
    coordinates and speed.
    """
    return (
        a.ts == b.ts
        and a.state is b.state
        and a.lon == b.lon
        and a.lat == b.lat
        and a.speed == b.speed
    )


def clean_records(
    records: Sequence[MdtRecord],
    city_bbox: Optional[BBox] = None,
    inaccessible: Iterable[BBox] = (),
    report: Optional[CleaningReport] = None,
) -> List[MdtRecord]:
    """Clean one taxi's time-ordered records.

    The filters run in the order duplicates -> GPS -> state validity, so a
    duplicated erroneous record is counted once (as a duplicate).

    State validity is checked against the *state chain*, not the kept
    records: a record removed for a GPS error still carries a genuine
    state, so it advances the chain.  Only records removed as improper
    states leave the chain untouched.  Without this, one GPS outlier on a
    state-change record (say the BREAK of a power-up sequence) would make
    every subsequent record look mis-ordered and cascade-delete the rest
    of the taxi's day.

    Args:
        records: one taxi's records, time-ordered.
        city_bbox: if given, records outside it are GPS errors.
        inaccessible: bboxes (e.g. water bodies) whose interior points are
            GPS errors.
        report: optional report to accumulate counts into.

    Returns:
        The surviving records, still time-ordered.
    """
    if report is None:
        report = CleaningReport()
    report.total_in += len(records)
    inaccessible = list(inaccessible)

    kept: List[MdtRecord] = []
    prev_raw: Optional[MdtRecord] = None
    chain_state = None  # last state not removed as improper
    for record in records:
        if prev_raw is not None and _is_duplicate(prev_raw, record):
            report.duplicate += 1
            continue
        prev_raw = record

        if chain_state is not None and not is_valid_transition(
            chain_state, record.state
        ):
            report.improper_state += 1
            continue
        chain_state = record.state

        if city_bbox is not None and not city_bbox.contains(
            record.lon, record.lat
        ):
            report.gps_error += 1
            continue
        if any(zone.contains(record.lon, record.lat) for zone in inaccessible):
            report.gps_error += 1
            continue
        kept.append(record)
    return kept


def clean_taxi_batch(
    batch: RecordBatch,
    city_bbox: Optional[BBox] = None,
    inaccessible: Iterable[BBox] = (),
    report: Optional[CleaningReport] = None,
) -> RecordBatch:
    """Columnar :func:`clean_records` for one taxi's time-ordered rows.

    Same three filters, same order, same chain-state semantics, same
    :class:`CleaningReport` accounting — but as a cursor over the
    batch's columns building a keep mask, with no record objects.  The
    row/column equivalence is pinned by parity tests and the
    conformance matrix.
    """
    if report is None:
        report = CleaningReport()
    report.total_in += len(batch)
    inaccessible = list(inaccessible)

    ts, lon, lat = batch.ts, batch.lon, batch.lat
    speed, state = batch.speed, batch.state
    kept: List[int] = []
    prev = -1  # row index of the last non-duplicate record
    chain = -1  # state code of the chain (see clean_records), -1 = none
    for i in range(len(batch)):
        if (
            prev >= 0
            and ts[i] == ts[prev]
            and state[i] == state[prev]
            and lon[i] == lon[prev]
            and lat[i] == lat[prev]
            and speed[i] == speed[prev]
        ):
            report.duplicate += 1
            continue
        prev = i

        if chain >= 0 and not TRANSITION_CODE_MATRIX[chain][state[i]]:
            report.improper_state += 1
            continue
        chain = state[i]

        if city_bbox is not None and not city_bbox.contains(lon[i], lat[i]):
            report.gps_error += 1
            continue
        if any(zone.contains(lon[i], lat[i]) for zone in inaccessible):
            report.gps_error += 1
            continue
        kept.append(i)
    if len(kept) == len(batch):
        return batch
    return batch.take(kept)


def clean_batch(
    batch: RecordBatch,
    city_bbox: Optional[BBox] = None,
    inaccessible: Iterable[BBox] = (),
) -> Tuple[RecordBatch, CleaningReport]:
    """Clean a whole batch (columnar sibling of :func:`clean_store`).

    Rows are partitioned per taxi (stable argsort, or a linear pass for
    already-grouped batches), each taxi's columns are mask-cleaned, and
    the survivors are re-packed grouped by taxi in sorted-id order —
    exactly the record order :func:`clean_store`'s output store yields.

    Returns:
        ``(cleaned_batch, report)`` with counts identical to the row
        path's for the same rows.
    """
    from repro.columnar import RecordBatch
    from repro.trace.partition import partition_batch_by_taxi

    report = CleaningReport()
    inaccessible = list(inaccessible)
    parts: List[RecordBatch] = []
    for _, sub in partition_batch_by_taxi(batch):
        parts.append(
            clean_taxi_batch(
                sub,
                city_bbox=city_bbox,
                inaccessible=inaccessible,
                report=report,
            )
        )
    return RecordBatch.concat(parts), report


def clean_store(
    store: MdtLogStore,
    city_bbox: Optional[BBox] = None,
    inaccessible: Iterable[BBox] = (),
) -> Tuple[MdtLogStore, CleaningReport]:
    """Clean every taxi's records in a store.

    Returns:
        ``(cleaned_store, report)`` where the report aggregates counts over
        all taxis.
    """
    report = CleaningReport()
    cleaned = MdtLogStore()
    inaccessible = list(inaccessible)
    for taxi_id in store.taxi_ids:
        survivors = clean_records(
            store.records_of(taxi_id),
            city_bbox=city_bbox,
            inaccessible=inaccessible,
            report=report,
        )
        cleaned.extend(survivors)
    return cleaned, report
