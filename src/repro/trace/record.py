"""A single MDT log record (paper Table 2).

The paper selects six fields from the raw MDT log: timestamp, taxi ID,
longitude, latitude, instantaneous speed and taxi state.  The sample record
reads::

    01/08/2008 19:04:51  SH0001A  103.7999  1.33795  54  POB

Timestamps are stored internally as POSIX seconds (float) for cheap
arithmetic; the paper's ``dd/mm/yyyy HH:MM:SS`` text form is supported for
CSV round-trips.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timezone
from math import isfinite
from typing import Sequence

from repro.states.states import TaxiState, parse_state

#: The timestamp format used in the paper's sample log line.
TIMESTAMP_FORMAT = "%d/%m/%Y %H:%M:%S"


def parse_timestamp(text: str) -> float:
    """Parse a ``dd/mm/yyyy HH:MM:SS`` timestamp into POSIX seconds (UTC).

    Raises:
        ValueError: when the text does not match the format, or when it
            parses but yields a non-finite POSIX value — a NaN or
            infinite timestamp would silently poison every downstream
            time-slot and duration computation, so it is rejected here
            with the same error class as a syntactically bad field.
    """
    dt = datetime.strptime(text.strip(), TIMESTAMP_FORMAT)
    ts = dt.replace(tzinfo=timezone.utc).timestamp()
    if not isfinite(ts):
        raise ValueError(f"non-finite POSIX timestamp from {text!r}")
    return ts


def format_timestamp(ts: float) -> str:
    """Format POSIX seconds as ``dd/mm/yyyy HH:MM:SS`` (UTC)."""
    dt = datetime.fromtimestamp(ts, tz=timezone.utc)
    return dt.strftime(TIMESTAMP_FORMAT)


@dataclass(frozen=True, slots=True)
class MdtRecord:
    """One event-driven MDT log record with the six selected fields.

    Attributes:
        ts: POSIX timestamp in seconds.
        taxi_id: operator-assigned vehicle identifier, e.g. ``"SH0001A"``.
        lon: GPS longitude in degrees.
        lat: GPS latitude in degrees.
        speed: instantaneous speed in km/h.
        state: one of the 11 :class:`~repro.states.states.TaxiState` values.
    """

    ts: float
    taxi_id: str
    lon: float
    lat: float
    speed: float
    state: TaxiState

    CSV_HEADER = "timestamp,taxi_id,longitude,latitude,speed,state"

    def to_csv_row(self) -> str:
        """Serialize to one CSV line in the paper's field order."""
        return (
            f"{format_timestamp(self.ts)},{self.taxi_id},"
            f"{self.lon:.6f},{self.lat:.6f},{self.speed:.1f},"
            f"{self.state.value}"
        )

    @classmethod
    def from_csv_row(cls, row: str) -> "MdtRecord":
        """Parse one CSV line produced by :meth:`to_csv_row`.

        Raises:
            ValueError: on a malformed line (wrong arity, bad timestamp,
                unknown state, non-numeric or non-finite coordinates and
                speeds — a NaN longitude would otherwise poison every
                distance computation downstream).
        """
        parts = row.rstrip("\n").split(",")
        if len(parts) != 6:
            raise ValueError(f"expected 6 fields, got {len(parts)}: {row!r}")
        ts_text, taxi_id, lon_text, lat_text, speed_text, state = parts
        lon = float(lon_text)
        lat = float(lat_text)
        speed = float(speed_text)
        if not (isfinite(lon) and isfinite(lat) and isfinite(speed)):
            raise ValueError(f"non-finite coordinate or speed: {row!r}")
        if not taxi_id:
            raise ValueError(f"empty taxi id: {row!r}")
        return cls(
            ts=parse_timestamp(ts_text),
            taxi_id=taxi_id,
            lon=lon,
            lat=lat,
            speed=speed,
            state=parse_state(state),
        )

    @classmethod
    def from_fields(cls, fields: Sequence[str]) -> "MdtRecord":
        """Build a record from already-split string fields."""
        return cls.from_csv_row(",".join(fields))

    def replace_ts(self, ts: float) -> "MdtRecord":
        """Copy with a different timestamp (used by the noise injector)."""
        return MdtRecord(ts, self.taxi_id, self.lon, self.lat, self.speed, self.state)
