"""An embedded store for MDT logs with per-taxi indexing.

The paper's deployed system keeps MDT logs in PostgreSQL and retrieves them
over JDBC (section 7.1).  This offline reproduction replaces that with an
embedded store that supports what the analytics engine actually needs:

* append-oriented ingestion of event-driven records,
* ordered per-taxi scans (trajectory extraction, Definition 1),
* time-range and bbox filtering,
* CSV and NumPy ``.npz`` persistence,
* basic dataset statistics (records/day, records/taxi — section 6.1.1).
"""

from __future__ import annotations

import io
from collections import defaultdict
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.geo.bbox import BBox
from repro.states.states import STATE_CODES, STATES_BY_CODE, TaxiState
from repro.trace.record import MdtRecord, format_timestamp, parse_timestamp

#: Stable encoding of states for the binary (.npz) format — the shared
#: state-code table (enum declaration order), so ``.npz`` archives and
#: :class:`~repro.columnar.RecordBatch` columns agree on the coding.
_STATE_CODES: Dict[TaxiState, int] = dict(STATE_CODES)
_CODE_STATES: Dict[int, TaxiState] = dict(enumerate(STATES_BY_CODE))


class MdtLogStore:
    """In-memory MDT log store, indexed by taxi and kept time-ordered.

    Records are buffered per taxi and sorted lazily on first read, so bulk
    ingestion is O(n) and ordered scans pay one sort per taxi.
    """

    def __init__(self, records: Optional[Iterable[MdtRecord]] = None):
        self._by_taxi: Dict[str, List[MdtRecord]] = defaultdict(list)
        self._sorted = True
        self._count = 0
        self.skipped_lines = 0
        """Malformed lines dropped by lenient CSV ingestion."""
        if records is not None:
            self.extend(records)

    # -- ingestion ---------------------------------------------------------

    def append(self, record: MdtRecord) -> None:
        """Add one record; ordering is restored lazily on read."""
        bucket = self._by_taxi[record.taxi_id]
        if bucket and bucket[-1].ts > record.ts:
            self._sorted = False
        bucket.append(record)
        self._count += 1

    def extend(self, records: Iterable[MdtRecord]) -> None:
        """Add many records."""
        for record in records:
            self.append(record)

    def _ensure_sorted(self) -> None:
        if self._sorted:
            return
        for bucket in self._by_taxi.values():
            bucket.sort(key=lambda r: r.ts)
        self._sorted = True

    # -- reads -------------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    @property
    def taxi_ids(self) -> List[str]:
        """All taxi identifiers present, sorted."""
        return sorted(self._by_taxi)

    @property
    def taxi_count(self) -> int:
        """Number of distinct taxis in the store."""
        return len(self._by_taxi)

    def records_of(self, taxi_id: str) -> List[MdtRecord]:
        """Time-ordered records of one taxi (empty list if unknown)."""
        self._ensure_sorted()
        return list(self._by_taxi.get(taxi_id, ()))

    def trajectory(self, taxi_id: str):
        """The taxi's :class:`~repro.trace.trajectory.Trajectory`."""
        from repro.trace.trajectory import Trajectory

        self._ensure_sorted()
        return Trajectory(taxi_id, self._by_taxi.get(taxi_id, ()))

    def iter_trajectories(self) -> Iterator:
        """Yield every taxi's trajectory in taxi-id order."""
        for taxi_id in self.taxi_ids:
            yield self.trajectory(taxi_id)

    def iter_records(self) -> Iterator[MdtRecord]:
        """Yield all records, grouped by taxi and time-ordered within."""
        self._ensure_sorted()
        for taxi_id in self.taxi_ids:
            yield from self._by_taxi[taxi_id]

    @property
    def time_span(self) -> Tuple[float, float]:
        """``(min_ts, max_ts)`` over all records.

        Raises:
            ValueError: when the store is empty.
        """
        if self._count == 0:
            raise ValueError("store is empty")
        self._ensure_sorted()
        lo = min(bucket[0].ts for bucket in self._by_taxi.values() if bucket)
        hi = max(bucket[-1].ts for bucket in self._by_taxi.values() if bucket)
        return lo, hi

    # -- filtering ---------------------------------------------------------

    def filter_time(self, start_ts: float, end_ts: float) -> "MdtLogStore":
        """New store holding records with ``start_ts <= ts < end_ts``."""
        out = MdtLogStore()
        for record in self.iter_records():
            if start_ts <= record.ts < end_ts:
                out.append(record)
        return out

    def filter_bbox(self, bbox: BBox) -> "MdtLogStore":
        """New store holding records whose GPS point lies inside ``bbox``."""
        out = MdtLogStore()
        for record in self.iter_records():
            if bbox.contains(record.lon, record.lat):
                out.append(record)
        return out

    def filter_taxis(self, taxi_ids: Iterable[str]) -> "MdtLogStore":
        """New store restricted to the given taxis."""
        wanted = set(taxi_ids)
        out = MdtLogStore()
        for taxi_id in wanted & set(self._by_taxi):
            out.extend(self._by_taxi[taxi_id])
        return out

    # -- statistics (section 6.1.1) -----------------------------------------

    def stats(self) -> Dict[str, float]:
        """Dataset statistics mirroring the paper's section 6.1.1 numbers."""
        if self._count == 0:
            return {
                "records": 0,
                "taxis": 0,
                "records_per_taxi": 0.0,
                "span_hours": 0.0,
            }
        lo, hi = self.time_span
        return {
            "records": float(self._count),
            "taxis": float(self.taxi_count),
            "records_per_taxi": self._count / self.taxi_count,
            "span_hours": (hi - lo) / 3600.0,
        }

    # -- persistence ---------------------------------------------------------

    def to_csv(self, path) -> None:
        """Write the store to a CSV file in the paper's field order."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as fh:
            fh.write(MdtRecord.CSV_HEADER + "\n")
            for record in self.iter_records():
                fh.write(record.to_csv_row() + "\n")

    @classmethod
    def from_csv(cls, path, on_error: str = "raise") -> "MdtLogStore":
        """Load a store from a CSV file written by :meth:`to_csv`.

        Args:
            path: the CSV file.
            on_error: ``"raise"`` (default) fails on the first malformed
                line; ``"skip"`` drops malformed lines and records the
                count in :attr:`skipped_lines` — real operator feeds
                contain truncated and garbled lines.

        Raises:
            ValueError: on a bad header, on a malformed line in raise
                mode, or for an unknown ``on_error`` value.
        """
        if on_error not in ("raise", "skip"):
            raise ValueError("on_error must be 'raise' or 'skip'")
        store = cls()
        path = Path(path)
        with path.open("r", encoding="utf-8") as fh:
            header = fh.readline()
            if header.strip() != MdtRecord.CSV_HEADER:
                raise ValueError(f"unexpected CSV header: {header!r}")
            for line in fh:
                if not line.strip():
                    continue
                try:
                    store.append(MdtRecord.from_csv_row(line))
                except ValueError:
                    if on_error == "raise":
                        raise
                    store.skipped_lines += 1
        return store

    def to_jsonl(self, path) -> None:
        """Write the store as JSON Lines (one record object per line).

        The streaming-friendly sibling of the CSV format: each line is a
        self-contained JSON object, so a consumer can tail the file.
        """
        import json

        path = Path(path)
        with path.open("w", encoding="utf-8") as fh:
            for record in self.iter_records():
                fh.write(
                    json.dumps(
                        {
                            "ts": record.ts,
                            "taxi_id": record.taxi_id,
                            "lon": record.lon,
                            "lat": record.lat,
                            "speed": record.speed,
                            "state": record.state.value,
                        },
                        separators=(",", ":"),
                    )
                    + "\n"
                )

    @classmethod
    def from_jsonl(cls, path) -> "MdtLogStore":
        """Load a store from a JSON Lines file written by :meth:`to_jsonl`.

        Raises:
            ValueError: on malformed JSON or missing fields.
        """
        import json

        store = cls()
        path = Path(path)
        with path.open("r", encoding="utf-8") as fh:
            for i, line in enumerate(fh, start=1):
                if not line.strip():
                    continue
                try:
                    obj = json.loads(line)
                    store.append(
                        MdtRecord(
                            ts=float(obj["ts"]),
                            taxi_id=str(obj["taxi_id"]),
                            lon=float(obj["lon"]),
                            lat=float(obj["lat"]),
                            speed=float(obj["speed"]),
                            state=TaxiState(obj["state"]),
                        )
                    )
                except (KeyError, ValueError, TypeError) as exc:
                    raise ValueError(f"bad JSONL record at line {i}: {exc}")
        return store

    def to_batch(self):
        """Columnar view: this store as a
        :class:`~repro.columnar.RecordBatch` in canonical grouped order
        (taxis sorted by id, time-ordered within each taxi).
        """
        from repro.columnar import RecordBatch

        return RecordBatch.from_store(self)

    @classmethod
    def from_batch(cls, batch) -> "MdtLogStore":
        """Build a store from a :class:`~repro.columnar.RecordBatch`."""
        store = cls()
        store.extend(batch.iter_rows())
        return store

    def to_arrays(self) -> Dict[str, np.ndarray]:
        """Columnar view: ts, lon, lat, speed (float64), state codes (int8),
        and taxi ids (unicode array), all aligned.
        """
        n = self._count
        ts = np.empty(n, dtype=np.float64)
        lon = np.empty(n, dtype=np.float64)
        lat = np.empty(n, dtype=np.float64)
        speed = np.empty(n, dtype=np.float64)
        state = np.empty(n, dtype=np.int8)
        taxi: List[str] = []
        for i, record in enumerate(self.iter_records()):
            ts[i] = record.ts
            lon[i] = record.lon
            lat[i] = record.lat
            speed[i] = record.speed
            state[i] = _STATE_CODES[record.state]
            taxi.append(record.taxi_id)
        return {
            "ts": ts,
            "lon": lon,
            "lat": lat,
            "speed": speed,
            "state": state,
            "taxi_id": np.asarray(taxi, dtype=np.str_),
        }

    def to_npz(self, path) -> None:
        """Persist to a compressed NumPy archive (compact binary format)."""
        np.savez_compressed(Path(path), **self.to_arrays())

    @classmethod
    def from_npz(cls, path) -> "MdtLogStore":
        """Load a store from a ``.npz`` archive written by :meth:`to_npz`."""
        data = np.load(Path(path), allow_pickle=False)
        store = cls()
        ts = data["ts"]
        lon = data["lon"]
        lat = data["lat"]
        speed = data["speed"]
        state = data["state"]
        taxi = data["taxi_id"]
        for i in range(len(ts)):
            store.append(
                MdtRecord(
                    ts=float(ts[i]),
                    taxi_id=str(taxi[i]),
                    lon=float(lon[i]),
                    lat=float(lat[i]),
                    speed=float(speed[i]),
                    state=_CODE_STATES[int(state[i])],
                )
            )
        return store

    def to_csv_text(self) -> str:
        """The CSV serialization as a string (handy for tests)."""
        buf = io.StringIO()
        buf.write(MdtRecord.CSV_HEADER + "\n")
        for record in self.iter_records():
            buf.write(record.to_csv_row() + "\n")
        return buf.getvalue()

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        if self._count == 0:
            return "MdtLogStore(empty)"
        lo, hi = self.time_span
        return (
            f"MdtLogStore({self._count} records, {self.taxi_count} taxis, "
            f"{format_timestamp(lo)} .. {format_timestamp(hi)})"
        )


def merge_stores(stores: Iterable[MdtLogStore]) -> MdtLogStore:
    """Union several stores into one (e.g. multiple simulated days)."""
    out = MdtLogStore()
    for store in stores:
        for record in store.iter_records():
            out.append(record)
    return out


__all__ = ["MdtLogStore", "merge_stores", "parse_timestamp"]
