"""Command-line interface: ``taxiqueue`` (or ``python -m repro``).

Subcommands mirror the deployed system's workflow (paper section 7.1):

* ``simulate`` — generate a day of MDT logs (CSV) plus side files;
* ``detect``  — tier 1: queue spot detection from a log CSV;
* ``analyze`` — tiers 1+2: detection plus queue context labels;
* ``export``  — tiers 1+2 plus frontend artefacts (GeoJSON, CSV, HTML);
* ``serve``   — replay a day through the streaming monitor and serve
  live queue state over HTTP (see ``docs/service.md``); admission
  control via ``--max-inflight`` / ``--rate-limit`` sheds overload
  with ``429 + Retry-After`` (see ``docs/load.md``);
* ``loadtest`` — drive a running service with a seeded deterministic
  workload and gate the result on SLOs (exit 1 on breach);
* ``demo``    — a quick end-to-end run on a small simulated day;
* ``metrics-dump`` — fetch a running service's metrics in Prometheus
  text format;
* ``trace summarize`` — per-stage latency/throughput digest of a JSONL
  trace file (see ``docs/observability.md``);
* ``history compact|query|export`` — maintain and query the durable
  multi-day history written by ``serve --history-dir`` (see
  ``docs/history.md``).

``detect``, ``analyze`` and ``serve`` accept ``--trace-out FILE`` (plus
``--trace-sample N``) to record pipeline trace spans; an unwritable
trace path fails fast — before any pipeline work — with exit code 2.
A ``.jsonl.gz`` trace path writes gzip; ``trace summarize`` and
``history query`` read either encoding transparently.

Invalid serving knobs (non-positive ``--checkpoint-every``, negative
``--disorder-window`` / ``--cache-ttl`` / ``--grace``) fail the same
way: one clear message on stderr and exit code 2, before any pipeline
work runs.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.core.engine import EngineConfig, QueueAnalyticEngine
from repro.core.reports import (
    citywide_proportions,
    format_proportions,
    format_transition_report,
)
from repro.core.types import TimeSlotGrid
from repro.geo.bbox import BBox
from repro.geo.zones import four_zone_partition
from repro.geo.point import LocalProjection
from repro.sim.city import DEFAULT_CITY_BBOX, City
from repro.sim.config import SimulationConfig
from repro.sim.fleet import simulate_day
from repro.trace.log_store import MdtLogStore


def _version() -> str:
    """The installed distribution version, falling back to the package's
    own ``__version__`` when running from a source tree."""
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        from repro import __version__

        return __version__


def _load_store(path_str: str) -> Optional[MdtLogStore]:
    """Load a log CSV, or print a clear error and return None.

    Subcommands taking an input CSV share this so a missing path yields
    a one-line message and a non-zero exit instead of a traceback.
    """
    path = Path(path_str)
    if not path.is_file():
        print(
            f"error: input CSV not found: {path}\n"
            "hint: generate one with 'taxiqueue simulate --output "
            f"{path}'",
            file=sys.stderr,
        )
        return None
    return MdtLogStore.from_csv(path)


def _add_sim_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=7, help="RNG seed")
    parser.add_argument(
        "--scenario", default=None,
        help="named scenario preset (see repro.sim.scenarios); overrides "
             "--fleet/--spots/--day defaults",
    )
    parser.add_argument(
        "--fleet", type=int, default=600, help="number of simulated taxis"
    )
    parser.add_argument(
        "--spots", type=int, default=30, help="ground-truth queue spots"
    )
    parser.add_argument(
        "--day", type=int, default=0, help="day of week (0=Mon .. 6=Sun)"
    )


def _build_config(args: argparse.Namespace) -> SimulationConfig:
    if getattr(args, "scenario", None):
        from repro.sim.scenarios import build_scenario

        return build_scenario(args.scenario, seed=args.seed)
    return SimulationConfig(
        seed=args.seed,
        fleet_size=args.fleet,
        n_queue_spots=args.spots,
        day_of_week=args.day,
    )


def _engine_for_bbox(
    bbox: BBox, observed_fraction: float, tracer=None
) -> QueueAnalyticEngine:
    zones = four_zone_partition(bbox)
    lon, lat = bbox.center
    return QueueAnalyticEngine(
        zones=zones,
        projection=LocalProjection(lon, lat),
        config=EngineConfig(observed_fraction=observed_fraction),
        city_bbox=bbox,
        tracer=tracer,
    )


def _add_trace_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="record pipeline trace spans to this JSONL file (see "
        "docs/observability.md); tracing is off without it",
    )
    parser.add_argument(
        "--trace-sample", type=int, default=1, metavar="N",
        help="keep every N-th trace (default 1: keep all); sampled "
        "traces are always complete span trees",
    )


def _build_tracer(args: argparse.Namespace):
    """``(tracer, writer)`` from ``--trace-out`` / ``--trace-sample``.

    Returns the null tracer (and no writer) when tracing is off, and
    ``(None, None)`` — after printing a clear error — when the trace
    path cannot be opened.  The open happens *here*, before any
    pipeline work, so a bad path can never crash a run mid-flight.
    """
    from repro.obs.tracer import NULL_TRACER

    path = getattr(args, "trace_out", None)
    if path is None:
        return NULL_TRACER, None
    if args.trace_sample < 1:
        print("error: --trace-sample must be >= 1", file=sys.stderr)
        return None, None
    from repro.obs import Tracer, TraceWriter

    try:
        writer = TraceWriter(path)
    except OSError as exc:
        print(
            f"error: cannot open trace output {path}: {exc}",
            file=sys.stderr,
        )
        return None, None
    return Tracer(writer, sample=args.trace_sample), writer


def _close_tracer(writer) -> None:
    """Close the trace writer and report what was recorded."""
    if writer is None:
        return
    writer.close()
    print(
        f"wrote {writer.traces_written} traces "
        f"({writer.spans_written} spans) to {writer.path}"
    )


def _wrap_workers(engine: QueueAnalyticEngine, args: argparse.Namespace):
    """Wrap the engine in a ParallelEngineRunner when --workers asks for
    one; with the default (serial) the engine is returned untouched."""
    workers = getattr(args, "workers", 1) or 1
    if workers <= 1:
        return engine
    from repro.parallel import ParallelEngineRunner

    return ParallelEngineRunner(
        engine, workers=workers, checkpointer=_stage_checkpointer(args)
    )


def _stage_checkpointer(args: argparse.Namespace):
    """A CheckpointManager for parallel stage checkpoints, when the
    subcommand was given --checkpoint-dir."""
    directory = getattr(args, "checkpoint_dir", None)
    if directory is None:
        return None
    from repro.resilience import CheckpointManager

    return CheckpointManager(directory)


def _print_parallel_stats(engine) -> None:
    """One line per parallel stage (no-op for a plain serial engine)."""
    stats = getattr(engine, "last_stats", None)
    if not stats:
        return
    for stage, entry in stats.items():
        mode = "pool" if entry["pool"] else "inline"
        line = (
            f"  [parallel] {stage}: {entry['shards']} shards in "
            f"{entry['seconds']:.2f}s ({mode})"
        )
        if entry["failed"]:
            line += f", {entry['failed']} degraded to serial"
        print(line)


def cmd_simulate(args: argparse.Namespace) -> int:
    config = _build_config(args)
    output = simulate_day(config)
    out_path = Path(args.output)
    output.store.to_csv(out_path)
    meta = {
        "records": len(output.store),
        "taxis_observed": output.store.taxi_count,
        "counters": output.counters,
        "failed_bookings": len(output.failed_bookings),
        "bbox": [
            output.city.bbox.west,
            output.city.bbox.south,
            output.city.bbox.east,
            output.city.bbox.north,
        ],
    }
    meta_path = out_path.with_suffix(".meta.json")
    meta_path.write_text(json.dumps(meta, indent=2))
    print(f"wrote {meta['records']} records to {out_path}")
    print(f"wrote metadata to {meta_path}")
    return 0


def cmd_detect(args: argparse.Namespace) -> int:
    tracer, trace_writer = _build_tracer(args)
    if tracer is None:
        return 2
    try:
        workers = args.workers or 1
        if workers > 1 or args.checkpoint_dir is not None:
            # Stage checkpoints ride on the runner even in serial mode.
            return _detect_parallel(args, workers, tracer)
        with tracer.trace("pipeline.batch", command="detect"):
            with tracer.span("stage.ingest", mode="csv") as span:
                store = _load_store(args.input)
                if store is None:
                    return 2
                span.set(records=len(store))
            bbox = _bbox_from_args(args, store)
            engine = _engine_for_bbox(bbox, args.coverage, tracer=tracer)
            detection = engine.detect_spots(store)
            with tracer.span("stage.publish", mode="stdout") as span:
                _print_detection(detection, args.top)
                span.set(spots=len(detection.spots))
        return 0
    finally:
        _close_tracer(trace_writer)


def _print_detection(detection, top: int) -> None:
    print(f"detected {len(detection.spots)} queue spots "
          f"({detection.noise_count} noise pickup events)")
    for spot in detection.spots[:top]:
        print(
            f"  {spot.spot_id}  ({spot.lon:.5f}, {spot.lat:.5f})  "
            f"zone={spot.zone}  pickups={spot.pickup_count}"
        )


def _detect_parallel(
    args: argparse.Namespace, workers: int, tracer=None
) -> int:
    """Tier 1 with chunked CSV ingest: the full day never sits in one
    process; workers stream their own zone shard from disk."""
    from repro.obs.tracer import NULL_TRACER
    from repro.parallel import ParallelEngineRunner, scan_csv

    if tracer is None:
        tracer = NULL_TRACER
    path = Path(args.input)
    if not path.is_file():
        print(
            f"error: input CSV not found: {path}\n"
            "hint: generate one with 'taxiqueue simulate --output "
            f"{path}'",
            file=sys.stderr,
        )
        return 2
    scan = scan_csv(path)
    if args.bbox:
        west, south, east, north = (float(x) for x in args.bbox.split(","))
        bbox = BBox(west, south, east, north)
    elif scan.bbox is not None:
        bbox = scan.bbox.expanded(0.01)
    else:
        bbox = DEFAULT_CITY_BBOX
    engine = _engine_for_bbox(bbox, args.coverage, tracer=tracer)
    runner = ParallelEngineRunner(
        engine, workers=workers, checkpointer=_stage_checkpointer(args)
    )
    with tracer.trace("pipeline.batch", command="detect", workers=workers):
        detection = runner.detect_spots_csv(path)
        with tracer.span("stage.publish", mode="stdout") as span:
            _print_detection(detection, args.top)
            span.set(spots=len(detection.spots))
    report = runner.last_cleaning_report
    if report is not None and report.malformed_line:
        print(f"  ({report.malformed_line} malformed CSV lines skipped)")
    _print_parallel_stats(runner)
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    tracer, trace_writer = _build_tracer(args)
    if tracer is None:
        return 2
    try:
        with tracer.trace("pipeline.batch", command="analyze"):
            with tracer.span("stage.ingest", mode="csv") as span:
                store = _load_store(args.input)
                if store is None:
                    return 2
                span.set(records=len(store))
            bbox = _bbox_from_args(args, store)
            engine = _wrap_workers(
                _engine_for_bbox(bbox, args.coverage, tracer=tracer), args
            )
            detection = engine.detect_spots(store)
            analyses = engine.disambiguate(store, detection)
            with tracer.span("stage.publish", mode="stdout") as span:
                print(
                    format_proportions(
                        citywide_proportions(analyses.values())
                    )
                )
                span.set(spots=len(analyses))
    finally:
        _close_tracer(trace_writer)
    _print_parallel_stats(engine)
    if args.spot:
        analysis = analyses.get(args.spot)
        if analysis is None:
            print(f"unknown spot id {args.spot!r}", file=sys.stderr)
            return 1
        lo, _ = store.time_span
        grid = TimeSlotGrid.for_day(lo - (lo % 86400.0))
        print()
        print(format_transition_report(analysis, grid))
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    from repro.export.csv_report import (
        write_features_csv,
        write_labels_csv,
        write_spots_csv,
    )
    from repro.export.geojson import dump_geojson, labels_to_geojson, spots_to_geojson
    from repro.export.html_report import write_html_report

    store = _load_store(args.input)
    if store is None:
        return 2
    bbox = _bbox_from_args(args, store)
    engine = _engine_for_bbox(bbox, args.coverage)
    detection = engine.detect_spots(store)
    analyses = engine.disambiguate(store, detection)
    lo, _ = store.time_span
    grid = TimeSlotGrid.for_day(lo - (lo % 86400.0))

    out_dir = Path(args.outdir)
    out_dir.mkdir(parents=True, exist_ok=True)
    dump_geojson(spots_to_geojson(detection.spots), out_dir / "spots.geojson")
    dump_geojson(
        labels_to_geojson(analyses.values(), grid), out_dir / "labels.geojson"
    )
    write_spots_csv(detection.spots, out_dir / "spots.csv")
    write_labels_csv(analyses.values(), grid, out_dir / "labels.csv")
    write_features_csv(analyses.values(), grid, out_dir / "features.csv")
    write_html_report(analyses.values(), grid, out_dir / "report.html")
    print(f"exported {len(detection.spots)} spots to {out_dir}/")
    for name in (
        "spots.geojson", "labels.geojson", "spots.csv", "labels.csv",
        "features.csv", "report.html",
    ):
        print(f"  {name}")
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    config = SimulationConfig(
        seed=args.seed, fleet_size=300, n_queue_spots=15, n_decoy_landmarks=8
    )
    print("simulating a small city day ...")
    output = simulate_day(config)
    print(f"  {len(output.store)} MDT records from "
          f"{output.store.taxi_count} observed taxis")
    city = output.city
    engine = QueueAnalyticEngine(
        zones=city.zones,
        projection=city.projection,
        config=EngineConfig(observed_fraction=config.observed_fraction),
        city_bbox=city.bbox,
        inaccessible=city.water,
    )
    detection = engine.detect_spots(output.store)
    print(f"  detected {len(detection.spots)} queue spots")
    analyses = engine.disambiguate(
        output.store, detection, output.ground_truth.grid
    )
    print()
    print(format_proportions(citywide_proportions(analyses.values())))
    if detection.spots:
        busiest = detection.spots[0].spot_id
        print()
        print(format_transition_report(
            analyses[busiest], output.ground_truth.grid
        ))
    return 0


def _validate_serve_args(args: argparse.Namespace) -> Optional[str]:
    """The first invalid serving knob's message, or None when all are
    fine.  Runs before any pipeline work so a typo'd flag can never
    cost a bootstrap."""
    if args.checkpoint_every <= 0:
        return (
            f"--checkpoint-every must be a positive record count, "
            f"got {args.checkpoint_every}"
        )
    if args.disorder_window < 0:
        return (
            f"--disorder-window must be >= 0 seconds, "
            f"got {args.disorder_window:g}"
        )
    if args.cache_ttl < 0:
        return f"--cache-ttl must be >= 0 seconds, got {args.cache_ttl:g}"
    if args.grace < 0:
        return f"--grace must be >= 0 seconds, got {args.grace:g}"
    if args.history_compact_interval <= 0:
        return (
            f"--history-compact-interval must be positive seconds, "
            f"got {args.history_compact_interval:g}"
        )
    if args.max_inflight is not None and args.max_inflight < 1:
        return (
            f"--max-inflight must admit at least one request, "
            f"got {args.max_inflight}"
        )
    if args.rate_limit is not None and args.rate_limit <= 0:
        return (
            f"--rate-limit must be positive requests/second, "
            f"got {args.rate_limit:g}"
        )
    if args.rate_burst is not None and args.rate_burst < 1:
        return f"--rate-burst must be >= 1 token, got {args.rate_burst}"
    if args.rate_burst is not None and args.rate_limit is None:
        return "--rate-burst needs --rate-limit"
    return None


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import QueueService, ServiceConfig

    problem = _validate_serve_args(args)
    if problem is not None:
        print(f"error: {problem}", file=sys.stderr)
        return 2
    tracer, trace_writer = _build_tracer(args)
    if tracer is None:
        return 2
    if args.input is not None:
        store = _load_store(args.input)
        if store is None:
            _close_tracer(trace_writer)
            return 2
        bbox = _bbox_from_args(args, store)
        engine = _engine_for_bbox(bbox, args.coverage, tracer=tracer)
        grid = None
        source = args.input
    else:
        config = _build_config(args)
        print("no input CSV given; simulating a day ...")
        output = simulate_day(config)
        store = output.store
        city = output.city
        engine = QueueAnalyticEngine(
            zones=city.zones,
            projection=city.projection,
            config=EngineConfig(observed_fraction=config.observed_fraction),
            city_bbox=city.bbox,
            inaccessible=city.water,
            tracer=tracer,
        )
        grid = output.ground_truth.grid
        source = f"simulated day (seed {config.seed})"

    service_config = ServiceConfig(
        host=args.host,
        port=args.port,
        speedup=None if args.speedup <= 0 else args.speedup,
        cache_ttl_s=args.cache_ttl,
        max_inflight=args.max_inflight,
        rate_limit_rps=args.rate_limit,
        rate_burst=args.rate_burst,
        grace_s=args.grace,
        disorder_window_s=args.disorder_window,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every_records=args.checkpoint_every,
        stale_after_s=args.stale_after,
        history_dir=args.history_dir,
        history_day_of_week=args.history_day,
        history_compact_interval_s=args.history_compact_interval,
    )
    engine = _wrap_workers(engine, args)
    print(f"bootstrapping spots and thresholds from {source} ...")
    service = QueueService.from_day(
        store, engine, service_config, grid,
        metrics=getattr(engine, "metrics", None),
    )
    _print_parallel_stats(engine)
    if service.resumed_from is not None:
        print(
            f"restored checkpoint from {args.checkpoint_dir}; resuming "
            f"replay at record {service.resumed_from} "
            f"(snapshot v{service.store.version})"
        )
    n_spots = len(service.store.spot_ids)
    service.start()
    print(f"serving {n_spots} spots at {service.server.url}")
    print(f"  GET {service.server.url}/v1/spots")
    print(f"  GET {service.server.url}/v1/citywide")
    print(f"  GET {service.server.url}/v1/metrics")
    if args.history_dir is not None:
        print(f"  GET {service.server.url}/v1/history/citywide")
        print(f"  GET {service.server.url}/v1/history/patterns")
        print(f"  (history segments in {args.history_dir})")
    speed = service_config.speedup
    print(
        f"replaying at {'maximum' if speed is None else f'{speed:g}x'} "
        "speed; Ctrl-C to stop"
    )
    try:
        if args.max_seconds is not None:
            service.replayer.finished.wait(timeout=args.max_seconds)
        else:
            while not service.replayer.finished.wait(timeout=1.0):
                pass
            if service.watchdog is not None:
                service.watchdog.expect_idle()
            print("replay finished; still serving the final snapshot "
                  "(Ctrl-C to stop)")
            while True:
                time.sleep(3600.0)
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        service.stop()
        _close_tracer(trace_writer)
    return 0


def cmd_loadtest(args: argparse.Namespace) -> int:
    """Drive a running service with a seeded workload; gate on SLOs.

    Exit codes: 0 — run completed and every configured SLO held;
    1 — SLO breach; 2 — bad arguments or unreachable target.
    """
    from repro.load import (
        PROFILES,
        LoadTestConfig,
        TargetError,
        format_report,
        run_loadtest,
    )

    if args.profile not in PROFILES:
        known = ", ".join(sorted(PROFILES))
        print(
            f"error: unknown profile {args.profile!r} (known: {known})",
            file=sys.stderr,
        )
        return 2
    try:
        config = LoadTestConfig(
            url=args.url,
            profile=args.profile,
            mode=args.mode,
            rate=args.rate,
            concurrency=args.concurrency,
            duration_s=args.duration,
            warmup_s=args.warmup,
            seed=args.seed,
            timeout_s=args.timeout,
            slo_p99_s=args.slo_p99,
            slo_error_rate=args.slo_error_rate,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        report, result, breaches = run_loadtest(config)
    except TargetError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_report(report, result, breaches, config))
    return 1 if breaches else 0


def cmd_metrics_dump(args: argparse.Namespace) -> int:
    """Print a running service's metrics in Prometheus text format."""
    from urllib.error import URLError
    from urllib.request import urlopen

    url = args.url.rstrip("/") + "/v1/metrics?format=prometheus"
    try:
        with urlopen(url, timeout=args.timeout) as response:
            sys.stdout.write(response.read().decode("utf-8"))
    except (URLError, OSError) as exc:
        print(
            f"error: cannot fetch {url}: {exc}\n"
            "hint: is 'taxiqueue serve' running at that address?",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_trace_summarize(args: argparse.Namespace) -> int:
    """Per-stage latency/throughput digest of a JSONL trace file."""
    from repro.obs import format_summary, load_spans, summarize_spans

    path = Path(args.file)
    if not path.is_file():
        print(f"error: trace file not found: {path}", file=sys.stderr)
        return 2
    try:
        spans = load_spans(path)
    except (ValueError, OSError) as exc:
        # OSError covers a corrupt .gz stream.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not spans:
        print(f"no spans in {path}")
        return 0
    traces = {span["trace_id"] for span in spans}
    print(f"{path}: {len(spans)} spans across {len(traces)} traces")
    print()
    print(format_summary(summarize_spans(spans)))
    return 0


def cmd_history_compact(args: argparse.Namespace) -> int:
    """Roll the day segments of a history directory into the weekly
    aggregate (same pass the in-service compactor runs periodically)."""
    from repro.history import SegmentStore, compact_store

    directory = Path(args.dir)
    if not directory.is_dir():
        print(
            f"error: history directory not found: {directory}\n"
            "hint: produce one with 'taxiqueue serve --history-dir "
            f"{directory}'",
            file=sys.stderr,
        )
        return 2
    store = SegmentStore(directory)
    aggregate = compact_store(store)
    print(
        f"compacted {len(aggregate['days'])} day segments into "
        f"{store.aggregate_path}"
    )
    for day, reason in sorted(store.corrupt_days.items()):
        print(f"  skipped corrupt day {day}: {reason}", file=sys.stderr)
    return 1 if store.corrupt_days else 0


def _history_engine_for(path: Path, stack):
    """A query engine over ``path`` — a history directory, or a
    JSONL(.gz) dump from ``history export`` (reconstructed into a
    temporary segment store registered on ``stack``)."""
    import tempfile

    from repro.core.types import QueueSpot, QueueType
    from repro.history import (
        DaySegment,
        HistoryQueryEngine,
        SegmentStore,
        SlotRecord,
    )
    from repro.obs.export import open_text

    if path.is_dir():
        return HistoryQueryEngine(SegmentStore(path))

    days: dict = {}
    with open_text(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            entry = json.loads(line)
            kind = entry.get("kind")
            if kind == "day":
                days[entry["day"]] = {
                    "day_of_week": entry["day_of_week"],
                    "slot_seconds": entry["slot_seconds"],
                    "spots": [],
                    "records": [],
                }
            elif kind == "spot":
                days[entry["day"]]["spots"].append(
                    QueueSpot(
                        spot_id=entry["spot_id"],
                        lon=entry["lon"],
                        lat=entry["lat"],
                        zone=entry["zone"],
                        pickup_count=entry["pickup_count"],
                        radius_m=entry["radius_m"],
                    )
                )
            elif kind == "slot":
                days[entry["day"]]["records"].append(
                    SlotRecord(
                        spot_id=entry["spot_id"],
                        slot=entry["slot"],
                        label=QueueType(entry["label"]),
                        routine=entry["routine"],
                        mean_wait_s=entry["mean_wait_s"],
                        n_arrivals=entry["n_arrivals"],
                        queue_length=entry["queue_length"],
                        mean_departure_interval_s=(
                            entry["mean_departure_interval_s"]
                        ),
                        n_departures=entry["n_departures"],
                    )
                )
            else:
                raise ValueError(
                    f"line {lineno}: unknown dump line kind {kind!r}"
                )
    tmp = stack.enter_context(
        tempfile.TemporaryDirectory(prefix="taxiqueue-history-")
    )
    store = SegmentStore(tmp)
    for day, parts in sorted(days.items()):
        store.write_day(
            DaySegment(
                day=day,
                day_of_week=parts["day_of_week"],
                slot_seconds=parts["slot_seconds"],
                spots=parts["spots"],
                records=parts["records"],
            )
        )
    return HistoryQueryEngine(store)


def cmd_history_query(args: argparse.Namespace) -> int:
    """Query a history directory (or an exported dump) offline: the
    same payloads the ``/v1/history/*`` endpoints serve, as JSON."""
    from contextlib import ExitStack

    from repro.history import QueryError

    path = Path(args.path)
    if not path.exists():
        print(f"error: no such history path: {path}", file=sys.stderr)
        return 2
    with ExitStack() as stack:
        try:
            engine = _history_engine_for(path, stack)
        except (ValueError, KeyError, OSError) as exc:
            print(f"error: cannot load {path}: {exc}", file=sys.stderr)
            return 1
        try:
            if args.spot is not None:
                if args.profile:
                    payload = engine.spot_profile(args.spot)
                else:
                    payload = engine.spot_history(
                        args.spot,
                        start_day=args.start_day,
                        end_day=args.end_day,
                        page=args.page,
                        per_page=args.per_page,
                        downsample=args.downsample,
                    )
                if payload is None:
                    print(
                        f"error: spot {args.spot!r} unknown to the history",
                        file=sys.stderr,
                    )
                    return 1
            elif args.citywide:
                payload = engine.citywide(
                    start_day=args.start_day, end_day=args.end_day
                )
            else:
                payload = engine.patterns()
        except QueryError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def cmd_history_export(args: argparse.Namespace) -> int:
    """Dump a history directory as JSONL(.gz) — one ``day`` line per
    segment followed by its ``spot`` and ``slot`` lines."""
    from repro.history import SegmentStore
    from repro.obs.export import open_text

    directory = Path(args.dir)
    if not directory.is_dir():
        print(
            f"error: history directory not found: {directory}",
            file=sys.stderr,
        )
        return 2
    store = SegmentStore(directory)
    segments = store.read_all()
    days = written = 0
    with open_text(args.output, "wt") as fh:
        for segment in segments:
            fh.write(json.dumps({
                "kind": "day",
                "day": segment.day,
                "day_of_week": segment.day_of_week,
                "slot_seconds": segment.slot_seconds,
            }, sort_keys=True) + "\n")
            for spot in segment.spots:
                fh.write(json.dumps({
                    "kind": "spot",
                    "day": segment.day,
                    "spot_id": spot.spot_id,
                    "lon": spot.lon,
                    "lat": spot.lat,
                    "zone": spot.zone,
                    "pickup_count": spot.pickup_count,
                    "radius_m": spot.radius_m,
                }, sort_keys=True) + "\n")
            for record in segment.records:
                fh.write(json.dumps({
                    "kind": "slot",
                    "day": segment.day,
                    "spot_id": record.spot_id,
                    "slot": record.slot,
                    "label": record.label.value,
                    "routine": record.routine,
                    "mean_wait_s": record.mean_wait_s,
                    "n_arrivals": record.n_arrivals,
                    "queue_length": record.queue_length,
                    "mean_departure_interval_s": (
                        record.mean_departure_interval_s
                    ),
                    "n_departures": record.n_departures,
                }, sort_keys=True) + "\n")
                written += 1
            days += 1
    print(f"exported {days} days ({written} slot records) to {args.output}")
    for day, reason in sorted(store.corrupt_days.items()):
        print(f"  skipped corrupt day {day}: {reason}", file=sys.stderr)
    return 1 if store.corrupt_days else 0


# -- conformance ------------------------------------------------------------


def _conformance_inputs(args: argparse.Namespace):
    """``(cases, store, bootstrap)`` from run/shrink arguments, or None
    after printing a usage error (exit 2 at the caller)."""
    from repro.conformance.matrix import csv_case, default_matrix

    if args.workers is not None and args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return None
    if not 0.0 < args.kill_frac < 1.0:
        print("error: --kill-frac must be in (0, 1)", file=sys.stderr)
        return None
    if args.checkpoint_every < 1:
        print("error: --checkpoint-every must be >= 1", file=sys.stderr)
        return None
    if args.disorder_window < 0:
        print("error: --disorder-window must be >= 0", file=sys.stderr)
        return None
    if args.input is None:
        if getattr(args, "seeds", 1) < 1:
            print("error: --seeds must be >= 1", file=sys.stderr)
            return None
        from repro.conformance.matrix import DEFAULT_SEED_BASE

        cases = default_matrix(
            getattr(args, "seeds", 1),
            seed_base=(
                args.seed_base
                if args.seed_base is not None
                else DEFAULT_SEED_BASE
            ),
            workers=args.workers,
        )
        return cases, None, None
    store = _load_store(args.input)
    if store is None:
        return None
    bootstrap = None
    if args.bootstrap is not None:
        from repro.conformance.canonical import DayBootstrap

        try:
            bootstrap = DayBootstrap.load(args.bootstrap)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(
                f"error: cannot load bootstrap {args.bootstrap}: {exc}",
                file=sys.stderr,
            )
            return None
    case = csv_case(
        Path(args.input).stem,
        min_pts=args.min_pts,
        coverage=args.coverage,
        workers=args.workers if args.workers is not None else 2,
        disorder_window_s=args.disorder_window,
        kill_frac=args.kill_frac,
        checkpoint_every=args.checkpoint_every,
    )
    return [case], store, bootstrap


def _conformance_checks(args: argparse.Namespace):
    """Parsed ``--checks`` list, or None on an unknown name."""
    from repro.conformance.runner import ALL_CHECKS

    if not args.checks:
        return list(ALL_CHECKS)
    checks = [c.strip() for c in args.checks.split(",") if c.strip()]
    unknown = [c for c in checks if c not in ALL_CHECKS]
    if unknown:
        print(
            f"error: unknown checks: {', '.join(unknown)} "
            f"(have: {', '.join(ALL_CHECKS)})",
            file=sys.stderr,
        )
        return None
    return checks


def _conformance_fault(args: argparse.Namespace) -> bool:
    """Validate ``--inject-fault``; prints the test-only warning."""
    if args.inject_fault is None:
        return True
    from repro.conformance.faults import FAULTS

    if args.inject_fault not in FAULTS:
        print(
            f"error: unknown fault {args.inject_fault!r} "
            f"(have: {', '.join(sorted(FAULTS))})",
            file=sys.stderr,
        )
        return False
    print(
        f"warning: test-only fault {args.inject_fault!r} is patched in — "
        "divergences are expected",
        file=sys.stderr,
    )
    return True


def cmd_conformance_run(args: argparse.Namespace) -> int:
    """Run the conformance matrix (or one input day) through every
    execution path; exit 1 on any divergence."""
    from repro.conformance.report import format_report, format_summary
    from repro.conformance.runner import run_matrix
    from repro.service.metrics import MetricsRegistry

    inputs = _conformance_inputs(args)
    checks = _conformance_checks(args)
    if inputs is None or checks is None or not _conformance_fault(args):
        return 2
    cases, store, bootstrap = inputs
    tracer, trace_writer = _build_tracer(args)
    if tracer is None:
        return 2
    metrics = MetricsRegistry()
    try:
        reports = run_matrix(
            cases,
            store=store,
            bootstrap=bootstrap,
            checks=checks,
            shrink=not args.no_shrink,
            shrink_max_runs=args.shrink_max_runs,
            out_dir=args.out,
            fault=args.inject_fault,
            metrics=metrics,
            tracer=tracer,
            progress=(
                None
                if args.json
                else lambda report: print(format_report(report))
            ),
        )
    finally:
        _close_tracer(trace_writer)
    if args.json:
        print(json.dumps([r.to_dict() for r in reports], indent=1))
    else:
        print(format_summary(reports))
    return 1 if any(r.divergent for r in reports) else 0


def cmd_conformance_shrink(args: argparse.Namespace) -> int:
    """Shrink a diverging input day to a minimal repro; exit 0 when a
    divergence was found and reduced, 1 when the day is conformant."""
    from repro.conformance.report import format_report
    from repro.conformance.runner import run_case
    from repro.service.metrics import MetricsRegistry

    inputs = _conformance_inputs(args)
    checks = _conformance_checks(args)
    if inputs is None or checks is None or not _conformance_fault(args):
        return 2
    cases, store, bootstrap = inputs
    tracer, trace_writer = _build_tracer(args)
    if tracer is None:
        return 2
    metrics = MetricsRegistry()
    try:
        report = run_case(
            cases[0],
            store=store,
            bootstrap=bootstrap,
            checks=checks,
            shrink=True,
            shrink_max_runs=args.shrink_max_runs,
            out_dir=args.out,
            fault=args.inject_fault,
            metrics=metrics,
            tracer=tracer,
        )
    finally:
        _close_tracer(trace_writer)
    print(format_report(report))
    if not report.divergent:
        print("no divergence found; nothing to shrink")
        return 1
    return 0


def cmd_conformance_report(args: argparse.Namespace) -> int:
    """Summarize the report.json files a previous --out run wrote."""
    from repro.conformance.report import (
        format_loaded_summary,
        load_reports,
    )

    try:
        reports = load_reports(args.dir)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for report in reports:
        state = "DIVERGENT" if report.get("divergent") else "conformant"
        failed = [
            check["name"]
            for check in report.get("checks", [])
            if not check.get("ok")
        ]
        line = f"case {report['name']}: {state}"
        if failed:
            line += f" ({', '.join(failed)})"
        shrink = report.get("shrink")
        if shrink and "minimal_records" in shrink:
            line += (
                f" — shrunk to {shrink['minimal_records']} records"
            )
        print(line)
    print(format_loaded_summary(reports))
    return 1 if any(r.get("divergent") for r in reports) else 0


def _bbox_from_args(args: argparse.Namespace, store: MdtLogStore) -> BBox:
    if args.bbox:
        west, south, east, north = (float(x) for x in args.bbox.split(","))
        return BBox(west, south, east, north)
    try:
        return BBox.from_points(
            (r.lon, r.lat) for r in store.iter_records()
        ).expanded(0.01)
    except ValueError:
        return DEFAULT_CITY_BBOX


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="taxiqueue",
        description="Queue detection and analysis from taxi MDT logs "
        "(EDBT 2015 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_version()}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sim = sub.add_parser("simulate", help="generate a simulated day of MDT logs")
    _add_sim_args(p_sim)
    p_sim.add_argument("--output", default="mdt_logs.csv", help="CSV output path")
    p_sim.set_defaults(func=cmd_simulate)

    workers_help = (
        "worker processes for the zone-sharded parallel pipeline "
        "(default 1: serial, unchanged behaviour; see docs/parallel.md)"
    )

    p_det = sub.add_parser("detect", help="detect queue spots from a log CSV")
    p_det.add_argument("input", help="MDT log CSV")
    p_det.add_argument("--coverage", type=float, default=1.0,
                       help="observed fleet fraction (default 1.0)")
    p_det.add_argument("--bbox", default=None,
                       help="city bbox 'west,south,east,north'")
    p_det.add_argument("--top", type=int, default=20,
                       help="how many spots to print")
    p_det.add_argument("--workers", type=int, default=1, help=workers_help)
    p_det.add_argument(
        "--checkpoint-dir", default=None,
        help="directory for pipeline stage checkpoints; a rerun over the "
        "same input reuses completed stages (see docs/resilience.md)",
    )
    _add_trace_args(p_det)
    p_det.set_defaults(func=cmd_detect)

    p_ana = sub.add_parser("analyze", help="detect spots and label queue contexts")
    p_ana.add_argument("input", help="MDT log CSV")
    p_ana.add_argument("--coverage", type=float, default=1.0)
    p_ana.add_argument("--bbox", default=None)
    p_ana.add_argument("--spot", default=None,
                       help="print the transition report of one spot id")
    p_ana.add_argument("--workers", type=int, default=1, help=workers_help)
    _add_trace_args(p_ana)
    p_ana.set_defaults(func=cmd_analyze)

    p_exp = sub.add_parser(
        "export", help="analyze and write GeoJSON/CSV/HTML artefacts"
    )
    p_exp.add_argument("input", help="MDT log CSV")
    p_exp.add_argument("--coverage", type=float, default=1.0)
    p_exp.add_argument("--bbox", default=None)
    p_exp.add_argument("--outdir", default="queue_report",
                       help="output directory for the artefacts")
    p_exp.set_defaults(func=cmd_export)

    p_srv = sub.add_parser(
        "serve",
        help="replay a day through the streaming monitor and serve live "
        "queue state over HTTP",
    )
    p_srv.add_argument(
        "input", nargs="?", default=None,
        help="MDT log CSV (omit to simulate a day)",
    )
    _add_sim_args(p_srv)
    p_srv.add_argument("--coverage", type=float, default=1.0)
    p_srv.add_argument("--bbox", default=None,
                       help="city bbox 'west,south,east,north'")
    p_srv.add_argument("--host", default="127.0.0.1", help="bind address")
    p_srv.add_argument("--port", type=int, default=8080,
                       help="bind port (0 picks a free port)")
    p_srv.add_argument(
        "--speedup", type=float, default=600.0,
        help="stream-seconds per wall-second (<=0 replays flat out; "
        "default 600 serves a day in ~2.4 minutes)",
    )
    p_srv.add_argument("--cache-ttl", type=float, default=1.0,
                       help="response cache TTL in seconds (0 disables)")
    p_srv.add_argument("--grace", type=float, default=900.0,
                       help="slot finalization grace period in seconds")
    p_srv.add_argument(
        "--max-seconds", type=float, default=None,
        help="stop after this many seconds (default: serve until Ctrl-C)",
    )
    p_srv.add_argument("--workers", type=int, default=1, help=workers_help)
    p_srv.add_argument(
        "--checkpoint-dir", default=None,
        help="directory for periodic service checkpoints; on restart the "
        "newest good checkpoint is restored and the replay resumes "
        "exactly where it was killed (see docs/resilience.md)",
    )
    p_srv.add_argument(
        "--checkpoint-every", type=int, default=5000,
        help="checkpoint cadence in consumed records (default 5000)",
    )
    p_srv.add_argument(
        "--disorder-window", type=float, default=0.0,
        help="bounded-lateness reorder window in stream seconds; records "
        "arriving out of order within the window are re-sequenced before "
        "the monitor, later ones are dropped and counted (0 disables)",
    )
    p_srv.add_argument(
        "--max-inflight", type=int, default=None, metavar="N",
        help="admission control: bound on concurrently handled requests; "
        "excess requests are shed with 429 + Retry-After "
        "(default: unbounded; see docs/load.md)",
    )
    p_srv.add_argument(
        "--rate-limit", type=float, default=None, metavar="RPS",
        help="admission control: sustained requests/second through a "
        "token bucket; over-rate requests are shed with 429 + "
        "Retry-After (default: no rate limit)",
    )
    p_srv.add_argument(
        "--rate-burst", type=int, default=None, metavar="TOKENS",
        help="token-bucket burst capacity (default: one second's worth "
        "of --rate-limit)",
    )
    p_srv.add_argument(
        "--stale-after", type=float, default=30.0,
        help="watchdog staleness threshold in wall seconds (surfaced at "
        "/v1/healthz and /v1/metrics)",
    )
    p_srv.add_argument(
        "--history-dir", default=None,
        help="directory for durable day segments of finalized slot "
        "results; enables the /v1/history/* endpoints and the history "
        "CLI (see docs/history.md)",
    )
    p_srv.add_argument(
        "--history-day", type=int, default=None, choices=range(7),
        metavar="0..6",
        help="day of week (0=Mon..6=Sun) of the stream's first day in "
        "the history; defaults to the calendar weekday of the epoch day",
    )
    p_srv.add_argument(
        "--history-compact-interval", type=float, default=300.0,
        help="seconds between background week-level compaction passes "
        "(default %(default)s)",
    )
    _add_trace_args(p_srv)
    p_srv.set_defaults(func=cmd_serve)

    p_demo = sub.add_parser("demo", help="small end-to-end demonstration")
    p_demo.add_argument("--seed", type=int, default=7)
    p_demo.set_defaults(func=cmd_demo)

    p_load = sub.add_parser(
        "loadtest",
        help="drive a running service with a seeded deterministic "
        "workload and gate on SLOs (see docs/load.md)",
    )
    p_load.add_argument(
        "--url", default="http://127.0.0.1:8080",
        help="base URL of the running service (default %(default)s)",
    )
    p_load.add_argument(
        "--profile", default="read-heavy",
        help="workload profile: read-heavy, mixed, history, snapshot-hot "
        "(default %(default)s)",
    )
    p_load.add_argument(
        "--mode", choices=("open", "closed"), default="closed",
        help="open: fixed arrival schedule at --rate; closed: "
        "--concurrency back-to-back workers (default %(default)s)",
    )
    p_load.add_argument(
        "--rate", type=float, default=50.0,
        help="open-loop arrival rate in requests/second "
        "(default %(default)s)",
    )
    p_load.add_argument(
        "--concurrency", type=int, default=8,
        help="closed-loop worker count (default %(default)s)",
    )
    p_load.add_argument(
        "--duration", type=float, default=10.0,
        help="measured seconds, after warmup (default %(default)s)",
    )
    p_load.add_argument(
        "--warmup", type=float, default=1.0,
        help="warmup seconds discarded from the report "
        "(default %(default)s)",
    )
    p_load.add_argument(
        "--seed", type=int, default=7,
        help="workload seed; same seed, byte-identical request plan "
        "(default %(default)s)",
    )
    p_load.add_argument(
        "--timeout", type=float, default=10.0,
        help="per-request HTTP timeout in seconds (default %(default)s)",
    )
    p_load.add_argument(
        "--slo-p99", type=float, default=None, metavar="SECONDS",
        help="fail (exit 1) when p99 latency exceeds this",
    )
    p_load.add_argument(
        "--slo-error-rate", type=float, default=None, metavar="RATE",
        help="fail (exit 1) when the error rate (transport + 5xx; "
        "shed 429s excluded) exceeds this",
    )
    p_load.set_defaults(func=cmd_loadtest)

    p_dump = sub.add_parser(
        "metrics-dump",
        help="fetch a running service's metrics in Prometheus text format",
    )
    p_dump.add_argument(
        "--url", default="http://127.0.0.1:8080",
        help="base URL of the running service (default %(default)s)",
    )
    p_dump.add_argument(
        "--timeout", type=float, default=5.0,
        help="HTTP timeout in seconds (default %(default)s)",
    )
    p_dump.set_defaults(func=cmd_metrics_dump)

    p_trace = sub.add_parser(
        "trace", help="inspect JSONL trace files (see docs/observability.md)"
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_sum = trace_sub.add_parser(
        "summarize",
        help="per-stage p50/p95/max latency and throughput of a trace file",
    )
    p_sum.add_argument("file", help="JSONL trace file (from --trace-out)")
    p_sum.set_defaults(func=cmd_trace_summarize)

    p_conf = sub.add_parser(
        "conformance",
        help="differential verification of the four execution paths "
        "(see docs/conformance.md)",
    )
    conf_sub = p_conf.add_subparsers(
        dest="conformance_command", required=True
    )

    def _add_conformance_case_args(p, with_seeds: bool) -> None:
        if with_seeds:
            p.add_argument(
                "--seeds", type=int, default=5,
                help="number of simulated matrix cases (default %(default)s)",
            )
        p.add_argument(
            "--seed-base", type=int, default=None,
            help="first matrix seed (default: the fixed harness base)",
        )
        p.add_argument(
            "--input", default=None, metavar="CSV",
            help="check one day from a log CSV instead of the matrix",
        )
        p.add_argument(
            "--bootstrap", default=None, metavar="JSON",
            help="frozen spot/threshold/grid context for --input (repro "
            "mode; written next to every shrunk minimal day)",
        )
        p.add_argument(
            "--min-pts", type=int, default=20,
            help="DBSCAN min_pts for --input days (default %(default)s)",
        )
        p.add_argument(
            "--coverage", type=float, default=1.0,
            help="observed fleet fraction of --input days "
            "(default %(default)s)",
        )
        p.add_argument(
            "--workers", type=int, default=None,
            help="sharded-path worker count (default: varies per case)",
        )
        p.add_argument(
            "--disorder-window", type=float, default=120.0, metavar="S",
            help="bounded-lateness window for the disorder comparison; "
            "0 disables it (default %(default)s)",
        )
        p.add_argument(
            "--kill-frac", type=float, default=0.5,
            help="injected-crash position as a stream fraction "
            "(default %(default)s)",
        )
        p.add_argument(
            "--checkpoint-every", type=int, default=500, metavar="N",
            help="checkpoint cadence of the kill-restart path "
            "(default %(default)s)",
        )
        p.add_argument(
            "--checks", default=None,
            help="comma-separated subset of checks to run (default: all)",
        )
        p.add_argument(
            "--out", default=None, metavar="DIR",
            help="write per-case report.json plus divergence artifacts "
            "(minimal_day.csv, bootstrap.json, repro.sh) here",
        )
        p.add_argument(
            "--shrink-max-runs", type=int, default=400, metavar="N",
            help="predicate budget of the ddmin reduction "
            "(default %(default)s)",
        )
        p.add_argument(
            "--inject-fault", default=None, metavar="NAME",
            help="patch in a named test-only fault "
            "(see repro.conformance.faults) to prove the harness "
            "catches it",
        )
        _add_trace_args(p)

    p_cr = conf_sub.add_parser(
        "run",
        help="run the seeded matrix (or one --input day) through all "
        "four execution paths; exit 1 on any divergence",
    )
    _add_conformance_case_args(p_cr, with_seeds=True)
    p_cr.add_argument(
        "--no-shrink", action="store_true",
        help="report divergences without reducing them to minimal days",
    )
    p_cr.add_argument(
        "--json", action="store_true",
        help="machine-readable per-case reports on stdout",
    )
    p_cr.set_defaults(func=cmd_conformance_run)

    p_cs = conf_sub.add_parser(
        "shrink",
        help="reduce a diverging day to a minimal reproducing CSV; "
        "exit 0 when shrunk, 1 when the day is conformant",
    )
    _add_conformance_case_args(p_cs, with_seeds=False)
    p_cs.set_defaults(func=cmd_conformance_shrink)

    p_crep = conf_sub.add_parser(
        "report",
        help="summarize the report.json files of a previous --out run",
    )
    p_crep.add_argument("dir", help="the --out directory of a prior run")
    p_crep.set_defaults(func=cmd_conformance_report)

    p_hist = sub.add_parser(
        "history",
        help="maintain and query the durable multi-day history "
        "(see docs/history.md)",
    )
    hist_sub = p_hist.add_subparsers(dest="history_command", required=True)
    p_hc = hist_sub.add_parser(
        "compact",
        help="roll day segments into the weekly pattern aggregate",
    )
    p_hc.add_argument("dir", help="history directory (from serve --history-dir)")
    p_hc.set_defaults(func=cmd_history_compact)
    p_hq = hist_sub.add_parser(
        "query",
        help="query a history directory or an exported JSONL(.gz) dump",
    )
    p_hq.add_argument(
        "path",
        help="history directory, or a JSONL(.gz) dump from "
        "'taxiqueue history export'",
    )
    p_hq.add_argument(
        "--spot", default=None,
        help="one spot's slot records (default: the pattern summary)",
    )
    p_hq.add_argument(
        "--profile", action="store_true",
        help="with --spot: its day-of-week × slot profile instead of "
        "raw records",
    )
    p_hq.add_argument(
        "--citywide", action="store_true",
        help="per-day citywide summaries instead of the pattern summary",
    )
    p_hq.add_argument("--start-day", type=int, default=None,
                      help="first epoch day (inclusive)")
    p_hq.add_argument("--end-day", type=int, default=None,
                      help="last epoch day (inclusive)")
    p_hq.add_argument("--page", type=int, default=1,
                      help="page of --spot records (default 1)")
    p_hq.add_argument("--per-page", type=int, default=200,
                      help="records per page (default 200)")
    p_hq.add_argument(
        "--downsample", type=int, default=1, metavar="K",
        help="fold K consecutive slots into one item (default 1: none)",
    )
    p_hq.set_defaults(func=cmd_history_query)
    p_he = hist_sub.add_parser(
        "export",
        help="dump a history directory as JSONL (gzip when the output "
        "ends .gz)",
    )
    p_he.add_argument("dir", help="history directory")
    p_he.add_argument(
        "--output", default="history.jsonl",
        help="JSONL output path; a .gz suffix writes gzip "
        "(default %(default)s)",
    )
    p_he.set_defaults(func=cmd_history_export)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # stdout was piped into `head` & co; die quietly like other
        # Unix tools instead of tracebacking.  Detach stdout so the
        # interpreter's exit-time flush cannot raise again.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
