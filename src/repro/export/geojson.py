"""GeoJSON export of detected spots and their queue contexts.

The deployed system (section 7.1) renders spots on Google Maps; GeoJSON
is the substrate-neutral equivalent: the output loads directly into
Leaflet, QGIS, geojson.io or kepler.gl.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Optional, Sequence

from repro.core.engine import SpotAnalysis
from repro.core.types import QueueSpot, QueueType, TimeSlotGrid

#: Display colours per queue type (UI convention, not from the paper).
TYPE_COLORS: Dict[QueueType, str] = {
    QueueType.C1: "#d62728",          # both queues: red
    QueueType.C2: "#ff7f0e",          # passenger queue: orange
    QueueType.C3: "#1f77b4",          # taxi queue: blue
    QueueType.C4: "#2ca02c",          # no queue: green
    QueueType.UNIDENTIFIED: "#7f7f7f",
}


def spot_feature(spot: QueueSpot, properties: Optional[dict] = None) -> dict:
    """One queue spot as a GeoJSON point Feature.

    The shared building block of every spot-shaped export (batch GeoJSON
    files and the live serving layer): identity properties come from the
    spot, ``properties`` adds or overrides view-specific ones.
    """
    props = {
        "spot_id": spot.spot_id,
        "zone": spot.zone,
        "pickup_count": spot.pickup_count,
    }
    if properties:
        props.update(properties)
    return {
        "type": "Feature",
        "geometry": {
            "type": "Point",
            "coordinates": [spot.lon, spot.lat],
        },
        "properties": props,
    }


def spots_to_geojson(spots: Sequence[QueueSpot]) -> dict:
    """Detected queue spots as a GeoJSON FeatureCollection."""
    features = [
        spot_feature(spot, {"radius_m": round(spot.radius_m, 1)})
        for spot in spots
    ]
    return {"type": "FeatureCollection", "features": features}


def labels_to_geojson(
    analyses: Iterable[SpotAnalysis],
    grid: TimeSlotGrid,
    slot: Optional[int] = None,
) -> dict:
    """Spots with their queue-type labels as a GeoJSON FeatureCollection.

    Args:
        analyses: tier-2 output.
        grid: the slot grid the labels refer to.
        slot: a single slot to export (hover view); None exports the full
            per-slot label list per spot (report view).

    Raises:
        IndexError: for an out-of-range explicit slot.
    """
    features = []
    for analysis in analyses:
        props: dict
        if slot is not None:
            label = analysis.labels[slot].label
            props = {
                "slot": slot,
                "time": grid.label_of(slot),
                "queue_type": label.value,
                "color": TYPE_COLORS[label],
            }
        else:
            props = {
                "labels": [
                    {"time": grid.label_of(l.slot), "queue_type": l.label.value}
                    for l in analysis.labels
                ]
            }
        features.append(spot_feature(analysis.spot, props))
    return {"type": "FeatureCollection", "features": features}


def dump_geojson(collection: dict, path) -> None:
    """Write a FeatureCollection to disk (UTF-8, stable key order)."""
    from pathlib import Path

    Path(path).write_text(
        json.dumps(collection, indent=2, sort_keys=True), encoding="utf-8"
    )
