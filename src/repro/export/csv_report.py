"""Flat CSV exports of spots, labels and features.

Section 7.1: "the user can further query the long-term queue type
transition reports and save it into the database or a text file" — these
are those text files.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable

from repro.core.engine import SpotAnalysis
from repro.core.types import QueueSpot, TimeSlotGrid


def write_spots_csv(spots: Iterable[QueueSpot], path) -> int:
    """Write the detected spot table; returns the row count."""
    path = Path(path)
    rows = 0
    with path.open("w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["spot_id", "longitude", "latitude", "zone", "pickup_count",
             "radius_m"]
        )
        for spot in spots:
            writer.writerow(
                [
                    spot.spot_id,
                    f"{spot.lon:.6f}",
                    f"{spot.lat:.6f}",
                    spot.zone,
                    spot.pickup_count,
                    f"{spot.radius_m:.1f}",
                ]
            )
            rows += 1
    return rows


def write_labels_csv(
    analyses: Iterable[SpotAnalysis], grid: TimeSlotGrid, path
) -> int:
    """Write one row per spot-slot with its queue type; returns rows."""
    path = Path(path)
    rows = 0
    with path.open("w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(["spot_id", "slot", "time", "queue_type", "routine"])
        for analysis in analyses:
            for slot_label in analysis.labels:
                writer.writerow(
                    [
                        analysis.spot.spot_id,
                        slot_label.slot,
                        grid.label_of(slot_label.slot),
                        slot_label.label.value,
                        slot_label.routine,
                    ]
                )
                rows += 1
    return rows


def write_features_csv(
    analyses: Iterable[SpotAnalysis], grid: TimeSlotGrid, path
) -> int:
    """Write the 5-tuple features per spot-slot; returns rows."""
    path = Path(path)
    rows = 0
    with path.open("w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            [
                "spot_id", "slot", "time", "mean_wait_s", "n_arrivals",
                "queue_length", "mean_departure_interval_s", "n_departures",
            ]
        )
        for analysis in analyses:
            for f in analysis.features:
                writer.writerow(
                    [
                        analysis.spot.spot_id,
                        f.slot,
                        grid.label_of(f.slot),
                        "" if f.mean_wait_s is None else f"{f.mean_wait_s:.1f}",
                        f"{f.n_arrivals:.2f}",
                        f"{f.queue_length:.3f}",
                        f"{f.mean_departure_interval_s:.1f}",
                        f"{f.n_departures:.2f}",
                    ]
                )
                rows += 1
    return rows
