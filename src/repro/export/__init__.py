"""Export layer: the deployed system's frontend artefacts (section 7.1).

The paper's deployment shows detected queue spots on a map with per-slot
queue types on hover, and lets users save long-term transition reports.
This package produces the equivalent static artefacts:

* :mod:`repro.export.geojson` — spots and labels as GeoJSON
  FeatureCollections (loadable by any web map);
* :mod:`repro.export.html_report` — a self-contained HTML page with the
  spot table and per-spot label timelines (no external assets);
* :mod:`repro.export.csv_report` — flat CSV files for downstream
  analysis.
"""

from repro.export.geojson import spots_to_geojson, labels_to_geojson, dump_geojson
from repro.export.html_report import render_html_report, write_html_report
from repro.export.csv_report import (
    write_spots_csv,
    write_labels_csv,
    write_features_csv,
)

__all__ = [
    "spots_to_geojson",
    "labels_to_geojson",
    "dump_geojson",
    "render_html_report",
    "write_html_report",
    "write_spots_csv",
    "write_labels_csv",
    "write_features_csv",
]
