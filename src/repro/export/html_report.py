"""Self-contained HTML report: the section-7.1 frontend, statically.

Produces one HTML file with no external assets: a summary header, the
Table 7-style proportion bar, the spot table, and a per-spot label strip
(48 coloured cells, one per half-hour slot) that reproduces the hover
information of the deployed UI.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Iterable, List

from repro.core.engine import SpotAnalysis
from repro.core.qcd import label_proportions
from repro.core.types import QueueType, TimeSlotGrid
from repro.export.geojson import TYPE_COLORS

_CSS = """
body { font-family: system-ui, sans-serif; margin: 2rem; color: #222; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; font-size: 0.9rem; }
th, td { border: 1px solid #ccc; padding: 0.3rem 0.6rem; text-align: left; }
th { background: #f2f2f2; }
.strip { display: flex; height: 14px; width: 576px; }
.cell { flex: 1; } .cell:hover { outline: 2px solid #000; }
.legend span { display: inline-block; padding: 0.1rem 0.5rem;
               margin-right: 0.4rem; color: #fff; border-radius: 3px; }
.bar { display: flex; height: 22px; width: 480px; margin: 0.5rem 0; }
.bar div { color: #fff; font-size: 0.75rem; text-align: center;
           overflow: hidden; white-space: nowrap; }
"""


def _legend() -> str:
    parts = [
        f'<span style="background:{TYPE_COLORS[qt]}">{qt.value}</span>'
        for qt in QueueType
    ]
    return f'<p class="legend">{"".join(parts)}</p>'


def _proportion_bar(analyses: List[SpotAnalysis]) -> str:
    labels = [l for a in analyses for l in a.labels]
    props = label_proportions(labels)
    cells = []
    for qt in QueueType:
        pct = props.get(qt, 0.0) * 100.0
        if pct <= 0:
            continue
        cells.append(
            f'<div style="width:{pct:.2f}%;background:{TYPE_COLORS[qt]}" '
            f'title="{qt.value}: {pct:.1f}%">{pct:.0f}%</div>'
        )
    return f'<div class="bar">{"".join(cells)}</div>'


def _label_strip(analysis: SpotAnalysis, grid: TimeSlotGrid) -> str:
    cells = []
    for slot_label in analysis.labels:
        color = TYPE_COLORS[slot_label.label]
        title = (
            f"{grid.label_of(slot_label.slot)}: {slot_label.label.value}"
        )
        cells.append(
            f'<div class="cell" style="background:{color}" '
            f'title="{html.escape(title)}"></div>'
        )
    return f'<div class="strip">{"".join(cells)}</div>'


def render_html_report(
    analyses: Iterable[SpotAnalysis],
    grid: TimeSlotGrid,
    title: str = "Queue Detection and Analysis Report",
) -> str:
    """Render the report; returns the HTML text."""
    analyses = sorted(
        analyses, key=lambda a: -a.spot.pickup_count
    )
    rows = []
    for analysis in analyses:
        spot = analysis.spot
        rows.append(
            "<tr>"
            f"<td>{html.escape(spot.spot_id)}</td>"
            f"<td>{spot.lon:.5f}, {spot.lat:.5f}</td>"
            f"<td>{html.escape(spot.zone)}</td>"
            f"<td>{spot.pickup_count}</td>"
            f"<td>{_label_strip(analysis, grid)}</td>"
            "</tr>"
        )
    body = (
        f"<h1>{html.escape(title)}</h1>"
        f"<p>{len(analyses)} queue spots; "
        f"{grid.n_slots} time slots of {grid.slot_seconds / 60:.0f} minutes."
        "</p>"
        f"{_legend()}"
        "<h2>City-wide queue type proportions</h2>"
        f"{_proportion_bar(analyses)}"
        "<h2>Queue spots</h2>"
        "<table><tr><th>spot</th><th>location</th><th>zone</th>"
        "<th>pickups</th><th>day timeline (hover for slot)</th></tr>"
        f"{''.join(rows)}</table>"
    )
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>{html.escape(title)}</title><style>{_CSS}</style></head>"
        f"<body>{body}</body></html>"
    )


def write_html_report(
    analyses: Iterable[SpotAnalysis],
    grid: TimeSlotGrid,
    path,
    title: str = "Queue Detection and Analysis Report",
) -> None:
    """Render and write the report to ``path``."""
    Path(path).write_text(
        render_html_report(analyses, grid, title), encoding="utf-8"
    )
