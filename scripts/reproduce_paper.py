#!/usr/bin/env python
"""Full reproduction driver: regenerate the paper's section 6 in one run.

Runs a complete simulated week (default scale: 1,500 taxis, 60 spots —
10x smaller than the paper's Singapore, per-spot volumes preserved),
executes every experiment of DESIGN.md's index, and writes a consolidated
report.  Expect ~10-15 minutes at full scale; ``--scale bench`` matches
the pytest benchmarks (~2 minutes).

Usage:
    python scripts/reproduce_paper.py [--scale full|bench] [--seed N]
                                      [--out report.txt]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.analysis.accuracy import label_accuracy, spot_detection_accuracy
from repro.analysis.insights import cherry_pick_report, find_busy_cherry_picks
from repro.analysis.landmark_match import (
    landmark_category_table,
    match_spots_to_landmarks,
)
from repro.analysis.stability import (
    hausdorff_matrix,
    pickup_counts_table,
    run_week,
    weekly_type_proportions,
    zone_counts_by_day,
)
from repro.analysis.validation import validate_against_monitor_and_bookings
from repro.core.qcd import label_proportions
from repro.core.types import QueueType
from repro.sim.config import DAY_NAMES, SimulationConfig
from repro.trace.cleaning import clean_store

SCALES = {
    "full": dict(fleet_size=1500, n_queue_spots=60, n_decoy_landmarks=40),
    "bench": dict(fleet_size=500, n_queue_spots=30, n_decoy_landmarks=15),
    "quick": dict(fleet_size=200, n_queue_spots=12, n_decoy_landmarks=6),
}


class Report:
    def __init__(self) -> None:
        self.lines: list[str] = []

    def add(self, *lines: str) -> None:
        for line in lines:
            self.lines.append(line)
            print(line)

    def section(self, title: str) -> None:
        self.add("", "=" * 70, title, "=" * 70)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(SCALES), default="bench")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", default="reproduction_report.txt")
    args = parser.parse_args()

    base = SimulationConfig(seed=args.seed, **SCALES[args.scale])
    report = Report()
    report.add(
        f"Reproduction run — scale={args.scale} "
        f"({base.fleet_size} taxis, {base.n_queue_spots} spots), "
        f"seed={args.seed}"
    )

    t0 = time.time()
    report.add("simulating + analysing 7 days ...")
    week = run_week(base, disambiguate=True)
    report.add(f"  done in {time.time() - t0:.0f}s")
    monday = week[0]
    sunday = week[6]

    # -- section 6.1.1 ------------------------------------------------------
    report.section("Section 6.1.1 — dataset and preprocessing")
    stats = monday.output.store.stats()
    _, cleaning = clean_store(
        monday.output.store,
        city_bbox=monday.output.city.bbox,
        inaccessible=monday.output.city.water,
    )
    report.add(
        f"records/day: {int(stats['records']):,} (paper 12.38M at 10x scale)",
        f"records/taxi/day: {stats['records_per_taxi']:.0f} (paper 848)",
        f"error fraction: {cleaning.removed_fraction * 100:.2f}% (paper 2.8%)",
    )

    # -- Fig 7 / headline ---------------------------------------------------
    report.section("Fig. 7 — queue spot detection")
    accuracy = spot_detection_accuracy(
        monday.detection.spots, monday.output.ground_truth, min_pickups=80
    )
    report.add(
        f"spots detected: {len(monday.detection.spots)}",
        f"recall vs ground truth: {accuracy.recall:.2f} (paper 30/31 = 0.97)",
        f"mean location error: {accuracy.mean_error_m:.1f} m (paper 7.6 m)",
        f"false positives: {accuracy.false_positives}",
    )

    # -- Table 4 -------------------------------------------------------------
    report.section("Table 4 — landmarks near spots")
    matches = match_spots_to_landmarks(
        monday.detection.spots, monday.output.city.landmarks
    )
    for category, share in sorted(
        landmark_category_table(matches).items(), key=lambda kv: -kv[1]
    ):
        report.add(f"  {category.value:<36} {share * 100:5.1f}%")

    # -- Fig 8 ----------------------------------------------------------------
    report.section("Fig. 8 — spots per zone per day")
    table = zone_counts_by_day(week)
    report.add("  zone      " + "".join(f"{d:>6}" for d in DAY_NAMES))
    for zone, counts in table.items():
        report.add(f"  {zone:<10}" + "".join(f"{c:>6d}" for c in counts))

    # -- Table 5 ----------------------------------------------------------------
    report.section("Table 5 — modified Hausdorff distances (m)")
    matrix = hausdorff_matrix(week)
    report.add("        " + "".join(f"{d:>8}" for d in DAY_NAMES))
    for i, day in enumerate(DAY_NAMES):
        report.add(
            f"  {day:>4}  "
            + "".join(f"{matrix[i, j]:>8.1f}" for j in range(7))
        )

    # -- Table 6 -----------------------------------------------------------------
    report.section("Table 6 — pickup events per spot per zone")
    for kind, zones in pickup_counts_table(week).items():
        row = ", ".join(f"{z}={v:.0f}" for z, v in zones.items())
        report.add(f"  {kind}: {row}")

    # -- Table 7 + accuracy ---------------------------------------------------------
    report.section("Table 7 — queue type proportions (Monday)")
    labels = [
        label
        for analysis in monday.analyses.values()
        for label in analysis.labels
    ]
    paper7 = {"C1": 30.1, "C2": 11.7, "C3": 8.6, "C4": 33.1,
              "Unidentified": 16.5}
    for qt, share in label_proportions(labels).items():
        report.add(
            f"  {qt.value:<14} measured {share * 100:5.1f}%   "
            f"paper {paper7[qt.value]:5.1f}%"
        )
    score = label_accuracy(
        monday.analyses.values(), monday.output.ground_truth
    )
    report.add(
        f"  label accuracy vs ground truth: {score.accuracy:.2f} "
        f"(taxi-queue agreement {score.taxi_queue_agreement:.2f})"
    )

    # -- Fig 9 -------------------------------------------------------------------------
    report.section("Fig. 9 — proportions per day of week")
    series = weekly_type_proportions(week)
    report.add("  day   " + "".join(f"{qt.value:>14}" for qt in QueueType))
    for day in DAY_NAMES:
        report.add(
            f"  {day:<5}"
            + "".join(f"{series[day][qt] * 100:>13.1f}%" for qt in QueueType)
        )

    # -- Table 8 --------------------------------------------------------------------------
    report.section("Table 8 — external validation (Monday)")
    locations = {
        sid: (t.lon, t.lat)
        for sid, t in monday.output.ground_truth.spots.items()
    }
    validation = validate_against_monitor_and_bookings(
        monday.analyses.values(),
        monday.output.monitor_readings,
        monday.output.failed_bookings,
        monday.output.ground_truth.grid,
        locations,
    )
    for qt in QueueType:
        report.add(
            f"  {qt.value:<14} monitored taxis "
            f"{validation.avg_taxi_count[qt]:5.2f}   failed bookings "
            f"{validation.avg_failed_bookings[qt]:5.2f}"
        )

    # -- section 7.2 -----------------------------------------------------------------------
    report.section("Section 7.2 — findings")
    events = find_busy_cherry_picks(monday.output.store)
    cherry = cherry_pick_report(
        events, monday.analyses.values(), monday.output.ground_truth.grid
    )
    report.add(
        f"  BUSY cherry-picks: {cherry.events_total} "
        f"({cherry.events_at_spots} at spots); per-slot rate "
        f"C1={cherry.per_label_rate[QueueType.C1]:.3f} "
        f"C2={cherry.per_label_rate[QueueType.C2]:.3f} "
        f"C4={cherry.per_label_rate[QueueType.C4]:.3f}"
    )
    sunday_spots = len(sunday.detection.spots)
    report.add(
        f"  Sunday spot count {sunday_spots} vs Monday "
        f"{len(monday.detection.spots)} (weekend-only leisure park in play)"
    )

    report.add("", f"total wall time: {time.time() - t0:.0f}s")
    Path(args.out).write_text("\n".join(report.lines) + "\n")
    print(f"\nreport written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
