"""Enforce the tracing overhead budget on the golden-day fixture.

CI gate: runs the full batch pipeline (ingest -> clean -> PEA -> DBSCAN
-> tier 2) over ``tests/data/golden_day.csv`` with tracing off and on,
takes the median of N runs each, and fails when the traced median
exceeds ``untraced * (1 + budget) + epsilon``::

    PYTHONPATH=src:. python scripts/check_overhead.py
    PYTHONPATH=src:. python scripts/check_overhead.py --runs 5 --budget 0.05

The absolute epsilon exists because the golden day completes in tens of
milliseconds, where one scheduler preemption dwarfs any honest 5%
budget; raise ``--runs`` rather than the epsilon when the gate flakes.
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.export import InMemorySink  # noqa: E402
from repro.obs.tracer import Tracer  # noqa: E402
from repro.trace.log_store import MdtLogStore  # noqa: E402
from tests._golden import golden_engine, pipeline_snapshot  # noqa: E402

CSV_PATH = REPO_ROOT / "tests" / "data" / "golden_day.csv"


def run_once(store, traced: bool) -> float:
    engine = golden_engine(store)
    if traced:
        engine.tracer = Tracer(InMemorySink())
    start = time.perf_counter()
    pipeline_snapshot(engine, store)
    return time.perf_counter() - start


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--runs", type=int, default=3,
                        help="runs per variant, median taken (default 3)")
    parser.add_argument("--budget", type=float, default=0.05,
                        help="relative overhead budget (default 0.05 = 5%%)")
    parser.add_argument("--epsilon-s", type=float, default=0.02,
                        help="absolute scheduler-noise grace (default 0.02)")
    args = parser.parse_args()

    store = MdtLogStore.from_csv(CSV_PATH, on_error="raise")
    # Warm both paths before measuring (imports, numpy caches).
    run_once(store, traced=False)
    run_once(store, traced=True)

    base = statistics.median(
        run_once(store, traced=False) for _ in range(args.runs)
    )
    traced = statistics.median(
        run_once(store, traced=True) for _ in range(args.runs)
    )
    limit = base * (1.0 + args.budget) + args.epsilon_s
    overhead = (traced - base) / base if base else float("inf")
    print(
        f"untraced median: {base * 1e3:8.2f} ms  "
        f"({args.runs} runs)\n"
        f"traced median:   {traced * 1e3:8.2f} ms  "
        f"({overhead:+.1%} overhead)\n"
        f"budget:          {limit * 1e3:8.2f} ms  "
        f"({args.budget:.0%} + {args.epsilon_s * 1e3:.0f} ms grace)"
    )
    if traced > limit:
        print("FAIL: tracing overhead over budget", file=sys.stderr)
        return 1
    print("OK: tracing overhead within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
