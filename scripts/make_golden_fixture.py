"""Regenerate the golden regression fixture under ``tests/data/``.

Run after an *intentional* change to pipeline semantics::

    PYTHONPATH=src python scripts/make_golden_fixture.py

Writes ``tests/data/golden_day.csv`` (one small fixed-seed simulated
day), ``tests/data/golden_expected.json`` (the exact spots, labels
and thresholds the serial pipeline produces for it) and
``tests/data/golden_streaming.json`` (the exact serving state the
streaming monitor converges to for the same day — the crash-recovery
fixture) and ``tests/data/golden_prometheus.txt`` (the normalized
Prometheus exposition after a full serve-path replay — values are
stripped, so it pins names/labels/HELP/TYPE only).  Commit all four;
the golden tests fail on any divergence from them.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.sim.config import SimulationConfig  # noqa: E402
from repro.sim.fleet import simulate_day  # noqa: E402
from repro.trace.log_store import MdtLogStore  # noqa: E402
from tests._golden import (  # noqa: E402
    GOLDEN_DECOYS,
    GOLDEN_FLEET,
    GOLDEN_SEED,
    GOLDEN_SPOTS,
    golden_engine,
    normalize_exposition,
    pipeline_snapshot,
    prometheus_exposition,
    streaming_snapshot,
)


def main() -> int:
    data_dir = REPO_ROOT / "tests" / "data"
    data_dir.mkdir(parents=True, exist_ok=True)
    csv_path = data_dir / "golden_day.csv"
    json_path = data_dir / "golden_expected.json"
    streaming_path = data_dir / "golden_streaming.json"
    prometheus_path = data_dir / "golden_prometheus.txt"

    output = simulate_day(
        SimulationConfig(
            seed=GOLDEN_SEED,
            fleet_size=GOLDEN_FLEET,
            n_queue_spots=GOLDEN_SPOTS,
            n_decoy_landmarks=GOLDEN_DECOYS,
        )
    )
    output.store.to_csv(csv_path)

    # Reload from the CSV so the snapshot sees exactly what the test
    # will see (CSV serialisation rounds coordinates to 6 decimals).
    store = MdtLogStore.from_csv(csv_path)
    engine = golden_engine(store)
    snapshot = pipeline_snapshot(engine, store)
    json_path.write_text(json.dumps(snapshot, indent=1, sort_keys=True) + "\n")

    streaming = streaming_snapshot(golden_engine(store), store)
    streaming_path.write_text(
        json.dumps(streaming, indent=1, sort_keys=True) + "\n"
    )

    exposition = prometheus_exposition(golden_engine(store), store)
    prometheus_path.write_text(normalize_exposition(exposition))

    print(f"wrote {len(store)} records to {csv_path}")
    print(
        f"wrote {len(snapshot['spots'])} spots / "
        f"{len(snapshot['labels'])} label sets to {json_path}"
    )
    print(
        f"wrote streaming state (snapshot v{streaming['version']}, "
        f"{len(streaming['spots'])} spots) to {streaming_path}"
    )
    print(
        f"wrote {len(exposition.splitlines())} exposition lines to "
        f"{prometheus_path}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
