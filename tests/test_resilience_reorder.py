"""Tests for the disorder-tolerant ingest buffer."""

import random

import pytest

from repro.resilience import ReorderBuffer, record_key
from repro.service.metrics import MetricsRegistry
from repro.states.states import TaxiState
from repro.trace.record import MdtRecord

S = TaxiState
LON, LAT = 103.8, 1.33


def rec(ts, taxi="A", speed=40.0, state=S.FREE, lon=LON, lat=LAT):
    return MdtRecord(float(ts), taxi, lon, lat, speed, state)


def feed_all(buffer, records):
    released = []
    for record in records:
        released.extend(buffer.feed(record))
    released.extend(buffer.flush())
    return released


class TestOrdering:
    def test_in_order_stream_passes_through_in_order(self):
        buffer = ReorderBuffer(window_s=60.0)
        records = [rec(30.0 * i, taxi=f"T{i}") for i in range(20)]
        assert feed_all(buffer, records) == records
        assert buffer.late_dropped == 0
        assert buffer.duplicates == 0

    def test_bounded_shuffle_restores_canonical_order(self):
        records = [rec(10.0 * i, taxi=f"T{i:02d}") for i in range(50)]
        shuffled = list(records)
        rng = random.Random(7)
        # Swap neighbours within the lateness bound only.
        for _ in range(200):
            i = rng.randrange(len(shuffled) - 1)
            a, b = shuffled[i], shuffled[i + 1]
            if abs(a.ts - b.ts) <= 30.0:
                shuffled[i], shuffled[i + 1] = b, a
        buffer = ReorderBuffer(window_s=30.0)
        assert feed_all(buffer, shuffled) == records
        assert buffer.late_dropped == 0

    def test_same_timestamp_orders_by_taxi_then_fields(self):
        a = rec(100.0, taxi="A")
        b = rec(100.0, taxi="B")
        c = rec(100.0, taxi="B", speed=5.0)
        buffer = ReorderBuffer(window_s=10.0)
        released = feed_all(buffer, [c, b, a])
        assert released == sorted([a, b, c], key=record_key)

    def test_records_held_until_watermark_passes(self):
        buffer = ReorderBuffer(window_s=60.0)
        assert buffer.feed(rec(0.0)) == []
        assert buffer.pending == 1
        assert buffer.feed(rec(30.0, taxi="B")) == []
        # 0.0 <= 70 - 60, so the first record is released.
        released = buffer.feed(rec(70.0, taxi="C"))
        assert [r.ts for r in released] == [0.0]
        assert buffer.watermark == pytest.approx(10.0)

    def test_zero_window_is_passthrough(self):
        buffer = ReorderBuffer(window_s=0.0)
        assert buffer.feed(rec(5.0)) == [rec(5.0)]
        assert buffer.pending == 0


class TestFaultAccounting:
    def test_duplicates_are_dropped_and_counted(self):
        buffer = ReorderBuffer(window_s=60.0)
        record = rec(10.0)
        buffer.feed(record)
        assert buffer.feed(record) == []
        assert buffer.duplicates == 1
        assert feed_all(buffer, []) == [record]

    def test_late_record_is_dropped_and_counted(self):
        buffer = ReorderBuffer(window_s=10.0)
        buffer.feed(rec(100.0))
        buffer.feed(rec(200.0, taxi="B"))  # watermark now 190
        assert buffer.feed(rec(50.0, taxi="C")) == []
        assert buffer.late_dropped == 1
        # The late record never surfaces, even at flush.
        assert all(r.ts != 50.0 for r in buffer.flush())

    def test_overflow_forces_oldest_release(self):
        buffer = ReorderBuffer(window_s=1e9, max_buffered=3)
        released = []
        for i in range(5):
            released.extend(buffer.feed(rec(float(i), taxi=f"T{i}")))
        assert [r.ts for r in released] == [0.0, 1.0]
        assert buffer.forced_releases == 2
        assert buffer.pending == 3

    def test_flush_releases_everything_in_order(self):
        buffer = ReorderBuffer(window_s=1e9)
        buffer.feed(rec(30.0))
        buffer.feed(rec(10.0, taxi="B"))
        buffer.feed(rec(20.0, taxi="C"))
        assert [r.ts for r in buffer.flush()] == [10.0, 20.0, 30.0]
        assert buffer.pending == 0

    def test_counts_are_totals(self):
        buffer = ReorderBuffer(window_s=10.0)
        record = rec(100.0)
        buffer.feed(record)
        buffer.feed(record)
        buffer.feed(rec(200.0, taxi="B"))
        buffer.feed(rec(10.0, taxi="C"))
        buffer.flush()
        assert buffer.records_in == 4
        assert buffer.released == 2
        assert buffer.duplicates == 1
        assert buffer.late_dropped == 1


class TestMetricsMirroring:
    def test_counters_and_gauges_surface(self):
        metrics = MetricsRegistry()
        buffer = ReorderBuffer(window_s=10.0, metrics=metrics)
        record = rec(100.0)
        buffer.feed(record)
        buffer.feed(record)
        buffer.feed(rec(200.0, taxi="B"))
        buffer.feed(rec(10.0, taxi="C"))
        snap = metrics.snapshot()
        assert snap["counters"]["ingest.duplicates"] == 1
        assert snap["counters"]["ingest.late_dropped"] == 1
        assert snap["counters"]["ingest.released"] == 1
        assert snap["gauges"]["ingest.buffered"] == buffer.pending
        assert snap["gauges"]["ingest.watermark"] == pytest.approx(190.0)


class TestValidation:
    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            ReorderBuffer(window_s=-1.0)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            ReorderBuffer(window_s=1.0, max_buffered=0)


class TestCheckpointing:
    def test_export_restore_mid_stream_is_equivalent(self):
        records = [rec(7.0 * i, taxi=f"T{i % 5}") for i in range(40)]
        rng = random.Random(3)
        arrivals = sorted(records, key=lambda r: r.ts + rng.uniform(0, 20.0))
        reference = ReorderBuffer(window_s=20.0)
        resumed = ReorderBuffer(window_s=20.0)
        out_ref, out_res = [], []
        for i, record in enumerate(arrivals):
            out_ref.extend(reference.feed(record))
            if i == len(arrivals) // 2:
                # Checkpoint the reference and continue in a fresh buffer.
                state = reference.export_state()
                fresh = ReorderBuffer(window_s=20.0)
                fresh.restore_state(state)
                out_res = list(out_ref)
                resumed = fresh
            if i > len(arrivals) // 2:
                out_res.extend(resumed.feed(record))
        out_ref.extend(reference.flush())
        out_res.extend(resumed.flush())
        assert out_res == out_ref
        assert resumed.released == reference.released
        assert resumed.records_in == reference.records_in

    def test_restored_buffer_still_rejects_duplicates(self):
        buffer = ReorderBuffer(window_s=100.0)
        record = rec(10.0)
        buffer.feed(record)
        fresh = ReorderBuffer(window_s=100.0)
        fresh.restore_state(buffer.export_state())
        assert fresh.feed(record) == []
        assert fresh.duplicates == 1
