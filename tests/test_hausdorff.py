"""Tests for (modified) Hausdorff distances (paper Table 5's metric)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.hausdorff import (
    directed_hausdorff,
    directed_modified_hausdorff,
    hausdorff_distance,
    modified_hausdorff,
)


def cloud(min_size=1, max_size=30):
    return st.lists(
        st.tuples(
            st.floats(min_value=-1000, max_value=1000),
            st.floats(min_value=-1000, max_value=1000),
        ),
        min_size=min_size,
        max_size=max_size,
    ).map(lambda pts: np.asarray(pts, dtype=np.float64))


class TestBasics:
    def test_identical_sets_zero(self):
        a = np.array([[0.0, 0.0], [1.0, 1.0]])
        assert hausdorff_distance(a, a) == 0.0
        assert modified_hausdorff(a, a) == 0.0

    def test_known_value(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[3.0, 4.0]])
        assert hausdorff_distance(a, b) == pytest.approx(5.0)
        assert modified_hausdorff(a, b) == pytest.approx(5.0)

    def test_directed_asymmetry(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[0.0, 0.0], [10.0, 0.0]])
        assert directed_hausdorff(a, b) == 0.0
        assert directed_hausdorff(b, a) == pytest.approx(10.0)

    def test_modified_uses_mean_not_max(self):
        a = np.array([[0.0, 0.0], [1.0, 0.0]])
        b = np.array([[0.0, 0.0], [101.0, 0.0]])
        # Classic directed b->a: max(0, 100); modified: mean(0, 100).
        assert directed_hausdorff(b, a) == pytest.approx(100.0)
        assert directed_modified_hausdorff(b, a) == pytest.approx(50.0)

    def test_modified_robust_to_single_outlier(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(50, 2))
        b = np.vstack([a, [[10_000.0, 10_000.0]]])
        assert modified_hausdorff(a, b) < hausdorff_distance(a, b)

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError):
            modified_hausdorff(np.empty((0, 2)), np.array([[0.0, 0.0]]))

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            hausdorff_distance(np.zeros((3, 3)), np.zeros((2, 2)))


class TestMetricProperties:
    @given(cloud(), cloud())
    @settings(max_examples=40, deadline=None)
    def test_symmetry(self, a, b):
        assert modified_hausdorff(a, b) == pytest.approx(
            modified_hausdorff(b, a)
        )
        assert hausdorff_distance(a, b) == pytest.approx(
            hausdorff_distance(b, a)
        )

    @given(cloud())
    @settings(max_examples=30, deadline=None)
    def test_identity(self, a):
        # The expanded |a|^2 - 2ab + |b|^2 form cancels imperfectly in
        # float64; sub-millimetre residue is fine at metre scale.
        assert modified_hausdorff(a, a) == pytest.approx(0.0, abs=1e-3)

    @given(cloud(), cloud())
    @settings(max_examples=40, deadline=None)
    def test_non_negative_and_bounded_by_classic(self, a, b):
        mhd = modified_hausdorff(a, b)
        hd = hausdorff_distance(a, b)
        assert 0.0 <= mhd <= hd + 1e-9

    @given(cloud(), cloud(), cloud())
    @settings(max_examples=25, deadline=None)
    def test_classic_triangle_inequality(self, a, b, c):
        ab = hausdorff_distance(a, b)
        bc = hausdorff_distance(b, c)
        ac = hausdorff_distance(a, c)
        assert ac <= ab + bc + 1e-6
