"""Property-based tests of the queueing analytics.

Pins the algebraic edges the example-based tests skate over: Little's
law at a zero arrival rate, M/M/c behaviour at the stability boundary
and its collapse to M/M/1 at ``c=1``, and non-negativity/ordering of
the FIFO simulator's waits.
"""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.queueing.fifo import FifoQueueSim
from repro.queueing.littles_law import (
    little_arrival_rate,
    little_queue_length,
    little_wait_time,
)
from repro.queueing.mmc import (
    erlang_c,
    mm1_mean_wait,
    mmc_mean_queue_length,
    mmc_mean_wait,
    utilisation,
)

rates = st.floats(min_value=0.01, max_value=50.0,
                  allow_nan=False, allow_infinity=False)


class TestLittlesLaw:
    @given(wait=st.floats(min_value=0.0, max_value=1e9,
                          allow_nan=False, allow_infinity=False))
    @settings(max_examples=50, deadline=None)
    def test_zero_arrival_rate_means_empty_queue(self, wait):
        assert little_queue_length(0.0, wait) == 0.0

    @given(rate=rates, wait=st.floats(min_value=0.001, max_value=1e6))
    @settings(max_examples=50, deadline=None)
    def test_three_way_relation_is_consistent(self, rate, wait):
        length = little_queue_length(rate, wait)
        assert little_wait_time(length, rate) == pytest.approx(wait)
        assert little_arrival_rate(length, wait) == pytest.approx(rate)

    def test_negative_inputs_raise(self):
        with pytest.raises(ValueError):
            little_queue_length(-1.0, 1.0)
        with pytest.raises(ValueError):
            little_queue_length(1.0, -1.0)
        with pytest.raises(ValueError):
            little_arrival_rate(1.0, 0.0)
        with pytest.raises(ValueError):
            little_wait_time(1.0, 0.0)


class TestMmc:
    @given(mu=rates, factor=st.floats(min_value=1.0, max_value=5.0),
           servers=st.integers(min_value=1, max_value=8))
    @settings(max_examples=50, deadline=None)
    def test_unstable_system_raises(self, mu, factor, servers):
        # lambda >= c * mu puts utilisation at or past 1.
        lam = mu * servers * factor
        assert utilisation(lam, mu, servers) >= 1.0
        with pytest.raises(ValueError):
            erlang_c(lam, mu, servers)
        with pytest.raises(ValueError):
            mmc_mean_wait(lam, mu, servers)

    @given(mu=rates, rho=st.floats(min_value=0.01, max_value=0.95))
    @settings(max_examples=50, deadline=None)
    def test_single_server_collapses_to_mm1(self, mu, rho):
        lam = rho * mu
        assume(lam > 0)
        wait_c = mmc_mean_wait(lam, mu, servers=1)
        assert wait_c == pytest.approx(mm1_mean_wait(lam, mu))
        # Closed form for M/M/1: Wq = rho / (mu - lambda).
        assert wait_c == pytest.approx(rho / (mu - lam), rel=1e-9)

    @given(mu=rates, rho=st.floats(min_value=0.01, max_value=0.9),
           servers=st.integers(min_value=1, max_value=6))
    @settings(max_examples=50, deadline=None)
    def test_queue_length_obeys_littles_law(self, mu, rho, servers):
        lam = rho * servers * mu
        wait = mmc_mean_wait(lam, mu, servers)
        assert mmc_mean_queue_length(lam, mu, servers) == pytest.approx(
            little_queue_length(lam, wait)
        )

    @given(mu=rates, rho=st.floats(min_value=0.01, max_value=0.95))
    @settings(max_examples=50, deadline=None)
    def test_erlang_c_is_a_probability(self, mu, rho):
        lam = rho * mu
        p_wait = erlang_c(lam, mu, servers=1)
        assert 0.0 <= p_wait <= 1.0


class TestFifoSim:
    @given(lam=st.floats(min_value=0.01, max_value=1.0),
           mu=st.floats(min_value=0.01, max_value=1.0),
           seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=25, deadline=None)
    def test_waits_are_non_negative_and_fifo(self, lam, mu, seed):
        result = FifoQueueSim(lam, mu, seed=seed).run(600.0)
        assert all(w >= 0.0 for w in result.waits)
        # FIFO with one server: service starts in arrival order.
        assert result.departures == sorted(result.departures)
        assert len(result.waits) == len(result.departures)
        assert result.time_avg_queue_length >= 0.0
        assert result.mean_wait >= 0.0

    def test_empty_horizon_yields_empty_result(self):
        # A seed whose first interarrival exceeds the horizon.
        result = FifoQueueSim(0.001, 1.0, seed=1).run(0.5)
        assert result.waits == []
        assert result.mean_wait == 0.0
        assert result.time_avg_queue_length == 0.0

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            FifoQueueSim(0.0, 1.0)
        with pytest.raises(ValueError):
            FifoQueueSim(1.0, -1.0)
        with pytest.raises(ValueError):
            FifoQueueSim(1.0, 1.0).run(0.0)
