"""Tests for deterministic fault injection and the disorder property.

The Hypothesis property at the bottom is the tentpole guarantee of the
resilience package: *any* seeded bounded-lateness shuffle (plus
duplicates) of a record stream, pushed through a
:class:`ReorderBuffer`, yields exactly the slot results of the ordered
stream.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.features import AmplificationPolicy
from repro.core.thresholds import QcdThresholds
from repro.core.types import QueueSpot, TimeSlotGrid
from repro.geo.point import LocalProjection
from repro.resilience import (
    ChaosStream,
    FaultPlan,
    InjectedCrash,
    ReorderBuffer,
    disordered_copy,
)
from repro.states.states import TaxiState
from repro.stream import StreamingQueueMonitor
from repro.trace.record import MdtRecord

S = TaxiState
LON, LAT = 103.8, 1.33
PROJ = LocalProjection(LON, LAT)


def pickup_stream(start_ts, n, spacing=60.0, wait=60.0, taxi_prefix="T"):
    """n quick pickups at the spot, spaced ``spacing`` apart."""
    records = []
    for k in range(n):
        t0 = start_ts + k * spacing
        taxi = f"{taxi_prefix}{k:03d}"
        records.extend(
            [
                MdtRecord(t0, taxi, LON, LAT, 40.0, S.FREE),
                MdtRecord(t0 + 1, taxi, LON, LAT, 5.0, S.FREE),
                MdtRecord(t0 + 1 + wait, taxi, LON, LAT, 5.0, S.POB),
                MdtRecord(t0 + 2 + wait, taxi, LON, LAT, 40.0, S.POB),
            ]
        )
    records.sort(key=lambda r: r.ts)
    return records


def make_monitor(grid=None, grace_s=900.0):
    return StreamingQueueMonitor(
        spots=[QueueSpot("QS001", LON, LAT, "Central", 100, 5.0)],
        thresholds={
            "QS001": QcdThresholds(
                eta_wait=120.0, eta_dep=90.0, tau_arr=15.0, tau_dep=20.0,
                eta_dur=1620.0, tau_ratio=0.84,
            )
        },
        grid=grid if grid is not None else TimeSlotGrid(0.0, 7200.0, 1800.0),
        projection=PROJ,
        amplification=AmplificationPolicy(),
        grace_s=grace_s,
    )


class TestFaultPlan:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"reorder_rate": -0.1},
            {"duplicate_rate": 1.5},
            {"drop_rate": 2.0},
            {"stall_rate": -1.0},
            {"max_delay": 0},
            {"crash_after": -1},
        ],
    )
    def test_invalid_plans_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)


class TestChaosStream:
    def test_no_faults_is_identity(self):
        records = pickup_stream(0.0, 5)
        stream = ChaosStream(records, FaultPlan(seed=1))
        assert list(stream) == records
        assert stream.stats["consumed"] == len(records)

    def test_same_seed_same_sequence(self):
        records = pickup_stream(0.0, 12)
        plan = FaultPlan(
            seed=99, reorder_rate=0.3, duplicate_rate=0.2, drop_rate=0.1
        )
        first = list(ChaosStream(records, plan))
        second_stream = ChaosStream(records, plan)
        assert list(second_stream) == first
        # Stats are reproducible too.
        third = ChaosStream(records, plan)
        list(third)
        assert third.stats == second_stream.stats

    def test_different_seed_differs(self):
        records = pickup_stream(0.0, 12)
        out = {
            tuple(
                ChaosStream(
                    records, FaultPlan(seed=seed, reorder_rate=0.5)
                )
            )
            for seed in range(5)
        }
        assert len(out) > 1

    def test_drop_everything(self):
        records = pickup_stream(0.0, 4)
        stream = ChaosStream(records, FaultPlan(seed=0, drop_rate=1.0))
        assert list(stream) == []
        assert stream.stats["dropped"] == len(records)

    def test_duplicate_everything(self):
        records = pickup_stream(0.0, 3)
        stream = ChaosStream(records, FaultPlan(seed=0, duplicate_rate=1.0))
        emitted = list(stream)
        assert len(emitted) == 2 * len(records)
        assert emitted[0] == emitted[1]
        assert stream.stats["duplicated"] == len(records)

    def test_reorder_is_a_permutation(self):
        records = pickup_stream(0.0, 10)
        stream = ChaosStream(
            records, FaultPlan(seed=5, reorder_rate=0.4, max_delay=6)
        )
        emitted = list(stream)
        assert sorted(emitted, key=lambda r: (r.ts, r.taxi_id)) == records
        assert emitted != records
        assert stream.stats["reordered"] > 0

    def test_crash_after_exact_count(self):
        records = pickup_stream(0.0, 10)
        stream = ChaosStream(records, FaultPlan(seed=0, crash_after=7))
        consumed = []
        with pytest.raises(InjectedCrash):
            for record in stream:
                consumed.append(record)
        assert stream.stats["consumed"] == 7
        assert stream.stats["crashed"] == 1
        assert consumed == records[:7]

    def test_stall_uses_injected_sleep(self):
        naps = []
        records = pickup_stream(0.0, 4)
        stream = ChaosStream(
            records,
            FaultPlan(seed=0, stall_rate=1.0, stall_s=0.5),
            sleep_fn=naps.append,
        )
        assert list(stream) == records
        assert naps == [0.5] * len(records)
        assert stream.stats["stalled"] == len(records)


class TestDisorderedCopy:
    def test_stays_within_lateness_bound(self):
        records = pickup_stream(0.0, 20)
        for seed in range(5):
            shuffled = disordered_copy(records, seed=seed, window_s=90.0)
            assert sorted(shuffled, key=lambda r: (r.ts, r.taxi_id)) == records
            high = float("-inf")
            for record in shuffled:
                # No record arrives after anything > window newer.
                assert record.ts > high - 90.0
                high = max(high, record.ts)

    def test_duplicates_are_extra_copies(self):
        records = pickup_stream(0.0, 10)
        shuffled = disordered_copy(
            records, seed=1, window_s=60.0, duplicate_rate=1.0
        )
        assert len(shuffled) == 2 * len(records)

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            disordered_copy([], seed=0, window_s=-1.0)


class TestDisorderEquivalence:
    """The tentpole property: bounded disorder + duplicates are invisible
    behind a ReorderBuffer."""

    @given(
        n=st.integers(min_value=0, max_value=14),
        seed=st.integers(min_value=0, max_value=2**20),
        window=st.sampled_from([30.0, 90.0, 300.0]),
        duplicate_rate=st.sampled_from([0.0, 0.3]),
    )
    @settings(max_examples=40, deadline=None)
    def test_shuffled_stream_yields_identical_slots(
        self, n, seed, window, duplicate_rate
    ):
        records = pickup_stream(0.0, n)
        ordered_monitor = make_monitor()
        expected = []
        for record in records:
            expected.extend(ordered_monitor.feed(record))
        expected.extend(ordered_monitor.finish())

        shuffled = disordered_copy(
            records, seed=seed, window_s=window, duplicate_rate=duplicate_rate
        )
        buffer = ReorderBuffer(window_s=window)
        monitor = make_monitor()
        actual = []
        for record in shuffled:
            for release in buffer.feed(record):
                actual.extend(monitor.feed(release))
        for release in buffer.flush():
            actual.extend(monitor.feed(release))
        actual.extend(monitor.finish())

        assert actual == expected
        assert buffer.late_dropped == 0
        expected_dups = len(shuffled) - len(records)
        assert buffer.duplicates == expected_dups

    def test_chaos_reorder_through_buffer_matches_ordered(self):
        records = pickup_stream(0.0, 20)
        ordered_monitor = make_monitor()
        expected = []
        for record in records:
            expected.extend(ordered_monitor.feed(record))
        expected.extend(ordered_monitor.finish())

        plan = FaultPlan(
            seed=17, reorder_rate=0.4, max_delay=6, duplicate_rate=0.3
        )
        # Displacement by <= max_delay positions is bounded lateness:
        # positions are at most `spacing` seconds apart, so a generous
        # window covers any max_delay-position displacement.
        buffer = ReorderBuffer(window_s=6 * 60.0 + 120.0)
        monitor = make_monitor()
        actual = []
        for record in ChaosStream(records, plan):
            for release in buffer.feed(record):
                actual.extend(monitor.feed(release))
        for release in buffer.flush():
            actual.extend(monitor.feed(release))
        actual.extend(monitor.finish())
        assert actual == expected
        assert buffer.late_dropped == 0
