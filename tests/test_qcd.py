"""Tests for Algorithm 3 — Queue Context Disambiguation."""

import pytest

from repro.core.qcd import disambiguate, label_proportions, label_slot
from repro.core.thresholds import QcdThresholds
from repro.core.types import QueueType, SlotFeatures

#: Hand-built thresholds with easy round numbers.
TH = QcdThresholds(
    eta_wait=120.0,   # waits under 2 min signal a passenger queue
    eta_dep=90.0,     # departures under 90 s apart signal a passenger queue
    tau_arr=15.0,     # 1800 / 120
    tau_dep=20.0,     # 1800 / 90
    eta_dur=1620.0,   # 90% of a 30-minute slot
    tau_ratio=0.84,
)


def feats(
    wait=None, n_arr=0.0, queue=0.0, dep_interval=1800.0, n_dep=0.0, slot=0
):
    return SlotFeatures(
        slot=slot,
        mean_wait_s=wait,
        n_arrivals=n_arr,
        queue_length=queue,
        mean_departure_interval_s=dep_interval,
        n_departures=n_dep,
    )


class TestRoutine1:
    def test_c2_many_arrivals_short_waits(self):
        label = label_slot(
            feats(wait=40.0, n_arr=25.0, queue=0.5, dep_interval=60.0, n_dep=25.0),
            TH,
        )
        assert label.label is QueueType.C2
        assert label.routine == 1

    def test_c4_few_arrivals_long_waits(self):
        label = label_slot(feats(wait=900.0, n_arr=3.0, queue=0.8), TH)
        assert label.label is QueueType.C4
        assert label.routine == 1

    def test_c1_taxi_queue_fast_departures(self):
        label = label_slot(
            feats(wait=400.0, n_arr=25.0, queue=5.0, dep_interval=60.0, n_dep=28.0),
            TH,
        )
        assert label.label is QueueType.C1
        assert label.routine == 1

    def test_c3_taxi_queue_slow_departures(self):
        label = label_slot(
            feats(wait=900.0, n_arr=8.0, queue=4.0, dep_interval=300.0, n_dep=6.0),
            TH,
        )
        assert label.label is QueueType.C3
        assert label.routine == 1

    def test_queue_length_exactly_one_goes_to_taxi_branch(self):
        label = label_slot(
            feats(wait=400.0, n_arr=10.0, queue=1.0, dep_interval=60.0, n_dep=25.0),
            TH,
        )
        assert label.label is QueueType.C1

    def test_mixed_quadrant_unidentified(self):
        # Many arrivals AND long waits: neither C2 nor C4, and no
        # Routine 2 signal either.
        label = label_slot(
            feats(wait=500.0, n_arr=20.0, queue=0.9, dep_interval=1800.0, n_dep=1.0),
            TH,
        )
        assert label.label is QueueType.UNIDENTIFIED
        assert label.routine == 0

    def test_no_waits_unidentified(self):
        label = label_slot(feats(wait=None), TH)
        assert label.label is QueueType.UNIDENTIFIED


class TestRoutine2:
    def test_c2_from_oncall_heavy_departures(self):
        # Routine 1 cannot decide (few arrivals AND short waits); the
        # departures are sustained (16 * 120 = 1920 > 1620) and mostly
        # booking jobs (ratio 10/16 = 0.63 < 0.84) -> C2.
        label = label_slot(
            feats(
                wait=80.0,
                n_arr=10.0,
                queue=0.6,
                dep_interval=120.0,
                n_dep=16.0,
            ),
            TH,
        )
        assert label.label is QueueType.C2
        assert label.routine == 2

    def test_c1_from_oncall_heavy_with_taxi_queue(self):
        # Taxi-queue branch of Routine 1 undecided (n_dep < tau_dep but
        # interval < eta_dep); sustained ONCALL-heavy departures with a
        # standing taxi queue -> C1 via Routine 2.
        label = label_slot(
            feats(
                wait=300.0,
                n_arr=10.0,
                queue=2.0,
                dep_interval=89.0,
                n_dep=19.0,  # 19 * 89 = 1691 > 1620; ratio 10/19 = 0.53
            ),
            TH,
        )
        assert label.label is QueueType.C1
        assert label.routine == 2

    def test_short_departure_span_not_sustained(self):
        label = label_slot(
            feats(wait=200.0, n_arr=4.0, queue=0.5, dep_interval=60.0, n_dep=6.0),
            TH,
        )
        # 6 * 60 = 360 < 1620: Routine 2 must not fire.
        assert label.routine != 2

    def test_street_heavy_ratio_not_inferred(self):
        label = label_slot(
            feats(wait=200.0, n_arr=16.0, queue=0.5, dep_interval=120.0, n_dep=16.0),
            TH,
        )
        # ratio = 1.0 >= tau_ratio.
        assert label.label is not QueueType.C2 or label.routine == 1

    def test_zero_departures_safe(self):
        # Routine 1 undecided, Routine 2 must not divide by zero.
        label = label_slot(feats(wait=80.0, n_arr=5.0, queue=0.0, n_dep=0.0), TH)
        assert label.label is QueueType.UNIDENTIFIED


class TestBatchAndProportions:
    def test_disambiguate_labels_every_slot(self):
        features = [feats(slot=i) for i in range(48)]
        labels = disambiguate(features, TH)
        assert len(labels) == 48
        assert [l.slot for l in labels] == list(range(48))

    def test_label_proportions_sum_to_one(self):
        features = [
            feats(wait=40.0, n_arr=25.0, queue=0.5, dep_interval=60.0, n_dep=25.0),
            feats(wait=900.0, n_arr=3.0, queue=0.8, slot=1),
            feats(slot=2),
        ]
        props = label_proportions(disambiguate(features, TH))
        assert sum(props.values()) == pytest.approx(1.0)
        assert props[QueueType.C2] == pytest.approx(1 / 3)
        assert props[QueueType.C4] == pytest.approx(1 / 3)
        assert props[QueueType.UNIDENTIFIED] == pytest.approx(1 / 3)

    def test_empty_proportions(self):
        props = label_proportions([])
        assert all(v == 0.0 for v in props.values())


class TestQueueTypeSemantics:
    def test_flags(self):
        assert QueueType.C1.has_taxi_queue and QueueType.C1.has_passenger_queue
        assert not QueueType.C2.has_taxi_queue
        assert QueueType.C2.has_passenger_queue
        assert QueueType.C3.has_taxi_queue
        assert not QueueType.C3.has_passenger_queue
        assert not QueueType.C4.has_taxi_queue

    def test_from_flags(self):
        assert QueueType.from_flags(True, True) is QueueType.C1
        assert QueueType.from_flags(False, True) is QueueType.C2
        assert QueueType.from_flags(True, False) is QueueType.C3
        assert QueueType.from_flags(False, False) is QueueType.C4
