"""Tests for calendar partitioning of log stores."""

import pytest

from repro.states.states import TaxiState
from repro.trace.log_store import MdtLogStore
from repro.trace.partition import (
    day_of_week_of,
    records_per_day,
    split_by_day,
)
from repro.trace.record import MdtRecord, parse_timestamp


def rec(ts, taxi="A"):
    return MdtRecord(ts, taxi, 103.8, 1.33, 10.0, TaxiState.FREE)


class TestDayOfWeek:
    def test_epoch_is_thursday(self):
        assert day_of_week_of(0.0) == 3

    def test_known_date(self):
        # 2008-08-01 was a Friday.
        ts = parse_timestamp("01/08/2008 12:00:00")
        assert day_of_week_of(ts) == 4

    def test_next_day_increments(self):
        ts = parse_timestamp("01/08/2008 00:00:00")
        assert day_of_week_of(ts + 86400.0) == (day_of_week_of(ts) + 1) % 7


class TestSplitByDay:
    def test_empty_store(self):
        assert split_by_day(MdtLogStore()) == []

    def test_single_day(self):
        base = parse_timestamp("01/08/2008 00:00:00")
        store = MdtLogStore([rec(base + 100), rec(base + 80_000)])
        parts = split_by_day(store)
        assert len(parts) == 1
        assert parts[0].day_start_ts == base
        assert parts[0].day_of_week == 4
        assert len(parts[0].store) == 2

    def test_multi_day_split(self):
        base = parse_timestamp("01/08/2008 00:00:00")
        store = MdtLogStore(
            [rec(base + 10), rec(base + 86400 + 10), rec(base + 2 * 86400 + 10)]
        )
        parts = split_by_day(store)
        assert len(parts) == 3
        assert [p.day_of_week for p in parts] == [4, 5, 6]
        assert all(len(p.store) == 1 for p in parts)

    def test_gap_days_skipped(self):
        base = parse_timestamp("01/08/2008 00:00:00")
        store = MdtLogStore([rec(base + 10), rec(base + 3 * 86400 + 10)])
        parts = split_by_day(store)
        assert len(parts) == 2
        assert parts[1].day_start_ts == base + 3 * 86400

    def test_midnight_record_belongs_to_new_day(self):
        base = parse_timestamp("02/08/2008 00:00:00")
        store = MdtLogStore([rec(base - 1.0), rec(base)])
        parts = split_by_day(store)
        assert len(parts) == 2
        assert parts[1].day_start_ts == base

    def test_partition_covers_all_records(self):
        base = parse_timestamp("01/08/2008 00:00:00")
        records = [rec(base + i * 7000.0) for i in range(40)]
        store = MdtLogStore(records)
        parts = split_by_day(store)
        assert sum(len(p.store) for p in parts) == len(records)

    def test_day_end(self):
        base = parse_timestamp("01/08/2008 00:00:00")
        part = split_by_day(MdtLogStore([rec(base)]))[0]
        assert part.day_end_ts == base + 86400.0


class TestRecordsPerDay:
    def test_counts(self):
        base = parse_timestamp("01/08/2008 00:00:00")
        store = MdtLogStore(
            [rec(base + 1), rec(base + 2), rec(base + 86400 + 1)]
        )
        counts = records_per_day(store)
        assert counts == {base: 2, base + 86400: 1}

    def test_on_simulated_day(self, small_day):
        counts = records_per_day(small_day.store)
        assert len(counts) == 1
        assert sum(counts.values()) == len(small_day.store)
