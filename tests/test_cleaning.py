"""Tests for section-6.1.1 preprocessing (the three error classes)."""

import pytest

from repro.geo.bbox import BBox
from repro.states.states import TaxiState
from repro.trace.cleaning import CleaningReport, clean_records, clean_store
from repro.trace.log_store import MdtLogStore
from repro.trace.record import MdtRecord

CITY = BBox(103.6, 1.24, 104.0, 1.47)
WATER = [BBox(103.60, 1.24, 103.70, 1.26)]


def rec(ts, state=TaxiState.FREE, lon=103.8, lat=1.33, speed=0.0, taxi="A"):
    return MdtRecord(ts, taxi, lon, lat, speed, state)


class TestDuplicates:
    def test_exact_retransmission_removed(self):
        a = rec(10.0, TaxiState.POB)
        survivors = clean_records([a, a, rec(20.0, TaxiState.PAYMENT)])
        assert len(survivors) == 2

    def test_same_ts_different_state_kept(self):
        # An event-driven logger may emit two records at the same second.
        out = clean_records([rec(10.0, TaxiState.FREE), rec(10.0, TaxiState.POB)])
        assert len(out) == 2

    def test_duplicate_counted_once(self):
        a = rec(10.0)
        report = CleaningReport()
        clean_records([a, a, a], report=report)
        assert report.duplicate == 2


class TestGpsErrors:
    def test_outside_city_removed(self):
        report = CleaningReport()
        out = clean_records(
            [rec(0.0), rec(10.0, lon=120.0)], city_bbox=CITY, report=report
        )
        assert len(out) == 1
        assert report.gps_error == 1

    def test_water_point_removed(self):
        report = CleaningReport()
        out = clean_records(
            [rec(0.0), rec(10.0, lon=103.65, lat=1.25)],
            city_bbox=CITY,
            inaccessible=WATER,
            report=report,
        )
        assert len(out) == 1
        assert report.gps_error == 1

    def test_no_bbox_means_no_gps_filter(self):
        out = clean_records([rec(0.0, lon=200.0)])
        assert len(out) == 1


class TestImproperStates:
    def test_spurious_free_between_payments(self):
        # The clock-sync bug: POB, PAYMENT, FREE, PAYMENT, FREE.
        records = [
            rec(0.0, TaxiState.POB),
            rec(10.0, TaxiState.PAYMENT),
            rec(12.0, TaxiState.FREE),
            rec(14.0, TaxiState.PAYMENT),
            rec(60.0, TaxiState.FREE),
        ]
        report = CleaningReport()
        out = clean_records(records, report=report)
        assert report.improper_state == 1
        states = [r.state for r in out]
        assert states == [
            TaxiState.POB,
            TaxiState.PAYMENT,
            TaxiState.FREE,
            TaxiState.FREE,
        ]

    def test_gps_removal_does_not_cascade(self):
        # A GPS-outlier BREAK inside a power-up sequence must not make the
        # rest of the day look mis-ordered.
        records = [
            rec(0.0, TaxiState.POWEROFF),
            rec(4.0, TaxiState.OFFLINE),
            rec(8.0, TaxiState.BREAK, lon=150.0),  # GPS outlier
            rec(12.0, TaxiState.FREE),
            rec(100.0, TaxiState.POB),
        ]
        report = CleaningReport()
        out = clean_records(records, city_bbox=CITY, report=report)
        assert report.gps_error == 1
        assert report.improper_state == 0
        assert [r.state for r in out] == [
            TaxiState.POWEROFF,
            TaxiState.OFFLINE,
            TaxiState.FREE,
            TaxiState.POB,
        ]

    def test_valid_stream_untouched(self):
        records = [
            rec(0.0, TaxiState.FREE),
            rec(10.0, TaxiState.POB),
            rec(20.0, TaxiState.STC),
            rec(30.0, TaxiState.PAYMENT),
            rec(40.0, TaxiState.FREE),
        ]
        report = CleaningReport()
        out = clean_records(records, city_bbox=CITY, report=report)
        assert len(out) == 5
        assert report.total_removed == 0

    def test_cleaning_is_idempotent(self):
        records = [
            rec(0.0, TaxiState.POB),
            rec(10.0, TaxiState.PAYMENT),
            rec(12.0, TaxiState.FREE),
            rec(14.0, TaxiState.PAYMENT),
            rec(60.0, TaxiState.FREE),
            rec(70.0, TaxiState.FREE, lon=150.0),
        ]
        once = clean_records(records, city_bbox=CITY)
        twice = clean_records(once, city_bbox=CITY)
        assert once == twice


class TestCleanStore:
    def test_store_level_report(self):
        store = MdtLogStore()
        store.extend(
            [
                rec(0.0, TaxiState.FREE, taxi="A"),
                rec(10.0, TaxiState.POB, taxi="A"),
                rec(0.0, TaxiState.FREE, taxi="B", lon=200.0),
            ]
        )
        cleaned, report = clean_store(store, city_bbox=CITY)
        assert len(cleaned) == 2
        assert report.total_in == 3
        assert report.gps_error == 1
        assert report.removed_fraction == pytest.approx(1 / 3)

    def test_empty_store(self):
        cleaned, report = clean_store(MdtLogStore())
        assert len(cleaned) == 0
        assert report.removed_fraction == 0.0

    def test_report_merge(self):
        a = CleaningReport(total_in=10, improper_state=1)
        b = CleaningReport(total_in=5, duplicate=2)
        a.merge(b)
        assert a.total_in == 15
        assert a.total_removed == 3


class TestOnSimulatedData:
    def test_error_fraction_near_paper(self, small_day):
        """The injected noise must clean up to roughly the paper's 2.8%."""
        city = small_day.city
        _, report = clean_store(
            small_day.store, city_bbox=city.bbox, inaccessible=city.water
        )
        assert 0.01 < report.removed_fraction < 0.05

    def test_cleaning_reduces_transition_violations(self, small_day):
        """Cleaning removes nearly all violations.

        Not strictly all: dropping a GPS-bad record whose *state* was a
        genuine bridge (e.g. the BREAK of a power-up sequence) leaves a
        missing-state gap in the kept stream, which is exactly how real
        MDT logs look after preprocessing.
        """
        from repro.states.machine import transition_violations

        city = small_day.city
        cleaned, _ = clean_store(
            small_day.store, city_bbox=city.bbox, inaccessible=city.water
        )
        raw_violations = sum(
            len(transition_violations(t.states()))
            for t in small_day.store.iter_trajectories()
        )
        remaining = sum(
            len(transition_violations(t.states()))
            for t in cleaned.iter_trajectories()
        )
        assert remaining < raw_violations * 0.2
        assert remaining / max(1, len(cleaned)) < 0.001
