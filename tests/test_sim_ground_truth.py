"""Tests for ground-truth bookkeeping (step functions, true labels)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import QueueType, TimeSlotGrid
from repro.sim.ground_truth import SpotTruth, StepFunction
from repro.sim.landmarks import Landmark, LandmarkCategory


class TestStepFunction:
    def test_initial_value(self):
        f = StepFunction(0.0, value=2)
        assert f.current == 2
        assert f.value_at(100.0) == 2

    def test_set_and_value_at(self):
        f = StepFunction(0.0)
        f.set(10.0, 3)
        f.set(20.0, 1)
        assert f.value_at(5.0) == 0
        assert f.value_at(10.0) == 3
        assert f.value_at(15.0) == 3
        assert f.value_at(25.0) == 1

    def test_add(self):
        f = StepFunction(0.0)
        assert f.add(5.0, +2) == 2
        assert f.add(10.0, -1) == 1

    def test_negative_value_rejected(self):
        f = StepFunction(0.0)
        with pytest.raises(ValueError):
            f.add(5.0, -1)

    def test_out_of_order_rejected(self):
        f = StepFunction(0.0)
        f.set(10.0, 1)
        with pytest.raises(ValueError):
            f.set(5.0, 2)

    def test_small_reorder_clamped_in_add(self):
        f = StepFunction(0.0)
        f.add(10.0, +1)
        f.add(9.5, +1)  # within the 2 s tolerance
        assert f.current == 2

    def test_same_time_update_overwrites(self):
        f = StepFunction(0.0)
        f.set(10.0, 1)
        f.set(10.0, 4)
        assert f.value_at(10.0) == 4

    def test_mean_over_simple(self):
        f = StepFunction(0.0)
        f.set(10.0, 2)
        # 0 for 10 s, 2 for 10 s -> mean 1 over [0, 20).
        assert f.mean_over(0.0, 20.0) == pytest.approx(1.0)

    def test_mean_over_interval_before_changes(self):
        f = StepFunction(0.0, value=5)
        assert f.mean_over(100.0, 200.0) == pytest.approx(5.0)

    def test_mean_over_empty_interval_rejected(self):
        f = StepFunction(0.0)
        with pytest.raises(ValueError):
            f.mean_over(10.0, 10.0)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1000.0),
                st.integers(min_value=0, max_value=10),
            ),
            min_size=0,
            max_size=30,
        )
    )
    @settings(max_examples=50)
    def test_mean_bounded_by_extremes(self, updates):
        f = StepFunction(0.0)
        values = [0]
        for ts, value in sorted(updates):
            f.set(ts, value)
            values.append(value)
        mean = f.mean_over(0.0, 1500.0)
        assert min(values) - 1e-9 <= mean <= max(values) + 1e-9


class TestSpotTruth:
    def _truth(self):
        lm = Landmark(
            "LM001", "t", LandmarkCategory.MRT_BUS, 103.8, 1.33, "Central"
        )
        return SpotTruth(
            spot_id="LM001",
            landmark=lm,
            taxi_queue=StepFunction(0.0),
            pax_queue=StepFunction(0.0),
        )

    def test_finalize_labels(self):
        truth = self._truth()
        # Taxi queue of 2 throughout slot 0; pax queue of 2 in slot 1.
        truth.taxi_queue.set(0.0, 2)
        truth.taxi_queue.set(1800.0, 0)
        truth.pax_queue.set(1800.0, 2)
        truth.pax_queue.set(3600.0, 0)
        grid = TimeSlotGrid(0.0, 7200.0, 1800.0)
        truth.finalize(grid, taxi_threshold=1.0, pax_threshold=1.0)
        labels = [slot.label for slot in truth.slots]
        assert labels == [
            QueueType.C3,
            QueueType.C2,
            QueueType.C4,
            QueueType.C4,
        ]

    def test_finalize_c1(self):
        truth = self._truth()
        truth.taxi_queue.set(0.0, 3)
        truth.pax_queue.set(0.0, 3)
        grid = TimeSlotGrid(0.0, 1800.0, 1800.0)
        truth.finalize(grid, 1.0, 1.0)
        assert truth.slots[0].label is QueueType.C1
        assert truth.slots[0].mean_taxi_queue == pytest.approx(3.0)
