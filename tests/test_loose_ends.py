"""Coverage for remaining small public surfaces."""

import pytest

from repro.states.states import TaxiState
from repro.trace.record import MdtRecord


class TestFromFields:
    def test_builds_from_split_fields(self):
        record = MdtRecord.from_fields(
            ["01/08/2008 19:04:51", "SH0001A", "103.8", "1.33", "54", "POB"]
        )
        assert record.taxi_id == "SH0001A"
        assert record.state is TaxiState.POB

    def test_wrong_arity(self):
        with pytest.raises(ValueError):
            MdtRecord.from_fields(["a", "b"])


class TestCliDemo:
    def test_demo_runs_end_to_end(self, capsys):
        from repro.cli import main

        code = main(["demo", "--seed", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "detected" in out
        assert "Queue Type" in out
        assert "Queue spot QS001" in out


class TestEngineZoneRatios:
    def test_ratios_per_zone(self, small_engine, small_day):
        cleaned = small_engine.preprocess(small_day.store)
        ratios = small_engine._zone_ratios(cleaned)
        assert set(ratios) == {"Central", "North", "West", "East"}
        for value in ratios.values():
            assert 0.0 <= value <= 1.0
        # Most jobs are street jobs in the simulated city (bookings are
        # a small minority), matching the paper's ~0.84+ ratios.
        busiest = max(ratios.values())
        assert busiest > 0.6


class TestOpticsEmptyExtraction:
    def test_n_clusters_at_empty(self):
        import numpy as np

        from repro.cluster.optics import optics

        result = optics(np.empty((0, 2)), max_eps=5.0, min_pts=3)
        assert result.n_clusters_at(2.0) == 0


class TestDemandHourlyTable:
    def test_24_rows(self):
        from repro.sim.config import SimulationConfig
        from repro.sim.demand import DemandModel, hourly_table
        from repro.sim.landmarks import Landmark, LandmarkCategory

        lm = Landmark(
            "LM001", "x", LandmarkCategory.MRT_BUS, 103.8, 1.33, "Central"
        )
        table = hourly_table(DemandModel(SimulationConfig()), lm)
        assert len(table) == 24
