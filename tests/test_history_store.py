"""Segment store, compaction merge equality, and crash-safety.

The seeded kill matrix at the bottom is the satellite guarantee of the
history subsystem: a kill at *any* point of a compaction (or segment
flush) loses no segment and double-counts no record — after a restart,
recompaction converges to exactly the uninterrupted run's aggregate
and pattern output.
"""

import json
import random

import pytest

from repro.core.types import QueueSpot, QueueType
from repro.history import (
    DaySegment,
    HistoryCompactor,
    HistoryQueryEngine,
    SegmentStore,
    SlotRecord,
    compact_store,
    empty_aggregate,
    fold_segments,
)
from repro.service.metrics import MetricsRegistry


def make_spots(n=3, zone_of=lambda i: f"Z{i % 2}"):
    return [
        QueueSpot(
            spot_id=f"QS{i:03d}",
            lon=103.8 + i * 0.01,
            lat=1.3,
            zone=zone_of(i),
            pickup_count=50 + i,
            radius_m=40.0,
        )
        for i in range(n)
    ]


def make_records(spots, slots=6, label=QueueType.C2, seed=0):
    rng = random.Random(seed)
    labels = sorted(QueueType, key=lambda q: q.value)
    return [
        SlotRecord(
            spot_id=spot.spot_id,
            slot=slot,
            label=rng.choice(labels) if label is None else label,
            routine=1,
            mean_wait_s=30.0 + slot,
            n_arrivals=float(slot),
            queue_length=1.0,
            mean_departure_interval_s=45.0,
            n_departures=2.0,
        )
        for spot in spots
        for slot in range(slots)
    ]


def make_segment(day, spots=None, dow=None, seed=None):
    spots = spots if spots is not None else make_spots()
    return DaySegment(
        day=day,
        day_of_week=day % 7 if dow is None else dow,
        slot_seconds=1800.0,
        spots=spots,
        records=make_records(
            spots, label=None if seed is not None else QueueType.C2,
            seed=seed or 0,
        ),
    )


class TestSegmentStore:
    def test_write_read_round_trip(self, tmp_path):
        store = SegmentStore(tmp_path)
        segment = make_segment(day=14000)
        store.write_day(segment)
        loaded = store.read_day(14000)
        assert loaded.day == 14000
        assert loaded.day_of_week == segment.day_of_week
        assert loaded.spots == segment.spots
        assert loaded.records == segment.records
        assert loaded.footer is not None and len(loaded.footer) == 64

    def test_days_listing_and_version(self, tmp_path):
        store = SegmentStore(tmp_path)
        assert store.days() == []
        assert store.version == 0
        store.write_day(make_segment(3))
        store.write_day(make_segment(1))
        store.write_day(make_segment(3))  # rewrite bumps again
        assert store.days() == [1, 3]
        assert store.version == 3

    def test_missing_day_is_none(self, tmp_path):
        assert SegmentStore(tmp_path).read_day(999) is None

    def test_corrupt_segment_skipped_with_accounting(self, tmp_path):
        metrics = MetricsRegistry()
        store = SegmentStore(tmp_path, metrics=metrics)
        store.write_day(make_segment(5))
        store.write_day(make_segment(6))
        raw = bytearray(store.path_of(5).read_bytes())
        raw[len(raw) // 2] ^= 0x40
        store.path_of(5).write_bytes(bytes(raw))

        assert store.read_day(5) is None
        assert [s.day for s in store.read_all()] == [6]
        assert 5 in store.corrupt_days
        counters = metrics.snapshot()["counters"]
        assert counters["history.corrupt_segments"] == 1
        # The same corrupt day is not re-counted on a second read.
        store.read_day(5)
        counters = metrics.snapshot()["counters"]
        assert counters["history.corrupt_segments"] == 1

    def test_write_metrics(self, tmp_path):
        metrics = MetricsRegistry()
        store = SegmentStore(tmp_path, metrics=metrics)
        segment = make_segment(7)
        store.write_day(segment)
        snap = metrics.snapshot()
        assert snap["counters"]["history.segments_written"] == 1
        assert snap["counters"]["history.records_written"] == len(
            segment.records
        )
        assert snap["gauges"]["history.segment_bytes"] == store.total_bytes()
        assert store.total_bytes() == store.path_of(7).stat().st_size

    def test_read_footer_matches_file_tail(self, tmp_path):
        store = SegmentStore(tmp_path)
        store.write_day(make_segment(11))
        raw = store.path_of(11).read_bytes()
        assert store.read_footer(11) == raw[-64:].decode("ascii")
        assert store.read_footer(999) is None

    def test_stray_temp_files_ignored(self, tmp_path):
        # A real kill leaves the atomic writer's temp file behind; the
        # store must never read it as a segment or aggregate.
        store = SegmentStore(tmp_path)
        store.write_day(make_segment(2))
        (tmp_path / ".day-9.seg-abc123.tmp").write_bytes(b"torn")
        (tmp_path / ".weekly.agg-xyz.tmp").write_bytes(b"torn")
        assert store.days() == [2]
        assert store.read_aggregate() is None

    def test_aggregate_round_trip_and_corruption(self, tmp_path):
        metrics = MetricsRegistry()
        store = SegmentStore(tmp_path, metrics=metrics)
        assert store.read_aggregate() is None
        payload = {"days": [1, 2], "dow_days": {"0": 2}}
        store.write_aggregate(payload)
        assert store.read_aggregate() == payload
        raw = bytearray(store.aggregate_path.read_bytes())
        raw[10] ^= 0x01
        store.aggregate_path.write_bytes(bytes(raw))
        assert store.read_aggregate() is None
        counters = metrics.snapshot()["counters"]
        assert counters["history.corrupt_aggregates"] == 1


class TestFoldMergeEquality:
    """aggregate(all) == fold(aggregate(some), rest), exactly."""

    def _segments(self, n=6):
        return [make_segment(day=100 + d, seed=d) for d in range(n)]

    def test_incremental_fold_equals_from_scratch(self):
        segments = self._segments()
        full = fold_segments(empty_aggregate(), list(segments))
        for split in range(len(segments) + 1):
            partial = fold_segments(empty_aggregate(), segments[:split])
            merged = fold_segments(partial, segments[split:])
            assert merged == full, f"split at {split} diverged"

    def test_fold_is_idempotent_per_day(self):
        segments = self._segments(3)
        once = fold_segments(empty_aggregate(), segments)
        twice = fold_segments(
            fold_segments(empty_aggregate(), segments), segments
        )
        assert twice == once

    def test_fold_order_independent(self):
        segments = self._segments(5)
        forward = fold_segments(empty_aggregate(), segments)
        shuffled = list(segments)
        random.Random(9).shuffle(shuffled)
        assert fold_segments(empty_aggregate(), shuffled) == forward

    def test_counts_are_exact(self):
        spots = make_spots(2, zone_of=lambda i: "Central")
        seg = DaySegment(
            day=200, day_of_week=4, slot_seconds=1800.0, spots=spots,
            records=make_records(spots, slots=3, label=QueueType.C1),
        )
        aggregate = fold_segments(empty_aggregate(), [seg, ])
        assert aggregate["dow_days"] == {"4": 1}
        assert aggregate["zone_spots"] == {"Central": {"4": 2}}
        assert aggregate["type_counts"] == {"4": {QueueType.C1.value: 6}}
        profile = aggregate["spot_profiles"]["QS000"]["4"]
        assert profile == {
            "0": {QueueType.C1.value: 1},
            "1": {QueueType.C1.value: 1},
            "2": {QueueType.C1.value: 1},
        }


class TestCompactStore:
    def test_compacts_all_intact_days(self, tmp_path):
        metrics = MetricsRegistry()
        store = SegmentStore(tmp_path, metrics=metrics)
        for day in (300, 301, 302):
            store.write_day(make_segment(day))
        aggregate = compact_store(store, metrics=metrics)
        assert aggregate["days"] == [300, 301, 302]
        assert store.read_aggregate() == aggregate
        snap = metrics.snapshot()
        assert snap["counters"]["history.compactions"] == 1
        assert snap["gauges"]["history.compacted_days"] == 3
        assert snap["histograms"]["history.compaction_seconds"]["count"] == 1

    def test_corrupt_day_contributes_nothing(self, tmp_path):
        store = SegmentStore(tmp_path)
        store.write_day(make_segment(310))
        store.write_day(make_segment(311))
        store.path_of(310).write_bytes(b"garbage")
        aggregate = compact_store(store)
        assert aggregate["days"] == [311]
        assert 310 in store.corrupt_days

    def test_aggregate_records_day_footers(self, tmp_path):
        store = SegmentStore(tmp_path)
        store.write_day(make_segment(320))
        aggregate = compact_store(store)
        assert aggregate["day_footers"]["320"] == store.read_footer(320)


class InjectedKill(BaseException):
    """Raised by the fault hooks to simulate a hard process kill."""


class TestKillDuringCompaction:
    """Seeded kill matrix: no segment loss, no double counting."""

    KILL_MODES = ("during_temp_write", "at_rename", "after_rename")

    def _armed_store(self, tmp_path, n_days=4):
        store = SegmentStore(tmp_path)
        for day in range(400, 400 + n_days):
            store.write_day(make_segment(day, seed=day))
        return store

    def _kill(self, monkeypatch, mode):
        """Arm one kill point inside the atomic aggregate write."""
        import repro.history.format as fmt

        if mode == "during_temp_write":
            real_fsync = fmt.os.fsync

            def fsync_kill(fd):
                raise InjectedKill("killed mid temp write")

            monkeypatch.setattr(fmt.os, "fsync", fsync_kill)
            return lambda: monkeypatch.setattr(fmt.os, "fsync", real_fsync)
        if mode == "at_rename":
            real_replace = fmt.os.replace

            def replace_kill(src, dst):
                raise InjectedKill("killed before rename")

            monkeypatch.setattr(fmt.os, "replace", replace_kill)
            return lambda: monkeypatch.setattr(
                fmt.os, "replace", real_replace
            )
        # after_rename: the write completes, the kill lands after —
        # nothing to patch; the "crash" is just not running anything
        # else afterwards.
        return lambda: None

    @pytest.mark.parametrize("kill_seed", [0, 1, 2, 3, 4])
    def test_recompaction_converges_after_any_kill(
        self, kill_seed, tmp_path, monkeypatch
    ):
        mode = random.Random(kill_seed).choice(self.KILL_MODES)
        store = self._armed_store(tmp_path / "killed")
        segment_bytes = {
            day: store.path_of(day).read_bytes() for day in store.days()
        }

        heal = self._kill(monkeypatch, mode)
        try:
            compact_store(store)
        except InjectedKill:
            assert mode != "after_rename"
        else:
            assert mode == "after_rename"
        heal()

        # No segment was lost or altered by the kill.
        assert {
            day: store.path_of(day).read_bytes() for day in store.days()
        } == segment_bytes
        # Whatever aggregate is on disk is intact or absent, never torn.
        aggregate = store.read_aggregate()
        assert aggregate is None or aggregate["days"] == store.days()

        # "Restart": a fresh store over the same directory recompacts
        # to exactly the uninterrupted run's aggregate...
        restarted = SegmentStore(tmp_path / "killed")
        recompacted = compact_store(restarted)
        clean_store = self._armed_store(tmp_path / "clean")
        clean = compact_store(clean_store)
        assert recompacted == clean
        # ... and the pattern query output is byte-identical.
        assert json.dumps(
            HistoryQueryEngine(restarted).patterns(), sort_keys=True
        ) == json.dumps(
            HistoryQueryEngine(clean_store).patterns(), sort_keys=True
        )

    @pytest.mark.parametrize("mode", ["during_temp_write", "at_rename"])
    def test_killed_segment_flush_keeps_previous_generation(
        self, mode, tmp_path, monkeypatch
    ):
        store = SegmentStore(tmp_path)
        first = make_segment(500, seed=1)
        store.write_day(first)
        before = store.path_of(500).read_bytes()

        heal = self._kill(monkeypatch, mode)
        with pytest.raises(InjectedKill):
            store.write_day(make_segment(500, seed=2))
        heal()

        assert store.path_of(500).read_bytes() == before
        assert store.read_day(500).records == first.records
        # The retried flush then lands the new generation.
        second = make_segment(500, seed=2)
        store.write_day(second)
        assert store.read_day(500).records == second.records


class TestHistoryCompactor:
    def test_interval_validation(self, tmp_path):
        with pytest.raises(ValueError):
            HistoryCompactor(SegmentStore(tmp_path), interval_s=0.0)

    def test_compact_once(self, tmp_path):
        store = SegmentStore(tmp_path)
        store.write_day(make_segment(600))
        compactor = HistoryCompactor(store)
        aggregate = compactor.compact_once()
        assert aggregate["days"] == [600]

    def test_thread_lifecycle_and_final_pass(self, tmp_path):
        store = SegmentStore(tmp_path)
        store.write_day(make_segment(601))
        compactor = HistoryCompactor(store, interval_s=3600.0)
        compactor.start()
        compactor.start()  # idempotent
        compactor.stop(final_pass=True)
        compactor.stop(final_pass=False)
        assert store.read_aggregate()["days"] == [601]

    def test_failing_pass_counts_and_keeps_thread_alive(self, tmp_path):
        import threading

        metrics = MetricsRegistry()
        store = SegmentStore(tmp_path, metrics=metrics)
        failures = threading.Event()

        def explode(payload):
            failures.set()
            raise OSError("disk full")

        store.write_aggregate = explode
        compactor = HistoryCompactor(
            store, interval_s=0.01, metrics=metrics
        )
        compactor.start()
        assert failures.wait(5.0)
        assert compactor._thread.is_alive()
        compactor.stop(final_pass=False)
        counters = metrics.snapshot()["counters"]
        assert counters["history.compaction_errors"] >= 1
