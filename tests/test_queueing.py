"""Tests for the queueing substrate (Little's law, FIFO sim, M/M/c)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing.fifo import FifoQueueSim
from repro.queueing.littles_law import (
    little_arrival_rate,
    little_queue_length,
    little_wait_time,
)
from repro.queueing.mmc import (
    erlang_c,
    mm1_mean_wait,
    mmc_mean_queue_length,
    mmc_mean_wait,
    utilisation,
)


class TestLittlesLaw:
    def test_basic_identity(self):
        assert little_queue_length(0.5, 10.0) == 5.0
        assert little_wait_time(5.0, 0.5) == 10.0
        assert little_arrival_rate(5.0, 10.0) == 0.5

    @given(
        st.floats(min_value=1e-3, max_value=1e3),
        st.floats(min_value=1e-3, max_value=1e3),
    )
    @settings(max_examples=50)
    def test_roundtrip(self, lam, wait):
        length = little_queue_length(lam, wait)
        assert little_wait_time(length, lam) == pytest.approx(wait)
        assert little_arrival_rate(length, wait) == pytest.approx(lam)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            little_queue_length(-1.0, 1.0)
        with pytest.raises(ValueError):
            little_wait_time(1.0, 0.0)
        with pytest.raises(ValueError):
            little_arrival_rate(1.0, 0.0)
        with pytest.raises(ValueError):
            little_wait_time(-1.0, 1.0)


class TestMmc:
    def test_utilisation(self):
        assert utilisation(0.5, 1.0) == 0.5
        assert utilisation(3.0, 1.0, servers=4) == 0.75
        with pytest.raises(ValueError):
            utilisation(0.0, 1.0)

    def test_erlang_c_single_server_equals_rho(self):
        # For M/M/1 the probability of waiting equals the utilisation.
        assert erlang_c(0.7, 1.0, 1) == pytest.approx(0.7)

    def test_erlang_c_unstable_raises(self):
        with pytest.raises(ValueError):
            erlang_c(1.0, 1.0, 1)

    def test_mm1_mean_wait_closed_form(self):
        lam, mu = 0.5, 1.0
        # W_q = rho / (mu - lambda).
        assert mm1_mean_wait(lam, mu) == pytest.approx(0.5 / 0.5)

    def test_more_servers_reduce_wait(self):
        lam, mu = 1.5, 1.0
        w2 = mmc_mean_wait(lam, mu, 2)
        w3 = mmc_mean_wait(lam, mu, 3)
        assert w3 < w2

    def test_queue_length_consistent_with_littles_law(self):
        lam, mu, c = 1.5, 1.0, 2
        lq = mmc_mean_queue_length(lam, mu, c)
        assert lq == pytest.approx(lam * mmc_mean_wait(lam, mu, c))


class TestFifoQueueSim:
    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            FifoQueueSim(0.0, 1.0)
        with pytest.raises(ValueError):
            FifoQueueSim(1.0, -1.0)

    def test_rejects_bad_horizon(self):
        with pytest.raises(ValueError):
            FifoQueueSim(1.0, 2.0).run(0.0)

    def test_waits_nonnegative_and_departures_ordered(self):
        result = FifoQueueSim(0.5, 1.0, seed=1).run(2000.0)
        assert all(w >= 0 for w in result.waits)
        assert result.departures == sorted(result.departures)

    def test_mean_wait_matches_mm1_theory(self):
        lam, mu = 0.5, 1.0
        result = FifoQueueSim(lam, mu, seed=7).run(200_000.0)
        expected = mm1_mean_wait(lam, mu)
        assert result.mean_wait == pytest.approx(expected, rel=0.15)

    def test_littles_law_holds_empirically(self):
        lam, mu = 0.6, 1.0
        result = FifoQueueSim(lam, mu, seed=3).run(100_000.0)
        empirical_lam = len(result.waits) / 100_000.0
        predicted_length = empirical_lam * result.mean_wait
        assert result.time_avg_queue_length == pytest.approx(
            predicted_length, rel=0.1
        )

    def test_low_load_means_no_waiting(self):
        result = FifoQueueSim(0.01, 10.0, seed=5).run(50_000.0)
        assert result.mean_wait < 0.1

    def test_empty_horizon_without_arrivals(self):
        result = FifoQueueSim(1e-6, 1.0, seed=2).run(10.0)
        assert result.waits == []
        assert result.mean_wait == 0.0
