"""Tests for the optional road-network substrate."""

import pytest

from repro.geo.point import equirectangular_m
from repro.sim.city import City
from repro.sim.roads import RoadNetwork, split_polyline


@pytest.fixture(scope="module")
def city():
    return City.generate(seed=9, n_queue_spots=10, n_decoys=4)


@pytest.fixture(scope="module")
def roads(city):
    return RoadNetwork(city, spacing_m=1500.0, seed=9)


class TestConstruction:
    def test_invalid_spacing(self, city):
        with pytest.raises(ValueError):
            RoadNetwork(city, spacing_m=0.0)

    def test_nodes_cover_land_only(self, roads, city):
        for _, data in roads.graph.nodes(data=True):
            assert city.is_accessible(data["lon"], data["lat"])

    def test_grid_scale(self, roads, city):
        # ~50 km x 26 km at 1.5 km spacing -> several hundred nodes.
        assert 300 < roads.node_count < 800

    def test_edges_have_lengths(self, roads):
        for _, _, data in roads.graph.edges(data=True):
            assert data["length"] > 0

    def test_mostly_connected(self, roads):
        import networkx as nx

        components = list(nx.connected_components(roads.graph))
        assert max(len(c) for c in components) > roads.node_count * 0.9


class TestRouting:
    def test_route_endpoints_exact(self, roads, city):
        import random

        rng = random.Random(0)
        a = city.random_land_point(rng)
        b = city.random_land_point(rng)
        route = roads.route(a[0], a[1], b[0], b[1])
        assert route[0] == a
        assert route[-1] == b
        assert len(route) >= 2

    def test_route_length_at_least_direct(self, roads, city):
        import random

        rng = random.Random(1)
        for _ in range(10):
            a = city.random_land_point(rng)
            b = city.random_land_point(rng)
            direct = equirectangular_m(a[0], a[1], b[0], b[1])
            routed = roads.path_length_m(roads.route(a[0], a[1], b[0], b[1]))
            assert routed >= direct * 0.95  # snapping slack at endpoints

    def test_detour_factor_reasonable(self, roads, city):
        import random

        rng = random.Random(2)
        factors = []
        for _ in range(10):
            a = city.random_land_point(rng)
            b = city.random_land_point(rng)
            if equirectangular_m(a[0], a[1], b[0], b[1]) < 3000:
                continue
            factors.append(roads.detour_factor(a[0], a[1], b[0], b[1]))
        assert factors
        # Grid roads detour, but not absurdly (L1/L2 <= sqrt(2) + slack).
        assert max(factors) < 2.2
        assert min(factors) >= 1.0

    def test_nearest_node_snaps(self, roads, city):
        lon, lat = city.bbox.center
        key = roads.nearest_node(lon, lat)
        node = roads.graph.nodes[key]
        d = equirectangular_m(lon, lat, node["lon"], node["lat"])
        assert d < 3 * roads.spacing_m

    def test_route_cache_consistency(self, roads, city):
        import random

        rng = random.Random(3)
        a = city.random_land_point(rng)
        b = city.random_land_point(rng)
        r1 = roads.route(a[0], a[1], b[0], b[1])
        r2 = roads.route(a[0], a[1], b[0], b[1])
        assert r1 == r2

    def test_travel_time_floor(self, roads, city):
        lon, lat = city.bbox.center
        _, seconds = roads.travel(lon, lat, lon, lat, speed_kmh=38.0)
        assert seconds >= 20.0


class TestSplitPolyline:
    LINE = [(0.0, 0.0), (0.01, 0.0), (0.02, 0.0)]

    def test_midpoint_split(self):
        head, tail = split_polyline(self.LINE, 0.5)
        assert head[-1] == tail[0]
        assert head[-1][0] == pytest.approx(0.01, abs=1e-9)

    def test_lengths_partition(self):
        from repro.sim.roads import RoadNetwork as RN

        for fraction in (0.2, 0.5, 0.8):
            head, tail = split_polyline(self.LINE, fraction)
            total = RN.path_length_m(self.LINE)
            assert RN.path_length_m(head) == pytest.approx(
                total * fraction, rel=1e-6
            )
            assert RN.path_length_m(head) + RN.path_length_m(tail) == (
                pytest.approx(total, rel=1e-6)
            )

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            split_polyline(self.LINE, 0.0)
        with pytest.raises(ValueError):
            split_polyline(self.LINE, 1.0)
        with pytest.raises(ValueError):
            split_polyline([(0.0, 0.0)], 0.5)


class TestFleetIntegration:
    def test_roads_day_reduces_water_records(self):
        from repro.sim import SimulationConfig, simulate_day

        base = dict(
            seed=3, fleet_size=80, n_queue_spots=6, n_decoy_landmarks=3
        )
        straight = simulate_day(SimulationConfig(**base))
        routed = simulate_day(
            SimulationConfig(use_road_network=True, **base)
        )

        def water_fraction(output):
            in_water = sum(
                1
                for r in output.store.iter_records()
                if any(w.contains(r.lon, r.lat) for w in output.city.water)
            )
            return in_water / max(1, len(output.store))

        assert water_fraction(routed) <= water_fraction(straight)
        assert routed.counters["trips"] > 0

    def test_roads_day_is_analysable(self):
        from repro.core.engine import EngineConfig, QueueAnalyticEngine
        from repro.sim import SimulationConfig, simulate_day

        config = SimulationConfig(
            seed=5, fleet_size=120, n_queue_spots=8, n_decoy_landmarks=3,
            use_road_network=True,
        )
        output = simulate_day(config)
        city = output.city
        engine = QueueAnalyticEngine(
            zones=city.zones,
            projection=city.projection,
            config=EngineConfig(observed_fraction=config.observed_fraction),
            city_bbox=city.bbox,
            inaccessible=city.water,
        )
        detection = engine.detect_spots(output.store)
        assert len(detection.spots) >= 3
